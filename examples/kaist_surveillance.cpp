// Daily-surveillance scenario (the paper's Fig. 1 motivation): a fleet of
// UGV carriers patrols the KAIST campus collecting CCTV/sensor data, and
// we compare the learned GARL policy against an uncoordinated Random fleet
// over the same task.
//
//   ./kaist_surveillance

#include <cstdio>
#include <iostream>

#include "baselines/runner.h"
#include "common/table_writer.h"
#include "env/campus_factory.h"
#include "env/world.h"

int main() {
  using namespace garl;

  env::WorldParams params;
  params.num_ugvs = 6;      // larger patrol fleet
  params.uavs_per_ugv = 2;
  params.horizon = 120;     // one hour of 30 s slots
  env::World world(env::MakeKaistCampus(), params);

  TableWriter table({"policy", "lambda", "psi", "xi", "zeta", "beta"});
  for (const std::string& method : {std::string("GARL"),
                                    std::string("GARL w/o MC, E"),
                                    std::string("Random")}) {
    baselines::RunOptions options;
    options.train_iterations = (method == "Random") ? 0 : 3;
    options.eval_episodes = 1;
    baselines::RunResult result =
        baselines::TrainAndEvaluate(world, method, options);
    const env::EpisodeMetrics& m = result.metrics;
    table.AddRow(method, {m.efficiency, m.data_collection_ratio, m.fairness,
                          m.cooperation_factor, m.energy_ratio});
    std::printf("finished %s\n", method.c_str());
  }
  std::printf("\nKAIST daily surveillance, U=6, V'=2, T=120:\n");
  table.Print(std::cout);
  std::printf(
      "\nThe coordinated coalition policy (GARL) should collect more data,\n"
      "more evenly, with fewer wasted UAV flights than the plain-GCN and\n"
      "Random fleets.\n");
  return 0;
}
