// Building your own workzone: define a campus programmatically (roads,
// buildings, sensors), validate it, inspect the generated stop network and
// run a coalition on it. This is the entry point for adapting the library
// to a new environment.
//
//   ./custom_campus

#include <cstdio>

#include "baselines/runner.h"
#include "env/campus.h"
#include "env/campus_factory.h"
#include "env/stop_network.h"
#include "env/world.h"

int main() {
  using namespace garl;

  // Option A: fully manual specification.
  env::CampusSpec campus;
  campus.name = "riverside-depot";
  campus.width = 800.0;
  campus.height = 600.0;
  // An H-shaped road network.
  campus.roads.push_back({{150, 50}, {150, 550}});
  campus.roads.push_back({{650, 50}, {650, 550}});
  campus.roads.push_back({{150, 300}, {650, 300}});
  // Two warehouses (obstacles) with sensors on their walls.
  campus.buildings.push_back({250, 380, 360, 470});
  campus.buildings.push_back({450, 120, 560, 210});
  campus.sensors.push_back({{245, 420}, 1200.0});
  campus.sensors.push_back({{365, 400}, 1400.0});
  campus.sensors.push_back({{455, 115}, 1100.0});
  campus.sensors.push_back({{565, 160}, 1000.0});
  campus.sensors.push_back({{650, 500}, 1300.0});  // roadside cabinet

  Status status = env::ValidateCampus(campus, /*reach=*/250.0);
  std::printf("validation: %s\n", status.ToString().c_str());
  if (!status.ok()) return 1;

  env::StopNetwork stops = env::BuildStopNetwork(campus, 100.0);
  std::printf("stop network: %lld stops, %lld edges, connected=%s\n",
              static_cast<long long>(stops.num_stops()),
              static_cast<long long>(stops.graph.num_edges()),
              stops.graph.IsConnected() ? "yes" : "no");

  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 60;
  env::World world(campus, params);

  baselines::RunOptions options;
  options.train_iterations = 2;
  baselines::RunResult result =
      baselines::TrainAndEvaluate(world, "GARL", options);
  std::printf("GARL on %s: lambda=%.3f, psi=%.3f\n", campus.name.c_str(),
              result.metrics.efficiency,
              result.metrics.data_collection_ratio);

  // Option B: the procedural generator used for KAIST/UCLA, reconfigured.
  env::CampusGenOptions gen;
  gen.name = "procedural-town";
  gen.width = 1200;
  gen.height = 900;
  gen.grid_x = 5;
  gen.grid_y = 4;
  gen.num_buildings = 40;
  gen.num_sensors = 70;
  gen.seed = 42;
  env::CampusSpec town = env::GenerateGridCampus(gen);
  std::printf("generated %s: %zu buildings, %zu sensors, %.1f GB total\n",
              town.name.c_str(), town.buildings.size(), town.sensors.size(),
              town.TotalInitialData() / 1000.0);
  return 0;
}
