// Disaster-response scenario on the UCLA-style campus: its east and west
// districts are joined only by a thin connector road through a sparse
// centre, so carriers must commit to a side — the landscape feature the
// paper credits for GARL's advantage there (Section V-D).
//
// The example trains GARL, replays one episode, and reports how the fleet
// split its effort between the two districts.
//
//   ./ucla_disaster_response

#include <cstdio>

#include "baselines/registry.h"
#include "common/rng.h"
#include "env/campus_factory.h"
#include "env/world.h"
#include "nn/ops.h"
#include "rl/ippo_trainer.h"
#include "rl/rollout.h"
#include "rl/uav_controller.h"

int main() {
  using namespace garl;

  env::WorldParams params;
  params.num_ugvs = 4;
  params.uavs_per_ugv = 2;
  params.horizon = 120;
  env::World world(env::MakeUclaCampus(), params);
  rl::EnvContext context = rl::MakeEnvContext(world);

  Rng rng(3);
  auto policy = std::move(baselines::MakeUgvPolicy(
                              "GARL", context, baselines::MethodOptions(),
                              rng))
                    .value();
  rl::TrainConfig train;
  train.iterations = 3;
  train.seed = 3;
  rl::IppoTrainer trainer(&world, policy.get(), nullptr, train);
  auto train_result = trainer.Train();
  GARL_CHECK_MSG(train_result.ok(), train_result.status().ToString());

  // Replay one episode and watch the district split.
  world.Reset(77);
  Rng act_rng(7);
  rl::GreedyUavController uav_controller;
  while (!world.Done()) {
    std::vector<env::UgvObservation> observations;
    for (int64_t u = 0; u < world.num_ugvs(); ++u) {
      observations.push_back(world.ObserveUgv(u));
    }
    std::vector<rl::UgvPolicyOutput> outputs;
    {
      nn::NoGradGuard no_grad;
      outputs = policy->Forward(observations);
    }
    std::vector<env::UgvAction> ugv_actions(
        static_cast<size_t>(world.num_ugvs()));
    for (int64_t u = 0; u < world.num_ugvs(); ++u) {
      if (world.UgvNeedsAction(u)) {
        ugv_actions[static_cast<size_t>(u)] =
            rl::SampleUgvAction(outputs[static_cast<size_t>(u)], act_rng,
                                false)
                .action;
      }
    }
    std::vector<env::UavAction> uav_actions(
        static_cast<size_t>(world.num_uavs()));
    for (int64_t v = 0; v < world.num_uavs(); ++v) {
      if (world.UavAirborne(v)) {
        uav_actions[static_cast<size_t>(v)] =
            uav_controller.Act(world, v, act_rng);
      }
    }
    world.Step(ugv_actions, uav_actions);
  }

  // District accounting.
  double west_collected = 0, east_collected = 0, west_total = 0,
         east_total = 0;
  for (const env::SensorState& s : world.sensors()) {
    bool west = s.position.x < world.campus().width / 2.0;
    (west ? west_total : east_total) += s.initial_mb;
    (west ? west_collected : east_collected) +=
        s.initial_mb - s.remaining_mb;
  }
  int west_time = 0, east_time = 0;
  for (const auto& trace : world.ugv_trace()) {
    for (const env::Vec2& p : trace) {
      (p.x < world.campus().width / 2.0 ? west_time : east_time) += 1;
    }
  }
  env::EpisodeMetrics m = world.Metrics();
  std::printf("UCLA disaster response, U=4, V'=2, T=120\n");
  std::printf("  west district: %.0f / %.0f MB collected (%.0f%%)\n",
              west_collected, west_total,
              100.0 * west_collected / west_total);
  std::printf("  east district: %.0f / %.0f MB collected (%.0f%%)\n",
              east_collected, east_total,
              100.0 * east_collected / east_total);
  std::printf("  carrier slot-presence west/east: %d / %d\n", west_time,
              east_time);
  std::printf("  efficiency lambda = %.3f (psi %.3f, xi %.3f, zeta %.3f, "
              "beta %.3f)\n",
              m.efficiency, m.data_collection_ratio, m.fairness,
              m.cooperation_factor, m.energy_ratio);
  std::printf(
      "\nA coordinated fleet serves BOTH districts despite the thin\n"
      "connector; an uncoordinated one strands all carriers on one side.\n");
  return 0;
}
