// Quickstart: build a campus world, train GARL for a few IPPO iterations
// and evaluate the paper's task metrics.
//
//   ./quickstart [train_iterations]

#include <cstdio>
#include <cstdlib>

#include "baselines/runner.h"
#include "env/campus_factory.h"
#include "env/world.h"

int main(int argc, char** argv) {
  using namespace garl;

  // 1. A synthetic KAIST campus: 85 buildings, 138 sensors, road lattice.
  env::CampusSpec campus = env::MakeKaistCampus();
  std::printf("Campus %s: %.0f x %.0f m, %zu buildings, %zu sensors\n",
              campus.name.c_str(), campus.width, campus.height,
              campus.buildings.size(), campus.sensors.size());

  // 2. The air-ground Dec-POMDP: 4 UGV carriers, 2 UAVs each, 100 slots.
  env::WorldParams params;
  params.num_ugvs = 4;
  params.uavs_per_ugv = 2;
  params.horizon = 100;
  env::World world(std::move(campus), params);
  std::printf("Stop graph: %lld stops, %lld road edges\n",
              static_cast<long long>(world.stops().num_stops()),
              static_cast<long long>(world.stops().graph.num_edges()));

  // 3. Train GARL (MC-GCN + E-Comm + IPPO) and evaluate.
  baselines::RunOptions options;
  options.train_iterations = (argc > 1) ? std::atoll(argv[1]) : 3;
  options.eval_episodes = 1;
  baselines::RunResult result =
      baselines::TrainAndEvaluate(world, "GARL", options);

  const env::EpisodeMetrics& m = result.metrics;
  std::printf("\nGARL after %lld training iterations:\n",
              static_cast<long long>(options.train_iterations));
  std::printf("  data collection ratio (psi) : %.3f\n",
              m.data_collection_ratio);
  std::printf("  fairness (xi)               : %.3f\n", m.fairness);
  std::printf("  cooperation factor (zeta)   : %.3f\n",
              m.cooperation_factor);
  std::printf("  energy ratio (beta)         : %.3f\n", m.energy_ratio);
  std::printf("  efficiency (lambda)         : %.3f\n", m.efficiency);
  return 0;
}
