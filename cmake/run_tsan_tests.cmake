# Configures a ThreadSanitizer sub-build of the tree and runs the
# concurrency-sensitive tests under it. Invoked by the `tsan_thread_tests`
# ctest entry registered from the top-level CMakeLists.txt.
#
# Expects: SOURCE_DIR, BINARY_DIR.

if(NOT SOURCE_DIR OR NOT BINARY_DIR)
  message(FATAL_ERROR "run_tsan_tests.cmake needs -DSOURCE_DIR and -DBINARY_DIR")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${BINARY_DIR}
          -DGARL_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE configure_result)
if(NOT configure_result EQUAL 0)
  message(FATAL_ERROR "TSan sub-build configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${BINARY_DIR}
          --target thread_pool_test arena_test simd_test
                   parallel_rollout_test obs_test golden_run_test
                   chaos_test serving_test serving_chaos_test -j
  RESULT_VARIABLE build_result)
if(NOT build_result EQUAL 0)
  message(FATAL_ERROR "TSan sub-build compile failed")
endif()

# halt_on_error makes any race a hard test failure rather than a log line.
set(ENV{TSAN_OPTIONS} "halt_on_error=1")
foreach(test_binary thread_pool_test arena_test simd_test
        parallel_rollout_test obs_test golden_run_test chaos_test
        serving_test serving_chaos_test)
  execute_process(
    COMMAND ${BINARY_DIR}/tests/${test_binary}
    RESULT_VARIABLE run_result)
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "${test_binary} failed under ThreadSanitizer")
  endif()
endforeach()
