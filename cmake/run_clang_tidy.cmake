# Standalone clang-tidy driver: runs the .clang-tidy check set over every
# translation unit listed in a build tree's compile_commands.json.
#
#   cmake -DBUILD_DIR=<build-dir> [-DSOURCE_DIR=<repo>] [-DSTRICT=ON] \
#         -P cmake/run_clang_tidy.cmake
#
# Exit behaviour: FATAL_ERROR on any tidy finding. When clang-tidy is not
# installed the gate is unavailable: with STRICT=ON that is a hard failure,
# otherwise a loud skip (so machines without LLVM — like the default CI
# container — still run the other two layers).

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT BUILD_DIR)
  set(BUILD_DIR ${SOURCE_DIR}/build)
endif()

find_program(GARL_CLANG_TIDY_EXE
  NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16
        clang-tidy-15 clang-tidy-14)
if(NOT GARL_CLANG_TIDY_EXE)
  if(STRICT)
    message(FATAL_ERROR "clang-tidy not found and STRICT=ON")
  endif()
  message(STATUS "clang-tidy not found — tidy layer SKIPPED "
                 "(install clang-tidy to enable; garl_lint and the sanitizer "
                 "gates still apply)")
  return()
endif()

if(NOT EXISTS ${BUILD_DIR}/compile_commands.json)
  message(FATAL_ERROR
      "${BUILD_DIR}/compile_commands.json not found — configure the build "
      "first (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)")
endif()

# Every first-party translation unit; third-party none exist, and gtest main
# stubs are compiled from our own test sources anyway.
file(GLOB_RECURSE GARL_TIDY_SOURCES
  ${SOURCE_DIR}/src/*.cc
  ${SOURCE_DIR}/tools/*.cc
  ${SOURCE_DIR}/bench/*.cc
  ${SOURCE_DIR}/tests/*.cc
  ${SOURCE_DIR}/examples/*.cpp)
list(FILTER GARL_TIDY_SOURCES EXCLUDE REGEX "lint_fixtures")

set(failures 0)
foreach(source ${GARL_TIDY_SOURCES})
  execute_process(
    COMMAND ${GARL_CLANG_TIDY_EXE} -p ${BUILD_DIR} --quiet ${source}
    RESULT_VARIABLE tidy_result
    OUTPUT_VARIABLE tidy_output
    ERROR_VARIABLE tidy_stderr)
  if(NOT tidy_result EQUAL 0)
    math(EXPR failures "${failures} + 1")
    message(STATUS "clang-tidy FAILED: ${source}\n${tidy_output}")
  endif()
endforeach()

list(LENGTH GARL_TIDY_SOURCES total)
if(failures GREATER 0)
  message(FATAL_ERROR "clang-tidy: ${failures}/${total} files with findings")
endif()
message(STATUS "clang-tidy: ${total} files clean")
