# Runs every static-analysis and sanitizer gate in sequence, exiting nonzero
# on the first finding. This is the extended verify recipe:
#
#   cmake -DSOURCE_DIR=/root/repo -P cmake/run_all_gates.cmake
#
# Gates, in order (cheapest first so failures surface fast):
#   1. garl_lint        — repo-invariant linter (tools/garl_lint)
#   2. -Werror build    — full tree with GARL_WERROR=ON (clean -Wall -Wextra)
#   3. clang-tidy       — .clang-tidy set over compile_commands.json
#                         (loud skip when clang-tidy is not installed)
#   4. ASan/UBSan       — full test suite under address+undefined
#   5. TSan             — concurrency tests under thread sanitizer
#
# GATES_DIR holds the sub-builds (default <source>/build-gates; .gitignore'd).

if(NOT SOURCE_DIR)
  get_filename_component(SOURCE_DIR ${CMAKE_CURRENT_LIST_DIR} DIRECTORY)
endif()
if(NOT GATES_DIR)
  set(GATES_DIR ${SOURCE_DIR}/build-gates)
endif()

function(garl_run_step description)
  message(STATUS "=== gate: ${description} ===")
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE step_result)
  if(NOT step_result EQUAL 0)
    message(FATAL_ERROR "gate FAILED: ${description}")
  endif()
endfunction()

# --- 1+2: -Werror build of the whole tree, then the garl_lint ctest. --------
garl_run_step("configure -Werror tree"
  ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${GATES_DIR}/lint
  -DCMAKE_BUILD_TYPE=Release -DGARL_WERROR=ON)
garl_run_step("build with -Wall -Wextra -Werror"
  ${CMAKE_COMMAND} --build ${GATES_DIR}/lint -j)
# Two lint passes over the same cache file: the first (cold) populates the
# phase-1 index cache, the second (warm) must be served entirely from it and
# produce byte-identical JSON. A finding, a stale baseline entry, or any
# cold/warm divergence fails the gate.
set(lint_cmd ${GATES_DIR}/lint/tools/garl_lint/garl_lint
  --root ${SOURCE_DIR} --format=json
  --baseline ${SOURCE_DIR}/tools/garl_lint/garl_lint.baseline
  --cache ${GATES_DIR}/lint/garl_lint.cache)
file(REMOVE ${GATES_DIR}/lint/garl_lint.cache)
message(STATUS "=== gate: garl_lint invariants (cold cache) ===")
execute_process(COMMAND ${lint_cmd}
  RESULT_VARIABLE lint_cold_result
  OUTPUT_VARIABLE lint_cold_stdout ERROR_VARIABLE lint_cold_stderr)
if(NOT lint_cold_result EQUAL 0)
  message(FATAL_ERROR
    "gate FAILED: garl_lint (cold)\n${lint_cold_stdout}${lint_cold_stderr}")
endif()
message(STATUS "=== gate: garl_lint incremental cache smoke (warm) ===")
execute_process(COMMAND ${lint_cmd}
  RESULT_VARIABLE lint_warm_result
  OUTPUT_VARIABLE lint_warm_stdout ERROR_VARIABLE lint_warm_stderr)
if(NOT lint_warm_result EQUAL 0)
  message(FATAL_ERROR
    "gate FAILED: garl_lint (warm)\n${lint_warm_stdout}${lint_warm_stderr}")
endif()
if(NOT lint_cold_stdout STREQUAL lint_warm_stdout)
  message(FATAL_ERROR "gate FAILED: garl_lint warm-cache output diverged from "
    "the cold run; the index cache is not a pure function of file contents")
endif()
if(NOT lint_warm_stderr MATCHES " 0 miss\\(es\\)")
  message(FATAL_ERROR "gate FAILED: garl_lint warm run was not fully served "
    "from the index cache:\n${lint_warm_stderr}")
endif()

# --- 2b: observability golden-run + schema tests (fast, catch det drift). ---
garl_run_step("observability test suite"
  ${CMAKE_CTEST_COMMAND} --test-dir ${GATES_DIR}/lint --output-on-failure
  -R "HistogramTest|MetricsRegistryTest|TraceTest|RunLogRecordTest|TracecatTest|GoldenRunTest|ChaosTest|ServingChaosTest|StopNetworkCacheTest|FleetTest"
  -j4)

# --- 2c: kernel determinism under both GARL_SIMD settings. ------------------
# The runtime flag is read once per process, so running the suite twice with
# the env var flipped covers both kernel bodies; the golden-run matrix test
# additionally A/Bs in-process. Byte-identical det payloads are the contract.
foreach(simd_setting 0 1)
  set(ENV{GARL_SIMD} ${simd_setting})
  garl_run_step("kernel determinism (GARL_SIMD=${simd_setting})"
    ${CMAKE_CTEST_COMMAND} --test-dir ${GATES_DIR}/lint --output-on-failure
    -R "SimdKernelTest|ArenaPoolTest|ArenaScratchTest|ArenaSteadyStateTest|ArenaStatsTest|GoldenRunTest"
    -j4)
endforeach()
unset(ENV{GARL_SIMD})

# --- 2d: bench harness smoke (1 rep; checks it runs and emits valid JSON). --
garl_run_step("bench_kernels smoke"
  ${GATES_DIR}/lint/bench/bench_kernels --reps 1
  --json ${GATES_DIR}/lint/BENCH_kernels_smoke.json)

# --- 2e: policy-serving smoke (1 rep; sync + async queue paths + JSON). -----
garl_run_step("bench_serving smoke"
  ${GATES_DIR}/lint/bench/bench_serving --reps 1 --requests 32
  --json ${GATES_DIR}/lint/BENCH_serving_smoke.json)

# --- 3: clang-tidy over the same build's compile commands. ------------------
garl_run_step("clang-tidy (skips loudly if unavailable)"
  ${CMAKE_COMMAND} -DSOURCE_DIR=${SOURCE_DIR} -DBUILD_DIR=${GATES_DIR}/lint
  -P ${SOURCE_DIR}/cmake/run_clang_tidy.cmake)

# --- 4: ASan/UBSan full test suite. -----------------------------------------
# "address,undefined" (comma form) survives CMake-list argument passing; the
# top-level CMakeLists accepts either separator.
garl_run_step("configure asan-ubsan tree"
  ${CMAKE_COMMAND} -S ${SOURCE_DIR} -B ${GATES_DIR}/asan-ubsan
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DGARL_SANITIZE=address,undefined)
garl_run_step("build asan-ubsan tree"
  ${CMAKE_COMMAND} --build ${GATES_DIR}/asan-ubsan -j)
set(ENV{ASAN_OPTIONS} "halt_on_error=1:detect_leaks=1")
set(ENV{UBSAN_OPTIONS} "halt_on_error=1:print_stacktrace=1")
garl_run_step("ASan/UBSan test suite"
  ${CMAKE_CTEST_COMMAND} --test-dir ${GATES_DIR}/asan-ubsan
  --output-on-failure -j4)

# --- 5: TSan concurrency tests (reuses the tier-1 TSan recipe). -------------
garl_run_step("TSan concurrency tests"
  ${CMAKE_COMMAND} -DSOURCE_DIR=${SOURCE_DIR} -DBINARY_DIR=${GATES_DIR}/tsan
  -P ${SOURCE_DIR}/cmake/run_tsan_tests.cmake)

message(STATUS "=== all gates green ===")
