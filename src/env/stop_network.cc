#include "env/stop_network.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"

namespace garl::env {

namespace {

// Intersection parameter pair (t on ab, u on cd) for proper or touching
// segment intersections; returns false when parallel/disjoint.
bool SegmentIntersection(const Vec2& a, const Vec2& b, const Vec2& c,
                         const Vec2& d, double* t_out, double* u_out) {
  double rx = b.x - a.x, ry = b.y - a.y;
  double sx = d.x - c.x, sy = d.y - c.y;
  double denom = rx * sy - ry * sx;
  if (std::fabs(denom) < 1e-12) return false;  // parallel
  double qpx = c.x - a.x, qpy = c.y - a.y;
  double t = (qpx * sy - qpy * sx) / denom;
  double u = (qpx * ry - qpy * rx) / denom;
  if (t < -1e-9 || t > 1.0 + 1e-9 || u < -1e-9 || u > 1.0 + 1e-9) {
    return false;
  }
  *t_out = std::clamp(t, 0.0, 1.0);
  *u_out = std::clamp(u, 0.0, 1.0);
  return true;
}

// Node id pool keyed by rounded coordinates so coincident points from
// different roads merge into one stop.
class NodePool {
 public:
  int64_t GetOrAdd(const Vec2& p, std::vector<Vec2>& positions) {
    auto key = std::make_pair(std::llround(p.x * 2.0),
                              std::llround(p.y * 2.0));
    auto [it, inserted] = ids_.try_emplace(key, -1);
    if (inserted) {
      it->second = static_cast<int64_t>(positions.size());
      positions.push_back(p);
    }
    return it->second;
  }

 private:
  std::map<std::pair<long long, long long>, int64_t> ids_;
};

}  // namespace

const graph::ShortestPaths& StopNetwork::PathsFrom(int64_t source) const {
  GARL_CHECK_GE(source, 0);
  GARL_CHECK_LT(source, num_stops());
  if (route_cache_.size() != static_cast<size_t>(num_stops())) {
    route_cache_.assign(static_cast<size_t>(num_stops()), std::nullopt);
  }
  std::optional<graph::ShortestPaths>& entry =
      route_cache_[static_cast<size_t>(source)];
  if (entry.has_value()) {
    ++route_cache_hits_;
  } else {
    entry = graph::Dijkstra(graph, source);
    ++route_cache_misses_;
  }
  return *entry;
}

void StopNetwork::InvalidateRouteCache() {
  route_cache_.clear();
  route_cache_hits_ = 0;
  route_cache_misses_ = 0;
}

int64_t StopNetwork::NearestStop(const Vec2& p) const {
  GARL_CHECK(!positions.empty());
  int64_t best = 0;
  double best_dist = Distance(p, positions[0]);
  for (int64_t i = 1; i < num_stops(); ++i) {
    double d = Distance(p, positions[static_cast<size_t>(i)]);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

StopNetwork BuildStopNetwork(const CampusSpec& campus, double spacing) {
  GARL_CHECK_GT(spacing, 0.0);
  const auto& roads = campus.roads;

  // 1. Split every road at its intersections with other roads.
  std::vector<std::vector<double>> cut_params(roads.size());
  for (size_t i = 0; i < roads.size(); ++i) {
    cut_params[i] = {0.0, 1.0};
  }
  for (size_t i = 0; i < roads.size(); ++i) {
    for (size_t j = i + 1; j < roads.size(); ++j) {
      double t, u;
      if (SegmentIntersection(roads[i].a, roads[i].b, roads[j].a, roads[j].b,
                              &t, &u)) {
        cut_params[i].push_back(t);
        cut_params[j].push_back(u);
      }
    }
  }

  // 2. Place stops along each sub-segment at roughly `spacing` intervals.
  std::vector<Vec2> positions;
  NodePool pool;
  std::vector<std::pair<int64_t, int64_t>> edges;
  for (size_t i = 0; i < roads.size(); ++i) {
    auto& params = cut_params[i];
    std::sort(params.begin(), params.end());
    Vec2 a = roads[i].a, b = roads[i].b;
    Vec2 dir = b - a;
    for (size_t k = 0; k + 1 < params.size(); ++k) {
      double t0 = params[k], t1 = params[k + 1];
      Vec2 p0 = a + dir * t0;
      Vec2 p1 = a + dir * t1;
      double len = Distance(p0, p1);
      if (len < 1.0) continue;  // coincident cuts
      int n = std::max(1, static_cast<int>(std::lround(len / spacing)));
      int64_t prev = pool.GetOrAdd(p0, positions);
      for (int s = 1; s <= n; ++s) {
        Vec2 p = p0 + (p1 - p0) * (static_cast<double>(s) / n);
        int64_t node = pool.GetOrAdd(p, positions);
        if (node != prev) edges.emplace_back(prev, node);
        prev = node;
      }
    }
  }

  // 3. Assemble the graph.
  StopNetwork network;
  network.positions = positions;
  network.graph = graph::Graph(static_cast<int64_t>(positions.size()));
  for (auto [u, v] : edges) {
    if (!network.graph.HasEdge(u, v)) {
      double w = Distance(positions[static_cast<size_t>(u)],
                          positions[static_cast<size_t>(v)]);
      network.graph.AddEdge(u, v, std::max(w, 0.5));
    }
  }
  // The graph was just (re)built; any memoized routes are stale.
  network.InvalidateRouteCache();
  return network;
}

}  // namespace garl::env
