#include "env/world.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "env/metrics.h"
#include "graph/shortest_path.h"

namespace garl::env {

World::World(CampusSpec campus, WorldParams params)
    : campus_(std::move(campus)), params_(std::move(params)) {
  GARL_CHECK_GT(params_.num_ugvs, 0);
  GARL_CHECK_GT(params_.uavs_per_ugv, 0);
  GARL_CHECK_GT(params_.horizon, 0);
  stops_ = BuildStopNetwork(campus_, params_.stop_spacing);
  GARL_CHECK_GT(stops_.num_stops(), 1);

  int64_t num_stops = stops_.num_stops();
  hop_table_.reserve(static_cast<size_t>(num_stops));
  for (int64_t b = 0; b < num_stops; ++b) {
    hop_table_.push_back(graph::BfsHops(stops_.graph, b));
  }
  // One cached Dijkstra per source feeds both the distance table and the
  // routing table (previously two independent all-pairs sweeps).
  distance_table_.reserve(static_cast<size_t>(num_stops));
  next_hop_.reserve(static_cast<size_t>(num_stops));
  for (int64_t b = 0; b < num_stops; ++b) {
    const graph::ShortestPaths& paths = stops_.PathsFrom(b);
    distance_table_.push_back(paths.dist);
    next_hop_.push_back(graph::NextHopsFromPaths(paths, b));
  }

  // Sensor coverage per stop.
  stop_cover_.assign(static_cast<size_t>(num_stops), {});
  for (int64_t b = 0; b < num_stops; ++b) {
    for (size_t p = 0; p < campus_.sensors.size(); ++p) {
      if (Distance(stops_.positions[static_cast<size_t>(b)],
                   campus_.sensors[p].position) <=
          params_.stop_coverage_radius) {
        stop_cover_[static_cast<size_t>(b)].push_back(
            static_cast<int64_t>(p));
      }
    }
  }
  Reset(/*seed=*/0);
  // Normalization constant: the densest stop at episode start.
  max_stop_data_ = 1.0;
  for (double d : stop_data_) max_stop_data_ = std::max(max_stop_data_, d);
}

void World::Reset(uint64_t seed) {
  (void)seed;  // dynamics are currently deterministic given actions
  slot_ = 0;
  slot_faults_ = SlotFaults{};
  releases_ = 0;
  effective_releases_ = 0;
  energy_consumed_kj_ = 0.0;
  energy_charged_kj_ = 0.0;

  sensors_.clear();
  sensors_.reserve(campus_.sensors.size());
  for (const SensorSpec& s : campus_.sensors) {
    sensors_.push_back({s.position, s.initial_data_mb, s.initial_data_mb});
  }

  // All UGVs start at the stop nearest the campus centre (Section V-A).
  Vec2 centre{campus_.width / 2.0, campus_.height / 2.0};
  int64_t start = stops_.NearestStop(centre);
  ugvs_.assign(static_cast<size_t>(params_.num_ugvs), UgvState{});
  for (auto& ugv : ugvs_) {
    ugv.position = stops_.positions[static_cast<size_t>(start)];
    ugv.current_stop = start;
    ugv.target_stop = -1;
    ugv.release_left = 0;
    ugv.distance_traveled = 0.0;
  }

  uavs_.assign(static_cast<size_t>(num_uavs()), UavState{});
  for (int64_t v = 0; v < num_uavs(); ++v) {
    UavState& uav = uavs_[static_cast<size_t>(v)];
    uav.carrier = v / params_.uavs_per_ugv;
    uav.position = ugvs_[static_cast<size_t>(uav.carrier)].position;
    uav.energy_kj = params_.uav_energy_kj;
    uav.airborne = false;
    uav.flight_collected_mb = 0.0;
    uav.distance_flown = 0.0;
  }

  RecomputeStopData();
  int64_t num_stops = stops_.num_stops();
  last_seen_data_.assign(static_cast<size_t>(params_.num_ugvs),
                         std::vector<double>(num_stops, 0.0));
  seen_.assign(static_cast<size_t>(params_.num_ugvs),
               std::vector<bool>(num_stops, false));
  last_seen_slot_.assign(static_cast<size_t>(params_.num_ugvs),
                         std::vector<int64_t>(num_stops, -1));
  RefreshUgvKnowledge();

  ugv_trace_.assign(static_cast<size_t>(params_.num_ugvs), {});
  uav_trace_.assign(static_cast<size_t>(num_uavs()), {});
}

void World::RecomputeStopData() {
  stop_data_.assign(static_cast<size_t>(stops_.num_stops()), 0.0);
  for (int64_t b = 0; b < stops_.num_stops(); ++b) {
    for (int64_t p : stop_cover_[static_cast<size_t>(b)]) {
      stop_data_[static_cast<size_t>(b)] +=
          sensors_[static_cast<size_t>(p)].remaining_mb;
    }
  }
}

void World::RefreshUgvKnowledge() {
  // A UGV (or any of its airborne UAVs) "approaches" a stop node when it
  // comes within the stop coverage radius; the node's current data value is
  // then recorded in the UGV's private view (Eq. 9b).
  for (int64_t u = 0; u < params_.num_ugvs; ++u) {
    auto refresh_near = [&](const Vec2& pos) {
      for (int64_t b = 0; b < stops_.num_stops(); ++b) {
        if (Distance(pos, stops_.positions[static_cast<size_t>(b)]) <=
            params_.stop_coverage_radius) {
          last_seen_data_[static_cast<size_t>(u)][static_cast<size_t>(b)] =
              stop_data_[static_cast<size_t>(b)];
          seen_[static_cast<size_t>(u)][static_cast<size_t>(b)] = true;
          last_seen_slot_[static_cast<size_t>(u)][static_cast<size_t>(b)] =
              slot_;
        }
      }
    };
    refresh_near(ugvs_[static_cast<size_t>(u)].position);
    for (int64_t v = u * params_.uavs_per_ugv;
         v < (u + 1) * params_.uavs_per_ugv; ++v) {
      if (uavs_[static_cast<size_t>(v)].airborne) {
        refresh_near(uavs_[static_cast<size_t>(v)].position);
      }
    }
  }
}

void World::SetSlotFaults(SlotFaults faults) {
  if (!faults.ugv_stalled.empty()) {
    GARL_CHECK_EQ(static_cast<int64_t>(faults.ugv_stalled.size()),
                  params_.num_ugvs);
  }
  if (!faults.comm_blocked.empty()) {
    GARL_CHECK_EQ(static_cast<int64_t>(faults.comm_blocked.size()),
                  params_.num_ugvs * params_.num_ugvs);
  }
  if (!faults.sensor_gain.empty()) {
    GARL_CHECK_EQ(faults.sensor_gain.size(), sensors_.size());
  }
  slot_faults_ = std::move(faults);
}

bool World::IsUgvStalled(int64_t u) const {
  return !slot_faults_.ugv_stalled.empty() &&
         slot_faults_.ugv_stalled[static_cast<size_t>(u)] != 0;
}

bool World::UgvNeedsAction(int64_t u) const {
  GARL_CHECK_GE(u, 0);
  GARL_CHECK_LT(u, params_.num_ugvs);
  // A stalled UGV does not accept an action, so the policy never samples
  // (or draws RNG) for it — freezing must not shift anyone's streams.
  return ugvs_[static_cast<size_t>(u)].release_left == 0 && !IsUgvStalled(u);
}

bool World::UavAirborne(int64_t v) const {
  GARL_CHECK_GE(v, 0);
  GARL_CHECK_LT(v, num_uavs());
  return uavs_[static_cast<size_t>(v)].airborne;
}

void World::MoveUgv(int64_t u, int64_t target, double budget) {
  UgvState& ugv = ugvs_[static_cast<size_t>(u)];
  if (target < 0 || target >= stops_.num_stops()) return;
  ugv.target_stop = target;
  while (budget > 0.0 && ugv.current_stop != target) {
    int64_t next =
        next_hop_[static_cast<size_t>(ugv.current_stop)]
                 [static_cast<size_t>(target)];
    if (next < 0) break;  // unreachable target: stay
    double edge = Distance(stops_.positions[static_cast<size_t>(
                               ugv.current_stop)],
                           stops_.positions[static_cast<size_t>(next)]);
    if (edge > budget) break;  // cannot finish the hop this slot
    budget -= edge;
    ugv.distance_traveled += edge;
    ugv.current_stop = next;
    ugv.position = stops_.positions[static_cast<size_t>(next)];
  }
  if (ugv.current_stop == target) ugv.target_stop = -1;
}

void World::FailUav(int64_t v) {
  UavState& uav = uavs_[static_cast<size_t>(v)];
  if (uav.failed) return;
  uav.failed = true;
  if (uav.airborne) {
    // Crash-lands where it is: no recharge, no effective-release credit,
    // and the flight's collected payload is lost with the airframe (zeta
    // feels the failure through the wasted release).
    uav.airborne = false;
    uav.flight_collected_mb = 0.0;
  }
}

void World::LandUav(int64_t v) {
  UavState& uav = uavs_[static_cast<size_t>(v)];
  if (!uav.airborne) return;
  uav.airborne = false;
  uav.position = ugvs_[static_cast<size_t>(uav.carrier)].position;
  if (uav.flight_collected_mb > 0.0) ++effective_releases_;
  // Recharge to e_0 (Section III-A); the charged amount feeds beta (Eq. 6).
  double charged = params_.uav_energy_kj - uav.energy_kj;
  GARL_CHECK_GE(charged, -1e-9);
  energy_charged_kj_ += std::max(charged, 0.0);
  uav.energy_kj = params_.uav_energy_kj;
  uav.flight_collected_mb = 0.0;
}

StepResult World::Step(const std::vector<UgvAction>& ugv_actions,
                       const std::vector<UavAction>& uav_actions) {
  GARL_CHECK(!Done());
  GARL_CHECK_EQ(static_cast<int64_t>(ugv_actions.size()), params_.num_ugvs);
  GARL_CHECK_EQ(static_cast<int64_t>(uav_actions.size()), num_uavs());

  StepResult result;
  result.ugv_rewards.assign(static_cast<size_t>(params_.num_ugvs), 0.0);
  result.uav_rewards.assign(static_cast<size_t>(num_uavs()), 0.0);

  std::vector<double> uav_collected(static_cast<size_t>(num_uavs()), 0.0);
  std::vector<double> uav_spent(static_cast<size_t>(num_uavs()), 0.0);
  std::vector<bool> uav_blocked(static_cast<size_t>(num_uavs()), false);

  // 0. Injected UAV dropouts land before decisions, so a release in the
  // same slot lifts only the survivors.
  for (int64_t v : slot_faults_.uav_dropouts) {
    GARL_CHECK_GE(v, 0);
    GARL_CHECK_LT(v, num_uavs());
    FailUav(v);
  }
  // Re-dispatch: surviving coalition members absorb a failed peer's share
  // of the collection work — their collect rate scales by squad size over
  // survivors. Computed only when a failure exists, so the fault-free path
  // stays bitwise identical.
  bool any_failed = false;
  for (const UavState& uav : uavs_) any_failed = any_failed || uav.failed;
  std::vector<double> collect_boost;
  if (any_failed) {
    collect_boost.assign(static_cast<size_t>(params_.num_ugvs), 1.0);
    for (int64_t u = 0; u < params_.num_ugvs; ++u) {
      int64_t alive = 0;
      for (int64_t v = u * params_.uavs_per_ugv;
           v < (u + 1) * params_.uavs_per_ugv; ++v) {
        if (!uavs_[static_cast<size_t>(v)].failed) ++alive;
      }
      if (alive > 0) {
        collect_boost[static_cast<size_t>(u)] =
            static_cast<double>(params_.uavs_per_ugv) /
            static_cast<double>(alive);
      }
    }
  }

  // 1. UGV decisions.
  for (int64_t u = 0; u < params_.num_ugvs; ++u) {
    UgvState& ugv = ugvs_[static_cast<size_t>(u)];
    if (ugv.release_left > 0) continue;  // waiting for its UAVs
    if (IsUgvStalled(u)) continue;       // frozen: neither releases nor moves
    const UgvAction& action = ugv_actions[static_cast<size_t>(u)];
    if (action.release) {
      ugv.release_left = params_.release_slots;
      ugv.target_stop = -1;
      for (int64_t v = u * params_.uavs_per_ugv;
           v < (u + 1) * params_.uavs_per_ugv; ++v) {
        UavState& uav = uavs_[static_cast<size_t>(v)];
        if (uav.failed) continue;  // zero survivors ⇒ an empty window
        uav.airborne = true;
        uav.position = ugv.position;
        uav.flight_collected_mb = 0.0;
        ++releases_;
      }
    } else {
      MoveUgv(u, action.target_stop, params_.ugv_max_dist);
    }
  }

  // 2. UAV flight + sensing.
  for (int64_t v = 0; v < num_uavs(); ++v) {
    UavState& uav = uavs_[static_cast<size_t>(v)];
    if (!uav.airborne) continue;
    const UavAction& action = uav_actions[static_cast<size_t>(v)];
    Vec2 desired{uav.position.x + action.dx, uav.position.y + action.dy};
    desired = ClampToField(desired, campus_.width, campus_.height);
    bool blocked = false;
    Vec2 next = MoveWithObstacles(uav.position, desired,
                                  params_.uav_max_dist, campus_.buildings,
                                  &blocked);
    double dist = Distance(uav.position, next);
    // Battery cannot go negative: truncate the move if needed.
    double affordable = uav.energy_kj / params_.energy_per_meter;
    if (dist > affordable) {
      Vec2 dir = next - uav.position;
      next = uav.position + dir * (affordable / std::max(dist, 1e-9));
      dist = affordable;
    }
    uav.position = next;
    uav.distance_flown += dist;
    double spent = params_.energy_per_meter * dist;
    uav.energy_kj -= spent;
    energy_consumed_kj_ += spent;

    // Sensing (Eq. Delta d): every in-range sensor yields up to the rate,
    // scaled by the coalition re-dispatch boost and the per-sensor read
    // gain when faults are armed (both branches untaken fault-free).
    double rate = params_.collect_per_slot_mb;
    if (any_failed) rate *= collect_boost[static_cast<size_t>(uav.carrier)];
    double collected = 0.0;
    for (size_t p = 0; p < sensors_.size(); ++p) {
      SensorState& sensor = sensors_[p];
      if (sensor.remaining_mb <= 0.0) continue;
      if (Distance(uav.position, sensor.position) > params_.sense_range) {
        continue;
      }
      double sensor_rate = rate;
      if (!slot_faults_.sensor_gain.empty()) {
        sensor_rate *= slot_faults_.sensor_gain[p];
      }
      double take = std::min(sensor_rate, sensor.remaining_mb);
      sensor.remaining_mb -= take;
      collected += take;
    }
    uav.flight_collected_mb += collected;
    result.ugv_rewards[static_cast<size_t>(uav.carrier)] += collected;
    uav_collected[static_cast<size_t>(v)] = collected;
    uav_spent[static_cast<size_t>(v)] = spent;
    uav_blocked[static_cast<size_t>(v)] = blocked;

    if (uav.energy_kj <= 1e-9) LandUav(v);  // battery empty: forced return
  }

  // UAV rewards (Eq. 13): fairness-weighted collection per unit energy,
  // minus crash penalty. xi_t is evaluated at the end of the slot so the
  // first successful collection is rewarded too.
  double fairness_now = CurrentFairness();
  for (int64_t v = 0; v < num_uavs(); ++v) {
    double r_plus = 0.0;
    if (uav_collected[static_cast<size_t>(v)] > 0.0) {
      r_plus = std::clamp(
          fairness_now * (uav_collected[static_cast<size_t>(v)] / 1000.0) /
              (uav_spent[static_cast<size_t>(v)] + 1e-3),
          0.0, params_.uav_reward_clip);
    }
    double r_minus =
        uav_blocked[static_cast<size_t>(v)] ? -params_.crash_penalty : 0.0;
    result.uav_rewards[static_cast<size_t>(v)] = r_plus + r_minus;
  }

  // 3. Window bookkeeping.
  for (int64_t u = 0; u < params_.num_ugvs; ++u) {
    UgvState& ugv = ugvs_[static_cast<size_t>(u)];
    if (ugv.release_left > 0) {
      --ugv.release_left;
      if (ugv.release_left == 0) {
        for (int64_t v = u * params_.uavs_per_ugv;
             v < (u + 1) * params_.uavs_per_ugv; ++v) {
          LandUav(v);
        }
      }
    }
  }

  RecomputeStopData();
  RefreshUgvKnowledge();

  for (int64_t u = 0; u < params_.num_ugvs; ++u) {
    ugv_trace_[static_cast<size_t>(u)].push_back(
        ugvs_[static_cast<size_t>(u)].position);
  }
  for (int64_t v = 0; v < num_uavs(); ++v) {
    uav_trace_[static_cast<size_t>(v)].push_back(
        uavs_[static_cast<size_t>(v)].position);
  }

  ++slot_;
  slot_faults_ = SlotFaults{};  // faults are armed per slot, never carry over
  result.done = Done();
  return result;
}

double World::ObservedStopData(int64_t u, int64_t b) const {
  GARL_CHECK_GE(u, 0);
  GARL_CHECK_LT(u, params_.num_ugvs);
  GARL_CHECK_GE(b, 0);
  GARL_CHECK_LT(b, stops_.num_stops());
  if (!seen_[static_cast<size_t>(u)][static_cast<size_t>(b)]) {
    return params_.unseen_mask_mb;
  }
  return last_seen_data_[static_cast<size_t>(u)][static_cast<size_t>(b)];
}

UgvObservation World::ObserveUgv(int64_t u) const {
  GARL_CHECK_GE(u, 0);
  GARL_CHECK_LT(u, params_.num_ugvs);
  UgvObservation obs;
  obs.self = u;
  obs.current_stop = ugvs_[static_cast<size_t>(u)].current_stop;

  int64_t num_stops = stops_.num_stops();
  obs.stop_features = nn::Tensor::Zeros({num_stops, 3});
  auto& stop_data = obs.stop_features.mutable_data();
  for (int64_t b = 0; b < num_stops; ++b) {
    const Vec2& p = stops_.positions[static_cast<size_t>(b)];
    stop_data[b * 3 + 0] = static_cast<float>(p.x / campus_.width);
    stop_data[b * 3 + 1] = static_cast<float>(p.y / campus_.height);
    double observed = ObservedStopData(u, b);
    stop_data[b * 3 + 2] =
        observed < 0.0 ? -1.0f
                       : static_cast<float>(observed / max_stop_data_);
  }

  obs.ugv_positions = nn::Tensor::Zeros({params_.num_ugvs, 2});
  auto& ugv_pos = obs.ugv_positions.mutable_data();
  for (int64_t other = 0; other < params_.num_ugvs; ++other) {
    const UgvState& state = ugvs_[static_cast<size_t>(other)];
    ugv_pos[other * 2 + 0] = static_cast<float>(state.position.x /
                                                campus_.width);
    ugv_pos[other * 2 + 1] = static_cast<float>(state.position.y /
                                                campus_.height);
    obs.ugv_stops.push_back(state.current_stop);
    obs.ugv_positions_raw.push_back(state.position);
  }
  obs.stop_seen_slot = last_seen_slot_[static_cast<size_t>(u)];
  if (!slot_faults_.comm_blocked.empty()) {
    auto row = slot_faults_.comm_blocked.begin() + u * params_.num_ugvs;
    obs.comm_blocked.assign(row, row + params_.num_ugvs);
  }
  return obs;
}

UavObservation World::ObserveUav(int64_t v) const {
  GARL_CHECK_GE(v, 0);
  GARL_CHECK_LT(v, num_uavs());
  const UavState& uav = uavs_[static_cast<size_t>(v)];
  int64_t g = params_.obs_grid;
  double cell = params_.obs_cell_size;
  UavObservation obs;
  obs.grid = nn::Tensor::Zeros({3, g, g});
  auto& data = obs.grid.mutable_data();
  double half = g * cell / 2.0;
  Vec2 origin{uav.position.x - half, uav.position.y - half};

  auto cell_index = [&](int64_t c, int64_t iy, int64_t ix) {
    return (c * g + iy) * g + ix;
  };
  // Channel 0: obstacle occupancy (cell centre inside a building or outside
  // the field).
  Rect field{0.0, 0.0, campus_.width, campus_.height};
  for (int64_t iy = 0; iy < g; ++iy) {
    for (int64_t ix = 0; ix < g; ++ix) {
      Vec2 centre{origin.x + (ix + 0.5) * cell, origin.y + (iy + 0.5) * cell};
      bool obstacle = !field.Contains(centre);
      if (!obstacle) {
        for (const Rect& b : campus_.buildings) {
          if (b.Contains(centre)) {
            obstacle = true;
            break;
          }
        }
      }
      if (obstacle) data[cell_index(0, iy, ix)] = 1.0f;
    }
  }
  // Channel 1: normalized remaining sensor data per cell.
  double norm = std::max(1.0, params_.collect_per_slot_mb * 4.0);
  for (const SensorState& sensor : sensors_) {
    if (sensor.remaining_mb <= 0.0) continue;
    int64_t ix = static_cast<int64_t>((sensor.position.x - origin.x) / cell);
    int64_t iy = static_cast<int64_t>((sensor.position.y - origin.y) / cell);
    if (ix < 0 || ix >= g || iy < 0 || iy >= g) continue;
    data[cell_index(1, iy, ix)] +=
        static_cast<float>(sensor.remaining_mb / norm);
  }
  // Channel 2: carrier cell marker (enables homing behaviour).
  {
    const Vec2& carrier =
        ugvs_[static_cast<size_t>(uav.carrier)].position;
    int64_t ix = static_cast<int64_t>((carrier.x - origin.x) / cell);
    int64_t iy = static_cast<int64_t>((carrier.y - origin.y) / cell);
    if (ix >= 0 && ix < g && iy >= 0 && iy < g) {
      data[cell_index(2, iy, ix)] = 1.0f;
    }
  }
  obs.energy_fraction = uav.energy_kj / params_.uav_energy_kj;
  return obs;
}

double World::CurrentFairness() const { return Fairness(sensors_); }

EpisodeMetrics World::Metrics() const {
  double psi = DataCollectionRatio(sensors_);
  double xi = Fairness(sensors_);
  double zeta = CooperationFactor(releases_, effective_releases_);
  double initial = params_.uav_energy_kj * static_cast<double>(num_uavs());
  double beta = EnergyRatio(energy_consumed_kj_, initial,
                            energy_charged_kj_);
  return MakeMetrics(psi, xi, zeta, beta);
}

}  // namespace garl::env
