#include "env/campus_factory.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace garl::env {

namespace {

// True when `rect` (expanded by `margin`) stays clear of every road.
bool ClearOfRoads(const Rect& rect, double margin,
                  const std::vector<RoadSegment>& roads) {
  Rect expanded = rect.Expanded(margin);
  for (const RoadSegment& r : roads) {
    if (SegmentIntersectsRect(r.a, r.b, expanded)) return false;
  }
  return true;
}

bool ClearOfBuildings(const Rect& rect, double margin,
                      const std::vector<Rect>& buildings) {
  Rect expanded = rect.Expanded(margin);
  for (const Rect& b : buildings) {
    if (expanded.Intersects(b)) return false;
  }
  return true;
}

double DensityAt(const CampusGenOptions& options, const Vec2& p) {
  if (!options.density) return 1.0;
  return std::max(
      0.0, options.density(p.x / options.width, p.y / options.height));
}

void PlaceBuildings(const CampusGenOptions& options, Rng& rng,
                    CampusSpec& campus) {
  int placed = 0;
  int attempts = 0;
  const int max_attempts = options.num_buildings * 4000;
  while (placed < options.num_buildings) {
    GARL_CHECK_MSG(++attempts < max_attempts,
                   "could not place buildings; relax density/margins");
    double w = rng.Uniform(options.building_min, options.building_max);
    double h = rng.Uniform(options.building_min, options.building_max);
    double cx = rng.Uniform(w / 2 + 5.0, options.width - w / 2 - 5.0);
    double cy = rng.Uniform(h / 2 + 5.0, options.height - h / 2 - 5.0);
    // Thin out low-density areas by rejection.
    if (rng.Uniform(0.0, 1.0) > DensityAt(options, {cx, cy})) continue;
    Rect rect{cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2};
    if (!ClearOfRoads(rect, options.road_margin, campus.roads)) continue;
    if (!ClearOfBuildings(rect, 8.0, campus.buildings)) continue;
    campus.buildings.push_back(rect);
    ++placed;
  }
}

void PlaceSensors(const CampusGenOptions& options, Rng& rng,
                  CampusSpec& campus) {
  GARL_CHECK(!campus.buildings.empty());
  int placed = 0;
  int attempts = 0;
  const int max_attempts = options.num_sensors * 4000;
  while (placed < options.num_sensors) {
    GARL_CHECK_MSG(++attempts < max_attempts, "could not place sensors");
    const Rect& b = campus.buildings[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(campus.buildings.size()) - 1))];
    // Random point on the building perimeter, offset 3 m outward so that a
    // UAV can come within sensing range without entering the obstacle.
    const double offset = 3.0;
    int side = static_cast<int>(rng.UniformInt(0, 3));
    Vec2 p;
    switch (side) {
      case 0:  // south
        p = {rng.Uniform(b.x0, b.x1), b.y0 - offset};
        break;
      case 1:  // north
        p = {rng.Uniform(b.x0, b.x1), b.y1 + offset};
        break;
      case 2:  // west
        p = {b.x0 - offset, rng.Uniform(b.y0, b.y1)};
        break;
      default:  // east
        p = {b.x1 + offset, rng.Uniform(b.y0, b.y1)};
        break;
    }
    Rect field{0.0, 0.0, options.width, options.height};
    if (!field.Contains(p)) continue;
    bool inside_building = false;
    for (const Rect& other : campus.buildings) {
      if (other.Contains(p)) {
        inside_building = true;
        break;
      }
    }
    if (inside_building) continue;
    campus.sensors.push_back(
        {p, rng.Uniform(options.data_min_mb, options.data_max_mb)});
    ++placed;
  }
}

}  // namespace

CampusSpec GenerateGridCampus(const CampusGenOptions& options) {
  GARL_CHECK_GE(options.grid_x, 2);
  GARL_CHECK_GE(options.grid_y, 2);
  CampusSpec campus;
  campus.name = options.name;
  campus.width = options.width;
  campus.height = options.height;
  // Full-extent lattice roads.
  for (int i = 0; i < options.grid_x; ++i) {
    double x = options.width * (i + 0.5) / options.grid_x;
    campus.roads.push_back({{x, 0.0}, {x, options.height}});
  }
  for (int j = 0; j < options.grid_y; ++j) {
    double y = options.height * (j + 0.5) / options.grid_y;
    campus.roads.push_back({{0.0, y}, {options.width, y}});
  }
  Rng rng(options.seed);
  PlaceBuildings(options, rng, campus);
  PlaceSensors(options, rng, campus);
  return campus;
}

CampusSpec MakeKaistCampus(uint64_t seed) {
  CampusGenOptions options;
  options.name = "KAIST";
  options.width = 1539.63;
  options.height = 1433.37;
  options.grid_x = 6;
  options.grid_y = 6;
  options.num_buildings = 85;
  options.num_sensors = 138;
  options.seed = seed;
  // Campus buildings cluster into departmental quarters away from the
  // central plaza, giving the uneven sensory-data distribution the paper's
  // method is designed for (Sections I and IV-C motivate exactly this).
  options.density = [](double fx, double fy) {
    constexpr double kCenters[4][2] = {
        {0.22, 0.25}, {0.78, 0.30}, {0.25, 0.78}, {0.72, 0.75}};
    double density = 0.06;
    for (const auto& c : kCenters) {
      double dx = fx - c[0], dy = fy - c[1];
      density += std::exp(-(dx * dx + dy * dy) / (2 * 0.02));
    }
    return density;
  };
  return GenerateGridCampus(options);
}

CampusSpec MakeUclaCampus(uint64_t seed) {
  CampusSpec campus;
  campus.name = "UCLA";
  campus.width = 1675.36;
  campus.height = 1737.15;

  // West and east districts each get their own dense road lattice; a single
  // thin connector road joins them across the sparse centre (the paper's
  // Section V-D calls this out as the landscape feature that stresses
  // long-range carrier movement).
  const double w = campus.width;
  const double h = campus.height;
  const double west_end = 0.38 * w;
  const double east_start = 0.62 * w;
  auto add_lattice = [&campus, h](double x_lo, double x_hi, int nx, int ny) {
    for (int i = 0; i < nx; ++i) {
      double x = x_lo + (x_hi - x_lo) * (i + 0.5) / nx;
      campus.roads.push_back({{x, 0.0}, {x, h}});
    }
    for (int j = 0; j < ny; ++j) {
      double y = h * (j + 0.5) / ny;
      campus.roads.push_back({{x_lo, y}, {x_hi, y}});
    }
  };
  add_lattice(0.0, west_end, 3, 6);
  add_lattice(east_start, w, 3, 6);
  // Thin connector across the centre; it overlaps into both districts so
  // that it crosses (and therefore joins) a vertical road on each side.
  campus.roads.push_back({{0.30 * w, 0.5 * h}, {0.70 * w, 0.5 * h}});

  CampusGenOptions options;
  options.name = campus.name;
  options.width = campus.width;
  options.height = campus.height;
  options.num_buildings = 163;
  options.num_sensors = 236;
  options.seed = seed;
  options.density = [](double fx, double fy) {
    // Sparse centre (lawns); the only central buildings hug the connector
    // road so their sensors stay reachable. Dense east/west districts.
    if (fx > 0.39 && fx < 0.61) {
      return std::fabs(fy - 0.5) < 0.08 ? 0.25 : 0.0;
    }
    return 1.0;
  };
  Rng rng(options.seed);
  PlaceBuildings(options, rng, campus);
  PlaceSensors(options, rng, campus);
  return campus;
}

}  // namespace garl::env
