#ifndef GARL_ENV_STOP_NETWORK_H_
#define GARL_ENV_STOP_NETWORK_H_

#include <optional>
#include <vector>

#include "env/campus.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"

// Builds the UGV stop graph G = {B, E} from a campus's road polylines:
// virtual stop nodes are placed at regular intervals along the roads and
// connected by road connectivity (Section III-A). Road crossings become
// shared stop nodes so the graph is connected wherever the roads are.

namespace garl::env {

struct StopNetwork {
  graph::Graph graph{0};
  std::vector<Vec2> positions;  // one per node

  int64_t num_stops() const { return graph.num_nodes(); }

  // Nearest stop node to `p` (euclidean).
  int64_t NearestStop(const Vec2& p) const;

  // Memoized single-source shortest paths over the (static) stop graph:
  // Dijkstra runs at most once per source, repeated queries return the
  // cached result. The cache is lazy (first query per source pays the
  // sweep) and must be cleared with InvalidateRouteCache() whenever `graph`
  // is rebuilt or mutated. Not safe for concurrent first-queries on the
  // same instance — parallel rollout workers each own a World copy, so
  // their caches are private.
  const graph::ShortestPaths& PathsFrom(int64_t source) const;
  void InvalidateRouteCache();

  // Cache instrumentation for tests.
  int64_t route_cache_hits() const { return route_cache_hits_; }
  int64_t route_cache_misses() const { return route_cache_misses_; }

 private:
  mutable std::vector<std::optional<graph::ShortestPaths>> route_cache_;
  mutable int64_t route_cache_hits_ = 0;
  mutable int64_t route_cache_misses_ = 0;
};

// `spacing` is the target stop interval in meters (100 m in the paper).
StopNetwork BuildStopNetwork(const CampusSpec& campus, double spacing);

}  // namespace garl::env

#endif  // GARL_ENV_STOP_NETWORK_H_
