#ifndef GARL_ENV_STOP_NETWORK_H_
#define GARL_ENV_STOP_NETWORK_H_

#include <vector>

#include "env/campus.h"
#include "graph/graph.h"

// Builds the UGV stop graph G = {B, E} from a campus's road polylines:
// virtual stop nodes are placed at regular intervals along the roads and
// connected by road connectivity (Section III-A). Road crossings become
// shared stop nodes so the graph is connected wherever the roads are.

namespace garl::env {

struct StopNetwork {
  graph::Graph graph{0};
  std::vector<Vec2> positions;  // one per node

  int64_t num_stops() const { return graph.num_nodes(); }

  // Nearest stop node to `p` (euclidean).
  int64_t NearestStop(const Vec2& p) const;
};

// `spacing` is the target stop interval in meters (100 m in the paper).
StopNetwork BuildStopNetwork(const CampusSpec& campus, double spacing);

}  // namespace garl::env

#endif  // GARL_ENV_STOP_NETWORK_H_
