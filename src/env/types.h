#ifndef GARL_ENV_TYPES_H_
#define GARL_ENV_TYPES_H_

#include <cstdint>
#include <vector>

#include "env/geometry.h"
#include "nn/tensor.h"

// Shared value types of the air-ground SC Dec-POMDP.

namespace garl::env {

// Physical and task constants (defaults follow Section V-A verbatim).
struct WorldParams {
  int64_t num_ugvs = 4;        // U
  int64_t uavs_per_ugv = 2;    // V'
  int64_t horizon = 120;       // T, slots (30 s each)
  double ugv_max_dist = 400.0;  // m per slot (48 km/h)
  double uav_max_dist = 100.0;  // m per slot (12 km/h)
  double sense_range = 60.0;    // m
  double collect_per_slot_mb = 625.0;  // 166.7 Mbps * 30 s
  double uav_energy_kj = 10.0;         // e_0
  double energy_per_meter = 0.01;      // eta, kJ/m
  int64_t release_slots = 5;           // t_rls
  double stop_spacing = 100.0;         // m
  // Radius (m) within which released UAVs can harvest around a stop; also
  // the per-stop data aggregation radius for d_t^b in Eq. (8).
  double stop_coverage_radius = 150.0;
  // Mask constant for never-observed stop data (Eq. 9b).
  double unseen_mask_mb = -1.0;
  // Communication neighborhood radius N(u), meters.
  double neighbor_radius = 600.0;
  // UAV local observation: grid*grid cells of cell_size meters (Eq. 11).
  int64_t obs_grid = 15;
  double obs_cell_size = 16.0;
  // UAV crash penalty r^{v-}.
  double crash_penalty = 0.2;
  // Reward clip ceiling epsilon_3 in Eq. (13a).
  double uav_reward_clip = 5.0;
};

struct UgvAction {
  bool release = false;   // omega
  int64_t target_stop = -1;  // b_tar (ignored when release=true)
};

struct UavAction {
  double dx = 0.0;  // desired displacement, clipped to uav_max_dist
  double dy = 0.0;
};

struct UgvState {
  Vec2 position;
  int64_t current_stop = 0;   // b_t^u (nearest/occupied stop node)
  int64_t target_stop = -1;   // -1: idle
  int64_t release_left = 0;   // >0: waiting for its UAVs
  double distance_traveled = 0.0;
};

struct UavState {
  Vec2 position;
  double energy_kj = 0.0;
  bool airborne = false;
  int64_t carrier = 0;  // owning UGV index
  double flight_collected_mb = 0.0;  // within the current release window
  double distance_flown = 0.0;
  // Hardware failure (injected fault): the airframe crash-landed where it
  // was and never flies again this episode.
  bool failed = false;
};

struct SensorState {
  Vec2 position;
  double initial_mb = 0.0;
  double remaining_mb = 0.0;
};

// Per-UGV observation o_t^u (Eq. 9-10): masked stop features and all UGV
// positions, plus derived helpers used by the policies.
struct UgvObservation {
  int64_t self = 0;
  int64_t current_stop = 0;
  // [B, 3]: x, y (normalized to [0,1]), masked data estimate (normalized).
  nn::Tensor stop_features;
  // [U, 2]: normalized UGV positions.
  nn::Tensor ugv_positions;
  // Current stop node of every UGV (b_t^u for all u).
  std::vector<int64_t> ugv_stops;
  // Raw (meter) positions of every UGV.
  std::vector<Vec2> ugv_positions_raw;
  // Slot at which each stop's data value was last refreshed (-1 = never
  // approached). Eq. 9b masks with the *newest* information, so recency is
  // part of the observation semantics.
  std::vector<int64_t> stop_seen_slot;
  // This UGV's row of the comm-blackout mask ([U]; nonzero = the link to
  // that UGV carries no message this slot). Empty when no blackout is
  // active, which is also the only state the fault-free path ever sees.
  std::vector<uint8_t> comm_blocked;
};

// Faults injected into one slot (produced by src/sim/faults.*; the env layer
// only consumes them so it stays independent of the scheduler). All vectors
// may be empty, meaning "no fault of that class this slot" — a
// default-constructed SlotFaults is the fault-free slot.
struct SlotFaults {
  // UAV indices whose airframe fails this slot (permanent for the episode).
  std::vector<int64_t> uav_dropouts;
  // [U] flags; nonzero = the UGV is stalled and neither acts nor moves.
  std::vector<uint8_t> ugv_stalled;
  // [U*U] row-major symmetric link mask; nonzero = blacked-out link.
  std::vector<uint8_t> comm_blocked;
  // [P] per-sensor read gain: 1.0 = healthy, 0.0 = read failure, values in
  // between = degraded/noisy read.
  std::vector<double> sensor_gain;

  bool Empty() const {
    return uav_dropouts.empty() && ugv_stalled.empty() &&
           comm_blocked.empty() && sensor_gain.empty();
  }
};

// Per-UAV observation o_t^v (Eq. 11): [C, G, G] local crop channels =
// {obstacle occupancy, normalized sensor data, carrier direction}.
struct UavObservation {
  nn::Tensor grid;            // [3, G, G]
  double energy_fraction = 0.0;
};

// Task-level evaluation metrics (Eq. 3-7).
struct EpisodeMetrics {
  double data_collection_ratio = 0.0;  // psi
  double fairness = 0.0;               // xi
  double cooperation_factor = 0.0;     // zeta
  double energy_ratio = 0.0;           // beta
  double efficiency = 0.0;             // lambda
};

// Per-slot step outcome.
struct StepResult {
  std::vector<double> ugv_rewards;  // [U]
  std::vector<double> uav_rewards;  // [V]
  bool done = false;
};

}  // namespace garl::env

#endif  // GARL_ENV_TYPES_H_
