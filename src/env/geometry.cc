#include "env/geometry.h"

#include <algorithm>

#include "common/check.h"

namespace garl::env {

bool operator==(const Vec2& a, const Vec2& b) {
  return a.x == b.x && a.y == b.y;
}

namespace {

// Liang-Barsky clipping: returns the parameter t in [0,1] at which the
// segment a + t*(b-a) first enters the rectangle, or a negative value when
// it never does.
double EntryParameter(const Vec2& a, const Vec2& b, const Rect& rect) {
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double t_enter = 0.0;
  double t_exit = 1.0;
  auto clip = [&](double p, double q) {
    // Moving in direction p; boundary offset q.
    if (p == 0.0) return q >= 0.0;  // parallel: inside iff q >= 0
    double t = q / p;
    if (p < 0.0) {
      if (t > t_exit) return false;
      t_enter = std::max(t_enter, t);
    } else {
      if (t < t_enter) return false;
      t_exit = std::min(t_exit, t);
    }
    return true;
  };
  if (!clip(-dx, a.x - rect.x0)) return -1.0;
  if (!clip(dx, rect.x1 - a.x)) return -1.0;
  if (!clip(-dy, a.y - rect.y0)) return -1.0;
  if (!clip(dy, rect.y1 - a.y)) return -1.0;
  if (t_enter > t_exit) return -1.0;
  return t_enter;
}

}  // namespace

bool SegmentIntersectsRect(const Vec2& a, const Vec2& b, const Rect& rect) {
  if (rect.Contains(a) || rect.Contains(b)) return true;
  return EntryParameter(a, b, rect) >= 0.0;
}

Vec2 MoveWithObstacles(const Vec2& from, const Vec2& to, double max_dist,
                       const std::vector<Rect>& obstacles, bool* blocked) {
  GARL_CHECK_GE(max_dist, 0.0);
  if (blocked != nullptr) *blocked = false;
  Vec2 delta = to - from;
  double dist = delta.Norm();
  Vec2 target = to;
  if (dist > max_dist && dist > 0.0) {
    target = from + delta * (max_dist / dist);
  }
  // Find the earliest obstacle entry along from->target.
  double first_t = 2.0;
  for (const Rect& rect : obstacles) {
    if (rect.Contains(from)) {
      // Already inside (should not happen in normal dynamics): stay put.
      if (blocked != nullptr) *blocked = true;
      return from;
    }
    double t = EntryParameter(from, target, rect);
    if (t >= 0.0 && t < first_t) first_t = t;
  }
  if (first_t > 1.0) return target;  // clear path
  if (blocked != nullptr) *blocked = true;
  // Stop 0.5 m before the obstacle boundary.
  Vec2 step = target - from;
  double step_len = step.Norm();
  if (step_len <= 1e-9) return from;
  double stop_len = std::max(0.0, first_t * step_len - 0.5);
  return from + step * (stop_len / step_len);
}

Vec2 ClampToField(const Vec2& p, double width, double height) {
  return {std::clamp(p.x, 0.0, width), std::clamp(p.y, 0.0, height)};
}

}  // namespace garl::env
