#ifndef GARL_ENV_RENDER_H_
#define GARL_ENV_RENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "env/campus.h"
#include "env/stop_network.h"

// SVG rendering of campuses and vehicle trajectories (used by the Fig. 7
// harness and handy for debugging new campuses).

namespace garl::env {

struct RenderOptions {
  double scale = 0.4;        // pixels per meter
  bool draw_stops = true;
  bool draw_sensors = true;
  // Per-UGV trace colors are cycled from a fixed palette.
};

// Renders the static campus (roads, buildings, sensors, stops).
std::string RenderCampusSvg(const CampusSpec& campus,
                            const StopNetwork* stops,
                            const RenderOptions& options = RenderOptions());

// Renders the campus plus per-vehicle polyline traces. `ugv_traces` and
// `uav_traces` are position logs (one point per slot), as produced by
// World::ugv_trace()/uav_trace().
std::string RenderTracesSvg(const CampusSpec& campus,
                            const StopNetwork* stops,
                            const std::vector<std::vector<Vec2>>& ugv_traces,
                            const std::vector<std::vector<Vec2>>& uav_traces,
                            const RenderOptions& options = RenderOptions());

// Writes `svg` to `path`, creating parent directories.
[[nodiscard]] Status WriteSvg(const std::string& svg, const std::string& path);

}  // namespace garl::env

#endif  // GARL_ENV_RENDER_H_
