#ifndef GARL_ENV_GEOMETRY_H_
#define GARL_ENV_GEOMETRY_H_

#include <cmath>
#include <vector>

// 2-D geometric primitives for the campus simulation.

namespace garl::env {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double Norm() const { return std::hypot(x, y); }
};

inline double Distance(const Vec2& a, const Vec2& b) {
  return (a - b).Norm();
}

bool operator==(const Vec2& a, const Vec2& b);

// Axis-aligned rectangle (building footprint), corners (x0,y0)-(x1,y1).
struct Rect {
  double x0, y0, x1, y1;

  double Width() const { return x1 - x0; }
  double Height() const { return y1 - y0; }
  Vec2 Center() const { return {(x0 + x1) / 2.0, (y0 + y1) / 2.0}; }
  bool Contains(const Vec2& p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  // Expands the rectangle by `margin` on every side.
  Rect Expanded(double margin) const {
    return {x0 - margin, y0 - margin, x1 + margin, y1 + margin};
  }
  bool Intersects(const Rect& o) const {
    return x0 <= o.x1 && o.x0 <= x1 && y0 <= o.y1 && o.y0 <= y1;
  }
};

// True when segment a-b crosses (enters) `rect`.
bool SegmentIntersectsRect(const Vec2& a, const Vec2& b, const Rect& rect);

// Moves from `from` toward `to` by at most `max_dist`; if the direct segment
// would enter any rectangle in `obstacles`, the move is truncated just
// before the first obstacle boundary and `*blocked` (if non-null) is set.
Vec2 MoveWithObstacles(const Vec2& from, const Vec2& to, double max_dist,
                       const std::vector<Rect>& obstacles, bool* blocked);

// Clamps `p` into the [0,w]x[0,h] field.
Vec2 ClampToField(const Vec2& p, double width, double height);

}  // namespace garl::env

#endif  // GARL_ENV_GEOMETRY_H_
