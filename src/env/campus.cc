#include "env/campus.h"

#include <algorithm>

#include "common/string_util.h"

namespace garl::env {

namespace {

// Distance from point p to segment ab.
double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b) {
  Vec2 ab = b - a;
  double len_sq = ab.x * ab.x + ab.y * ab.y;
  if (len_sq <= 1e-12) return Distance(p, a);
  double t = ((p.x - a.x) * ab.x + (p.y - a.y) * ab.y) / len_sq;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, a + ab * t);
}

}  // namespace

Status ValidateCampus(const CampusSpec& campus, double reach) {
  if (campus.width <= 0.0 || campus.height <= 0.0) {
    return InvalidArgumentError("campus extent must be positive");
  }
  if (campus.roads.empty()) {
    return InvalidArgumentError("campus has no roads");
  }
  Rect field{0.0, 0.0, campus.width, campus.height};
  for (size_t i = 0; i < campus.sensors.size(); ++i) {
    const SensorSpec& s = campus.sensors[i];
    if (!field.Contains(s.position)) {
      return InvalidArgumentError(
          StrPrintf("sensor %zu outside field", i));
    }
    if (s.initial_data_mb <= 0.0) {
      return InvalidArgumentError(
          StrPrintf("sensor %zu has non-positive data", i));
    }
    double nearest = 1e18;
    for (const RoadSegment& r : campus.roads) {
      nearest = std::min(nearest, PointSegmentDistance(s.position, r.a, r.b));
    }
    if (nearest > reach) {
      return InvalidArgumentError(StrPrintf(
          "sensor %zu is %.0f m from the nearest road (reach %.0f m)", i,
          nearest, reach));
    }
  }
  for (size_t i = 0; i < campus.roads.size(); ++i) {
    const RoadSegment& r = campus.roads[i];
    for (size_t j = 0; j < campus.buildings.size(); ++j) {
      if (SegmentIntersectsRect(r.a, r.b, campus.buildings[j])) {
        return InvalidArgumentError(
            StrPrintf("road %zu crosses building %zu", i, j));
      }
    }
  }
  return Status::Ok();
}

}  // namespace garl::env
