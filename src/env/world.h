#ifndef GARL_ENV_WORLD_H_
#define GARL_ENV_WORLD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "env/campus.h"
#include "env/stop_network.h"
#include "env/types.h"

// The air-ground spatial-crowdsourcing Dec-POMDP (Section III).
//
// Per 30 s slot:
//  * A UGV that is not hosting a release window either starts one (its
//    UAVs take off for `release_slots` slots and the UGV waits, Eq. 12) or
//    moves up to `ugv_max_dist` along shortest road paths toward its chosen
//    target stop.
//  * Airborne UAVs fly up to `uav_max_dist` in any direction, cannot enter
//    buildings (crash penalty on contact), spend eta kJ/m, and harvest up
//    to `collect_per_slot_mb` from each in-range sensor.
//  * When a window ends (or a battery empties) the UAVs land on their
//    carrier and recharge to e_0; charged energy is accounted in beta.

namespace garl::env {

class World {
 public:
  World(CampusSpec campus, WorldParams params);

  // Re-randomizes nothing structural; resets all mutable state (positions,
  // sensor data, counters). `seed` controls in-episode stochasticity only.
  void Reset(uint64_t seed);

  // Advances one slot. `ugv_actions` must have U entries (entries for
  // waiting UGVs are ignored); `uav_actions` must have U*V' entries
  // (entries for landed UAVs are ignored).
  StepResult Step(const std::vector<UgvAction>& ugv_actions,
                  const std::vector<UavAction>& uav_actions);

  // Arms fault injection for the upcoming slot (call before ObserveUgv /
  // Step; consumed and cleared by Step). Degradation is graceful, never a
  // crash: a dropped-out UAV crash-lands and its coalition's survivors pick
  // up its collection share, a stalled UGV simply freezes (UgvNeedsAction
  // goes false, so no action — and no RNG draw — is consumed for it), and
  // comm blackouts only surface through UgvObservation.comm_blocked. With a
  // default-constructed argument (the default state) the world is bitwise
  // identical to one without fault support.
  void SetSlotFaults(SlotFaults faults);

  // --- Observations ---------------------------------------------------------
  UgvObservation ObserveUgv(int64_t u) const;
  UavObservation ObserveUav(int64_t v) const;

  // --- Introspection ---------------------------------------------------------
  int64_t num_ugvs() const { return params_.num_ugvs; }
  int64_t num_uavs() const { return params_.num_ugvs * params_.uavs_per_ugv; }
  int64_t slot() const { return slot_; }
  bool Done() const { return slot_ >= params_.horizon; }
  // True when UGV u expects a fresh action this slot (not mid-window).
  bool UgvNeedsAction(int64_t u) const;
  // True when UAV v is airborne and expects a movement action.
  bool UavAirborne(int64_t v) const;

  const WorldParams& params() const { return params_; }
  const CampusSpec& campus() const { return campus_; }
  const StopNetwork& stops() const { return stops_; }
  const std::vector<UgvState>& ugvs() const { return ugvs_; }
  const std::vector<UavState>& uavs() const { return uavs_; }
  const std::vector<SensorState>& sensors() const { return sensors_; }

  // Hop-count matrix over the stop graph (input to MC-GCN's s(.,.)).
  const std::vector<std::vector<int64_t>>& hop_table() const {
    return hop_table_;
  }
  // Weighted shortest distances (meters) between stops.
  const std::vector<std::vector<double>>& distance_table() const {
    return distance_table_;
  }

  // True remaining data around stop b (d_t^b of Eq. 8).
  double StopData(int64_t b) const { return stop_data_[b]; }
  // UGV u's possibly stale view of stop b (Eq. 9b): unseen_mask_mb until
  // first approach, then the value recorded at the latest approach.
  double ObservedStopData(int64_t u, int64_t b) const;

  // Normalization constant for stop data features.
  double max_stop_data() const { return max_stop_data_; }

  // Current Jain fairness xi_t (Eq. 13b), for UAV reward shaping.
  double CurrentFairness() const;

  // --- Metrics / traces ---------------------------------------------------------
  EpisodeMetrics Metrics() const;
  int64_t total_releases() const { return releases_; }
  int64_t effective_releases() const { return effective_releases_; }

  // Position logs (one entry per slot), for trajectory studies (Fig. 7).
  const std::vector<std::vector<Vec2>>& ugv_trace() const {
    return ugv_trace_;
  }
  const std::vector<std::vector<Vec2>>& uav_trace() const {
    return uav_trace_;
  }

 private:
  void RecomputeStopData();
  void RefreshUgvKnowledge();
  void LandUav(int64_t v);
  void FailUav(int64_t v);
  bool IsUgvStalled(int64_t u) const;
  void MoveUgv(int64_t u, int64_t target, double budget);

  CampusSpec campus_;
  WorldParams params_;
  StopNetwork stops_;
  std::vector<std::vector<int64_t>> hop_table_;
  std::vector<std::vector<double>> distance_table_;
  std::vector<std::vector<int64_t>> next_hop_;
  // sensors within stop_coverage_radius of each stop.
  std::vector<std::vector<int64_t>> stop_cover_;

  int64_t slot_ = 0;
  SlotFaults slot_faults_;  // armed for the current slot only
  std::vector<UgvState> ugvs_;
  std::vector<UavState> uavs_;
  std::vector<SensorState> sensors_;
  std::vector<double> stop_data_;
  double max_stop_data_ = 1.0;

  // Per-UGV knowledge of the stop network (Eq. 9b).
  std::vector<std::vector<double>> last_seen_data_;  // [U][B]
  std::vector<std::vector<bool>> seen_;              // [U][B]
  std::vector<std::vector<int64_t>> last_seen_slot_;  // [U][B], -1 = never

  // Counters.
  int64_t releases_ = 0;
  int64_t effective_releases_ = 0;
  double energy_consumed_kj_ = 0.0;
  double energy_charged_kj_ = 0.0;

  std::vector<std::vector<Vec2>> ugv_trace_;
  std::vector<std::vector<Vec2>> uav_trace_;
};

}  // namespace garl::env

#endif  // GARL_ENV_WORLD_H_
