#ifndef GARL_ENV_METRICS_H_
#define GARL_ENV_METRICS_H_

#include <vector>

#include "env/types.h"

// Evaluation metrics of Section III-B.

namespace garl::env {

// Data collection ratio psi (Eq. 3).
double DataCollectionRatio(const std::vector<SensorState>& sensors);

// Jain fairness xi over per-sensor collected fractions (Eq. 4).
double Fairness(const std::vector<SensorState>& sensors);

// Cooperation factor zeta (Eq. 5): effective releases / releases.
double CooperationFactor(int64_t releases, int64_t effective_releases);

// Energy consumption ratio beta (Eq. 6).
double EnergyRatio(double consumed_kj, double initial_kj, double charged_kj);

// Efficiency lambda = psi * xi * zeta / beta (Eq. 7); beta is floored at a
// small epsilon to keep the ratio finite when UAVs never move.
double Efficiency(double psi, double xi, double zeta, double beta);

// Bundles the four metrics + efficiency.
EpisodeMetrics MakeMetrics(double psi, double xi, double zeta, double beta);

}  // namespace garl::env

#endif  // GARL_ENV_METRICS_H_
