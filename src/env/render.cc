#include "env/render.h"

#include "common/fs_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace garl::env {

namespace {

constexpr const char* kUgvPalette[] = {"#d62728", "#1f77b4", "#2ca02c",
                                       "#9467bd", "#ff7f0e", "#8c564b"};
constexpr int kPaletteSize = 6;

class SvgBuilder {
 public:
  SvgBuilder(const CampusSpec& campus, double scale)
      : campus_(campus), scale_(scale) {
    body_ += StrPrintf(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
        "height=\"%.0f\" viewBox=\"0 0 %.2f %.2f\">\n",
        campus.width * scale, campus.height * scale, campus.width * scale,
        campus.height * scale);
    body_ += StrPrintf(
        "<rect width=\"%.2f\" height=\"%.2f\" fill=\"#f7f5ef\"/>\n",
        campus.width * scale, campus.height * scale);
  }

  // SVG y grows downward; flip so north is up.
  double X(double x) const { return x * scale_; }
  double Y(double y) const { return (campus_.height - y) * scale_; }

  void Line(const Vec2& a, const Vec2& b, const char* color, double width) {
    body_ += StrPrintf(
        "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" "
        "stroke=\"%s\" stroke-width=\"%.2f\"/>\n",
        X(a.x), Y(a.y), X(b.x), Y(b.y), color, width);
  }

  void Box(const Rect& rect, const char* fill) {
    body_ += StrPrintf(
        "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" "
        "fill=\"%s\"/>\n",
        X(rect.x0), Y(rect.y1), rect.Width() * scale_,
        rect.Height() * scale_, fill);
  }

  void Dot(const Vec2& p, double radius, const char* fill) {
    body_ += StrPrintf(
        "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>\n",
        X(p.x), Y(p.y), radius, fill);
  }

  void Polyline(const std::vector<Vec2>& points, const char* color,
                double width, const char* dash) {
    if (points.size() < 2) return;
    std::string coords;
    for (const Vec2& p : points) {
      coords += StrPrintf("%.1f,%.1f ", X(p.x), Y(p.y));
    }
    body_ += StrPrintf(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"%.2f\"%s/>\n",
        coords.c_str(), color, width,
        dash != nullptr ? StrPrintf(" stroke-dasharray=\"%s\"", dash).c_str()
                        : "");
  }

  std::string Finish() {
    body_ += "</svg>\n";
    return body_;
  }

 private:
  const CampusSpec& campus_;
  double scale_;
  std::string body_;
};

void DrawCampus(SvgBuilder& svg, const CampusSpec& campus,
                const StopNetwork* stops, const RenderOptions& options) {
  for (const RoadSegment& road : campus.roads) {
    svg.Line(road.a, road.b, "#c9c4b8", 6.0 * options.scale * 2.5);
  }
  for (const Rect& building : campus.buildings) {
    svg.Box(building, "#8d99ae");
  }
  if (options.draw_sensors) {
    for (const SensorSpec& sensor : campus.sensors) {
      svg.Dot(sensor.position, 2.2, "#e09f3e");
    }
  }
  if (options.draw_stops && stops != nullptr) {
    for (int64_t b = 0; b < stops->num_stops(); ++b) {
      for (const auto& edge :
           stops->graph.Neighbors(b)) {
        if (edge.to > b) {
          svg.Line(stops->positions[static_cast<size_t>(b)],
                   stops->positions[static_cast<size_t>(edge.to)],
                   "#ded9cc", 1.0);
        }
      }
    }
    for (const Vec2& p : stops->positions) svg.Dot(p, 1.4, "#6b705c");
  }
}

}  // namespace

std::string RenderCampusSvg(const CampusSpec& campus,
                            const StopNetwork* stops,
                            const RenderOptions& options) {
  SvgBuilder svg(campus, options.scale);
  DrawCampus(svg, campus, stops, options);
  return svg.Finish();
}

std::string RenderTracesSvg(const CampusSpec& campus,
                            const StopNetwork* stops,
                            const std::vector<std::vector<Vec2>>& ugv_traces,
                            const std::vector<std::vector<Vec2>>& uav_traces,
                            const RenderOptions& options) {
  SvgBuilder svg(campus, options.scale);
  DrawCampus(svg, campus, stops, options);
  // UAV traces first (thin, dashed, inherit carrier color), UGVs on top.
  for (size_t v = 0; v < uav_traces.size(); ++v) {
    size_t carrier = uav_traces.size() > 0 && ugv_traces.size() > 0
                         ? v * ugv_traces.size() / uav_traces.size()
                         : 0;
    svg.Polyline(uav_traces[v], kUgvPalette[carrier % kPaletteSize], 0.8,
                 "3,3");
  }
  for (size_t u = 0; u < ugv_traces.size(); ++u) {
    svg.Polyline(ugv_traces[u], kUgvPalette[u % kPaletteSize], 2.2,
                 nullptr);
    if (!ugv_traces[u].empty()) {
      svg.Dot(ugv_traces[u].back(), 4.0, kUgvPalette[u % kPaletteSize]);
    }
  }
  return svg.Finish();
}

Status WriteSvg(const std::string& svg, const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    GARL_RETURN_IF_ERROR(EnsureDirectory(path.substr(0, slash)));
  }
  return WriteFileDurable(path, svg);
}

}  // namespace garl::env
