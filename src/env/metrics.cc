#include "env/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace garl::env {

namespace {
constexpr double kEps = 1e-8;
}

double DataCollectionRatio(const std::vector<SensorState>& sensors) {
  double initial = 0.0, remaining = 0.0;
  for (const SensorState& s : sensors) {
    initial += s.initial_mb;
    remaining += s.remaining_mb;
  }
  if (initial <= 0.0) return 0.0;
  return 1.0 - remaining / initial;
}

double Fairness(const std::vector<SensorState>& sensors) {
  if (sensors.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const SensorState& s : sensors) {
    GARL_CHECK_GT(s.initial_mb, 0.0);
    double frac = (s.initial_mb - s.remaining_mb) / s.initial_mb;
    sum += frac;
    sum_sq += frac * frac;
  }
  double p = static_cast<double>(sensors.size());
  return (sum * sum) / (p * sum_sq + kEps);
}

double CooperationFactor(int64_t releases, int64_t effective_releases) {
  GARL_CHECK_GE(releases, 0);
  GARL_CHECK_GE(effective_releases, 0);
  GARL_CHECK_LE(effective_releases, releases);
  if (releases == 0) return 0.0;
  return static_cast<double>(effective_releases) /
         static_cast<double>(releases);
}

double EnergyRatio(double consumed_kj, double initial_kj, double charged_kj) {
  GARL_CHECK_GE(consumed_kj, 0.0);
  GARL_CHECK_GT(initial_kj, 0.0);
  GARL_CHECK_GE(charged_kj, 0.0);
  return consumed_kj / (initial_kj + charged_kj);
}

double Efficiency(double psi, double xi, double zeta, double beta) {
  return psi * xi * zeta / std::max(beta, 1e-3);
}

EpisodeMetrics MakeMetrics(double psi, double xi, double zeta, double beta) {
  EpisodeMetrics m;
  m.data_collection_ratio = psi;
  m.fairness = xi;
  m.cooperation_factor = zeta;
  m.energy_ratio = beta;
  m.efficiency = Efficiency(psi, xi, zeta, beta);
  return m;
}

}  // namespace garl::env
