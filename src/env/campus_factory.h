#ifndef GARL_ENV_CAMPUS_FACTORY_H_
#define GARL_ENV_CAMPUS_FACTORY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "env/campus.h"

// Procedural campus generators.
//
// The paper evaluates on OpenStreetMap extracts of the KAIST and UCLA
// campuses; those map files are not redistributable here, so we generate
// synthetic campuses that match every statistic the paper reports (extent,
// building count, sensor count, per-sensor data) and the qualitative
// topology it relies on (KAIST: simple regular road network; UCLA: larger,
// more complex, sparse "lawn" centre with the east and west districts
// joined by a thin connector). See DESIGN.md, Substitutions.

namespace garl::env {

struct CampusGenOptions {
  std::string name;
  double width = 1000.0;
  double height = 1000.0;
  int grid_x = 5;  // vertical road count
  int grid_y = 5;  // horizontal road count
  int num_buildings = 40;
  int num_sensors = 60;
  uint64_t seed = 1;
  double building_min = 30.0;
  double building_max = 80.0;
  double road_margin = 22.0;   // clearance between buildings and roads
  double data_min_mb = 1000.0;  // d_0^p ~ U[1, 1.5] GB
  double data_max_mb = 1500.0;
  // Relative building/sensor density at fractional position (fx, fy) in
  // [0,1]^2; nullptr means uniform.
  std::function<double(double fx, double fy)> density;
};

// Grid-road campus with rejection-sampled buildings and perimeter sensors.
CampusSpec GenerateGridCampus(const CampusGenOptions& options);

// KAIST, South Korea: 1433.37 m N-S x 1539.63 m E-W, 85 buildings,
// 138 sensors, regular road network (Section V-A).
CampusSpec MakeKaistCampus(uint64_t seed = 7);

// UCLA, USA: 1737.15 m N-S x 1675.36 m E-W, 163 buildings, 236 sensors,
// irregular landscape: dense east/west districts joined by a thin
// low-data connector through a sparse centre (Sections V-A, V-C, V-D).
CampusSpec MakeUclaCampus(uint64_t seed = 11);

}  // namespace garl::env

#endif  // GARL_ENV_CAMPUS_FACTORY_H_
