#ifndef GARL_ENV_CAMPUS_H_
#define GARL_ENV_CAMPUS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "env/geometry.h"

// Static description of a campus workzone: field extent, building obstacles,
// road polylines (where UGV stops are laid out) and sensors to be drained.

namespace garl::env {

struct SensorSpec {
  Vec2 position;
  double initial_data_mb = 0.0;  // d_0^p, megabytes
};

struct RoadSegment {
  Vec2 a;
  Vec2 b;
};

struct CampusSpec {
  std::string name;
  double width = 0.0;   // east-west extent, meters
  double height = 0.0;  // north-south extent, meters
  std::vector<Rect> buildings;
  std::vector<RoadSegment> roads;
  std::vector<SensorSpec> sensors;

  double TotalInitialData() const {
    double total = 0.0;
    for (const SensorSpec& s : sensors) total += s.initial_data_mb;
    return total;
  }
};

// Structural sanity checks: positive extent, sensors inside the field,
// roads not crossing buildings, every sensor within `reach` meters of some
// road (so a carried UAV can ever reach it).
[[nodiscard]] Status ValidateCampus(const CampusSpec& campus, double reach);

}  // namespace garl::env

#endif  // GARL_ENV_CAMPUS_H_
