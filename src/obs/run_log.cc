#include "obs/run_log.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <utility>

#include "common/string_util.h"

namespace garl::obs {

namespace {

// ---------------------------------------------------------------------------
// JSON writing. Doubles use "%.17g" (shortest form that still round-trips a
// binary64 exactly is not needed — 17 significant digits always round-trips
// and is byte-stable for equal values). Non-finite doubles become `null`,
// keeping every line legal JSON.
// ---------------------------------------------------------------------------

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrPrintf(
              "\\u%04x",
              static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  *out += StrPrintf("%.17g", v);
}

void AppendInt(std::string* out, int64_t v) {
  *out += StrPrintf("%lld", static_cast<long long>(v));
}

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects keep member order so the validator can pin
// the exact schema, not just the key set).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    GARL_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError(
        StrPrintf("JSON parse error at offset %lld: %s",
                  static_cast<long long>(pos_), what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseKeyword(JsonValue* out) {
    auto matches = [&](const char* word) {
      size_t len = std::string(word).size();
      return text_.compare(pos_, len, word) == 0;
    };
    if (matches("true")) {
      pos_ += 4;
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (matches("false")) {
      pos_ += 5;
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (matches("null")) {
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return Error("unrecognized keyword");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            // Only the BMP subset our writer emits (control chars) is
            // supported; decode as a single byte.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0' || code < 0 || code > 0xFF) {
              return Error("unsupported \\u escape '" + hex + "'");
            }
            *out += static_cast<char>(code);
            break;
          }
          default:
            return Error(std::string("unsupported escape '\\") + esc + "'");
        }
        continue;
      }
      *out += c;
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      std::string key;
      GARL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      GARL_RETURN_IF_ERROR(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      GARL_RETURN_IF_ERROR(ParseValue(&value));
      out->elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema. The validator pins the exact member *order*, not just the set —
// field order is part of the byte-stable contract.
// ---------------------------------------------------------------------------

enum class FieldType {
  kInt,     // JSON number holding an integer
  kDouble,  // JSON number, or null for a non-finite value
  kBool,
  kString,
  kObject,
  kArray,
};

struct FieldSpec {
  const char* name;
  FieldType type;
};

constexpr FieldSpec kTopLevelSchema[] = {
    {"v", FieldType::kInt},
    {"det", FieldType::kObject},
    {"rt", FieldType::kObject},
};

constexpr FieldSpec kDetSchema[] = {
    {"iter", FieldType::kInt},
    {"episodes", FieldType::kInt},
    {"ugv_reward", FieldType::kDouble},
    {"uav_reward", FieldType::kDouble},
    {"policy_loss", FieldType::kDouble},
    {"value_loss", FieldType::kDouble},
    {"entropy", FieldType::kDouble},
    {"ugv_grad_norm", FieldType::kDouble},
    {"uav_grad_norm", FieldType::kDouble},
    {"lr", FieldType::kDouble},
    {"diverged", FieldType::kBool},
    {"recovered", FieldType::kBool},
    {"psi", FieldType::kDouble},
    {"xi", FieldType::kDouble},
    {"zeta", FieldType::kDouble},
    {"beta", FieldType::kDouble},
    {"efficiency", FieldType::kDouble},
};

constexpr FieldSpec kRtSchema[] = {
    {"wall_ns", FieldType::kInt},
    {"cache_hits", FieldType::kInt},
    {"cache_misses", FieldType::kInt},
    {"pool", FieldType::kObject},
    {"spans", FieldType::kArray},
};

constexpr FieldSpec kPoolSchema[] = {
    {"threads", FieldType::kInt},
    {"tasks", FieldType::kInt},
    {"parallel_fors", FieldType::kInt},
    {"inline_fors", FieldType::kInt},
};

constexpr FieldSpec kSpanSchema[] = {
    {"name", FieldType::kInt},  // type checked specially (string)
    {"count", FieldType::kInt},
    {"total_ns", FieldType::kInt},
};

// Optional trailing members carried only by fault-injection runs: `det`
// gains the schedule-digest chain (8 hex chars — kept out of JSON numbers
// so no consumer rounds a 32-bit value through a double), `rt` gains the
// event-count object. They must appear together or not at all.
constexpr FieldSpec kDetFaultSchema[] = {
    {"fault_digest", FieldType::kString},
};

constexpr FieldSpec kRtFaultSchema[] = {
    {"faults", FieldType::kObject},
};

constexpr FieldSpec kFaultsSchema[] = {
    {"uav_dropouts", FieldType::kInt},
    {"ugv_stalls", FieldType::kInt},
    {"comm_blackouts", FieldType::kInt},
    {"sensor_faults", FieldType::kInt},
    {"fs_injected", FieldType::kInt},
    {"fs_recovered", FieldType::kInt},
};

bool TypeMatches(const JsonValue& value, FieldType type) {
  switch (type) {
    case FieldType::kInt:
      return value.type == JsonValue::Type::kNumber;
    case FieldType::kDouble:
      return value.type == JsonValue::Type::kNumber ||
             value.type == JsonValue::Type::kNull;
    case FieldType::kBool:
      return value.type == JsonValue::Type::kBool;
    case FieldType::kString:
      return value.type == JsonValue::Type::kString;
    case FieldType::kObject:
      return value.type == JsonValue::Type::kObject;
    case FieldType::kArray:
      return value.type == JsonValue::Type::kArray;
  }
  return false;
}

template <size_t N>
Status CheckObjectSchema(const JsonValue& object, const FieldSpec (&schema)[N],
                         const char* context) {
  if (object.type != JsonValue::Type::kObject) {
    return InvalidArgumentError(StrPrintf("'%s' is not an object", context));
  }
  if (object.members.size() != N) {
    return InvalidArgumentError(StrPrintf(
        "'%s' has %lld field(s), schema v%d requires %lld", context,
        static_cast<long long>(object.members.size()), kRunLogSchemaVersion,
        static_cast<long long>(N)));
  }
  for (size_t i = 0; i < N; ++i) {
    const auto& [key, value] = object.members[i];
    if (key != schema[i].name) {
      return InvalidArgumentError(
          StrPrintf("'%s' field %lld is '%s', schema requires '%s'", context,
                    static_cast<long long>(i), key.c_str(), schema[i].name));
    }
    if (!TypeMatches(value, schema[i].type)) {
      return InvalidArgumentError(StrPrintf(
          "'%s.%s' has the wrong JSON type", context, schema[i].name));
    }
  }
  return Status::Ok();
}

// Like CheckObjectSchema, but the object may additionally carry the
// `optional` members (in order) after the required ones. `*has_optional`
// reports which form was seen. Any other member count is an error — partial
// optional suffixes are rejected.
template <size_t N, size_t M>
Status CheckObjectSchemaWithOptional(const JsonValue& object,
                                     const FieldSpec (&schema)[N],
                                     const FieldSpec (&optional)[M],
                                     const char* context,
                                     bool* has_optional) {
  if (object.type != JsonValue::Type::kObject) {
    return InvalidArgumentError(StrPrintf("'%s' is not an object", context));
  }
  if (object.members.size() != N && object.members.size() != N + M) {
    return InvalidArgumentError(StrPrintf(
        "'%s' has %lld field(s), schema v%d requires %lld or %lld", context,
        static_cast<long long>(object.members.size()), kRunLogSchemaVersion,
        static_cast<long long>(N), static_cast<long long>(N + M)));
  }
  *has_optional = object.members.size() == N + M;
  for (size_t i = 0; i < object.members.size(); ++i) {
    const FieldSpec& spec = i < N ? schema[i] : optional[i - N];
    const auto& [key, value] = object.members[i];
    if (key != spec.name) {
      return InvalidArgumentError(
          StrPrintf("'%s' field %lld is '%s', schema requires '%s'", context,
                    static_cast<long long>(i), key.c_str(), spec.name));
    }
    if (!TypeMatches(value, spec.type)) {
      return InvalidArgumentError(
          StrPrintf("'%s.%s' has the wrong JSON type", context, spec.name));
    }
  }
  return Status::Ok();
}

// Decodes the det payload's "fault_digest" value: exactly 8 lowercase hex
// characters, as FormatIterationRecord emits.
Status ParseFaultDigest(const std::string& hex, uint32_t* out) {
  if (hex.size() != 8) {
    return InvalidArgumentError(
        "'det.fault_digest' must be exactly 8 hex characters");
  }
  uint32_t value = 0;
  for (char c : hex) {
    uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return InvalidArgumentError(
          "'det.fault_digest' has a non-hex character");
    }
    value = (value << 4) | nibble;
  }
  *out = value;
  return Status::Ok();
}

double AsDouble(const JsonValue& value) {
  if (value.type == JsonValue::Type::kNull) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value.number_value;
}

int64_t AsInt(const JsonValue& value) {
  return static_cast<int64_t>(std::llround(value.number_value));
}

// Validated view of a parsed record; `record` filled on success.
Status DecodeRecord(const JsonValue& root, IterationRecord* record) {
  GARL_RETURN_IF_ERROR(CheckObjectSchema(root, kTopLevelSchema, "record"));
  if (AsInt(root.members[0].second) != kRunLogSchemaVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported run-log schema version %lld (expected %d)",
                  static_cast<long long>(AsInt(root.members[0].second)),
                  kRunLogSchemaVersion));
  }
  const JsonValue& det = root.members[1].second;
  const JsonValue& rt = root.members[2].second;
  bool det_has_faults = false;
  bool rt_has_faults = false;
  GARL_RETURN_IF_ERROR(CheckObjectSchemaWithOptional(
      det, kDetSchema, kDetFaultSchema, "det", &det_has_faults));
  GARL_RETURN_IF_ERROR(CheckObjectSchemaWithOptional(
      rt, kRtSchema, kRtFaultSchema, "rt", &rt_has_faults));
  if (det_has_faults != rt_has_faults) {
    return InvalidArgumentError(
        "fault fields must appear in both 'det' and 'rt' or in neither");
  }
  const JsonValue& pool = rt.members[3].second;
  GARL_RETURN_IF_ERROR(CheckObjectSchema(pool, kPoolSchema, "rt.pool"));

  record->iteration = AsInt(det.members[0].second);
  record->episode_counter = AsInt(det.members[1].second);
  record->ugv_episode_reward = AsDouble(det.members[2].second);
  record->uav_episode_reward = AsDouble(det.members[3].second);
  record->policy_loss = AsDouble(det.members[4].second);
  record->value_loss = AsDouble(det.members[5].second);
  record->entropy = AsDouble(det.members[6].second);
  record->ugv_grad_norm = AsDouble(det.members[7].second);
  record->uav_grad_norm = AsDouble(det.members[8].second);
  record->lr = AsDouble(det.members[9].second);
  record->diverged = det.members[10].second.bool_value;
  record->recovered = det.members[11].second.bool_value;
  record->psi = AsDouble(det.members[12].second);
  record->xi = AsDouble(det.members[13].second);
  record->zeta = AsDouble(det.members[14].second);
  record->beta = AsDouble(det.members[15].second);
  record->efficiency = AsDouble(det.members[16].second);

  record->faults_enabled = det_has_faults;
  if (det_has_faults) {
    GARL_RETURN_IF_ERROR(ParseFaultDigest(det.members[17].second.string_value,
                                          &record->fault_digest));
    const JsonValue& faults = rt.members[5].second;
    GARL_RETURN_IF_ERROR(CheckObjectSchema(faults, kFaultsSchema,
                                           "rt.faults"));
    record->fault_uav_dropouts = AsInt(faults.members[0].second);
    record->fault_ugv_stalls = AsInt(faults.members[1].second);
    record->fault_comm_blackouts = AsInt(faults.members[2].second);
    record->fault_sensor_faults = AsInt(faults.members[3].second);
    record->fault_fs_injected = AsInt(faults.members[4].second);
    record->fault_fs_recovered = AsInt(faults.members[5].second);
  }

  record->wall_ns = AsInt(rt.members[0].second);
  record->route_cache_hits = AsInt(rt.members[1].second);
  record->route_cache_misses = AsInt(rt.members[2].second);
  record->pool_threads = AsInt(pool.members[0].second);
  record->pool_tasks = AsInt(pool.members[1].second);
  record->pool_parallel_fors = AsInt(pool.members[2].second);
  record->pool_inline_fors = AsInt(pool.members[3].second);

  const JsonValue& spans = rt.members[4].second;
  record->spans.clear();
  for (size_t i = 0; i < spans.elements.size(); ++i) {
    const JsonValue& span = spans.elements[i];
    if (span.type != JsonValue::Type::kObject ||
        span.members.size() != 3) {
      return InvalidArgumentError(
          StrPrintf("rt.spans[%lld] is not a {name,count,total_ns} object",
                    static_cast<long long>(i)));
    }
    for (size_t f = 0; f < 3; ++f) {
      if (span.members[f].first != kSpanSchema[f].name) {
        return InvalidArgumentError(StrPrintf(
            "rt.spans[%lld] field %lld is '%s', schema requires '%s'",
            static_cast<long long>(i), static_cast<long long>(f),
            span.members[f].first.c_str(), kSpanSchema[f].name));
      }
    }
    if (span.members[0].second.type != JsonValue::Type::kString ||
        span.members[1].second.type != JsonValue::Type::kNumber ||
        span.members[2].second.type != JsonValue::Type::kNumber) {
      return InvalidArgumentError(
          StrPrintf("rt.spans[%lld] has the wrong field types",
                    static_cast<long long>(i)));
    }
    SpanTiming timing;
    timing.name = span.members[0].second.string_value;
    timing.count = AsInt(span.members[1].second);
    timing.total_ns = AsInt(span.members[2].second);
    record->spans.push_back(std::move(timing));
  }
  return Status::Ok();
}

// Per-line driver shared by validation and summarization. `visit` is called
// with each decoded record.
template <typename Visitor>
Status ForEachRecord(const std::string& path, Visitor&& visit) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open run log: " + path);
  }
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    StatusOr<IterationRecord> record = ParseIterationRecord(line);
    if (!record.ok()) {
      return InvalidArgumentError(
          StrPrintf("%s:%lld: %s", path.c_str(),
                    static_cast<long long>(line_number),
                    record.status().message().c_str()));
    }
    visit(std::move(record).value());
  }
  if (in.bad()) {
    return InternalError("I/O error reading run log: " + path);
  }
  return Status::Ok();
}

}  // namespace

std::string FormatIterationRecord(const IterationRecord& record) {
  std::string out;
  out.reserve(512);
  out += "{\"v\":";
  AppendInt(&out, kRunLogSchemaVersion);
  out += ",\"det\":{\"iter\":";
  AppendInt(&out, record.iteration);
  out += ",\"episodes\":";
  AppendInt(&out, record.episode_counter);
  out += ",\"ugv_reward\":";
  AppendDouble(&out, record.ugv_episode_reward);
  out += ",\"uav_reward\":";
  AppendDouble(&out, record.uav_episode_reward);
  out += ",\"policy_loss\":";
  AppendDouble(&out, record.policy_loss);
  out += ",\"value_loss\":";
  AppendDouble(&out, record.value_loss);
  out += ",\"entropy\":";
  AppendDouble(&out, record.entropy);
  out += ",\"ugv_grad_norm\":";
  AppendDouble(&out, record.ugv_grad_norm);
  out += ",\"uav_grad_norm\":";
  AppendDouble(&out, record.uav_grad_norm);
  out += ",\"lr\":";
  AppendDouble(&out, record.lr);
  out += ",\"diverged\":";
  AppendBool(&out, record.diverged);
  out += ",\"recovered\":";
  AppendBool(&out, record.recovered);
  out += ",\"psi\":";
  AppendDouble(&out, record.psi);
  out += ",\"xi\":";
  AppendDouble(&out, record.xi);
  out += ",\"zeta\":";
  AppendDouble(&out, record.zeta);
  out += ",\"beta\":";
  AppendDouble(&out, record.beta);
  out += ",\"efficiency\":";
  AppendDouble(&out, record.efficiency);
  if (record.faults_enabled) {
    out += ",\"fault_digest\":";
    AppendJsonString(&out, StrPrintf("%08x", record.fault_digest));
  }
  out += "},\"rt\":{\"wall_ns\":";
  AppendInt(&out, record.wall_ns);
  out += ",\"cache_hits\":";
  AppendInt(&out, record.route_cache_hits);
  out += ",\"cache_misses\":";
  AppendInt(&out, record.route_cache_misses);
  out += ",\"pool\":{\"threads\":";
  AppendInt(&out, record.pool_threads);
  out += ",\"tasks\":";
  AppendInt(&out, record.pool_tasks);
  out += ",\"parallel_fors\":";
  AppendInt(&out, record.pool_parallel_fors);
  out += ",\"inline_fors\":";
  AppendInt(&out, record.pool_inline_fors);
  out += "},\"spans\":[";
  for (size_t i = 0; i < record.spans.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    AppendJsonString(&out, record.spans[i].name);
    out += ",\"count\":";
    AppendInt(&out, record.spans[i].count);
    out += ",\"total_ns\":";
    AppendInt(&out, record.spans[i].total_ns);
    out += '}';
  }
  out += ']';
  if (record.faults_enabled) {
    out += ",\"faults\":{\"uav_dropouts\":";
    AppendInt(&out, record.fault_uav_dropouts);
    out += ",\"ugv_stalls\":";
    AppendInt(&out, record.fault_ugv_stalls);
    out += ",\"comm_blackouts\":";
    AppendInt(&out, record.fault_comm_blackouts);
    out += ",\"sensor_faults\":";
    AppendInt(&out, record.fault_sensor_faults);
    out += ",\"fs_injected\":";
    AppendInt(&out, record.fault_fs_injected);
    out += ",\"fs_recovered\":";
    AppendInt(&out, record.fault_fs_recovered);
    out += '}';
  }
  out += "}}";
  return out;
}

StatusOr<IterationRecord> ParseIterationRecord(const std::string& line) {
  JsonParser parser(line);
  StatusOr<JsonValue> root = parser.Parse();
  if (!root.ok()) return root.status();
  IterationRecord record;
  GARL_RETURN_IF_ERROR(DecodeRecord(root.value(), &record));
  return record;
}

StatusOr<std::string> DeterministicPayload(const std::string& line) {
  static const std::string kKey = "\"det\":";
  size_t at = line.find(kKey);
  if (at == std::string::npos) {
    return InvalidArgumentError("record has no \"det\" payload");
  }
  size_t start = at + kKey.size();
  if (start >= line.size() || line[start] != '{') {
    return InvalidArgumentError("\"det\" payload is not an object");
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = start; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) return line.substr(start, i - start + 1);
    }
  }
  return InvalidArgumentError("unterminated \"det\" object");
}

Status RunLog::AppendRecord(const IterationRecord& record) {
  return file_.Append(FormatIterationRecord(record) + '\n');
}

StatusOr<RunLog> OpenRunLog(const std::string& path) {
  // AppendFile::Open truncates, so a reused path starts from a clean slate.
  StatusOr<AppendFile> file = AppendFile::Open(path);
  if (!file.ok()) return file.status();
  return RunLog(std::move(file).value());
}

Status ValidateRunLogFile(const std::string& path) {
  return ForEachRecord(path, [](IterationRecord&&) {});
}

StatusOr<RunLogSummary> SummarizeRunLogFile(const std::string& path) {
  RunLogSummary summary;
  double policy = 0.0, value = 0.0, entropy = 0.0;
  Status status = ForEachRecord(path, [&](IterationRecord&& record) {
    if (summary.records == 0) summary.first = record;
    policy += record.policy_loss;
    value += record.value_loss;
    entropy += record.entropy;
    if (record.diverged) ++summary.diverged_iterations;
    summary.total_wall_ns += record.wall_ns;
    if (record.faults_enabled) {
      ++summary.fault_records;
      summary.fault_events += record.fault_uav_dropouts +
                              record.fault_ugv_stalls +
                              record.fault_comm_blackouts +
                              record.fault_sensor_faults;
    }
    for (const SpanTiming& span : record.spans) {
      SpanTiming& agg = summary.spans[span.name];
      if (agg.name.empty()) agg.name = span.name;
      agg.count += span.count;
      agg.total_ns += span.total_ns;
    }
    summary.last = std::move(record);
    ++summary.records;
  });
  if (!status.ok()) return status;
  if (summary.records > 0) {
    double n = static_cast<double>(summary.records);
    summary.mean_policy_loss = policy / n;
    summary.mean_value_loss = value / n;
    summary.mean_entropy = entropy / n;
  }
  return summary;
}

}  // namespace garl::obs
