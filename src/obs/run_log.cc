#include "obs/run_log.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <system_error>
#include <utility>

#include "common/string_util.h"

namespace garl::obs {

namespace {

// ---------------------------------------------------------------------------
// JSON writing. Doubles use "%.17g" (shortest form that still round-trips a
// binary64 exactly is not needed — 17 significant digits always round-trips
// and is byte-stable for equal values). Non-finite doubles become `null`,
// keeping every line legal JSON.
// ---------------------------------------------------------------------------

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrPrintf(
              "\\u%04x",
              static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  *out += StrPrintf("%.17g", v);
}

void AppendInt(std::string* out, int64_t v) {
  *out += StrPrintf("%lld", static_cast<long long>(v));
}

void AppendBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects keep member order so the validator can pin
// the exact schema, not just the key set).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    GARL_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError(
        StrPrintf("JSON parse error at offset %lld: %s",
                  static_cast<long long>(pos_), what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseKeyword(JsonValue* out) {
    auto matches = [&](const char* word) {
      size_t len = std::string(word).size();
      return text_.compare(pos_, len, word) == 0;
    };
    if (matches("true")) {
      pos_ += 4;
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::Ok();
    }
    if (matches("false")) {
      pos_ += 5;
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::Ok();
    }
    if (matches("null")) {
      pos_ += 4;
      out->type = JsonValue::Type::kNull;
      return Status::Ok();
    }
    return Error("unrecognized keyword");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number_value = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            // Only the BMP subset our writer emits (control chars) is
            // supported; decode as a single byte.
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            char* end = nullptr;
            long code = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0' || code < 0 || code > 0xFF) {
              return Error("unsupported \\u escape '" + hex + "'");
            }
            *out += static_cast<char>(code);
            break;
          }
          default:
            return Error(std::string("unsupported escape '\\") + esc + "'");
        }
        continue;
      }
      *out += c;
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue* out) {
    if (!Consume('{')) return Error("expected '{'");
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      std::string key;
      GARL_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      GARL_RETURN_IF_ERROR(ParseValue(&value));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    if (!Consume('[')) return Error("expected '['");
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      GARL_RETURN_IF_ERROR(ParseValue(&value));
      out->elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Schema. The validator pins the exact member *order*, not just the set —
// field order is part of the byte-stable contract.
// ---------------------------------------------------------------------------

enum class FieldType {
  kInt,     // JSON number holding an integer
  kDouble,  // JSON number, or null for a non-finite value
  kBool,
  kString,
  kObject,
  kArray,
};

struct FieldSpec {
  const char* name;
  FieldType type;
};

constexpr FieldSpec kTopLevelSchema[] = {
    {"v", FieldType::kInt},
    {"det", FieldType::kObject},
    {"rt", FieldType::kObject},
};

constexpr FieldSpec kDetSchema[] = {
    {"iter", FieldType::kInt},
    {"episodes", FieldType::kInt},
    {"ugv_reward", FieldType::kDouble},
    {"uav_reward", FieldType::kDouble},
    {"policy_loss", FieldType::kDouble},
    {"value_loss", FieldType::kDouble},
    {"entropy", FieldType::kDouble},
    {"ugv_grad_norm", FieldType::kDouble},
    {"uav_grad_norm", FieldType::kDouble},
    {"lr", FieldType::kDouble},
    {"diverged", FieldType::kBool},
    {"recovered", FieldType::kBool},
    {"psi", FieldType::kDouble},
    {"xi", FieldType::kDouble},
    {"zeta", FieldType::kDouble},
    {"beta", FieldType::kDouble},
    {"efficiency", FieldType::kDouble},
};

constexpr FieldSpec kRtSchema[] = {
    {"wall_ns", FieldType::kInt},
    {"cache_hits", FieldType::kInt},
    {"cache_misses", FieldType::kInt},
    {"pool", FieldType::kObject},
    {"arena", FieldType::kObject},
    {"spans", FieldType::kArray},
    {"hist", FieldType::kArray},
};

constexpr FieldSpec kPoolSchema[] = {
    {"threads", FieldType::kInt},
    {"tasks", FieldType::kInt},
    {"parallel_fors", FieldType::kInt},
    {"inline_fors", FieldType::kInt},
};

constexpr FieldSpec kArenaSchema[] = {
    {"heap_allocs", FieldType::kInt},
    {"reuses", FieldType::kInt},
    {"cached_bytes", FieldType::kInt},
    {"high_water_bytes", FieldType::kInt},
};

constexpr FieldSpec kSpanSchema[] = {
    {"name", FieldType::kInt},  // type checked specially (string)
    {"count", FieldType::kInt},
    {"total_ns", FieldType::kInt},
};

constexpr FieldSpec kHistSchema[] = {
    {"name", FieldType::kString},
    {"count", FieldType::kInt},
    {"p50", FieldType::kDouble},
    {"p95", FieldType::kDouble},
    {"p99", FieldType::kDouble},
    {"p999", FieldType::kDouble},
};

// Optional trailing members carried only by fault-injection runs: `det`
// gains the schedule-digest chain (8 hex chars — kept out of JSON numbers
// so no consumer rounds a 32-bit value through a double), `rt` gains the
// event-count object. They must appear together or not at all.
constexpr FieldSpec kDetFaultSchema[] = {
    {"fault_digest", FieldType::kString},
};

constexpr FieldSpec kRtFaultSchema[] = {
    {"faults", FieldType::kObject},
};

constexpr FieldSpec kFaultsSchema[] = {
    {"uav_dropouts", FieldType::kInt},
    {"ugv_stalls", FieldType::kInt},
    {"comm_blackouts", FieldType::kInt},
    {"sensor_faults", FieldType::kInt},
    {"fs_injected", FieldType::kInt},
    {"fs_recovered", FieldType::kInt},
};

// Optional trailing `rt` member carried by serving runs (garl_serve /
// serve::PolicyServer health counters). Runtime-only — there is no det
// counterpart — and ordered after the fault group when both appear.
constexpr FieldSpec kRtServeSchema[] = {
    {"serve", FieldType::kObject},
};

constexpr FieldSpec kServeSchema[] = {
    {"plan_version", FieldType::kInt},
    {"queue_depth", FieldType::kInt},
    {"shed", FieldType::kInt},
    {"rejected", FieldType::kInt},
    {"deadline_misses", FieldType::kInt},
    {"execute_failures", FieldType::kInt},
    {"breaker_trips", FieldType::kInt},
};

bool TypeMatches(const JsonValue& value, FieldType type) {
  switch (type) {
    case FieldType::kInt:
      return value.type == JsonValue::Type::kNumber;
    case FieldType::kDouble:
      return value.type == JsonValue::Type::kNumber ||
             value.type == JsonValue::Type::kNull;
    case FieldType::kBool:
      return value.type == JsonValue::Type::kBool;
    case FieldType::kString:
      return value.type == JsonValue::Type::kString;
    case FieldType::kObject:
      return value.type == JsonValue::Type::kObject;
    case FieldType::kArray:
      return value.type == JsonValue::Type::kArray;
  }
  return false;
}

template <size_t N>
Status CheckObjectSchema(const JsonValue& object, const FieldSpec (&schema)[N],
                         const char* context) {
  if (object.type != JsonValue::Type::kObject) {
    return InvalidArgumentError(StrPrintf("'%s' is not an object", context));
  }
  if (object.members.size() != N) {
    return InvalidArgumentError(StrPrintf(
        "'%s' has %lld field(s), schema v%d requires %lld", context,
        static_cast<long long>(object.members.size()), kRunLogSchemaVersion,
        static_cast<long long>(N)));
  }
  for (size_t i = 0; i < N; ++i) {
    const auto& [key, value] = object.members[i];
    if (key != schema[i].name) {
      return InvalidArgumentError(
          StrPrintf("'%s' field %lld is '%s', schema requires '%s'", context,
                    static_cast<long long>(i), key.c_str(), schema[i].name));
    }
    if (!TypeMatches(value, schema[i].type)) {
      return InvalidArgumentError(StrPrintf(
          "'%s.%s' has the wrong JSON type", context, schema[i].name));
    }
  }
  return Status::Ok();
}

// Like CheckObjectSchema, but the object may additionally carry the
// `optional` members (in order) after the required ones. `*has_optional`
// reports which form was seen. Any other member count is an error — partial
// optional suffixes are rejected.
template <size_t N, size_t M>
Status CheckObjectSchemaWithOptional(const JsonValue& object,
                                     const FieldSpec (&schema)[N],
                                     const FieldSpec (&optional)[M],
                                     const char* context,
                                     bool* has_optional) {
  if (object.type != JsonValue::Type::kObject) {
    return InvalidArgumentError(StrPrintf("'%s' is not an object", context));
  }
  if (object.members.size() != N && object.members.size() != N + M) {
    return InvalidArgumentError(StrPrintf(
        "'%s' has %lld field(s), schema v%d requires %lld or %lld", context,
        static_cast<long long>(object.members.size()), kRunLogSchemaVersion,
        static_cast<long long>(N), static_cast<long long>(N + M)));
  }
  *has_optional = object.members.size() == N + M;
  for (size_t i = 0; i < object.members.size(); ++i) {
    const FieldSpec& spec = i < N ? schema[i] : optional[i - N];
    const auto& [key, value] = object.members[i];
    if (key != spec.name) {
      return InvalidArgumentError(
          StrPrintf("'%s' field %lld is '%s', schema requires '%s'", context,
                    static_cast<long long>(i), key.c_str(), spec.name));
    }
    if (!TypeMatches(value, spec.type)) {
      return InvalidArgumentError(
          StrPrintf("'%s.%s' has the wrong JSON type", context, spec.name));
    }
  }
  return Status::Ok();
}

// Like CheckObjectSchema, but the object may additionally carry up to two
// independent optional trailing member groups, in a fixed order (`opt1`
// before `opt2`). Group presence is keyed on each group's first member name;
// each group appears as a whole or not at all, and nothing may follow the
// recognized suffix — partial or reordered optional groups are rejected.
template <size_t N, size_t M1, size_t M2>
Status CheckObjectSchemaWithOptionalGroups(
    const JsonValue& object, const FieldSpec (&schema)[N],
    const FieldSpec (&opt1)[M1], const FieldSpec (&opt2)[M2],
    const char* context, bool* has_opt1, bool* has_opt2) {
  if (object.type != JsonValue::Type::kObject) {
    return InvalidArgumentError(StrPrintf("'%s' is not an object", context));
  }
  const size_t count = object.members.size();
  if (count < N) {
    return InvalidArgumentError(StrPrintf(
        "'%s' has %lld field(s), schema v%d requires at least %lld", context,
        static_cast<long long>(count), kRunLogSchemaVersion,
        static_cast<long long>(N)));
  }
  auto check_member = [&](size_t index, const FieldSpec& spec) -> Status {
    const auto& [key, value] = object.members[index];
    if (key != spec.name) {
      return InvalidArgumentError(
          StrPrintf("'%s' field %lld is '%s', schema requires '%s'", context,
                    static_cast<long long>(index), key.c_str(), spec.name));
    }
    if (!TypeMatches(value, spec.type)) {
      return InvalidArgumentError(
          StrPrintf("'%s.%s' has the wrong JSON type", context, spec.name));
    }
    return Status::Ok();
  };
  for (size_t i = 0; i < N; ++i) {
    GARL_RETURN_IF_ERROR(check_member(i, schema[i]));
  }
  size_t index = N;
  *has_opt1 = false;
  *has_opt2 = false;
  if (index < count && object.members[index].first == opt1[0].name) {
    for (size_t i = 0; i < M1; ++i) {
      if (index + i >= count) {
        return InvalidArgumentError(StrPrintf(
            "'%s' carries a truncated '%s' group", context, opt1[0].name));
      }
      GARL_RETURN_IF_ERROR(check_member(index + i, opt1[i]));
    }
    *has_opt1 = true;
    index += M1;
  }
  if (index < count && object.members[index].first == opt2[0].name) {
    for (size_t i = 0; i < M2; ++i) {
      if (index + i >= count) {
        return InvalidArgumentError(StrPrintf(
            "'%s' carries a truncated '%s' group", context, opt2[0].name));
      }
      GARL_RETURN_IF_ERROR(check_member(index + i, opt2[i]));
    }
    *has_opt2 = true;
    index += M2;
  }
  if (index != count) {
    return InvalidArgumentError(StrPrintf(
        "'%s' field %lld is '%s', not part of schema v%d", context,
        static_cast<long long>(index), object.members[index].first.c_str(),
        kRunLogSchemaVersion));
  }
  return Status::Ok();
}

// Decodes the det payload's "fault_digest" value: exactly 8 lowercase hex
// characters, as FormatIterationRecord emits.
Status ParseFaultDigest(const std::string& hex, uint32_t* out) {
  if (hex.size() != 8) {
    return InvalidArgumentError(
        "'det.fault_digest' must be exactly 8 hex characters");
  }
  uint32_t value = 0;
  for (char c : hex) {
    uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return InvalidArgumentError(
          "'det.fault_digest' has a non-hex character");
    }
    value = (value << 4) | nibble;
  }
  *out = value;
  return Status::Ok();
}

double AsDouble(const JsonValue& value) {
  if (value.type == JsonValue::Type::kNull) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value.number_value;
}

int64_t AsInt(const JsonValue& value) {
  return static_cast<int64_t>(std::llround(value.number_value));
}

// Validated view of a parsed record; `record` filled on success.
Status DecodeRecord(const JsonValue& root, IterationRecord* record) {
  GARL_RETURN_IF_ERROR(CheckObjectSchema(root, kTopLevelSchema, "record"));
  if (AsInt(root.members[0].second) != kRunLogSchemaVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported run-log schema version %lld (expected %d)",
                  static_cast<long long>(AsInt(root.members[0].second)),
                  kRunLogSchemaVersion));
  }
  const JsonValue& det = root.members[1].second;
  const JsonValue& rt = root.members[2].second;
  bool det_has_faults = false;
  bool rt_has_faults = false;
  bool rt_has_serve = false;
  GARL_RETURN_IF_ERROR(CheckObjectSchemaWithOptional(
      det, kDetSchema, kDetFaultSchema, "det", &det_has_faults));
  GARL_RETURN_IF_ERROR(CheckObjectSchemaWithOptionalGroups(
      rt, kRtSchema, kRtFaultSchema, kRtServeSchema, "rt", &rt_has_faults,
      &rt_has_serve));
  if (det_has_faults != rt_has_faults) {
    return InvalidArgumentError(
        "fault fields must appear in both 'det' and 'rt' or in neither");
  }
  const JsonValue& pool = rt.members[3].second;
  GARL_RETURN_IF_ERROR(CheckObjectSchema(pool, kPoolSchema, "rt.pool"));
  const JsonValue& arena = rt.members[4].second;
  GARL_RETURN_IF_ERROR(CheckObjectSchema(arena, kArenaSchema, "rt.arena"));

  record->iteration = AsInt(det.members[0].second);
  record->episode_counter = AsInt(det.members[1].second);
  record->ugv_episode_reward = AsDouble(det.members[2].second);
  record->uav_episode_reward = AsDouble(det.members[3].second);
  record->policy_loss = AsDouble(det.members[4].second);
  record->value_loss = AsDouble(det.members[5].second);
  record->entropy = AsDouble(det.members[6].second);
  record->ugv_grad_norm = AsDouble(det.members[7].second);
  record->uav_grad_norm = AsDouble(det.members[8].second);
  record->lr = AsDouble(det.members[9].second);
  record->diverged = det.members[10].second.bool_value;
  record->recovered = det.members[11].second.bool_value;
  record->psi = AsDouble(det.members[12].second);
  record->xi = AsDouble(det.members[13].second);
  record->zeta = AsDouble(det.members[14].second);
  record->beta = AsDouble(det.members[15].second);
  record->efficiency = AsDouble(det.members[16].second);

  record->faults_enabled = det_has_faults;
  if (det_has_faults) {
    GARL_RETURN_IF_ERROR(ParseFaultDigest(det.members[17].second.string_value,
                                          &record->fault_digest));
    const JsonValue& faults = rt.members[7].second;
    GARL_RETURN_IF_ERROR(CheckObjectSchema(faults, kFaultsSchema,
                                           "rt.faults"));
    record->fault_uav_dropouts = AsInt(faults.members[0].second);
    record->fault_ugv_stalls = AsInt(faults.members[1].second);
    record->fault_comm_blackouts = AsInt(faults.members[2].second);
    record->fault_sensor_faults = AsInt(faults.members[3].second);
    record->fault_fs_injected = AsInt(faults.members[4].second);
    record->fault_fs_recovered = AsInt(faults.members[5].second);
  }

  record->serve_enabled = rt_has_serve;
  if (rt_has_serve) {
    const size_t serve_index = std::size(kRtSchema) + (rt_has_faults ? 1 : 0);
    const JsonValue& serve = rt.members[serve_index].second;
    GARL_RETURN_IF_ERROR(CheckObjectSchema(serve, kServeSchema, "rt.serve"));
    record->serve_plan_version = AsInt(serve.members[0].second);
    record->serve_queue_depth = AsInt(serve.members[1].second);
    record->serve_shed = AsInt(serve.members[2].second);
    record->serve_rejected = AsInt(serve.members[3].second);
    record->serve_deadline_misses = AsInt(serve.members[4].second);
    record->serve_execute_failures = AsInt(serve.members[5].second);
    record->serve_breaker_trips = AsInt(serve.members[6].second);
  }

  record->wall_ns = AsInt(rt.members[0].second);
  record->route_cache_hits = AsInt(rt.members[1].second);
  record->route_cache_misses = AsInt(rt.members[2].second);
  record->pool_threads = AsInt(pool.members[0].second);
  record->pool_tasks = AsInt(pool.members[1].second);
  record->pool_parallel_fors = AsInt(pool.members[2].second);
  record->pool_inline_fors = AsInt(pool.members[3].second);
  record->arena_heap_allocs = AsInt(arena.members[0].second);
  record->arena_reuses = AsInt(arena.members[1].second);
  record->arena_cached_bytes = AsInt(arena.members[2].second);
  record->arena_high_water_bytes = AsInt(arena.members[3].second);

  const JsonValue& spans = rt.members[5].second;
  record->spans.clear();
  for (size_t i = 0; i < spans.elements.size(); ++i) {
    const JsonValue& span = spans.elements[i];
    if (span.type != JsonValue::Type::kObject ||
        span.members.size() != 3) {
      return InvalidArgumentError(
          StrPrintf("rt.spans[%lld] is not a {name,count,total_ns} object",
                    static_cast<long long>(i)));
    }
    for (size_t f = 0; f < 3; ++f) {
      if (span.members[f].first != kSpanSchema[f].name) {
        return InvalidArgumentError(StrPrintf(
            "rt.spans[%lld] field %lld is '%s', schema requires '%s'",
            static_cast<long long>(i), static_cast<long long>(f),
            span.members[f].first.c_str(), kSpanSchema[f].name));
      }
    }
    if (span.members[0].second.type != JsonValue::Type::kString ||
        span.members[1].second.type != JsonValue::Type::kNumber ||
        span.members[2].second.type != JsonValue::Type::kNumber) {
      return InvalidArgumentError(
          StrPrintf("rt.spans[%lld] has the wrong field types",
                    static_cast<long long>(i)));
    }
    SpanTiming timing;
    timing.name = span.members[0].second.string_value;
    timing.count = AsInt(span.members[1].second);
    timing.total_ns = AsInt(span.members[2].second);
    record->spans.push_back(std::move(timing));
  }

  const JsonValue& hists = rt.members[6].second;
  record->hists.clear();
  for (size_t i = 0; i < hists.elements.size(); ++i) {
    const JsonValue& hist = hists.elements[i];
    if (hist.type != JsonValue::Type::kObject ||
        hist.members.size() != std::size(kHistSchema)) {
      return InvalidArgumentError(StrPrintf(
          "rt.hist[%lld] is not a {name,count,p50,p95,p99,p999} object",
          static_cast<long long>(i)));
    }
    for (size_t f = 0; f < std::size(kHistSchema); ++f) {
      if (hist.members[f].first != kHistSchema[f].name) {
        return InvalidArgumentError(StrPrintf(
            "rt.hist[%lld] field %lld is '%s', schema requires '%s'",
            static_cast<long long>(i), static_cast<long long>(f),
            hist.members[f].first.c_str(), kHistSchema[f].name));
      }
      if (!TypeMatches(hist.members[f].second, kHistSchema[f].type)) {
        return InvalidArgumentError(
            StrPrintf("rt.hist[%lld].%s has the wrong JSON type",
                      static_cast<long long>(i), kHistSchema[f].name));
      }
    }
    HistogramTiming timing;
    timing.name = hist.members[0].second.string_value;
    timing.count = AsInt(hist.members[1].second);
    timing.p50 = AsDouble(hist.members[2].second);
    timing.p95 = AsDouble(hist.members[3].second);
    timing.p99 = AsDouble(hist.members[4].second);
    timing.p999 = AsDouble(hist.members[5].second);
    record->hists.push_back(std::move(timing));
  }
  return Status::Ok();
}

// Per-line driver shared by validation and summarization. `visit` is called
// with each decoded record and may return a non-OK Status to stop the scan.
template <typename Visitor>
Status ForEachRecord(const std::string& path, Visitor&& visit) {
  // Streamed line-by-line on purpose: rotated logs can exceed memory, so
  // this reader must not slurp the file through ReadFileToString.
  // garl-lint: allow-next-line(direct-io)
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open run log: " + path);
  }
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    StatusOr<IterationRecord> record = ParseIterationRecord(line);
    if (!record.ok()) {
      return InvalidArgumentError(
          StrPrintf("%s:%lld: %s", path.c_str(),
                    static_cast<long long>(line_number),
                    record.status().message().c_str()));
    }
    GARL_RETURN_IF_ERROR(visit(std::move(record).value()));
  }
  if (in.bad()) {
    return InternalError("I/O error reading run log: " + path);
  }
  return Status::Ok();
}

// Drives `visit` over the concatenated record stream of `paths`, enforcing
// the cross-file iteration-continuity contract.
template <typename Visitor>
Status ForEachRecordInFiles(const std::vector<std::string>& paths,
                            Visitor&& visit) {
  bool have_previous = false;
  int64_t previous_iteration = 0;
  std::string previous_path;
  for (const std::string& path : paths) {
    Status status = ForEachRecord(path, [&](IterationRecord&& record) {
      if (have_previous && record.iteration != previous_iteration + 1) {
        return InvalidArgumentError(StrPrintf(
            "iteration continuity broken: record iter=%lld in %s follows "
            "iter=%lld in %s (expected %lld)",
            static_cast<long long>(record.iteration), path.c_str(),
            static_cast<long long>(previous_iteration), previous_path.c_str(),
            static_cast<long long>(previous_iteration + 1)));
      }
      have_previous = true;
      previous_iteration = record.iteration;
      previous_path = path;
      return visit(std::move(record));
    });
    GARL_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

// Enumerates the on-disk segment chain for `base_path` (just the base file
// when rotation is off). Missing files simply end the chain.
std::vector<std::string> ExistingSegments(const std::string& base_path,
                                          int64_t max_segment_bytes) {
  std::vector<std::string> segments;
  if (max_segment_bytes <= 0) {
    if (FileSizeBytes(base_path).ok()) segments.push_back(base_path);
    return segments;
  }
  for (int64_t k = 0;; ++k) {
    std::string segment =
        RotatingAppendFile::SegmentPath(base_path, max_segment_bytes, k);
    if (!FileSizeBytes(segment).ok()) break;
    segments.push_back(std::move(segment));
  }
  return segments;
}

// Cuts the existing log at the resume point: keeps every record with
// iter < resume_iteration, truncates at the first record at-or-past the
// resume point or the first torn/unparseable line, and deletes later
// segments. Returns the segment index appending should continue at.
StatusOr<int64_t> TrimForResume(const std::vector<std::string>& segments,
                                int64_t resume_iteration) {
  int64_t continue_segment =
      segments.empty() ? 0 : static_cast<int64_t>(segments.size()) - 1;
  for (size_t i = 0; i < segments.size(); ++i) {
    StatusOr<std::string> contents = ReadFileToString(segments[i]);
    if (!contents.ok()) return contents.status();
    const std::string& text = contents.value();
    size_t kept = 0;
    bool cut = false;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t newline = text.find('\n', pos);
      if (newline == std::string::npos) {
        // Torn tail from a mid-append kill. Every record before the resume
        // point was fully appended (newline included) and fsync'd before
        // the checkpoint existed, so a torn line is always safe to drop.
        cut = true;
        break;
      }
      const std::string line = text.substr(pos, newline - pos);
      StatusOr<IterationRecord> record = ParseIterationRecord(line);
      if (!record.ok() || record.value().iteration >= resume_iteration) {
        cut = true;
        break;
      }
      pos = newline + 1;
      kept = pos;
    }
    if (!cut) continue;
    if (kept != text.size()) {
      GARL_RETURN_IF_ERROR(
          WriteFileDurable(segments[i], std::string_view(text).substr(0, kept)));
    }
    for (size_t j = i + 1; j < segments.size(); ++j) {
      RemoveAllBestEffort(segments[j]);
    }
    continue_segment = static_cast<int64_t>(i);
    break;
  }
  return continue_segment;
}

}  // namespace

std::string FormatIterationRecord(const IterationRecord& record) {
  std::string out;
  out.reserve(512);
  out += "{\"v\":";
  AppendInt(&out, kRunLogSchemaVersion);
  out += ",\"det\":{\"iter\":";
  AppendInt(&out, record.iteration);
  out += ",\"episodes\":";
  AppendInt(&out, record.episode_counter);
  out += ",\"ugv_reward\":";
  AppendDouble(&out, record.ugv_episode_reward);
  out += ",\"uav_reward\":";
  AppendDouble(&out, record.uav_episode_reward);
  out += ",\"policy_loss\":";
  AppendDouble(&out, record.policy_loss);
  out += ",\"value_loss\":";
  AppendDouble(&out, record.value_loss);
  out += ",\"entropy\":";
  AppendDouble(&out, record.entropy);
  out += ",\"ugv_grad_norm\":";
  AppendDouble(&out, record.ugv_grad_norm);
  out += ",\"uav_grad_norm\":";
  AppendDouble(&out, record.uav_grad_norm);
  out += ",\"lr\":";
  AppendDouble(&out, record.lr);
  out += ",\"diverged\":";
  AppendBool(&out, record.diverged);
  out += ",\"recovered\":";
  AppendBool(&out, record.recovered);
  out += ",\"psi\":";
  AppendDouble(&out, record.psi);
  out += ",\"xi\":";
  AppendDouble(&out, record.xi);
  out += ",\"zeta\":";
  AppendDouble(&out, record.zeta);
  out += ",\"beta\":";
  AppendDouble(&out, record.beta);
  out += ",\"efficiency\":";
  AppendDouble(&out, record.efficiency);
  if (record.faults_enabled) {
    out += ",\"fault_digest\":";
    AppendJsonString(&out, StrPrintf("%08x", record.fault_digest));
  }
  out += "},\"rt\":{\"wall_ns\":";
  AppendInt(&out, record.wall_ns);
  out += ",\"cache_hits\":";
  AppendInt(&out, record.route_cache_hits);
  out += ",\"cache_misses\":";
  AppendInt(&out, record.route_cache_misses);
  out += ",\"pool\":{\"threads\":";
  AppendInt(&out, record.pool_threads);
  out += ",\"tasks\":";
  AppendInt(&out, record.pool_tasks);
  out += ",\"parallel_fors\":";
  AppendInt(&out, record.pool_parallel_fors);
  out += ",\"inline_fors\":";
  AppendInt(&out, record.pool_inline_fors);
  out += "},\"arena\":{\"heap_allocs\":";
  AppendInt(&out, record.arena_heap_allocs);
  out += ",\"reuses\":";
  AppendInt(&out, record.arena_reuses);
  out += ",\"cached_bytes\":";
  AppendInt(&out, record.arena_cached_bytes);
  out += ",\"high_water_bytes\":";
  AppendInt(&out, record.arena_high_water_bytes);
  out += "},\"spans\":[";
  for (size_t i = 0; i < record.spans.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    AppendJsonString(&out, record.spans[i].name);
    out += ",\"count\":";
    AppendInt(&out, record.spans[i].count);
    out += ",\"total_ns\":";
    AppendInt(&out, record.spans[i].total_ns);
    out += '}';
  }
  out += "],\"hist\":[";
  for (size_t i = 0; i < record.hists.size(); ++i) {
    if (i) out += ',';
    out += "{\"name\":";
    AppendJsonString(&out, record.hists[i].name);
    out += ",\"count\":";
    AppendInt(&out, record.hists[i].count);
    out += ",\"p50\":";
    AppendDouble(&out, record.hists[i].p50);
    out += ",\"p95\":";
    AppendDouble(&out, record.hists[i].p95);
    out += ",\"p99\":";
    AppendDouble(&out, record.hists[i].p99);
    out += ",\"p999\":";
    AppendDouble(&out, record.hists[i].p999);
    out += '}';
  }
  out += ']';
  if (record.faults_enabled) {
    out += ",\"faults\":{\"uav_dropouts\":";
    AppendInt(&out, record.fault_uav_dropouts);
    out += ",\"ugv_stalls\":";
    AppendInt(&out, record.fault_ugv_stalls);
    out += ",\"comm_blackouts\":";
    AppendInt(&out, record.fault_comm_blackouts);
    out += ",\"sensor_faults\":";
    AppendInt(&out, record.fault_sensor_faults);
    out += ",\"fs_injected\":";
    AppendInt(&out, record.fault_fs_injected);
    out += ",\"fs_recovered\":";
    AppendInt(&out, record.fault_fs_recovered);
    out += '}';
  }
  if (record.serve_enabled) {
    out += ",\"serve\":{\"plan_version\":";
    AppendInt(&out, record.serve_plan_version);
    out += ",\"queue_depth\":";
    AppendInt(&out, record.serve_queue_depth);
    out += ",\"shed\":";
    AppendInt(&out, record.serve_shed);
    out += ",\"rejected\":";
    AppendInt(&out, record.serve_rejected);
    out += ",\"deadline_misses\":";
    AppendInt(&out, record.serve_deadline_misses);
    out += ",\"execute_failures\":";
    AppendInt(&out, record.serve_execute_failures);
    out += ",\"breaker_trips\":";
    AppendInt(&out, record.serve_breaker_trips);
    out += '}';
  }
  out += "}}";
  return out;
}

StatusOr<IterationRecord> ParseIterationRecord(const std::string& line) {
  JsonParser parser(line);
  StatusOr<JsonValue> root = parser.Parse();
  if (!root.ok()) return root.status();
  IterationRecord record;
  GARL_RETURN_IF_ERROR(DecodeRecord(root.value(), &record));
  return record;
}

StatusOr<std::string> DeterministicPayload(const std::string& line) {
  static const std::string kKey = "\"det\":";
  size_t at = line.find(kKey);
  if (at == std::string::npos) {
    return InvalidArgumentError("record has no \"det\" payload");
  }
  size_t start = at + kKey.size();
  if (start >= line.size() || line[start] != '{') {
    return InvalidArgumentError("\"det\" payload is not an object");
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (size_t i = start; i < line.size(); ++i) {
    char c = line[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) return line.substr(start, i - start + 1);
    }
  }
  return InvalidArgumentError("unterminated \"det\" object");
}

Status RunLog::AppendRecord(const IterationRecord& record) {
  return file_.Append(FormatIterationRecord(record) + '\n');
}

StatusOr<RunLog> OpenRunLog(const std::string& path,
                            const RunLogOptions& options) {
  if (options.resume_iteration < 0) {
    // Fresh start. Remove any stale segment chain first: a shorter new run
    // must not leave old tail segments behind for readers to stitch in.
    for (const std::string& segment :
         ExistingSegments(path, options.max_segment_bytes)) {
      if (segment != path) RemoveAllBestEffort(segment);
    }
    StatusOr<RotatingAppendFile> file = RotatingAppendFile::Open(
        path, options.max_segment_bytes, {}, AppendMode::kTruncate, 0);
    if (!file.ok()) return file.status();
    return RunLog(std::move(file).value());
  }
  StatusOr<int64_t> continue_segment =
      TrimForResume(ExistingSegments(path, options.max_segment_bytes),
                    options.resume_iteration);
  if (!continue_segment.ok()) return continue_segment.status();
  StatusOr<RotatingAppendFile> file =
      RotatingAppendFile::Open(path, options.max_segment_bytes, {},
                               AppendMode::kContinue,
                               continue_segment.value());
  if (!file.ok()) return file.status();
  return RunLog(std::move(file).value());
}

Status ValidateRunLogFile(const std::string& path) {
  return ForEachRecord(path,
                       [](IterationRecord&&) { return Status::Ok(); });
}

namespace {

// Shared accumulator behind SummarizeRunLogFile(s).
class SummaryBuilder {
 public:
  Status AddRecord(IterationRecord&& record) {
    if (summary_.records == 0) summary_.first = record;
    policy_ += record.policy_loss;
    value_ += record.value_loss;
    entropy_ += record.entropy;
    if (record.diverged) ++summary_.diverged_iterations;
    summary_.total_wall_ns += record.wall_ns;
    if (record.faults_enabled) {
      ++summary_.fault_records;
      summary_.fault_events += record.fault_uav_dropouts +
                               record.fault_ugv_stalls +
                               record.fault_comm_blackouts +
                               record.fault_sensor_faults;
    }
    if (record.serve_enabled) ++summary_.serve_records;
    for (const SpanTiming& span : record.spans) {
      SpanTiming& agg = summary_.spans[span.name];
      if (agg.name.empty()) agg.name = span.name;
      agg.count += span.count;
      agg.total_ns += span.total_ns;
    }
    summary_.last = std::move(record);
    ++summary_.records;
    return Status::Ok();
  }

  RunLogSummary Finish() {
    if (summary_.records > 0) {
      double n = static_cast<double>(summary_.records);
      summary_.mean_policy_loss = policy_ / n;
      summary_.mean_value_loss = value_ / n;
      summary_.mean_entropy = entropy_ / n;
    }
    return std::move(summary_);
  }

 private:
  RunLogSummary summary_;
  double policy_ = 0.0;
  double value_ = 0.0;
  double entropy_ = 0.0;
};

}  // namespace

StatusOr<RunLogSummary> SummarizeRunLogFile(const std::string& path) {
  SummaryBuilder builder;
  Status status = ForEachRecord(path, [&](IterationRecord&& record) {
    return builder.AddRecord(std::move(record));
  });
  if (!status.ok()) return status;
  return builder.Finish();
}

StatusOr<std::vector<std::string>> CollectRunLogInputs(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (!std::filesystem::is_directory(std::filesystem::path(path), ec)) {
      files.push_back(path);
      continue;
    }
    std::vector<std::string> entries;
    for (const auto& entry :
         std::filesystem::directory_iterator(std::filesystem::path(path), ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (name.find(".jsonl") == std::string::npos) continue;
      entries.push_back(entry.path().string());
    }
    if (ec) {
      return InternalError("cannot list directory: " + path);
    }
    if (entries.empty()) {
      return NotFoundError("no run-log files (*.jsonl*) in directory: " +
                           path);
    }
    // The zero-padded segment suffix makes name order == segment order.
    std::sort(entries.begin(), entries.end());
    files.insert(files.end(), entries.begin(), entries.end());
  }
  return files;
}

Status ValidateRunLogFiles(const std::vector<std::string>& paths) {
  return ForEachRecordInFiles(
      paths, [](IterationRecord&&) { return Status::Ok(); });
}

StatusOr<RunLogSummary> SummarizeRunLogFiles(
    const std::vector<std::string>& paths) {
  SummaryBuilder builder;
  Status status = ForEachRecordInFiles(paths, [&](IterationRecord&& record) {
    return builder.AddRecord(std::move(record));
  });
  if (!status.ok()) return status;
  return builder.Finish();
}

}  // namespace garl::obs
