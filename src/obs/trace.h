#ifndef GARL_OBS_TRACE_H_
#define GARL_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"

// Scoped trace spans: `GARL_TRACE_SPAN("trainer/collect");` measures the
// enclosing scope's wall time on the sanctioned monotonic clock and folds it
// into a process-wide aggregate keyed by span name. Spans nest freely — each
// nested span records its own inclusive wall time.
//
// Aggregation is sharded per thread: a span records into its thread's shard
// (one uncontended mutex), and TraceCollector::Snapshot() merges every live
// shard plus the retired totals of exited threads. Shard merge order never
// affects the result (sums and maxima commute) and snapshots are sorted by
// name, so readout order is deterministic even though the durations are not.
//
// Span *names, counts and nesting* are deterministic properties of the
// control flow; span *durations* are runtime data and must only ever feed
// the `rt` section of a run log (see DESIGN.md, Observability).

namespace garl::obs {

// Aggregate for one span name.
struct SpanStats {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  int64_t max_ns = 0;
};

// Process-wide span aggregator. Deliberately a singleton: per-thread shards
// hold a pointer to their collector across the whole thread lifetime, which
// is only safe because the collector is immortal.
class TraceCollector {
 public:
  // Folds one completed span into the calling thread's shard.
  void Record(const std::string& name, int64_t duration_ns);

  // Merged view of every shard, sorted by span name.
  std::vector<SpanStats> Snapshot() const;

  // Clears all shards and retired totals (test / run-boundary hook).
  void Reset();

  // The process-wide collector GARL_TRACE_SPAN records into.
  static TraceCollector& Global();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

 private:
  TraceCollector() = default;

  struct Shard {
    std::mutex mutex;
    std::map<std::string, SpanStats> spans;
  };
  // Owns one shard for the lifetime of its thread; flushes into the
  // collector's retired totals on thread exit.
  struct ShardHandle;
  friend struct ShardHandle;

  Shard& LocalShard();
  void Retire(Shard* shard);

  mutable std::mutex mutex_;
  std::vector<Shard*> shards_;  // live shards, owned by their ShardHandle
  std::map<std::string, SpanStats> retired_;
};

// RAII span: records `MonotonicNowNs()` elapsed between construction and
// destruction under `name`. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), start_ns_(MonotonicNowNs()) {}
  ~TraceSpan() {
    TraceCollector::Global().Record(name_, MonotonicNowNs() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_ns_;
};

#define GARL_TRACE_CONCAT_INNER_(a, b) a##b
#define GARL_TRACE_CONCAT_(a, b) GARL_TRACE_CONCAT_INNER_(a, b)
// Times the enclosing scope under `name` (a string literal).
#define GARL_TRACE_SPAN(name) \
  ::garl::obs::TraceSpan GARL_TRACE_CONCAT_(garl_trace_span_, __LINE__)(name)

}  // namespace garl::obs

#endif  // GARL_OBS_TRACE_H_
