#include "obs/trace.h"

#include <algorithm>

namespace garl::obs {

namespace {

void FoldInto(std::map<std::string, SpanStats>& dest, const SpanStats& s) {
  SpanStats& agg = dest[s.name];
  if (agg.name.empty()) agg.name = s.name;
  agg.count += s.count;
  agg.total_ns += s.total_ns;
  agg.max_ns = std::max(agg.max_ns, s.max_ns);
}

}  // namespace

struct TraceCollector::ShardHandle {
  explicit ShardHandle(TraceCollector* collector) : owner(collector) {}
  ~ShardHandle() { owner->Retire(&shard); }
  TraceCollector* owner;
  Shard shard;
};

TraceCollector::Shard& TraceCollector::LocalShard() {
  // The collector is a process-lifetime singleton (private ctor), so the
  // pointer a thread's handle keeps to it can never dangle; the handle's
  // destructor runs at thread exit and folds the shard into retired_.
  thread_local std::unique_ptr<ShardHandle> handle;
  if (handle == nullptr) {
    handle = std::make_unique<ShardHandle>(this);
    std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(&handle->shard);
  }
  return handle->shard;
}

void TraceCollector::Record(const std::string& name, int64_t duration_ns) {
  Shard& shard = LocalShard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  SpanStats& agg = shard.spans[name];
  if (agg.name.empty()) agg.name = name;
  agg.count += 1;
  agg.total_ns += duration_ns;
  agg.max_ns = std::max(agg.max_ns, duration_ns);
}

void TraceCollector::Retire(Shard* shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& entry : shard->spans) FoldInto(retired_, entry.second);
  }
  shards_.erase(std::remove(shards_.begin(), shards_.end(), shard),
                shards_.end());
}

std::vector<SpanStats> TraceCollector::Snapshot() const {
  std::map<std::string, SpanStats> merged;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : retired_) FoldInto(merged, entry.second);
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& entry : shard->spans) FoldInto(merged, entry.second);
  }
  std::vector<SpanStats> result;
  result.reserve(merged.size());
  for (auto& entry : merged) result.push_back(std::move(entry.second));
  return result;  // std::map iteration: already sorted by name
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.clear();
  for (Shard* shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->spans.clear();
  }
}

TraceCollector& TraceCollector::Global() {
  // Deliberately immortal: shards retire into the collector from thread-exit
  // destructors, and the global thread pool joins its workers during static
  // destruction — a destructible singleton could be gone by then.
  static TraceCollector* collector = new TraceCollector;  // garl-lint: allow(raw-new-delete)
  return *collector;
}

}  // namespace garl::obs
