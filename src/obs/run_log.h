#ifndef GARL_OBS_RUN_LOG_H_
#define GARL_OBS_RUN_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/fs_util.h"
#include "common/status.h"

// Structured JSONL run log: one record per training iteration, streamed to
// disk as it happens. Every record is a single line of the form
//
//   {"v":1,"det":{...},"rt":{...}}
//
// with a hard contract separating the two payloads:
//
//  * `det` — deterministic fields: a pure function of (seed, config). The
//    golden-run tests byte-compare this object across repeat runs and across
//    GARL_NUM_THREADS settings. Fields are emitted in a fixed order with a
//    fixed ("%.17g") float encoding, so equality of values implies equality
//    of bytes.
//  * `rt` — runtime fields: wall-clock span timings (from the sanctioned
//    clock, src/obs/clock.h), route-cache and thread-pool statistics. These
//    legitimately vary run-to-run and thread-count-to-thread-count and are
//    excluded from golden comparisons.
//
// Nothing may move from `rt` into `det` without a determinism argument, and
// no clock-derived value may ever appear in `det`. See DESIGN.md,
// Observability.

namespace garl::obs {

inline constexpr int kRunLogSchemaVersion = 1;

// One span's aggregate inside a record's `rt` section.
struct SpanTiming {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
};

// One latency histogram's quantile summary inside a record's `rt` section.
// Values come from obs::Histogram snapshots (bucket-resolution quantiles);
// like span timings they are runtime-only and never golden-compared.
struct HistogramTiming {
  std::string name;
  int64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

// One training iteration. Field groups mirror the det/rt split above.
struct IterationRecord {
  // --- deterministic payload (`det`) ---
  int64_t iteration = 0;         // Train() loop index
  int64_t episode_counter = 0;   // global episodes collected so far
  double ugv_episode_reward = 0.0;
  double uav_episode_reward = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double ugv_grad_norm = 0.0;
  double uav_grad_norm = 0.0;
  double lr = 0.0;               // UGV optimizer LR after this iteration
  bool diverged = false;         // sentinel tripped at least once
  bool recovered = false;        // ...and the rolled-back retry succeeded
  double psi = 0.0;              // data collection ratio (Eq. 3)
  double xi = 0.0;               // fairness (Eq. 4)
  double zeta = 0.0;             // cooperation factor (Eq. 5)
  double beta = 0.0;             // energy ratio (Eq. 6)
  double efficiency = 0.0;       // lambda (Eq. 7)
  // --- fault injection (optional trailing fields in BOTH payloads) ---
  // When false (the default), no fault field is emitted and the record's
  // bytes are exactly the pre-fault schema — golden logs stay untouched.
  // When true, `det` gains a trailing "fault_digest" (the episode-ordered
  // schedule-digest chain as an 8-hex-char string: JSON numbers cannot hold
  // 32-bit digests faithfully in every consumer) and `rt` gains a trailing
  // "faults" object with event counts. All-or-nothing: a record carrying
  // one side but not the other fails validation.
  bool faults_enabled = false;
  uint32_t fault_digest = 0;
  int64_t fault_uav_dropouts = 0;
  int64_t fault_ugv_stalls = 0;
  int64_t fault_comm_blackouts = 0;
  int64_t fault_sensor_faults = 0;
  int64_t fault_fs_injected = 0;   // cumulative injected write faults
  int64_t fault_fs_recovered = 0;  // cumulative retry recoveries
  // --- serving counters (optional trailing `rt` object) ---
  // When false (the default) no serving field is emitted. When true, `rt`
  // gains a trailing "serve" object mirroring serve::PolicyServer's health
  // counters. Runtime-only: queue depth and every counter below depend on
  // arrival timing, so none of this may ever move into `det`. When both
  // optional groups are present, "faults" precedes "serve".
  bool serve_enabled = false;
  int64_t serve_plan_version = 0;
  int64_t serve_queue_depth = 0;
  int64_t serve_shed = 0;
  int64_t serve_rejected = 0;
  int64_t serve_deadline_misses = 0;
  int64_t serve_execute_failures = 0;
  int64_t serve_breaker_trips = 0;
  // --- runtime payload (`rt`) ---
  int64_t wall_ns = 0;           // iteration wall time
  int64_t route_cache_hits = 0;    // cumulative, trainer world
  int64_t route_cache_misses = 0;  // cumulative, trainer world
  int64_t pool_threads = 0;
  int64_t pool_tasks = 0;          // cumulative tasks submitted
  int64_t pool_parallel_fors = 0;  // cumulative ParallelFor calls
  int64_t pool_inline_fors = 0;    // ...of which ran inline
  // Tensor arena allocator counters (src/nn/arena.h), cumulative for the
  // process. heap_allocs flat across iterations == zero steady-state
  // allocation, the property bench_kernels and arena_test assert.
  int64_t arena_heap_allocs = 0;      // buffers/slabs that hit the heap
  int64_t arena_reuses = 0;           // acquisitions served from cache
  int64_t arena_cached_bytes = 0;     // bytes parked in free lists now
  int64_t arena_high_water_bytes = 0;  // max cached_bytes observed
  std::vector<SpanTiming> spans;   // this iteration's spans, sorted by name
  // Registered latency histograms (serving SLO quantiles), sorted by name.
  std::vector<HistogramTiming> hists;
};

// Renders one record as a single JSONL line (no trailing newline). Field
// order and float encoding are part of the schema: byte-stable for equal
// values.
std::string FormatIterationRecord(const IterationRecord& record);

// Parses one JSONL line. Any malformed JSON, missing/extra field, or
// type mismatch yields a non-OK Status naming the problem.
[[nodiscard]] StatusOr<IterationRecord> ParseIterationRecord(
    const std::string& line);

// Extracts the raw bytes of the `det` object from one JSONL line (for
// golden byte-comparisons that must not depend on parser round-trips).
[[nodiscard]] StatusOr<std::string> DeterministicPayload(
    const std::string& line);

// How OpenRunLog treats the path and any bytes already there.
struct RunLogOptions {
  // > 0: rotate to a new segment (base + ".%06lld") once the current one
  // reaches this many bytes, rolling over only at record boundaries.
  // 0: no rotation — all records go to the base path itself, byte-for-byte
  // identical to the pre-rotation format.
  int64_t max_segment_bytes = 0;
  // >= 0: resume a crashed run that restarts at this iteration. Existing
  // records with iter < resume_iteration are kept verbatim (they are
  // already durable — appended and fsync'd before the checkpoint that
  // defined the resume point); the log is cut at the first record with
  // iter >= resume_iteration or the first torn/unparseable line, later
  // segments are deleted, and appending continues in place. The re-run
  // iterations re-emit identical `det` bytes, so a resumed run's det stream
  // matches an uninterrupted one.
  // -1 (default): start fresh — truncate, removing stale segments.
  int64_t resume_iteration = -1;
};

// Streaming writer. Opens `path` on construction via OpenRunLog (truncating,
// or trimming-and-continuing under RunLogOptions::resume_iteration);
// AppendRecord writes one line through fs_util's durable append path
// (fsync'd, retried with backoff on transient faults), so a crashed run
// keeps every completed iteration and a transient write error costs
// nothing but the retries.
class RunLog {
 public:
  [[nodiscard]] Status AppendRecord(const IterationRecord& record);
  // The segment currently being appended to (the base path itself when
  // rotation is off).
  const std::string& path() const { return file_.current_path(); }

  RunLog(RunLog&&) = default;
  RunLog& operator=(RunLog&&) = default;

 private:
  friend StatusOr<RunLog> OpenRunLog(const std::string& path,
                                     const RunLogOptions& options);
  explicit RunLog(RotatingAppendFile file) : file_(std::move(file)) {}

  RotatingAppendFile file_;
};

[[nodiscard]] StatusOr<RunLog> OpenRunLog(const std::string& path,
                                          const RunLogOptions& options);
[[nodiscard]] inline StatusOr<RunLog> OpenRunLog(const std::string& path) {
  return OpenRunLog(path, RunLogOptions{});
}

// Whole-file schema check: every line must parse as a valid record with
// exactly the documented field set. Empty files are valid (a run that died
// before its first iteration). Returns the first problem found, with its
// 1-based line number.
[[nodiscard]] Status ValidateRunLogFile(const std::string& path);

// Aggregate view of a run log, for `garl_tracecat`.
struct RunLogSummary {
  int64_t records = 0;
  IterationRecord first;  // valid when records > 0
  IterationRecord last;
  double mean_policy_loss = 0.0;
  double mean_value_loss = 0.0;
  double mean_entropy = 0.0;
  int64_t diverged_iterations = 0;
  int64_t total_wall_ns = 0;
  // Per-span totals accumulated across all records, keyed by name.
  std::map<std::string, SpanTiming> spans;
  // Fault-injection aggregates (zero for fault-free logs). Cumulative fs
  // counters live in `last`.
  int64_t fault_records = 0;  // records carrying fault fields
  int64_t fault_events = 0;   // env fault events summed over all records
  // Serving aggregates (zero for logs without serve fields). Cumulative
  // serving counters live in `last`.
  int64_t serve_records = 0;  // records carrying the rt.serve object
};

[[nodiscard]] StatusOr<RunLogSummary> SummarizeRunLogFile(
    const std::string& path);

// ---- Multi-file (rotated-segment) reads ------------------------------------
//
// A rotated run log is the ordered concatenation of its segments
// (base.000000, base.000001, ...). The helpers below stitch that stream back
// together for garl_tracecat and the fleet supervisor's results merge.

// Expands `paths` into an ordered list of run-log files: a directory is
// replaced by the ".jsonl"-named files inside it (sorted by name — the
// zero-padded segment suffix makes lexicographic order == segment order);
// plain files pass through in the order given. Errors if a directory holds
// no run-log files.
[[nodiscard]] StatusOr<std::vector<std::string>> CollectRunLogInputs(
    const std::vector<std::string>& paths);

// Schema-checks every line of every file AND the cross-file iteration
// continuity contract: over the concatenated stream, each record's `iter`
// must be exactly the previous record's + 1 (the first record anchors the
// sequence). A dropped, duplicated, or mis-ordered segment surfaces as a
// continuity error naming both records.
[[nodiscard]] Status ValidateRunLogFiles(const std::vector<std::string>& paths);

// Aggregates the concatenated stream into one summary (same semantics as
// SummarizeRunLogFile over the stitched records), enforcing the same
// continuity contract.
[[nodiscard]] StatusOr<RunLogSummary> SummarizeRunLogFiles(
    const std::vector<std::string>& paths);

}  // namespace garl::obs

#endif  // GARL_OBS_RUN_LOG_H_
