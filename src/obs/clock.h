#ifndef GARL_OBS_CLOCK_H_
#define GARL_OBS_CLOCK_H_

#include <cstdint>

// The single sanctioned monotonic clock. Library code must not read wall or
// monotonic clocks directly — the garl_lint `nondet-time` rule bans
// std::chrono clocks and the C time APIs everywhere outside bench/ — because
// hidden clock reads are hidden nondeterminism. Observability code is the one
// legitimate consumer of time in the library, so this translation unit
// (src/obs/clock.*) is whitelisted the same way src/common/rng.* is for
// randomness, and everything else goes through MonotonicNowNs().
//
// Timing values obtained here are *runtime* data: they may feed the `rt`
// section of a run log or a trace span, never a deterministic payload field,
// a decision, or serialized model state (see DESIGN.md, Observability).

namespace garl::obs {

// Nanoseconds on a monotonic clock with an arbitrary epoch. Differences are
// meaningful; absolute values are not.
int64_t MonotonicNowNs();

}  // namespace garl::obs

#endif  // GARL_OBS_CLOCK_H_
