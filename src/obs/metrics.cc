#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace garl::obs {

Histogram::Histogram(std::vector<double> bucket_upper_bounds)
    : bounds_(std::move(bucket_upper_bounds)),
      counts_(bounds_.size() + 1, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  GARL_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    GARL_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits `value`; past-the-end = overflow.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::MergeFrom(const Histogram& other) {
  GARL_CHECK_MSG(bounds_ == other.bounds_,
                 "cannot merge histograms with different bucket bounds");
  // Copy the source under its own lock first so self-merge or opposite-order
  // merges cannot deadlock on the pair of mutexes.
  std::vector<int64_t> other_counts;
  int64_t other_count;
  double other_sum, other_min, other_max;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    other_counts = other.counts_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other_counts[i];
  count_ += other_count;
  sum_ += other_sum;
  min_ = std::min(min_, other_min);
  max_ = std::max(max_, other_max);
}

int64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  // Rank of the requested observation, 1-based; q = 0 asks for the first.
  int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) return bounds_[i];
  }
  return max_;  // rank lands in the overflow bucket
}

std::vector<int64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counters_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(
    const std::string& name, const std::vector<double>& bucket_upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = histograms_.try_emplace(name, nullptr);
  if (inserted) {
    it->second = std::make_unique<Histogram>(bucket_upper_bounds);
  } else {
    GARL_CHECK_MSG(it->second->bucket_bounds() == bucket_upper_bounds,
                   "histogram '" + name + "' re-registered with new bounds");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.name = name;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.min = histogram->min();
    stats.max = histogram->max();
    stats.p50 = histogram->P50();
    stats.p95 = histogram->P95();
    stats.p99 = histogram->P99();
    stats.p999 = histogram->P999();
    snapshot.histograms.push_back(std::move(stats));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->Reset();
  for (auto& entry : gauges_) entry.second->Reset();
  for (auto& entry : histograms_) entry.second->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // Immortal for the same reason as TraceCollector::Global(): pool workers
  // may still touch metrics while draining during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry;  // garl-lint: allow(raw-new-delete)
  return *registry;
}

}  // namespace garl::obs
