#include "obs/clock.h"

#include <chrono>

namespace garl::obs {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace garl::obs
