#ifndef GARL_OBS_METRICS_H_
#define GARL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms. Thread-safe; snapshots iterate in deterministic (name-sorted)
// order so anything serialized from a snapshot is machine-independent.
//
// Metric *values* that depend on timing or thread scheduling (span
// durations, queue depths) are runtime data and must stay out of
// deterministic run-log payloads; the registry itself does not distinguish,
// the emitter does (see src/obs/run_log.h).

namespace garl::obs {

// Monotonically increasing integer metric. Increment is lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with deterministic quantile readout.
//
// Buckets are defined by strictly increasing upper bounds b_0 < ... < b_{n-1}
// plus an implicit overflow bucket. An observation v lands in the first
// bucket with v <= b_i, else in overflow. Quantile(q) returns the upper bound
// of the bucket containing the rank-ceil(q*count) observation — a
// deterministic function of the bucket counts (the overflow bucket reports
// the exact maximum observed). This trades resolution for a bounded, mergeable
// representation: per-thread shards combine exactly with MergeFrom.
class Histogram {
 public:
  // `bucket_upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bucket_upper_bounds);

  void Observe(double value);

  // Exact shard merge: counts add, min/max combine. Bucket bounds must match.
  void MergeFrom(const Histogram& other);

  int64_t count() const;
  double sum() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty

  // Deterministic bucket-resolution quantile (see class comment); q is
  // clamped to [0, 1]. Returns 0.0 on an empty histogram.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

  const std::vector<double>& bucket_bounds() const { return bounds_; }
  // Per-bucket counts; the last entry is the overflow bucket.
  std::vector<int64_t> bucket_counts() const;

  void Reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<int64_t> counts_;  // bounds_.size() + 1, last = overflow
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Point-in-time copy of every metric, sorted by name within each kind.
struct MetricsSnapshot {
  struct HistogramStats {
    std::string name;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
  };
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramStats> histograms;
};

// Name -> metric map. Get* registers on first use and returns a reference
// that stays valid for the registry's lifetime (Reset zeroes values, it never
// invalidates references). All methods are thread-safe.
class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // Repeat lookups of the same name must pass identical bounds.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bucket_upper_bounds);

  MetricsSnapshot Snapshot() const;

  // Zeroes every registered metric (values only; references stay valid).
  // Test/benchmark hook — not meaningful mid-run.
  void Reset();

  // The process-wide registry used by library instrumentation.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace garl::obs

#endif  // GARL_OBS_METRICS_H_
