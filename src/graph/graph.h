#ifndef GARL_GRAPH_GRAPH_H_
#define GARL_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

// Undirected weighted graph used for the UGV stop network ("stop graph"
// G = {B, E} in the paper, Section III-A).

namespace garl::graph {

class Graph {
 public:
  struct Edge {
    int64_t to;
    double weight;
  };

  explicit Graph(int64_t num_nodes);

  // Adds an undirected edge; parallel edges are rejected, self loops are
  // not allowed. Weight must be positive (edge length in meters).
  void AddEdge(int64_t a, int64_t b, double weight = 1.0);

  int64_t num_nodes() const { return static_cast<int64_t>(adjacency_.size()); }
  int64_t num_edges() const { return num_edges_; }

  const std::vector<Edge>& Neighbors(int64_t node) const;
  bool HasEdge(int64_t a, int64_t b) const;
  int64_t Degree(int64_t node) const;

  // True when every node can reach every other node.
  bool IsConnected() const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  int64_t num_edges_ = 0;
};

}  // namespace garl::graph

#endif  // GARL_GRAPH_GRAPH_H_
