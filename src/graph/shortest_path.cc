#include "graph/shortest_path.h"

#include <queue>

#include "common/check.h"

namespace garl::graph {

ShortestPaths Dijkstra(const Graph& graph, int64_t source) {
  GARL_CHECK_GE(source, 0);
  GARL_CHECK_LT(source, graph.num_nodes());
  size_t n = static_cast<size_t>(graph.num_nodes());
  ShortestPaths result;
  result.dist.assign(n, kInfDistance);
  result.parent.assign(n, -1);
  using Item = std::pair<double, int64_t>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.dist[static_cast<size_t>(source)] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d > result.dist[static_cast<size_t>(node)]) continue;
    for (const Graph::Edge& e : graph.Neighbors(node)) {
      double nd = d + e.weight;
      if (nd < result.dist[static_cast<size_t>(e.to)]) {
        result.dist[static_cast<size_t>(e.to)] = nd;
        result.parent[static_cast<size_t>(e.to)] = node;
        heap.push({nd, e.to});
      }
    }
  }
  return result;
}

std::vector<int64_t> BfsHops(const Graph& graph, int64_t source) {
  GARL_CHECK_GE(source, 0);
  GARL_CHECK_LT(source, graph.num_nodes());
  std::vector<int64_t> hops(static_cast<size_t>(graph.num_nodes()), -1);
  std::queue<int64_t> queue;
  hops[static_cast<size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    int64_t node = queue.front();
    queue.pop();
    for (const Graph::Edge& e : graph.Neighbors(node)) {
      if (hops[static_cast<size_t>(e.to)] < 0) {
        hops[static_cast<size_t>(e.to)] = hops[static_cast<size_t>(node)] + 1;
        queue.push(e.to);
      }
    }
  }
  return hops;
}

std::vector<std::vector<double>> AllPairsDistances(const Graph& graph) {
  std::vector<std::vector<double>> dist;
  dist.reserve(static_cast<size_t>(graph.num_nodes()));
  for (int64_t s = 0; s < graph.num_nodes(); ++s) {
    dist.push_back(Dijkstra(graph, s).dist);
  }
  return dist;
}

std::vector<int64_t> NextHopsFromPaths(const ShortestPaths& paths,
                                       int64_t source) {
  size_t n = paths.parent.size();
  std::vector<int64_t> next(n, -1);
  for (int64_t t = 0; t < static_cast<int64_t>(n); ++t) {
    if (t == source) {
      next[static_cast<size_t>(t)] = source;
      continue;
    }
    if (paths.parent[static_cast<size_t>(t)] < 0) continue;  // unreachable
    // Walk back from t until the node whose parent is the source.
    int64_t node = t;
    while (paths.parent[static_cast<size_t>(node)] != source) {
      node = paths.parent[static_cast<size_t>(node)];
    }
    next[static_cast<size_t>(t)] = node;
  }
  return next;
}

std::vector<std::vector<int64_t>> NextHopTable(const Graph& graph) {
  std::vector<std::vector<int64_t>> next;
  next.reserve(static_cast<size_t>(graph.num_nodes()));
  for (int64_t s = 0; s < graph.num_nodes(); ++s) {
    next.push_back(NextHopsFromPaths(Dijkstra(graph, s), s));
  }
  return next;
}

}  // namespace garl::graph
