#ifndef GARL_GRAPH_SHORTEST_PATH_H_
#define GARL_GRAPH_SHORTEST_PATH_H_

#include <limits>
#include <vector>

#include "graph/graph.h"

// Shortest-path machinery: Dijkstra distances feed the structural
// correlation function s(., .) of MC-GCN (Eq. 19-20) and UGV routing.

namespace garl::graph {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  // dist[i] = weighted shortest distance from the source to node i
  // (kInfDistance when unreachable).
  std::vector<double> dist;
  // parent[i] = previous node on a shortest path (-1 for source/unreachable).
  std::vector<int64_t> parent;
};

// Single-source Dijkstra.
ShortestPaths Dijkstra(const Graph& graph, int64_t source);

// next_hop[t] = neighbor of `source` on a shortest source->t path (source
// when t==source, -1 when unreachable), derived from an existing Dijkstra
// result. Lets callers that already hold `paths` (e.g. the stop network's
// route cache) build routing tables without a second Dijkstra sweep.
std::vector<int64_t> NextHopsFromPaths(const ShortestPaths& paths,
                                       int64_t source);

// Unweighted hop counts from `source` (-1 when unreachable).
std::vector<int64_t> BfsHops(const Graph& graph, int64_t source);

// All-pairs weighted distances; O(B * E log B). dist[i][j].
std::vector<std::vector<double>> AllPairsDistances(const Graph& graph);

// next_hop[s][t] = neighbor of s on a shortest s->t path (s when s==t,
// -1 when unreachable). Used by UGVs to follow roads toward a target stop.
std::vector<std::vector<int64_t>> NextHopTable(const Graph& graph);

}  // namespace garl::graph

#endif  // GARL_GRAPH_SHORTEST_PATH_H_
