#include "graph/laplacian.h"

#include <cmath>

namespace garl::graph {

nn::Tensor AdjacencyWithSelfLoops(const Graph& graph) {
  int64_t n = graph.num_nodes();
  nn::Tensor a = nn::Tensor::Zeros({n, n});
  auto& data = a.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    data[i * n + i] = 1.0f;
    for (const Graph::Edge& e : graph.Neighbors(i)) {
      data[i * n + e.to] = 1.0f;
    }
  }
  return a;
}

nn::Tensor NormalizedLaplacian(const Graph& graph) {
  int64_t n = graph.num_nodes();
  nn::Tensor a = AdjacencyWithSelfLoops(graph);
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < n; ++j) deg += a.data()[i * n + j];
    inv_sqrt_deg[static_cast<size_t>(i)] = 1.0f / std::sqrt(deg);
  }
  nn::Tensor l = nn::Tensor::Zeros({n, n});
  auto& out = l.mutable_data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out[i * n + j] = inv_sqrt_deg[static_cast<size_t>(i)] *
                       a.data()[i * n + j] *
                       inv_sqrt_deg[static_cast<size_t>(j)];
    }
  }
  return l;
}

}  // namespace garl::graph
