#include "graph/graph.h"

#include "common/check.h"

namespace garl::graph {

Graph::Graph(int64_t num_nodes) {
  GARL_CHECK_GE(num_nodes, 0);
  adjacency_.resize(static_cast<size_t>(num_nodes));
}

void Graph::AddEdge(int64_t a, int64_t b, double weight) {
  GARL_CHECK_GE(a, 0);
  GARL_CHECK_LT(a, num_nodes());
  GARL_CHECK_GE(b, 0);
  GARL_CHECK_LT(b, num_nodes());
  GARL_CHECK_NE(a, b);
  GARL_CHECK_GT(weight, 0.0);
  GARL_CHECK_MSG(!HasEdge(a, b), "parallel edge");
  adjacency_[static_cast<size_t>(a)].push_back({b, weight});
  adjacency_[static_cast<size_t>(b)].push_back({a, weight});
  ++num_edges_;
}

const std::vector<Graph::Edge>& Graph::Neighbors(int64_t node) const {
  GARL_CHECK_GE(node, 0);
  GARL_CHECK_LT(node, num_nodes());
  return adjacency_[static_cast<size_t>(node)];
}

bool Graph::HasEdge(int64_t a, int64_t b) const {
  for (const Edge& e : Neighbors(a)) {
    if (e.to == b) return true;
  }
  return false;
}

int64_t Graph::Degree(int64_t node) const {
  return static_cast<int64_t>(Neighbors(node).size());
}

bool Graph::IsConnected() const {
  if (num_nodes() == 0) return true;
  std::vector<bool> seen(static_cast<size_t>(num_nodes()), false);
  std::vector<int64_t> stack = {0};
  seen[0] = true;
  int64_t visited = 0;
  while (!stack.empty()) {
    int64_t node = stack.back();
    stack.pop_back();
    ++visited;
    for (const Edge& e : Neighbors(node)) {
      if (!seen[static_cast<size_t>(e.to)]) {
        seen[static_cast<size_t>(e.to)] = true;
        stack.push_back(e.to);
      }
    }
  }
  return visited == num_nodes();
}

}  // namespace garl::graph
