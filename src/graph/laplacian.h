#ifndef GARL_GRAPH_LAPLACIAN_H_
#define GARL_GRAPH_LAPLACIAN_H_

#include "graph/graph.h"
#include "nn/tensor.h"

namespace garl::graph {

// Symmetric-normalized adjacency with self loops (Eq. 1b):
//   L = D̃^{-1/2} (A + I) D̃^{-1/2},  D̃_ii = sum_j (A + I)_ij.
// Edge weights are ignored (binary adjacency), matching GCN convention.
nn::Tensor NormalizedLaplacian(const Graph& graph);

// Dense binary adjacency with self loops (A + I), used by attention layers.
nn::Tensor AdjacencyWithSelfLoops(const Graph& graph);

}  // namespace garl::graph

#endif  // GARL_GRAPH_LAPLACIAN_H_
