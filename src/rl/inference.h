#ifndef GARL_RL_INFERENCE_H_
#define GARL_RL_INFERENCE_H_

#include <string>

#include "common/status.h"
#include "rl/policy.h"

namespace garl::rl {

// Serving-oriented checkpoint load: resolves the newest manifest entry in
// `checkpoint_dir`, reads ONLY the UGV parameter file (the Adam moment
// files are never opened, so no optimizer tensors are ever allocated),
// CRC-validates it, then strips gradient/autograd state from the policy
// (nn::StripForInference). Returns the checkpoint's episode counter.
//
// Failure modes are all clean Status returns, never aborts: NotFound for a
// missing/empty manifest, FailedPrecondition/InvalidArgument-class errors
// for truncated or CRC-corrupt parameter files. The load is all-or-nothing:
// the file is staged into scratch tensors and committed only after the
// whole stream parsed clean, so a failed load leaves `policy` untouched
// (the hot-reload rollback guarantee in serve::PolicyServer).
[[nodiscard]] StatusOr<int64_t> LoadPolicyForInference(
    const std::string& checkpoint_dir, UgvPolicyNetwork* policy);

}  // namespace garl::rl

#endif  // GARL_RL_INFERENCE_H_
