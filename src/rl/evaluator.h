#ifndef GARL_RL_EVALUATOR_H_
#define GARL_RL_EVALUATOR_H_

#include <cstdint>

#include "env/world.h"
#include "rl/policy.h"
#include "rl/uav_controller.h"

// Policy evaluation: runs full episodes without learning and reports the
// paper's task metrics.

namespace garl::rl {

struct EvalOptions {
  int64_t episodes = 1;
  bool greedy = true;  // argmax UGV actions; false: sample
  uint64_t seed = 1234;
};

// Runs `episodes` episodes of `policy` in `world` (UAVs flown by
// `uav_controller`) and returns metrics averaged across episodes. The world
// is left in its final episode's end state, so its traces can be inspected
// afterwards (Fig. 7).
env::EpisodeMetrics EvaluatePolicy(env::World& world,
                                   UgvPolicyNetwork& policy,
                                   UavController& uav_controller,
                                   const EvalOptions& options);

}  // namespace garl::rl

#endif  // GARL_RL_EVALUATOR_H_
