#ifndef GARL_RL_POLICY_H_
#define GARL_RL_POLICY_H_

#include <string>
#include <vector>

#include "env/types.h"
#include "env/world.h"
#include "nn/module.h"
#include "nn/tensor.h"

// Policy-network interfaces shared by GARL and all baselines, so one IPPO
// trainer drives every method.

namespace garl::rl {

// Static, per-campus context handed to UGV feature networks at
// construction: the stop graph's normalized Laplacian (Eq. 1b), hop counts
// (for the structural correlation s(.,.) of Eq. 19-20) and normalized stop
// coordinates.
struct EnvContext {
  int64_t num_stops = 0;
  int64_t num_ugvs = 0;
  nn::Tensor laplacian;                        // [B, B]
  nn::Tensor stop_xy;                          // [B, 2], normalized
  std::vector<std::vector<int64_t>> hops;      // [B][B], -1 = unreachable
  double neighbor_radius_norm = 0.3;           // N(u) radius in norm units
};

EnvContext MakeEnvContext(const env::World& world);

// Per-UGV heads produced by a joint forward pass.
struct UgvPolicyOutput {
  nn::Tensor release_logits;  // [2]: {move, release}
  nn::Tensor target_logits;   // [B]
  nn::Tensor value;           // scalar V(h_t^u)
};

// Joint forward over all UGVs. Communication-based methods (E-Comm, DGN,
// IC3Net, AE-Comm) exchange messages inside this call; independent methods
// simply map each observation separately.
class UgvPolicyNetwork : public nn::Module {
 public:
  virtual std::vector<UgvPolicyOutput> Forward(
      const std::vector<env::UgvObservation>& observations) = 0;
  virtual std::string name() const = 0;

  // Auxiliary training objective accumulated during Forward (e.g. the
  // AE-Comm reconstruction loss). Returns an undefined tensor when the
  // method has none; calling it clears the accumulator.
  virtual nn::Tensor ConsumeAuxLoss() { return nn::Tensor(); }

  // True iff concurrent Forward calls from different threads are safe
  // (forward touches no member state). Methods that accumulate state across
  // Forward calls — AE-Comm's aux loss, CubicMap's memory, GAT's cached
  // masks — must keep the default; the trainer/evaluator then fall back to
  // sequential episode collection.
  virtual bool ThreadSafeInference() const { return false; }
};

// UAV actor-critic heads (Eq. 17).
struct UavPolicyOutput {
  nn::Tensor mean;     // [2] displacement mean (meters, pre-clip)
  nn::Tensor log_std;  // [2]
  nn::Tensor value;    // scalar
};

class UavPolicyNetwork : public nn::Module {
 public:
  virtual UavPolicyOutput Forward(const env::UavObservation& obs) = 0;

  // See UgvPolicyNetwork::ThreadSafeInference.
  virtual bool ThreadSafeInference() const { return false; }
};

}  // namespace garl::rl

#endif  // GARL_RL_POLICY_H_
