#include "rl/uav_controller.h"

#include <algorithm>
#include <cmath>

#include "nn/distributions.h"
#include "nn/ops.h"

namespace garl::rl {

env::UavAction GreedyUavController::Act(const env::World& world, int64_t v,
                                        Rng& rng) {
  const env::UavState& uav = world.uavs()[static_cast<size_t>(v)];
  const env::WorldParams& params = world.params();
  const env::Vec2 carrier =
      world.ugvs()[static_cast<size_t>(uav.carrier)].position;

  // Budget check: always keep enough battery to fly home.
  double range_left = uav.energy_kj / params.energy_per_meter;
  double home_dist = env::Distance(uav.position, carrier);
  bool must_return = range_left <= home_dist + params.uav_max_dist;

  env::Vec2 target = carrier;
  if (!must_return) {
    // Nearest sensor with data that the battery can actually reach and
    // come back from.
    double best = 1e18;
    bool found = false;
    for (const env::SensorState& s : world.sensors()) {
      if (s.remaining_mb <= 0.0) continue;
      double d = env::Distance(uav.position, s.position);
      double back = env::Distance(s.position, carrier);
      if (d + back > range_left) continue;  // would strand the UAV
      if (d < best) {
        best = d;
        target = s.position;
        found = true;
      }
    }
    if (!found) target = carrier;
  }
  env::Vec2 delta = target - uav.position;
  double dist = delta.Norm();
  if (dist > params.uav_max_dist && dist > 0.0) {
    delta = delta * (params.uav_max_dist / dist);
  }
  // Small random tangential jitter helps slide around building corners.
  double jitter = params.uav_max_dist * 0.08;
  delta.x += rng.Uniform(-jitter, jitter);
  delta.y += rng.Uniform(-jitter, jitter);
  return {delta.x, delta.y};
}

env::UavAction RandomUavController::Act(const env::World& world, int64_t v,
                                        Rng& rng) {
  (void)v;
  double limit = world.params().uav_max_dist;
  return {rng.Uniform(-limit, limit), rng.Uniform(-limit, limit)};
}

env::UavAction LearnedUavController::Act(const env::World& world, int64_t v,
                                         Rng& rng) {
  nn::NoGradGuard no_grad;
  UavPolicyOutput out = network_->Forward(world.ObserveUav(v));
  std::vector<float> action;
  if (deterministic_) {
    action = out.mean.data();
  } else {
    nn::DiagGaussian dist(out.mean, out.log_std);
    action = dist.Sample(rng);
  }
  double limit = world.params().uav_max_dist;
  return {std::clamp(static_cast<double>(action[0]), -limit, limit),
          std::clamp(static_cast<double>(action[1]), -limit, limit)};
}

}  // namespace garl::rl
