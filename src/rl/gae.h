#ifndef GARL_RL_GAE_H_
#define GARL_RL_GAE_H_

#include <vector>

// Generalized Advantage Estimation (Schulman et al., 2016), used for both
// UGV and UAV actors (Eq. 15 advantage A_t^u).

namespace garl::rl {

struct GaeResult {
  std::vector<float> advantages;
  std::vector<float> returns;  // advantage + value (the critic target R̂_t)
};

// Computes GAE over one finished episode segment (terminal bootstrap 0).
// `rewards` and `values` must have equal length.
GaeResult ComputeGae(const std::vector<float>& rewards,
                     const std::vector<float>& values, float gamma,
                     float lambda);

// In-place standardization to zero mean / unit variance (no-op for < 2
// elements); returns the pre-normalization mean.
float NormalizeAdvantages(std::vector<float>& advantages);

}  // namespace garl::rl

#endif  // GARL_RL_GAE_H_
