#ifndef GARL_RL_IPPO_TRAINER_H_
#define GARL_RL_IPPO_TRAINER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "env/world.h"
#include "nn/optimizer.h"
#include "rl/policy.h"
#include "rl/rollout.h"
#include "rl/uav_controller.h"

// IPPO training loop (Algorithm 1). One trainer drives any
// UgvPolicyNetwork; UAVs fly either a shared learned CNN policy (Eq. 17,
// also PPO-trained) or the scripted greedy controller.

namespace garl::rl {

struct TrainConfig {
  int64_t iterations = 10;     // M (outer loop; one episode per iteration)
  int64_t epochs = 3;          // J optimization passes per iteration
  int64_t minibatch_slots = 8;  // slots per PPO minibatch
  float gamma = 0.95f;
  float gae_lambda = 0.95f;
  float clip_eps = 0.2f;        // epsilon_1 (Eq. 15)
  float value_clip = 0.2f;      // epsilon_2 (Eq. 16)
  float value_coef = 0.5f;      // c_1 (Eq. 2)
  float entropy_coef = 0.01f;   // c_2 (Eq. 2)
  float lr = 3e-4f;
  float max_grad_norm = 0.5f;
  float ugv_reward_scale = 1e-3f;  // MB -> ~unit scale
  bool train_uav = false;          // false: scripted greedy UAVs
  uint64_t seed = 1;
};

struct IterationStats {
  double ugv_episode_reward = 0.0;  // scaled, summed over agents
  double uav_episode_reward = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  env::EpisodeMetrics metrics;  // end-of-episode task metrics
};

class IppoTrainer {
 public:
  // `uav_network` may be null when config.train_uav is false.
  IppoTrainer(env::World* world, UgvPolicyNetwork* ugv_network,
              UavPolicyNetwork* uav_network, TrainConfig config);

  // Collects one episode and runs J optimization epochs (Algorithm 1
  // lines 3-23). Returns sampling statistics.
  IterationStats RunIteration();

  // Runs `config.iterations` iterations; returns per-iteration stats.
  std::vector<IterationStats> Train();

  const TrainConfig& config() const { return config_; }

 private:
  struct CollectResult {
    UgvRollout ugv;
    UavRollout uav;
    IterationStats stats;
  };
  CollectResult CollectEpisode();
  void UpdateUgv(UgvRollout& rollout, IterationStats& stats);
  void UpdateUav(UavRollout& rollout, IterationStats& stats);

  env::World* world_;
  UgvPolicyNetwork* ugv_network_;
  UavPolicyNetwork* uav_network_;
  TrainConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Adam> ugv_optimizer_;
  std::unique_ptr<nn::Adam> uav_optimizer_;
  std::unique_ptr<UavController> rollout_uav_controller_;
  int64_t episode_counter_ = 0;
};

}  // namespace garl::rl

#endif  // GARL_RL_IPPO_TRAINER_H_
