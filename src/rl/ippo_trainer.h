#ifndef GARL_RL_IPPO_TRAINER_H_
#define GARL_RL_IPPO_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "env/world.h"
#include "nn/optimizer.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "rl/policy.h"
#include "rl/rollout.h"
#include "rl/uav_controller.h"
#include "sim/faults.h"

// IPPO training loop (Algorithm 1). One trainer drives any
// UgvPolicyNetwork; UAVs fly either a shared learned CNN policy (Eq. 17,
// also PPO-trained) or the scripted greedy controller.
//
// Fault tolerance: Train() snapshots the full trainer state (parameters,
// Adam moments, RNG stream, episode counter) after every healthy iteration.
// A divergence sentinel checks losses, pre-clip gradient norms and
// parameters for NaN/Inf after each update; on a trip it rolls back to the
// last healthy snapshot, decays the learning rate, and retries the
// iteration, giving up with a non-OK Status after a bounded number of
// consecutive trips. With `checkpoint_dir` set, the same state is also
// persisted to disk (crash-safe, CRC-verified, last-K retained) so a killed
// run resumes bit-identically via RestoreCheckpoint().
//
// Observability: the collect/update/checkpoint phases run under trace spans
// (GARL_TRACE_SPAN) and, with `run_log_path` set, Train() emits one JSONL
// record per iteration whose deterministic payload is byte-identical across
// repeat runs and thread counts (pinned by tests/golden_run_test.cc).

namespace garl::rl {

struct TrainConfig {
  int64_t iterations = 10;     // M (outer loop)
  // Episodes collected per iteration before the PPO update. When > 1 and
  // both networks report ThreadSafeInference(), episodes run concurrently
  // on pool workers, each with a private world copy and an RNG stream
  // derived statelessly from (seed, episode number) — so losses and metrics
  // are bit-identical for any GARL_NUM_THREADS.
  int64_t episodes_per_iteration = 1;
  int64_t epochs = 3;          // J optimization passes per iteration
  int64_t minibatch_slots = 8;  // slots per PPO minibatch
  float gamma = 0.95f;
  float gae_lambda = 0.95f;
  float clip_eps = 0.2f;        // epsilon_1 (Eq. 15)
  float value_clip = 0.2f;      // epsilon_2 (Eq. 16)
  float value_coef = 0.5f;      // c_1 (Eq. 2)
  float entropy_coef = 0.01f;   // c_2 (Eq. 2)
  float lr = 3e-4f;
  float max_grad_norm = 0.5f;
  float ugv_reward_scale = 1e-3f;  // MB -> ~unit scale
  bool train_uav = false;          // false: scripted greedy UAVs
  uint64_t seed = 1;

  // --- Fault tolerance ---
  std::string checkpoint_dir;          // empty: no durable checkpoints
  int64_t checkpoint_interval = 1;     // save every N successful iterations
  int64_t checkpoint_keep_last = 3;    // manifest retention (<=0: keep all)
  bool sentinel = true;                // divergence detection + rollback
  int64_t max_divergence_retries = 3;  // consecutive trips before giving up
  float divergence_lr_decay = 0.5f;    // lr multiplier per consecutive trip

  // --- Observability ---
  // When non-empty, Train() streams one JSONL record per successful
  // iteration to this path (losses, grad norms, metrics, sentinel state in
  // the deterministic `det` payload; span timings, route-cache and
  // thread-pool stats in `rt` — see src/obs/run_log.h). Instrumentation is
  // read-only: it never touches the RNG or any learned state, so losses are
  // bit-identical with and without a run log.
  std::string run_log_path;
  // Run-log rotation cap (0: off). Passed through to obs::RunLogOptions;
  // rotation changes only where record bytes land, never the bytes.
  int64_t run_log_max_segment_bytes = 0;

  // --- Fleet supervision ---
  // First Train() loop index. A supervised restart sets this to
  // (restored episode counter / episodes_per_iteration) after
  // RestoreCheckpoint(), so iteration numbering, the run log's resume trim,
  // and the RNG stream all line up and the resumed run's `det` log bytes
  // match an uninterrupted run's.
  int64_t start_iteration = 0;
  // Called after each successful iteration (post run-log append and
  // checkpoint) with the iteration index. The fleet child uses it to emit
  // heartbeats; it must not touch trainer state.
  std::function<void(int64_t iteration)> iteration_callback;

  // --- Fault injection (chaos testing) ---
  // Off by default; disabled it is a bitwise no-op (golden_run_test pins
  // this). When enabled, each episode's fault schedule is a pure function
  // of (seed, faults.seed, episode number) — bit-reproducible, invariant
  // under GARL_NUM_THREADS, and resume-safe. Schedule digests land in the
  // run log's det payload, event counts in rt. See src/sim/faults.h.
  sim::FaultConfig faults;
};

struct IterationStats {
  double ugv_episode_reward = 0.0;  // scaled, summed over agents
  double uav_episode_reward = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double ugv_grad_norm = 0.0;       // max pre-clip norm over minibatches
  double uav_grad_norm = 0.0;
  bool diverged = false;   // sentinel tripped at least once this iteration
  bool recovered = false;  // ...and the rolled-back retry succeeded
  env::EpisodeMetrics metrics;  // end-of-episode task metrics
  // Fault-injection fingerprint (zero / empty unless faults are enabled):
  // event totals over the iteration's episodes and the episode-ordered
  // chain of schedule digests.
  sim::FaultCounts fault_counts;
  uint32_t fault_digest = 0;
};

// Test-only deterministic fault injection (see set_fault_injection_for_test).
struct TrainFaultInjection {
  // Train() iteration index whose UGV gradients get a NaN injected right
  // after backprop; -1 disables. One-shot unless `sticky`, so the sentinel's
  // rolled-back retry runs clean.
  int64_t nan_grad_iteration = -1;
  bool sticky = false;  // re-inject on every retry (exercises the give-up path)
};

class IppoTrainer {
 public:
  // `uav_network` may be null when config.train_uav is false.
  IppoTrainer(env::World* world, UgvPolicyNetwork* ugv_network,
              UavPolicyNetwork* uav_network, TrainConfig config);

  // Collects one episode and runs J optimization epochs (Algorithm 1
  // lines 3-23). Returns sampling statistics.
  IterationStats RunIteration();

  // Runs `config.iterations` iterations under the divergence sentinel;
  // returns per-iteration stats, or a non-OK Status when an iteration keeps
  // diverging past `max_divergence_retries` (or a checkpoint write fails).
  //
  // Signal-safe shutdown: when a prior proc::InstallShutdownSignalHandlers()
  // has seen SIGTERM or SIGINT, the loop notices at the next iteration
  // boundary, saves a checkpoint (when checkpoint_dir is set) and returns
  // CancelledError — the distinct status supervisors use to tell "told to
  // stop" from "crashed".
  StatusOr<std::vector<IterationStats>> Train();

  // Persists the full trainer state (UGV/UAV parameters, both Adam
  // optimizers, RNG stream, episode counter) into `dir` and registers it in
  // the manifest with last-K retention. Crash-safe: every file is written
  // atomically and carries a CRC-32 footer.
  [[nodiscard]] Status SaveCheckpoint(const std::string& dir);

  // Restores the newest manifest entry in `dir`. After a successful
  // restore, continued training is bit-identical to the run that saved the
  // checkpoint. Any corrupt or truncated file yields a non-OK Status.
  [[nodiscard]] Status RestoreCheckpoint(const std::string& dir);

  const TrainConfig& config() const { return config_; }

  void set_fault_injection_for_test(const TrainFaultInjection& fault) {
    fault_ = fault;
  }

 private:
  struct CollectResult {
    UgvRollout ugv;
    UavRollout uav;
    IterationStats stats;
  };
  // In-memory serialized trainer state for sentinel rollback.
  struct Snapshot {
    std::string ugv_params, ugv_adam, uav_params, uav_adam, rng;
    int64_t episode_counter = 0;
  };
  // Collects config_.episodes_per_iteration episodes (concurrently when
  // safe; see TrainConfig) and merges them into one rollout: slots are
  // renumbered with a per-episode base and every episode's per-agent
  // sequence stays a separate GAE sequence, so advantage estimation never
  // crosses an episode boundary.
  CollectResult CollectEpisodes();
  // One full episode on `world`: resets with `reset_seed`, samples actions
  // from a private Rng seeded with `rng_seed`. `episode` is the global
  // episode number, which also keys the fault schedule when fault injection
  // is enabled. Touches no trainer state besides the (conditionally
  // thread-safe) networks.
  CollectResult RunEpisode(env::World& world, uint64_t reset_seed,
                           uint64_t rng_seed, int64_t episode) const;
  bool ParallelRolloutsSafe() const;
  void UpdateUgv(UgvRollout& rollout, IterationStats& stats);
  void UpdateUav(UavRollout& rollout, IterationStats& stats);
  void TakeSnapshot(Snapshot* snapshot) const;
  [[nodiscard]] Status RestoreSnapshot(const Snapshot& snapshot);
  bool Diverged(const IterationStats& stats) const;
  void MaybeInjectNanGrad(nn::Optimizer& optimizer);
  // Builds the run-log record for a just-finished iteration. Advances
  // `span_baseline` to the current trace snapshot so the next record reports
  // only its own window. Read-only with respect to trainer state.
  obs::IterationRecord MakeIterationRecord(
      int64_t iteration, const IterationStats& stats, int64_t start_ns,
      std::vector<obs::SpanStats>* span_baseline,
      const sim::ScheduledFsFaults* fs_faults) const;

  env::World* world_;
  UgvPolicyNetwork* ugv_network_;
  UavPolicyNetwork* uav_network_;
  TrainConfig config_;
  Rng rng_;
  std::unique_ptr<nn::Adam> ugv_optimizer_;
  std::unique_ptr<nn::Adam> uav_optimizer_;
  std::unique_ptr<UavController> rollout_uav_controller_;
  int64_t episode_counter_ = 0;
  int64_t current_iteration_ = 0;  // Train() loop index, for fault injection
  TrainFaultInjection fault_;
};

}  // namespace garl::rl

#endif  // GARL_RL_IPPO_TRAINER_H_
