#ifndef GARL_RL_ROLLOUT_H_
#define GARL_RL_ROLLOUT_H_

#include <vector>

#include "common/rng.h"
#include "env/types.h"
#include "rl/policy.h"

// Episode storage for IPPO training (the D^u / D^v buffers of Algorithm 1).

namespace garl::rl {

// One UGV decision point. While a UGV hosts a release window it takes no
// decisions; rewards earned during the window are credited back to the
// decision that opened it (Eq. 12).
struct UgvDecision {
  int64_t slot = 0;  // index into UgvRollout::slots
  int64_t ugv = 0;   // index into the slot's joint observation/outputs
  int64_t release = 0;
  int64_t target = -1;  // sampled only when release == 0
  float old_log_prob = 0.0f;
  float value = 0.0f;
  float reward = 0.0f;
  float advantage = 0.0f;
  float ret = 0.0f;
};

struct UgvRollout {
  // Joint observations captured once per slot (shared by all agents'
  // decisions at that slot).
  std::vector<std::vector<env::UgvObservation>> slots;
  // Decision sequences, one per UGV.
  std::vector<std::vector<UgvDecision>> agents;

  int64_t TotalDecisions() const {
    int64_t n = 0;
    for (const auto& a : agents) n += static_cast<int64_t>(a.size());
    return n;
  }
};

// One UAV flight decision (every airborne slot).
struct UavDecision {
  env::UavObservation obs;
  float action_x = 0.0f;
  float action_y = 0.0f;
  float old_log_prob = 0.0f;
  float value = 0.0f;
  float reward = 0.0f;
  float advantage = 0.0f;
  float ret = 0.0f;
};

struct UavRollout {
  std::vector<std::vector<UavDecision>> agents;  // one sequence per UAV
};

// Samples a UGV action from policy heads. When `greedy`, takes the argmax
// of both heads. Returns action plus log pi(a) and V for the buffers.
struct SampledUgvAction {
  env::UgvAction action;
  float log_prob = 0.0f;
  float value = 0.0f;
};
SampledUgvAction SampleUgvAction(const UgvPolicyOutput& output, Rng& rng,
                                 bool greedy);

// Differentiable log pi of a stored UGV action under fresh heads (release
// head always contributes; the target head only for move actions), plus the
// heads' entropy. Used by the PPO update.
struct UgvLogProbEntropy {
  nn::Tensor log_prob;  // scalar
  nn::Tensor entropy;   // scalar
};
UgvLogProbEntropy UgvActionLogProb(const UgvPolicyOutput& output,
                                   const UgvDecision& decision);

// Fills advantages/returns on every agent sequence with GAE and normalizes
// advantages across the whole rollout.
void FinalizeUgvRollout(UgvRollout& rollout, float gamma, float lambda);
void FinalizeUavRollout(UavRollout& rollout, float gamma, float lambda);

}  // namespace garl::rl

#endif  // GARL_RL_ROLLOUT_H_
