#ifndef GARL_RL_REPLAY_BUFFER_H_
#define GARL_RL_REPLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

// Fixed-capacity uniform replay buffer (used by the MADDPG baseline).

namespace garl::rl {

template <typename T>
class ReplayBuffer {
 public:
  explicit ReplayBuffer(int64_t capacity) : capacity_(capacity) {
    GARL_CHECK_GT(capacity, 0);
    items_.reserve(static_cast<size_t>(capacity));
  }

  void Add(T item) {
    if (static_cast<int64_t>(items_.size()) < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[static_cast<size_t>(write_)] = std::move(item);
    }
    write_ = (write_ + 1) % capacity_;
  }

  int64_t size() const { return static_cast<int64_t>(items_.size()); }
  bool empty() const { return items_.empty(); }

  // Samples `n` items uniformly with replacement.
  std::vector<const T*> Sample(int64_t n, Rng& rng) const {
    GARL_CHECK(!items_.empty());
    std::vector<const T*> out;
    out.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      out.push_back(&items_[static_cast<size_t>(
          rng.UniformInt(0, size() - 1))]);
    }
    return out;
  }

 private:
  int64_t capacity_;
  int64_t write_ = 0;
  std::vector<T> items_;
};

}  // namespace garl::rl

#endif  // GARL_RL_REPLAY_BUFFER_H_
