#include "rl/policy.h"

#include "graph/laplacian.h"

namespace garl::rl {

EnvContext MakeEnvContext(const env::World& world) {
  EnvContext context;
  context.num_stops = world.stops().num_stops();
  context.num_ugvs = world.num_ugvs();
  context.laplacian = graph::NormalizedLaplacian(world.stops().graph);
  context.hops = world.hop_table();
  context.stop_xy = nn::Tensor::Zeros({context.num_stops, 2});
  auto& xy = context.stop_xy.mutable_data();
  for (int64_t b = 0; b < context.num_stops; ++b) {
    const env::Vec2& p = world.stops().positions[static_cast<size_t>(b)];
    xy[b * 2 + 0] = static_cast<float>(p.x / world.campus().width);
    xy[b * 2 + 1] = static_cast<float>(p.y / world.campus().height);
  }
  double diag = std::hypot(world.campus().width, world.campus().height);
  context.neighbor_radius_norm = world.params().neighbor_radius / diag;
  return context;
}

}  // namespace garl::rl
