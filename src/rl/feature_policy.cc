#include "rl/feature_policy.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace garl::rl {

FeatureUgvPolicy::FeatureUgvPolicy(
    std::unique_ptr<UgvFeatureExtractor> extractor, const EnvContext& context,
    FeaturePolicyOptions options, Rng& rng)
    : extractor_(std::move(extractor)),
      options_(options),
      num_stops_(context.num_stops) {
  GARL_CHECK(extractor_ != nullptr);
  int64_t f = extractor_->feature_dim();
  trunk_ = std::make_unique<nn::Linear>(f, options_.hidden, rng);
  release_head_ = std::make_unique<nn::Linear>(options_.hidden, 2, rng);
  target_head_ =
      std::make_unique<nn::Linear>(options_.hidden, num_stops_, rng);
  value_head_ = std::make_unique<nn::Linear>(options_.hidden, 1, rng);
  // Small-gain heads so priors dominate the initial policy.
  nn::ScaledXavierInit(target_head_->weight(), options_.hidden, num_stops_,
                       0.1f, rng);
  nn::ScaledXavierInit(release_head_->weight(), options_.hidden, 2, 0.1f,
                       rng);
  // Per-agent preferred bearings: projection of each stop onto the agent's
  // direction, centred on the campus midpoint.
  for (int64_t u = 0; u < context.num_ugvs; ++u) {
    float angle = 2.0f * static_cast<float>(M_PI) * static_cast<float>(u) /
                  static_cast<float>(std::max<int64_t>(context.num_ugvs, 1));
    float dx = std::cos(angle), dy = std::sin(angle);
    nn::Tensor prior = nn::Tensor::Zeros({num_stops_});
    auto& data = prior.mutable_data();
    for (int64_t b = 0; b < num_stops_; ++b) {
      data[static_cast<size_t>(b)] =
          options_.direction_prior_scale *
          (dx * (context.stop_xy.at({b, 0}) - 0.5f) +
           dy * (context.stop_xy.at({b, 1}) - 0.5f));
    }
    direction_prior_.push_back(prior);
  }
}

std::vector<UgvPolicyOutput> FeatureUgvPolicy::Forward(
    const std::vector<env::UgvObservation>& observations) {
  GARL_CHECK(!observations.empty());
  std::vector<nn::Tensor> features = extractor_->Extract(observations);
  GARL_CHECK_EQ(features.size(), observations.size());
  UgvPriors priors = extractor_->Priors(observations);

  std::vector<UgvPolicyOutput> outputs;
  outputs.reserve(observations.size());
  for (size_t u = 0; u < observations.size(); ++u) {
    nn::Tensor trunk = nn::Tanh(trunk_->Forward(features[u]));
    nn::Tensor release = release_head_->Forward(trunk);
    nn::Tensor target = target_head_->Forward(trunk);
    if (observations[u].self <
        static_cast<int64_t>(direction_prior_.size())) {
      target = nn::Add(target, direction_prior_[static_cast<size_t>(
                                   observations[u].self)]);
    }
    if (!priors.target.empty()) {
      target = nn::Add(
          target, nn::MulScalar(priors.target[u], options_.prior_scale));
    }
    if (!priors.release.empty()) {
      release = nn::Add(release, priors.release[u]);
    }
    if (options_.release_prior_scale > 0.0f) {
      // Generic bias, available to every method: release when the data
      // around the current stop is competitive with the best stop the
      // agent knows about; keep moving otherwise.
      const env::UgvObservation& obs = observations[u];
      float here = std::max(0.0f, obs.stop_features.at({obs.current_stop,
                                                        2}));
      float best = 1e-6f;
      for (int64_t b = 0; b < num_stops_; ++b) {
        best = std::max(best, obs.stop_features.at({b, 2}));
      }
      float bias = options_.release_prior_scale *
                   (3.0f * (here / best) - 1.0f);
      release = nn::Add(release,
                        nn::Tensor::FromVector({2}, {0.0f, bias}));
    }
    UgvPolicyOutput out;
    out.release_logits = release;
    out.target_logits = target;
    out.value = nn::Reshape(value_head_->Forward(trunk), {});
    outputs.push_back(std::move(out));
  }
  return outputs;
}

std::vector<nn::Tensor> FeatureUgvPolicy::Parameters() const {
  std::vector<nn::Tensor> params = extractor_->Parameters();
  for (const auto* module :
       {trunk_.get(), release_head_.get(), target_head_.get(),
        value_head_.get()}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::rl
