#ifndef GARL_RL_UAV_CONTROLLER_H_
#define GARL_RL_UAV_CONTROLLER_H_

#include <memory>

#include "common/rng.h"
#include "env/world.h"
#include "rl/policy.h"

// UAV movement controllers. The paper trains a CNN policy per Eq. (17); we
// provide both that learned controller and a scripted greedy controller
// (fly to the nearest unharvested sensor, come home when the battery runs
// low) which is the evaluation default — the paper's contribution is the
// UGV side, and the scripted controller makes single-core experiments
// tractable (see DESIGN.md, Substitutions).

namespace garl::rl {

class UavController {
 public:
  virtual ~UavController() = default;
  // Movement command for airborne UAV v.
  virtual env::UavAction Act(const env::World& world, int64_t v,
                             Rng& rng) = 0;
  // True iff Act may be called concurrently from different threads (with
  // distinct worlds/rngs). Scripted controllers are stateless and say yes;
  // learned ones defer to the wrapped network.
  virtual bool ThreadSafe() const { return false; }
};

// Scripted controller operating on simulator state. Targets the nearest
// sensor that still holds data AND is reachable within the remaining
// battery (there-and-back); returns to the carrier otherwise.
class GreedyUavController : public UavController {
 public:
  env::UavAction Act(const env::World& world, int64_t v, Rng& rng) override;
  bool ThreadSafe() const override { return true; }
};

// Uniform random flight (the paper's "Random" baseline randomizes UAV
// actions as well as UGV actions).
class RandomUavController : public UavController {
 public:
  env::UavAction Act(const env::World& world, int64_t v, Rng& rng) override;
  bool ThreadSafe() const override { return true; }
};

// Wraps a UavPolicyNetwork; samples from the Gaussian head (or takes the
// mean when `deterministic`).
class LearnedUavController : public UavController {
 public:
  LearnedUavController(UavPolicyNetwork* network, bool deterministic)
      : network_(network), deterministic_(deterministic) {}

  env::UavAction Act(const env::World& world, int64_t v, Rng& rng) override;
  bool ThreadSafe() const override { return network_->ThreadSafeInference(); }

 private:
  UavPolicyNetwork* network_;  // not owned
  bool deterministic_;
};

}  // namespace garl::rl

#endif  // GARL_RL_UAV_CONTROLLER_H_
