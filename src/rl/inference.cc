#include "rl/inference.h"

#include <vector>

#include "common/check.h"
#include "nn/inference.h"
#include "nn/serialization.h"
#include "rl/checkpoint.h"

namespace garl::rl {

StatusOr<int64_t> LoadPolicyForInference(const std::string& checkpoint_dir,
                                         UgvPolicyNetwork* policy) {
  GARL_CHECK(policy != nullptr);
  StatusOr<CheckpointInfo> latest = LatestCheckpoint(checkpoint_dir);
  if (!latest.ok()) return latest.status();
  const std::string params_path =
      checkpoint_dir + "/" + latest.value().name + "/" + kUgvParamsFile;
  std::vector<nn::Tensor> params = policy->Parameters();
  // Snapshot the current weights into plain buffers so a truncated or
  // corrupt checkpoint can be rolled back: a failed hot reload
  // (serve::PolicyServer::Reload) must leave the policy fully intact,
  // never half-overwritten. Raw float vectors keep this path free of
  // TensorImpl/autograd-node traffic, which serving-replica tests pin.
  std::vector<std::vector<float>> backup;
  backup.reserve(params.size());
  for (const nn::Tensor& p : params) {
    backup.push_back(p.data());
  }
  Status load = nn::LoadParameters(params_path, params);
  if (!load.ok()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_data() = std::move(backup[i]);
    }
    return load;
  }
  nn::StripForInference(params);
  return latest.value().episode;
}

}  // namespace garl::rl
