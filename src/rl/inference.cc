#include "rl/inference.h"

#include <vector>

#include "common/check.h"
#include "nn/inference.h"
#include "nn/serialization.h"
#include "rl/checkpoint.h"

namespace garl::rl {

StatusOr<int64_t> LoadPolicyForInference(const std::string& checkpoint_dir,
                                         UgvPolicyNetwork* policy) {
  GARL_CHECK(policy != nullptr);
  StatusOr<CheckpointInfo> latest = LatestCheckpoint(checkpoint_dir);
  if (!latest.ok()) return latest.status();
  const std::string params_path =
      checkpoint_dir + "/" + latest.value().name + "/" + kUgvParamsFile;
  std::vector<nn::Tensor> params = policy->Parameters();
  GARL_RETURN_IF_ERROR(nn::LoadParameters(params_path, params));
  nn::StripForInference(params);
  return latest.value().episode;
}

}  // namespace garl::rl
