#ifndef GARL_RL_CHECKPOINT_H_
#define GARL_RL_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Durable training checkpoints for IppoTrainer.
//
// A checkpoint directory holds a text manifest plus one subdirectory per
// retained checkpoint:
//
//   <dir>/manifest.txt            index, newest entry last, written atomically
//   <dir>/ckpt_<episode>/
//     ugv_params.bin              nn::SaveParameters v2 (CRC-32 footer)
//     ugv_adam.bin                Adam::SaveState (CRC-32 footer)
//     uav_params.bin, uav_adam.bin  only when the UAV policy is trained
//     trainer_state.bin           episode counter + RNG stream (CRC-32 footer)
//
// Every file is written via AtomicWriteFile, so a crash mid-save leaves the
// previous checkpoint fully intact; the half-written subdirectory is simply
// absent from the manifest. Retention keeps the newest K entries and deletes
// the rest.

namespace garl::rl {

inline constexpr char kManifestFile[] = "manifest.txt";
inline constexpr char kUgvParamsFile[] = "ugv_params.bin";
inline constexpr char kUgvAdamFile[] = "ugv_adam.bin";
inline constexpr char kUavParamsFile[] = "uav_params.bin";
inline constexpr char kUavAdamFile[] = "uav_adam.bin";
inline constexpr char kTrainerStateFile[] = "trainer_state.bin";

// One manifest entry.
struct CheckpointInfo {
  std::string name;     // subdirectory name, e.g. "ckpt_00000012"
  int64_t episode = 0;  // trainer episode counter at save time
};

// Scalar trainer state stored in trainer_state.bin.
struct TrainerState {
  int64_t episode_counter = 0;
  bool has_uav = false;   // whether UAV files are part of the checkpoint
  std::string rng_state;  // Rng::SerializeState text
};

void SerializeTrainerState(const TrainerState& state, std::string* out);
[[nodiscard]] Status DeserializeTrainerState(std::string_view bytes, TrainerState* state);
[[nodiscard]] Status SaveTrainerState(const TrainerState& state, const std::string& path);
[[nodiscard]] StatusOr<TrainerState> LoadTrainerState(const std::string& path);

// Parses <dir>/manifest.txt. NotFound when the manifest does not exist.
StatusOr<std::vector<CheckpointInfo>> ReadCheckpointManifest(
    const std::string& dir);

// Atomically rewrites <dir>/manifest.txt with `entries` (oldest first).
[[nodiscard]] Status WriteCheckpointManifest(const std::string& dir,
                               const std::vector<CheckpointInfo>& entries);

// Newest manifest entry, or NotFound on an empty/absent manifest.
[[nodiscard]] StatusOr<CheckpointInfo> LatestCheckpoint(const std::string& dir);

// Appends `info` to the manifest (replacing an existing entry of the same
// name), then deletes all but the newest `keep_last` checkpoint
// subdirectories. `keep_last <= 0` disables pruning.
[[nodiscard]] Status RegisterCheckpoint(const std::string& dir, const CheckpointInfo& info,
                          int64_t keep_last);

}  // namespace garl::rl

#endif  // GARL_RL_CHECKPOINT_H_
