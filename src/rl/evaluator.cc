#include "rl/evaluator.h"

#include <future>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "env/metrics.h"
#include "nn/ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rl/rollout.h"

namespace garl::rl {

namespace {

// One evaluation episode on `world`. The action RNG is a stateless stream
// split of (options.seed, episode), so results do not depend on which
// thread runs the episode or how many episodes share a worker.
env::EpisodeMetrics RunEvalEpisode(env::World& world,
                                   UgvPolicyNetwork& policy,
                                   UavController& uav_controller,
                                   const EvalOptions& options,
                                   int64_t episode) {
  GARL_TRACE_SPAN("eval/episode");
  Rng rng(Rng::StreamSeed(options.seed, static_cast<uint64_t>(episode)));
  world.Reset(options.seed + static_cast<uint64_t>(episode));
  while (!world.Done()) {
    std::vector<env::UgvObservation> observations;
    for (int64_t u = 0; u < world.num_ugvs(); ++u) {
      observations.push_back(world.ObserveUgv(u));
    }
    std::vector<UgvPolicyOutput> outputs;
    {
      nn::NoGradGuard no_grad;
      outputs = policy.Forward(observations);
    }
    std::vector<env::UgvAction> ugv_actions(
        static_cast<size_t>(world.num_ugvs()));
    for (int64_t u = 0; u < world.num_ugvs(); ++u) {
      if (!world.UgvNeedsAction(u)) continue;
      ugv_actions[static_cast<size_t>(u)] =
          SampleUgvAction(outputs[static_cast<size_t>(u)], rng,
                          options.greedy)
              .action;
    }
    std::vector<env::UavAction> uav_actions(
        static_cast<size_t>(world.num_uavs()));
    for (int64_t v = 0; v < world.num_uavs(); ++v) {
      if (world.UavAirborne(v)) {
        uav_actions[static_cast<size_t>(v)] =
            uav_controller.Act(world, v, rng);
      }
    }
    world.Step(ugv_actions, uav_actions);
  }
  return world.Metrics();
}

}  // namespace

env::EpisodeMetrics EvaluatePolicy(env::World& world,
                                   UgvPolicyNetwork& policy,
                                   UavController& uav_controller,
                                   const EvalOptions& options) {
  GARL_TRACE_SPAN("eval/run");
  GARL_CHECK_GT(options.episodes, 0);
  obs::MetricsRegistry::Global()
      .GetCounter("eval.episodes")
      .Increment(options.episodes);
  std::vector<env::EpisodeMetrics> per_episode(
      static_cast<size_t>(options.episodes));

  ThreadPool& pool = ThreadPool::Global();
  if (options.episodes > 1 && pool.num_threads() > 1 &&
      !ThreadPool::InWorker() && policy.ThreadSafeInference() &&
      uav_controller.ThreadSafe()) {
    // Episodes 0..E-2 run on private world copies; the last runs on the
    // caller's world, preserving the contract that `world` is left in its
    // final episode's end state.
    std::vector<env::World> worlds(static_cast<size_t>(options.episodes - 1),
                                   world);
    std::vector<std::future<void>> done;
    done.reserve(worlds.size());
    for (int64_t e = 0; e < options.episodes - 1; ++e) {
      done.push_back(pool.Submit([&, e] {
        per_episode[static_cast<size_t>(e)] = RunEvalEpisode(
            worlds[static_cast<size_t>(e)], policy, uav_controller, options,
            e);
      }));
    }
    {
      ThreadPool::InlineScope inline_kernels;
      per_episode.back() = RunEvalEpisode(world, policy, uav_controller,
                                          options, options.episodes - 1);
    }
    for (std::future<void>& f : done) f.get();
  } else {
    for (int64_t e = 0; e < options.episodes; ++e) {
      per_episode[static_cast<size_t>(e)] =
          RunEvalEpisode(world, policy, uav_controller, options, e);
    }
  }

  // Average in episode order, so the sum is bit-identical for any thread
  // count.
  double psi = 0.0, xi = 0.0, zeta = 0.0, beta = 0.0;
  for (const env::EpisodeMetrics& m : per_episode) {
    psi += m.data_collection_ratio;
    xi += m.fairness;
    zeta += m.cooperation_factor;
    beta += m.energy_ratio;
  }
  double n = static_cast<double>(options.episodes);
  return env::MakeMetrics(psi / n, xi / n, zeta / n, beta / n);
}

}  // namespace garl::rl
