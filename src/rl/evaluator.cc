#include "rl/evaluator.h"

#include "common/check.h"
#include "env/metrics.h"
#include "nn/ops.h"
#include "rl/rollout.h"

namespace garl::rl {

env::EpisodeMetrics EvaluatePolicy(env::World& world,
                                   UgvPolicyNetwork& policy,
                                   UavController& uav_controller,
                                   const EvalOptions& options) {
  GARL_CHECK_GT(options.episodes, 0);
  Rng rng(options.seed);
  double psi = 0.0, xi = 0.0, zeta = 0.0, beta = 0.0;
  for (int64_t episode = 0; episode < options.episodes; ++episode) {
    world.Reset(options.seed + static_cast<uint64_t>(episode));
    while (!world.Done()) {
      std::vector<env::UgvObservation> observations;
      for (int64_t u = 0; u < world.num_ugvs(); ++u) {
        observations.push_back(world.ObserveUgv(u));
      }
      std::vector<UgvPolicyOutput> outputs;
      {
        nn::NoGradGuard no_grad;
        outputs = policy.Forward(observations);
      }
      std::vector<env::UgvAction> ugv_actions(
          static_cast<size_t>(world.num_ugvs()));
      for (int64_t u = 0; u < world.num_ugvs(); ++u) {
        if (!world.UgvNeedsAction(u)) continue;
        ugv_actions[static_cast<size_t>(u)] =
            SampleUgvAction(outputs[static_cast<size_t>(u)], rng,
                            options.greedy)
                .action;
      }
      std::vector<env::UavAction> uav_actions(
          static_cast<size_t>(world.num_uavs()));
      for (int64_t v = 0; v < world.num_uavs(); ++v) {
        if (world.UavAirborne(v)) {
          uav_actions[static_cast<size_t>(v)] =
              uav_controller.Act(world, v, rng);
        }
      }
      world.Step(ugv_actions, uav_actions);
    }
    env::EpisodeMetrics m = world.Metrics();
    psi += m.data_collection_ratio;
    xi += m.fairness;
    zeta += m.cooperation_factor;
    beta += m.energy_ratio;
  }
  double n = static_cast<double>(options.episodes);
  return env::MakeMetrics(psi / n, xi / n, zeta / n, beta / n);
}

}  // namespace garl::rl
