#include "rl/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "common/fs_util.h"
#include "common/string_util.h"

namespace garl::rl {

namespace {

constexpr uint32_t kTrainerStateMagic = 0x47545253u;  // "GTRS"
constexpr uint32_t kTrainerStateVersion = 1;
constexpr char kManifestHeader[] = "garl-checkpoint-manifest v1";

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void SerializeTrainerState(const TrainerState& state, std::string* out) {
  AppendPod(out, kTrainerStateMagic);
  AppendPod(out, kTrainerStateVersion);
  AppendPod(out, state.episode_counter);
  AppendPod(out, static_cast<uint8_t>(state.has_uav ? 1 : 0));
  AppendPod(out, static_cast<uint64_t>(state.rng_state.size()));
  out->append(state.rng_state);
}

Status DeserializeTrainerState(std::string_view bytes, TrainerState* state) {
  size_t pos = 0;
  uint32_t magic = 0, version = 0;
  if (!ReadPod(bytes, &pos, &magic) || magic != kTrainerStateMagic) {
    return InvalidArgumentError("bad trainer state magic");
  }
  if (!ReadPod(bytes, &pos, &version) || version != kTrainerStateVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported trainer state version %u", version));
  }
  TrainerState parsed;
  uint8_t has_uav = 0;
  uint64_t rng_size = 0;
  if (!ReadPod(bytes, &pos, &parsed.episode_counter) ||
      !ReadPod(bytes, &pos, &has_uav) || !ReadPod(bytes, &pos, &rng_size)) {
    return InvalidArgumentError("truncated trainer state header");
  }
  if (bytes.size() - pos != rng_size) {
    return InvalidArgumentError("trainer state RNG length mismatch");
  }
  parsed.has_uav = has_uav != 0;
  parsed.rng_state.assign(bytes.data() + pos, rng_size);
  *state = std::move(parsed);
  return Status::Ok();
}

Status SaveTrainerState(const TrainerState& state, const std::string& path) {
  std::string payload;
  SerializeTrainerState(state, &payload);
  AppendPod(&payload, Crc32(payload));
  return WriteFileDurable(path, payload);
}

StatusOr<TrainerState> LoadTrainerState(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  if (bytes.size() < 2 * sizeof(uint32_t)) {
    return InvalidArgumentError("truncated trainer state file: " + path);
  }
  size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (stored_crc != Crc32(bytes.data(), payload_size)) {
    return InvalidArgumentError("trainer state CRC mismatch in " + path);
  }
  TrainerState state;
  GARL_RETURN_IF_ERROR(DeserializeTrainerState(
      std::string_view(bytes.data(), payload_size), &state));
  return state;
}

StatusOr<std::vector<CheckpointInfo>> ReadCheckpointManifest(
    const std::string& dir) {
  const std::string path = dir + "/" + kManifestFile;
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.empty() || lines[0] != kManifestHeader) {
    return InvalidArgumentError("bad manifest header in " + path);
  }
  std::vector<CheckpointInfo> entries;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    std::vector<std::string> fields = Split(lines[i], ' ');
    if (fields.size() != 3 || fields[0] != "checkpoint") {
      return InvalidArgumentError(
          StrPrintf("bad manifest line %zu in %s", i + 1, path.c_str()));
    }
    CheckpointInfo info;
    info.name = fields[1];
    // Reject path-traversal in checkpoint names read back from disk.
    if (info.name.empty() || info.name.find('/') != std::string::npos ||
        info.name == "." || info.name == "..") {
      return InvalidArgumentError("bad checkpoint name in " + path);
    }
    char* end = nullptr;
    info.episode = std::strtoll(fields[2].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return InvalidArgumentError("bad episode number in " + path);
    }
    entries.push_back(std::move(info));
  }
  return entries;
}

Status WriteCheckpointManifest(const std::string& dir,
                               const std::vector<CheckpointInfo>& entries) {
  std::string out = kManifestHeader;
  out += '\n';
  for (const CheckpointInfo& info : entries) {
    out += StrPrintf("checkpoint %s %lld\n", info.name.c_str(),
                     static_cast<long long>(info.episode));
  }
  return WriteFileDurable(dir + "/" + kManifestFile, out);
}

StatusOr<CheckpointInfo> LatestCheckpoint(const std::string& dir) {
  StatusOr<std::vector<CheckpointInfo>> entries = ReadCheckpointManifest(dir);
  if (!entries.ok()) return entries.status();
  if (entries.value().empty()) {
    return NotFoundError("no checkpoints in manifest: " + dir);
  }
  return entries.value().back();
}

Status RegisterCheckpoint(const std::string& dir, const CheckpointInfo& info,
                          int64_t keep_last) {
  std::vector<CheckpointInfo> entries;
  StatusOr<std::vector<CheckpointInfo>> existing = ReadCheckpointManifest(dir);
  if (existing.ok()) {
    entries = std::move(existing).value();
  } else if (existing.status().code() != StatusCode::kNotFound) {
    return existing.status();
  }
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [&info](const CheckpointInfo& e) {
                                 return e.name == info.name;
                               }),
                entries.end());
  entries.push_back(info);

  std::vector<CheckpointInfo> pruned;
  if (keep_last > 0 && static_cast<int64_t>(entries.size()) > keep_last) {
    pruned.assign(entries.begin(),
                  entries.end() - static_cast<size_t>(keep_last));
    entries.erase(entries.begin(),
                  entries.end() - static_cast<size_t>(keep_last));
  }
  // Publish the manifest before deleting anything: a crash between the two
  // steps strands stale directories (harmless) rather than dangling entries.
  GARL_RETURN_IF_ERROR(WriteCheckpointManifest(dir, entries));
  for (const CheckpointInfo& old : pruned) {
    // Best effort: a leftover directory wastes disk but breaks nothing.
    RemoveAllBestEffort(dir + "/" + old.name);
  }
  return Status::Ok();
}

}  // namespace garl::rl
