#ifndef GARL_RL_FEATURE_POLICY_H_
#define GARL_RL_FEATURE_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "rl/policy.h"

// Shared actor-critic head structure (Eq. 14c/14d): every UGV method —
// GARL and all baselines — is expressed as a feature extractor feeding the
// same policy/value heads, so the IPPO trainer and benchmarks treat all
// methods uniformly.

namespace garl::rl {

// Optional structural logit priors contributed by an extractor. They are
// added to the heads' outputs and remain part of the autograd graph, so
// learning can both exploit and override them. Priors are how each
// architecture's inductive bias (e.g. MC-GCN's multi-center separation)
// shapes behaviour from the very first episode, which is what makes
// short-budget CPU training reproduce the paper's ordering (DESIGN.md).
struct UgvPriors {
  std::vector<nn::Tensor> target;   // U x [B] (may be empty)
  std::vector<nn::Tensor> release;  // U x [2] (may be empty)
};

class UgvFeatureExtractor : public nn::Module {
 public:
  // Per-UGV feature vectors, all agents at once (communication-based
  // extractors exchange messages inside this call).
  virtual std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) = 0;
  virtual int64_t feature_dim() const = 0;
  virtual std::string name() const = 0;
  virtual UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) {
    (void)observations;
    return {};
  }
  // See UgvPolicyNetwork::ConsumeAuxLoss.
  virtual nn::Tensor ConsumeAuxLoss() { return nn::Tensor(); }

  // True iff Extract/Priors touch no member state (see
  // UgvPolicyNetwork::ThreadSafeInference). Stateful extractors keep the
  // default false.
  virtual bool ThreadSafeExtract() const { return false; }
};

struct FeaturePolicyOptions {
  int64_t hidden = 64;
  // Scale of extractor-contributed priors on the target head.
  float prior_scale = 3.0f;
  // Generic release prior available to every method: favour releasing when
  // the (observed) data around the current stop is high. 0 disables.
  float release_prior_scale = 2.0f;
  // Symmetry breaking: each agent gets a fixed preferred bearing (evenly
  // spaced around the circle) added as a small target-logit prior. All
  // agents start at the same stop with identical observations, so without
  // a tie-breaker identical policies pick identical targets and deadlock.
  float direction_prior_scale = 0.15f;
};

class FeatureUgvPolicy : public UgvPolicyNetwork {
 public:
  FeatureUgvPolicy(std::unique_ptr<UgvFeatureExtractor> extractor,
                   const EnvContext& context, FeaturePolicyOptions options,
                   Rng& rng);

  std::vector<UgvPolicyOutput> Forward(
      const std::vector<env::UgvObservation>& observations) override;

  std::vector<nn::Tensor> Parameters() const override;
  std::string name() const override { return extractor_->name(); }
  nn::Tensor ConsumeAuxLoss() override {
    return extractor_->ConsumeAuxLoss();
  }
  // The shared trunk/heads are stateless, so thread safety reduces to the
  // extractor's.
  bool ThreadSafeInference() const override {
    return extractor_->ThreadSafeExtract();
  }

  UgvFeatureExtractor& extractor() { return *extractor_; }
  const UgvFeatureExtractor& extractor() const { return *extractor_; }

  // Read-only head access for the serving-plan compiler (core/serving_plan).
  const FeaturePolicyOptions& options() const { return options_; }
  const nn::Linear& trunk() const { return *trunk_; }
  const nn::Linear& release_head() const { return *release_head_; }
  const nn::Linear& target_head() const { return *target_head_; }
  const nn::Linear& value_head() const { return *value_head_; }
  const nn::Tensor& direction_prior(int64_t agent) const {
    return direction_prior_[static_cast<size_t>(agent)];
  }

 private:
  std::unique_ptr<UgvFeatureExtractor> extractor_;
  FeaturePolicyOptions options_;
  int64_t num_stops_;
  std::vector<nn::Tensor> direction_prior_;  // per agent, [B]
  std::unique_ptr<nn::Linear> trunk_;
  std::unique_ptr<nn::Linear> release_head_;
  std::unique_ptr<nn::Linear> target_head_;
  std::unique_ptr<nn::Linear> value_head_;
};

}  // namespace garl::rl

#endif  // GARL_RL_FEATURE_POLICY_H_
