#include "rl/ippo_trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "common/check.h"
#include "common/fs_util.h"
#include "common/proc.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "nn/arena.h"
#include "nn/distributions.h"
#include "nn/ops.h"
#include "nn/serialization.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/run_log.h"
#include "obs/trace.h"
#include "rl/checkpoint.h"

namespace garl::rl {

namespace {

bool AnyNonFinite(const std::vector<nn::Tensor>& tensors) {
  for (const nn::Tensor& t : tensors) {
    for (float v : t.data()) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

// Folds a pre-clip gradient norm into the running per-iteration maximum;
// a non-finite norm is sticky so the sentinel always sees it.
void RecordGradNorm(double* accumulator, float norm) {
  if (!std::isfinite(norm)) {
    *accumulator = static_cast<double>(norm);
  } else if (std::isfinite(*accumulator)) {
    *accumulator = std::max(*accumulator, static_cast<double>(norm));
  }
}

// Per-iteration span deltas between two TraceCollector snapshots (both
// name-sorted). Entries with no activity in the window are dropped; the
// result stays name-sorted.
std::vector<obs::SpanTiming> SpanDelta(
    const std::vector<obs::SpanStats>& before,
    const std::vector<obs::SpanStats>& after) {
  std::map<std::string, obs::SpanStats> prior;
  for (const obs::SpanStats& s : before) prior[s.name] = s;
  std::vector<obs::SpanTiming> delta;
  for (const obs::SpanStats& s : after) {
    auto it = prior.find(s.name);
    int64_t count = s.count - (it == prior.end() ? 0 : it->second.count);
    int64_t total_ns =
        s.total_ns - (it == prior.end() ? 0 : it->second.total_ns);
    if (count == 0 && total_ns == 0) continue;
    delta.push_back({s.name, count, total_ns});
  }
  return delta;
}

}  // namespace

IppoTrainer::IppoTrainer(env::World* world, UgvPolicyNetwork* ugv_network,
                         UavPolicyNetwork* uav_network, TrainConfig config)
    : world_(world),
      ugv_network_(ugv_network),
      uav_network_(uav_network),
      config_(config),
      rng_(config.seed) {
  GARL_CHECK(world_ != nullptr);
  GARL_CHECK(ugv_network_ != nullptr);
  ugv_optimizer_ =
      std::make_unique<nn::Adam>(ugv_network_->Parameters(), config_.lr);
  if (config_.train_uav) {
    GARL_CHECK_MSG(uav_network_ != nullptr,
                   "train_uav requires a UAV network");
    uav_optimizer_ =
        std::make_unique<nn::Adam>(uav_network_->Parameters(), config_.lr);
    rollout_uav_controller_ = std::make_unique<LearnedUavController>(
        uav_network_, /*deterministic=*/false);
  } else {
    rollout_uav_controller_ = std::make_unique<GreedyUavController>();
  }
}

IppoTrainer::CollectResult IppoTrainer::RunEpisode(env::World& world,
                                                   uint64_t reset_seed,
                                                   uint64_t rng_seed,
                                                   int64_t episode) const {
  GARL_TRACE_SPAN("trainer/episode");
  CollectResult result;
  Rng rng(rng_seed);
  world.Reset(reset_seed);
  int64_t num_ugvs = world.num_ugvs();
  int64_t num_uavs = world.num_uavs();
  result.ugv.agents.resize(static_cast<size_t>(num_ugvs));
  result.uav.agents.resize(static_cast<size_t>(num_uavs));

  // Fault injection: the episode's schedule is a pure function of
  // (seed, faults.seed, episode), so it survives thread-count changes and
  // kill-and-resume. Disabled, this block is never entered and the episode
  // runs the exact pre-fault instruction stream.
  const bool faults_on = config_.faults.enabled;
  sim::EpisodeFaultPlan fault_plan;
  if (faults_on) {
    sim::WorldDims dims;
    dims.num_ugvs = world.num_ugvs();
    dims.num_uavs = world.num_uavs();
    dims.num_sensors = static_cast<int64_t>(world.sensors().size());
    dims.horizon = world.params().horizon;
    fault_plan =
        sim::BuildEpisodeFaultPlan(config_.faults, config_.seed, episode, dims);
    result.stats.fault_counts = fault_plan.Counts();
    result.stats.fault_digest = fault_plan.Digest();
    sim::CountFaultEvents(fault_plan);
  }

  // Index of each agent's latest decision, for reward credit assignment.
  std::vector<int64_t> last_decision(static_cast<size_t>(num_ugvs), -1);

  while (!world.Done()) {
    if (faults_on) {
      world.SetSlotFaults(sim::SlotFaultsAt(fault_plan, world.slot()));
    }
    // Observe everyone once per slot.
    std::vector<env::UgvObservation> observations;
    observations.reserve(static_cast<size_t>(num_ugvs));
    for (int64_t u = 0; u < num_ugvs; ++u) {
      observations.push_back(world.ObserveUgv(u));
    }

    bool anyone_acts = false;
    for (int64_t u = 0; u < num_ugvs; ++u) {
      if (world.UgvNeedsAction(u)) anyone_acts = true;
    }

    std::vector<env::UgvAction> ugv_actions(static_cast<size_t>(num_ugvs));
    if (anyone_acts) {
      std::vector<UgvPolicyOutput> outputs;
      {
        nn::NoGradGuard no_grad;
        outputs = ugv_network_->Forward(observations);
      }
      int64_t slot_index = static_cast<int64_t>(result.ugv.slots.size());
      result.ugv.slots.push_back(observations);
      for (int64_t u = 0; u < num_ugvs; ++u) {
        if (!world.UgvNeedsAction(u)) continue;
        SampledUgvAction sampled =
            SampleUgvAction(outputs[static_cast<size_t>(u)], rng,
                            /*greedy=*/false);
        ugv_actions[static_cast<size_t>(u)] = sampled.action;
        UgvDecision decision;
        decision.slot = slot_index;
        decision.ugv = u;
        decision.release = sampled.action.release ? 1 : 0;
        decision.target = sampled.action.target_stop;
        decision.old_log_prob = sampled.log_prob;
        decision.value = sampled.value;
        auto& seq = result.ugv.agents[static_cast<size_t>(u)];
        seq.push_back(decision);
        last_decision[static_cast<size_t>(u)] =
            static_cast<int64_t>(seq.size()) - 1;
      }
    }

    // UAV actions (and optional learned-policy bookkeeping).
    std::vector<env::UavAction> uav_actions(static_cast<size_t>(num_uavs));
    std::vector<bool> uav_acted(static_cast<size_t>(num_uavs), false);
    for (int64_t v = 0; v < num_uavs; ++v) {
      if (!world.UavAirborne(v)) continue;
      uav_acted[static_cast<size_t>(v)] = true;
      if (config_.train_uav) {
        env::UavObservation obs = world.ObserveUav(v);
        UavPolicyOutput out;
        {
          nn::NoGradGuard no_grad;
          out = uav_network_->Forward(obs);
        }
        nn::DiagGaussian dist(out.mean, out.log_std);
        std::vector<float> action = dist.Sample(rng);
        double limit = world.params().uav_max_dist;
        env::UavAction act{
            std::clamp(static_cast<double>(action[0]), -limit, limit),
            std::clamp(static_cast<double>(action[1]), -limit, limit)};
        uav_actions[static_cast<size_t>(v)] = act;
        UavDecision decision;
        decision.obs = obs;
        decision.action_x = action[0];
        decision.action_y = action[1];
        decision.old_log_prob = dist.LogProb(action).item();
        decision.value = out.value.item();
        result.uav.agents[static_cast<size_t>(v)].push_back(decision);
      } else {
        uav_actions[static_cast<size_t>(v)] =
            rollout_uav_controller_->Act(world, v, rng);
      }
    }

    env::StepResult step = world.Step(ugv_actions, uav_actions);

    for (int64_t u = 0; u < num_ugvs; ++u) {
      float reward = static_cast<float>(step.ugv_rewards[static_cast<size_t>(
                         u)]) *
                     config_.ugv_reward_scale;
      result.stats.ugv_episode_reward += reward;
      int64_t idx = last_decision[static_cast<size_t>(u)];
      if (idx >= 0) {
        result.ugv.agents[static_cast<size_t>(u)][static_cast<size_t>(idx)]
            .reward += reward;
      }
    }
    for (int64_t v = 0; v < num_uavs; ++v) {
      if (!uav_acted[static_cast<size_t>(v)]) continue;
      float reward =
          static_cast<float>(step.uav_rewards[static_cast<size_t>(v)]);
      result.stats.uav_episode_reward += reward;
      if (config_.train_uav) {
        result.uav.agents[static_cast<size_t>(v)].back().reward = reward;
      }
    }
  }
  result.stats.metrics = world.Metrics();
  return result;
}

bool IppoTrainer::ParallelRolloutsSafe() const {
  if (!ugv_network_->ThreadSafeInference()) return false;
  if (config_.train_uav) return uav_network_->ThreadSafeInference();
  return rollout_uav_controller_->ThreadSafe();
}

IppoTrainer::CollectResult IppoTrainer::CollectEpisodes() {
  GARL_TRACE_SPAN("trainer/collect");
  int64_t episodes = std::max<int64_t>(config_.episodes_per_iteration, 1);
  // Episode numbering continues PR 1's checkpoint scheme: global episode n
  // resets the world with seed + n and n is persisted, so a resumed run
  // replays the same episode stream. The sampling RNG for episode n is the
  // stateless stream split StreamSeed(seed, n) — a pure function of the
  // episode number, identical no matter which worker (or how many) runs it.
  int64_t first = episode_counter_ + 1;
  episode_counter_ += episodes;
  std::vector<CollectResult> parts(static_cast<size_t>(episodes));
  auto run = [this](env::World& world, int64_t n) {
    return RunEpisode(world, config_.seed + static_cast<uint64_t>(n),
                      Rng::StreamSeed(config_.seed, static_cast<uint64_t>(n)),
                      n);
  };

  ThreadPool& pool = ThreadPool::Global();
  if (episodes > 1 && pool.num_threads() > 1 && !ThreadPool::InWorker() &&
      ParallelRolloutsSafe()) {
    // Episodes 0..E-2 run on private world copies; the last runs on the
    // trainer's world so it ends in the final episode's end state exactly
    // as in the sequential path.
    std::vector<env::World> worlds(static_cast<size_t>(episodes - 1),
                                   *world_);
    std::vector<std::future<void>> done;
    done.reserve(worlds.size());
    for (int64_t e = 0; e < episodes - 1; ++e) {
      done.push_back(pool.Submit([&, e] {
        parts[static_cast<size_t>(e)] = run(worlds[static_cast<size_t>(e)],
                                            first + e);
      }));
    }
    {
      // Keep this thread's kernel ParallelFors inline so they don't queue
      // behind the whole-episode tasks above.
      ThreadPool::InlineScope inline_kernels;
      parts.back() = run(*world_, first + episodes - 1);
    }
    for (std::future<void>& f : done) f.get();
  } else {
    for (int64_t e = 0; e < episodes; ++e) {
      parts[static_cast<size_t>(e)] = run(*world_, first + e);
    }
  }

  // Merge in episode order (independent of completion order). Slots are
  // renumbered with a per-episode base; each episode's per-agent decision
  // sequence becomes its own entry in `agents`, so GAE (which runs per
  // sequence) never crosses an episode boundary. Metrics report the final
  // episode, matching the single-episode behaviour.
  CollectResult merged;
  for (CollectResult& part : parts) {
    int64_t slot_base = static_cast<int64_t>(merged.ugv.slots.size());
    for (auto& slot : part.ugv.slots) {
      merged.ugv.slots.push_back(std::move(slot));
    }
    for (auto& seq : part.ugv.agents) {
      for (UgvDecision& d : seq) d.slot += slot_base;
      merged.ugv.agents.push_back(std::move(seq));
    }
    for (auto& seq : part.uav.agents) {
      merged.uav.agents.push_back(std::move(seq));
    }
    merged.stats.ugv_episode_reward += part.stats.ugv_episode_reward;
    merged.stats.uav_episode_reward += part.stats.uav_episode_reward;
    merged.stats.metrics = part.stats.metrics;
    if (config_.faults.enabled) {
      // Digest chain follows episode order (this loop), not completion
      // order, so the iteration fingerprint is thread-count-invariant.
      merged.stats.fault_counts += part.stats.fault_counts;
      merged.stats.fault_digest = sim::ChainFaultDigest(
          merged.stats.fault_digest, part.stats.fault_digest);
    }
  }
  return merged;
}

void IppoTrainer::UpdateUgv(UgvRollout& rollout, IterationStats& stats) {
  GARL_TRACE_SPAN("trainer/update_ugv");
  FinalizeUgvRollout(rollout, config_.gamma, config_.gae_lambda);
  int64_t num_slots = static_cast<int64_t>(rollout.slots.size());
  if (num_slots == 0) return;

  // Decisions grouped by slot so one joint forward serves a whole slot.
  // Each decision carries its own UGV index (`ugv`), because with multiple
  // episodes per iteration `agents` holds one sequence per (episode, UGV)
  // pair and the sequence index no longer equals the UGV index.
  std::vector<std::vector<const UgvDecision*>> by_slot(
      static_cast<size_t>(num_slots));
  for (const auto& seq : rollout.agents) {
    for (const UgvDecision& d : seq) {
      by_slot[static_cast<size_t>(d.slot)].push_back(&d);
    }
  }

  std::vector<int64_t> slot_order(static_cast<size_t>(num_slots));
  for (int64_t i = 0; i < num_slots; ++i) slot_order[i] = i;

  double total_policy = 0.0, total_value = 0.0, total_entropy = 0.0;
  int64_t loss_terms = 0;
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(slot_order);
    for (int64_t begin = 0; begin < num_slots;
         begin += config_.minibatch_slots) {
      int64_t end = std::min(begin + config_.minibatch_slots, num_slots);
      std::vector<nn::Tensor> losses;
      int64_t decisions_in_batch = 0;
      for (int64_t i = begin; i < end; ++i) {
        int64_t slot = slot_order[static_cast<size_t>(i)];
        if (by_slot[static_cast<size_t>(slot)].empty()) continue;
        std::vector<UgvPolicyOutput> outputs =
            ugv_network_->Forward(rollout.slots[static_cast<size_t>(slot)]);
        for (const UgvDecision* decision : by_slot[static_cast<size_t>(slot)]) {
          const UgvPolicyOutput& out =
              outputs[static_cast<size_t>(decision->ugv)];
          UgvLogProbEntropy lp = UgvActionLogProb(out, *decision);
          // Clipped surrogate (Eq. 15).
          nn::Tensor ratio = nn::Exp(
              nn::AddScalar(lp.log_prob, -decision->old_log_prob));
          nn::Tensor surr1 = nn::MulScalar(ratio, decision->advantage);
          nn::Tensor clipped = nn::Clip(ratio, 1.0f - config_.clip_eps,
                                        1.0f + config_.clip_eps);
          nn::Tensor surr2 = nn::MulScalar(clipped, decision->advantage);
          // min(surr1, surr2) = -max(-s1, -s2); emulate with relu trick:
          // min(a,b) = b - relu(b - a) works for scalars.
          nn::Tensor surr_min =
              nn::Sub(surr2, nn::Relu(nn::Sub(surr2, surr1)));
          nn::Tensor policy_loss = nn::Neg(surr_min);

          // Clipped value loss (Eq. 16).
          nn::Tensor v_err = nn::Square(
              nn::AddScalar(out.value, -decision->ret));
          nn::Tensor v_clipped = nn::Clip(
              nn::AddScalar(out.value, -decision->value),
              -config_.value_clip, config_.value_clip);
          nn::Tensor v_err2 = nn::Square(nn::AddScalar(
              nn::AddScalar(v_clipped, decision->value), -decision->ret));
          // max(a,b) = a + relu(b - a).
          nn::Tensor value_loss =
              nn::Add(v_err, nn::Relu(nn::Sub(v_err2, v_err)));

          nn::Tensor loss = nn::Sub(
              nn::Add(policy_loss,
                      nn::MulScalar(value_loss, config_.value_coef)),
              nn::MulScalar(lp.entropy, config_.entropy_coef));
          losses.push_back(loss);
          total_policy += policy_loss.item();
          total_value += value_loss.item();
          total_entropy += lp.entropy.item();
          ++loss_terms;
          ++decisions_in_batch;
        }
      }
      if (losses.empty()) continue;
      nn::Tensor batch_loss = nn::MulScalar(
          nn::Sum(nn::Concat(
              [&losses] {
                std::vector<nn::Tensor> as_rows;
                for (auto& l : losses) {
                  as_rows.push_back(nn::Reshape(l, {1}));
                }
                return as_rows;
              }(),
              0)),
          1.0f / static_cast<float>(decisions_in_batch));
      nn::Tensor aux = ugv_network_->ConsumeAuxLoss();
      if (aux.defined()) {
        batch_loss = nn::Add(batch_loss, nn::MulScalar(aux, 0.1f));
      }
      ugv_optimizer_->ZeroGrad();
      batch_loss.Backward();
      MaybeInjectNanGrad(*ugv_optimizer_);
      RecordGradNorm(&stats.ugv_grad_norm,
                     ugv_optimizer_->ClipGradNorm(config_.max_grad_norm));
      ugv_optimizer_->Step();
    }
  }
  if (loss_terms > 0) {
    stats.policy_loss = total_policy / static_cast<double>(loss_terms);
    stats.value_loss = total_value / static_cast<double>(loss_terms);
    stats.entropy = total_entropy / static_cast<double>(loss_terms);
  }
}

void IppoTrainer::UpdateUav(UavRollout& rollout, IterationStats& stats) {
  GARL_TRACE_SPAN("trainer/update_uav");
  FinalizeUavRollout(rollout, config_.gamma, config_.gae_lambda);
  // Flatten decisions.
  std::vector<const UavDecision*> all;
  for (const auto& agent : rollout.agents) {
    for (const UavDecision& d : agent) all.push_back(&d);
  }
  if (all.empty()) return;
  std::vector<int64_t> order(all.size());
  for (size_t i = 0; i < all.size(); ++i) order[i] = static_cast<int64_t>(i);
  int64_t batch = std::max<int64_t>(config_.minibatch_slots * 2, 8);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (size_t begin = 0; begin < all.size();
         begin += static_cast<size_t>(batch)) {
      size_t end = std::min(begin + static_cast<size_t>(batch), all.size());
      std::vector<nn::Tensor> losses;
      for (size_t i = begin; i < end; ++i) {
        const UavDecision& d = *all[order[i]];
        UavPolicyOutput out = uav_network_->Forward(d.obs);
        nn::DiagGaussian dist(out.mean, out.log_std);
        nn::Tensor log_prob = dist.LogProb({d.action_x, d.action_y});
        nn::Tensor ratio =
            nn::Exp(nn::AddScalar(log_prob, -d.old_log_prob));
        nn::Tensor surr1 = nn::MulScalar(ratio, d.advantage);
        nn::Tensor surr2 = nn::MulScalar(
            nn::Clip(ratio, 1.0f - config_.clip_eps, 1.0f + config_.clip_eps),
            d.advantage);
        nn::Tensor surr_min =
            nn::Sub(surr2, nn::Relu(nn::Sub(surr2, surr1)));
        nn::Tensor value_loss =
            nn::Square(nn::AddScalar(out.value, -d.ret));
        nn::Tensor loss =
            nn::Sub(nn::Add(nn::Neg(surr_min),
                            nn::MulScalar(value_loss, config_.value_coef)),
                    nn::MulScalar(dist.Entropy(), config_.entropy_coef));
        losses.push_back(nn::Reshape(loss, {1}));
      }
      if (losses.empty()) continue;
      nn::Tensor batch_loss = nn::MulScalar(
          nn::Sum(nn::Concat(losses, 0)),
          1.0f / static_cast<float>(losses.size()));
      uav_optimizer_->ZeroGrad();
      batch_loss.Backward();
      RecordGradNorm(&stats.uav_grad_norm,
                     uav_optimizer_->ClipGradNorm(config_.max_grad_norm));
      uav_optimizer_->Step();
    }
  }
}

IterationStats IppoTrainer::RunIteration() {
  CollectResult collected = CollectEpisodes();
  UpdateUgv(collected.ugv, collected.stats);
  if (config_.train_uav) UpdateUav(collected.uav, collected.stats);
  return collected.stats;
}

void IppoTrainer::MaybeInjectNanGrad(nn::Optimizer& optimizer) {
  if (fault_.nan_grad_iteration != current_iteration_) return;
  if (!fault_.sticky) fault_.nan_grad_iteration = -1;
  const std::vector<nn::Tensor>& params = optimizer.parameters();
  if (params.empty()) return;
  auto& grad = params.front().impl()->grad;
  if (!grad.empty()) grad[0] = std::numeric_limits<float>::quiet_NaN();
}

bool IppoTrainer::Diverged(const IterationStats& stats) const {
  if (!std::isfinite(stats.policy_loss) || !std::isfinite(stats.value_loss) ||
      !std::isfinite(stats.entropy) || !std::isfinite(stats.ugv_grad_norm) ||
      !std::isfinite(stats.uav_grad_norm)) {
    return true;
  }
  if (AnyNonFinite(ugv_network_->Parameters())) return true;
  if (uav_optimizer_ && AnyNonFinite(uav_network_->Parameters())) return true;
  return false;
}

void IppoTrainer::TakeSnapshot(Snapshot* snapshot) const {
  *snapshot = Snapshot();
  nn::SerializeParameters(ugv_network_->Parameters(), &snapshot->ugv_params);
  ugv_optimizer_->SerializeState(&snapshot->ugv_adam);
  if (uav_optimizer_) {
    nn::SerializeParameters(uav_network_->Parameters(),
                            &snapshot->uav_params);
    uav_optimizer_->SerializeState(&snapshot->uav_adam);
  }
  snapshot->rng = rng_.SerializeState();
  snapshot->episode_counter = episode_counter_;
}

Status IppoTrainer::RestoreSnapshot(const Snapshot& snapshot) {
  std::vector<nn::Tensor> ugv_params = ugv_network_->Parameters();
  GARL_RETURN_IF_ERROR(
      nn::DeserializeParameters(snapshot.ugv_params, ugv_params));
  GARL_RETURN_IF_ERROR(ugv_optimizer_->DeserializeState(snapshot.ugv_adam));
  if (uav_optimizer_) {
    std::vector<nn::Tensor> uav_params = uav_network_->Parameters();
    GARL_RETURN_IF_ERROR(
        nn::DeserializeParameters(snapshot.uav_params, uav_params));
    GARL_RETURN_IF_ERROR(uav_optimizer_->DeserializeState(snapshot.uav_adam));
  }
  GARL_RETURN_IF_ERROR(rng_.DeserializeState(snapshot.rng));
  episode_counter_ = snapshot.episode_counter;
  return Status::Ok();
}

Status IppoTrainer::SaveCheckpoint(const std::string& dir) {
  GARL_TRACE_SPAN("checkpoint/save");
  GARL_RETURN_IF_ERROR(EnsureDirectory(dir));
  CheckpointInfo info;
  info.episode = episode_counter_;
  info.name =
      StrPrintf("ckpt_%08lld", static_cast<long long>(episode_counter_));
  const std::string sub = dir + "/" + info.name;
  GARL_RETURN_IF_ERROR(EnsureDirectory(sub));
  GARL_RETURN_IF_ERROR(nn::SaveParameters(ugv_network_->Parameters(),
                                          sub + "/" + kUgvParamsFile));
  GARL_RETURN_IF_ERROR(ugv_optimizer_->SaveState(sub + "/" + kUgvAdamFile));
  if (uav_optimizer_) {
    GARL_RETURN_IF_ERROR(nn::SaveParameters(uav_network_->Parameters(),
                                            sub + "/" + kUavParamsFile));
    GARL_RETURN_IF_ERROR(uav_optimizer_->SaveState(sub + "/" + kUavAdamFile));
  }
  TrainerState state;
  state.episode_counter = episode_counter_;
  state.has_uav = uav_optimizer_ != nullptr;
  state.rng_state = rng_.SerializeState();
  GARL_RETURN_IF_ERROR(
      SaveTrainerState(state, sub + "/" + kTrainerStateFile));
  return RegisterCheckpoint(dir, info, config_.checkpoint_keep_last);
}

Status IppoTrainer::RestoreCheckpoint(const std::string& dir) {
  GARL_TRACE_SPAN("checkpoint/restore");
  StatusOr<CheckpointInfo> latest = LatestCheckpoint(dir);
  if (!latest.ok()) return latest.status();
  const std::string sub = dir + "/" + latest.value().name;
  StatusOr<TrainerState> state =
      LoadTrainerState(sub + "/" + kTrainerStateFile);
  if (!state.ok()) return state.status();
  if (state.value().has_uav != (uav_optimizer_ != nullptr)) {
    return FailedPreconditionError(
        "checkpoint UAV configuration does not match trainer: " + sub);
  }
  std::vector<nn::Tensor> ugv_params = ugv_network_->Parameters();
  GARL_RETURN_IF_ERROR(
      nn::LoadParameters(sub + "/" + kUgvParamsFile, ugv_params));
  GARL_RETURN_IF_ERROR(ugv_optimizer_->LoadState(sub + "/" + kUgvAdamFile));
  if (uav_optimizer_) {
    std::vector<nn::Tensor> uav_params = uav_network_->Parameters();
    GARL_RETURN_IF_ERROR(
        nn::LoadParameters(sub + "/" + kUavParamsFile, uav_params));
    GARL_RETURN_IF_ERROR(uav_optimizer_->LoadState(sub + "/" + kUavAdamFile));
  }
  GARL_RETURN_IF_ERROR(rng_.DeserializeState(state.value().rng_state));
  episode_counter_ = state.value().episode_counter;
  return Status::Ok();
}

StatusOr<std::vector<IterationStats>> IppoTrainer::Train() {
  std::vector<IterationStats> history;
  history.reserve(static_cast<size_t>(config_.iterations));
  Snapshot snapshot;
  if (config_.sentinel) TakeSnapshot(&snapshot);
  float healthy_ugv_lr = ugv_optimizer_->lr();
  float healthy_uav_lr = uav_optimizer_ ? uav_optimizer_->lr() : 0.0f;
  int64_t trips = 0;  // consecutive sentinel trips on the current iteration

  // Filesystem fault injection: arms fs_util's write-fault hook for the
  // duration of Train(), so checkpoint and run-log writes see transient
  // EIO / short-write faults (bounded per path; retries always recover).
  std::optional<sim::ScheduledFsFaults> fs_faults;
  if (config_.faults.enabled && config_.faults.fs_fault_prob > 0.0) {
    fs_faults.emplace(config_.faults, config_.seed);
  }

  // Observability: the run log streams one record per successful iteration;
  // the span baseline lets each record report only its own window's timings.
  // Everything gathered here is read-only — no RNG draw, no learned state.
  std::optional<obs::RunLog> run_log;
  if (!config_.run_log_path.empty()) {
    obs::RunLogOptions log_options;
    log_options.max_segment_bytes = config_.run_log_max_segment_bytes;
    // Resuming at iteration k: keep records 0..k-1, trim anything at or
    // past k (a record whose checkpoint never landed gets re-emitted with
    // identical det bytes).
    if (config_.start_iteration > 0) {
      log_options.resume_iteration = config_.start_iteration;
    }
    StatusOr<obs::RunLog> opened =
        obs::OpenRunLog(config_.run_log_path, log_options);
    if (!opened.ok()) return opened.status();
    run_log.emplace(std::move(opened).value());
  }
  obs::Counter& trip_counter =
      obs::MetricsRegistry::Global().GetCounter("trainer.sentinel_trips");
  obs::Counter& iteration_counter =
      obs::MetricsRegistry::Global().GetCounter("trainer.iterations");
  std::vector<obs::SpanStats> span_baseline =
      obs::TraceCollector::Global().Snapshot();

  for (int64_t m = config_.start_iteration; m < config_.iterations;) {
    // Graceful shutdown: SIGTERM/SIGINT (routed through proc's
    // async-signal-safe flag) wins over starting another iteration. The
    // checkpoint makes the interruption resumable; the distinct CANCELLED
    // code tells supervisors this was a requested stop, not a failure.
    if (proc::ShutdownRequested()) {
      if (!config_.checkpoint_dir.empty()) {
        GARL_RETURN_IF_ERROR(SaveCheckpoint(config_.checkpoint_dir));
      }
      return CancelledError(StrPrintf(
          "shutdown requested; stopped before iteration %lld",
          static_cast<long long>(m)));
    }
    current_iteration_ = m;
    int64_t iteration_start_ns = obs::MonotonicNowNs();
    IterationStats stats = RunIteration();
    if (config_.sentinel && Diverged(stats)) {
      ++trips;
      trip_counter.Increment();
      if (trips > config_.max_divergence_retries) {
        return InternalError(StrPrintf(
            "iteration %lld diverged %lld consecutive times; giving up",
            static_cast<long long>(m), static_cast<long long>(trips)));
      }
      GARL_RETURN_IF_ERROR(RestoreSnapshot(snapshot));
      // The snapshot restored the pre-divergence learning rate; decay it
      // geometrically in the number of consecutive trips before retrying.
      float decay =
          std::pow(config_.divergence_lr_decay, static_cast<float>(trips));
      ugv_optimizer_->set_lr(healthy_ugv_lr * decay);
      if (uav_optimizer_) uav_optimizer_->set_lr(healthy_uav_lr * decay);
      continue;  // retry iteration m from the last healthy state
    }
    if (trips > 0) {
      stats.diverged = true;
      stats.recovered = true;
      trips = 0;
    }
    history.push_back(stats);
    iteration_counter.Increment();
    if (config_.sentinel) {
      TakeSnapshot(&snapshot);
      healthy_ugv_lr = ugv_optimizer_->lr();
      if (uav_optimizer_) healthy_uav_lr = uav_optimizer_->lr();
    }
    // Run-log append strictly BEFORE the checkpoint: the checkpoint defines
    // the resume point, so every record below it must already be durable.
    // (A kill between the two leaves record m on disk with no checkpoint m;
    // the resume trim drops it and iteration m re-emits identical det
    // bytes.)
    if (run_log.has_value()) {
      GARL_RETURN_IF_ERROR(run_log->AppendRecord(
          MakeIterationRecord(m, stats, iteration_start_ns, &span_baseline,
                              fs_faults.has_value() ? &*fs_faults : nullptr)));
    }
    if (!config_.checkpoint_dir.empty() && config_.checkpoint_interval > 0 &&
        (m + 1) % config_.checkpoint_interval == 0) {
      GARL_RETURN_IF_ERROR(SaveCheckpoint(config_.checkpoint_dir));
    }
    if (config_.iteration_callback) config_.iteration_callback(m);
    ++m;
  }
  return history;
}

obs::IterationRecord IppoTrainer::MakeIterationRecord(
    int64_t iteration, const IterationStats& stats, int64_t start_ns,
    std::vector<obs::SpanStats>* span_baseline,
    const sim::ScheduledFsFaults* fs_faults) const {
  obs::IterationRecord record;
  // Deterministic payload: a pure function of (seed, config).
  record.iteration = iteration;
  record.episode_counter = episode_counter_;
  record.ugv_episode_reward = stats.ugv_episode_reward;
  record.uav_episode_reward = stats.uav_episode_reward;
  record.policy_loss = stats.policy_loss;
  record.value_loss = stats.value_loss;
  record.entropy = stats.entropy;
  record.ugv_grad_norm = stats.ugv_grad_norm;
  record.uav_grad_norm = stats.uav_grad_norm;
  record.lr = static_cast<double>(ugv_optimizer_->lr());
  record.diverged = stats.diverged;
  record.recovered = stats.recovered;
  record.psi = stats.metrics.data_collection_ratio;
  record.xi = stats.metrics.fairness;
  record.zeta = stats.metrics.cooperation_factor;
  record.beta = stats.metrics.energy_ratio;
  record.efficiency = stats.metrics.efficiency;
  // Fault fields ride in both payloads only when injection is enabled, so
  // fault-free logs keep the exact pre-fault byte layout. The schedule
  // digest is deterministic (det); event counts are bookkeeping (rt).
  record.faults_enabled = config_.faults.enabled;
  if (config_.faults.enabled) {
    record.fault_digest = stats.fault_digest;
    record.fault_uav_dropouts = stats.fault_counts.uav_dropouts;
    record.fault_ugv_stalls = stats.fault_counts.ugv_stalls;
    record.fault_comm_blackouts = stats.fault_counts.comm_blackouts;
    record.fault_sensor_faults = stats.fault_counts.sensor_faults;
    record.fault_fs_injected = fs_faults != nullptr ? fs_faults->injected() : 0;
    record.fault_fs_recovered =
        fs_faults != nullptr ? fs_faults->recovered() : 0;
  }
  // Runtime payload: clock- and thread-count-dependent, excluded from
  // golden comparisons.
  record.wall_ns = obs::MonotonicNowNs() - start_ns;
  record.route_cache_hits = world_->stops().route_cache_hits();
  record.route_cache_misses = world_->stops().route_cache_misses();
  ThreadPool& pool = ThreadPool::Global();
  ThreadPool::Stats pool_stats = pool.stats();
  record.pool_threads = pool.num_threads();
  record.pool_tasks = pool_stats.tasks_submitted;
  record.pool_parallel_fors = pool_stats.parallel_fors;
  record.pool_inline_fors = pool_stats.inline_parallel_fors;
  nn::arena::ArenaStats arena_stats = nn::arena::GlobalStats();
  record.arena_heap_allocs = arena_stats.heap_allocs;
  record.arena_reuses = arena_stats.reuses;
  record.arena_cached_bytes = arena_stats.cached_bytes;
  record.arena_high_water_bytes = arena_stats.high_water_bytes;
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetGauge("arena.heap_allocs")
      .Set(static_cast<double>(arena_stats.heap_allocs));
  metrics.GetGauge("arena.reuses")
      .Set(static_cast<double>(arena_stats.reuses));
  metrics.GetGauge("arena.cached_bytes")
      .Set(static_cast<double>(arena_stats.cached_bytes));
  metrics.GetGauge("arena.high_water_bytes")
      .Set(static_cast<double>(arena_stats.high_water_bytes));
  std::vector<obs::SpanStats> now = obs::TraceCollector::Global().Snapshot();
  record.spans = SpanDelta(*span_baseline, now);
  *span_baseline = std::move(now);
  // Registered latency histograms (empty for plain training runs; the
  // serving path registers request-latency histograms here). Snapshot order
  // is name-sorted, matching the spans convention.
  obs::MetricsSnapshot metrics_snapshot = metrics.Snapshot();
  record.hists.reserve(metrics_snapshot.histograms.size());
  for (const obs::MetricsSnapshot::HistogramStats& h :
       metrics_snapshot.histograms) {
    obs::HistogramTiming timing;
    timing.name = h.name;
    timing.count = h.count;
    timing.p50 = h.p50;
    timing.p95 = h.p95;
    timing.p99 = h.p99;
    timing.p999 = h.p999;
    record.hists.push_back(std::move(timing));
  }
  return record;
}

}  // namespace garl::rl
