#include "rl/gae.h"

#include <cmath>

#include "common/check.h"

namespace garl::rl {

GaeResult ComputeGae(const std::vector<float>& rewards,
                     const std::vector<float>& values, float gamma,
                     float lambda) {
  GARL_CHECK_EQ(rewards.size(), values.size());
  size_t n = rewards.size();
  GaeResult result;
  result.advantages.assign(n, 0.0f);
  result.returns.assign(n, 0.0f);
  float gae = 0.0f;
  for (size_t i = n; i-- > 0;) {
    float next_value = (i + 1 < n) ? values[i + 1] : 0.0f;
    float delta = rewards[i] + gamma * next_value - values[i];
    gae = delta + gamma * lambda * gae;
    result.advantages[i] = gae;
    result.returns[i] = gae + values[i];
  }
  return result;
}

float NormalizeAdvantages(std::vector<float>& advantages) {
  if (advantages.size() < 2) return advantages.empty() ? 0.0f : advantages[0];
  double sum = 0.0;
  for (float a : advantages) sum += a;
  double mean = sum / static_cast<double>(advantages.size());
  double var = 0.0;
  for (float a : advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(advantages.size());
  float std = static_cast<float>(std::sqrt(var) + 1e-8);
  for (float& a : advantages) {
    a = static_cast<float>((a - mean) / std);
  }
  return static_cast<float>(mean);
}

}  // namespace garl::rl
