#include "rl/rollout.h"

#include "common/check.h"
#include "nn/distributions.h"
#include "nn/ops.h"
#include "rl/gae.h"

namespace garl::rl {

SampledUgvAction SampleUgvAction(const UgvPolicyOutput& output, Rng& rng,
                                 bool greedy) {
  nn::NoGradGuard no_grad;
  nn::Categorical release_dist(output.release_logits);
  nn::Categorical target_dist(output.target_logits);
  int64_t release = greedy ? release_dist.Mode() : release_dist.Sample(rng);
  SampledUgvAction sampled;
  sampled.action.release = (release == 1);
  sampled.log_prob = release_dist.LogProb(release).item();
  if (release == 0) {
    int64_t target = greedy ? target_dist.Mode() : target_dist.Sample(rng);
    sampled.action.target_stop = target;
    sampled.log_prob += target_dist.LogProb(target).item();
  }
  sampled.value = output.value.item();
  return sampled;
}

UgvLogProbEntropy UgvActionLogProb(const UgvPolicyOutput& output,
                                   const UgvDecision& decision) {
  nn::Categorical release_dist(output.release_logits);
  nn::Categorical target_dist(output.target_logits);
  nn::Tensor log_prob = release_dist.LogProb(decision.release);
  if (decision.release == 0) {
    GARL_CHECK_GE(decision.target, 0);
    log_prob = nn::Add(log_prob, target_dist.LogProb(decision.target));
  }
  nn::Tensor entropy =
      nn::Add(release_dist.Entropy(), target_dist.Entropy());
  return {log_prob, entropy};
}

namespace {

template <typename Decision>
void FinalizeSequence(std::vector<Decision>& decisions, float gamma,
                      float lambda) {
  if (decisions.empty()) return;
  std::vector<float> rewards, values;
  rewards.reserve(decisions.size());
  values.reserve(decisions.size());
  for (const Decision& d : decisions) {
    rewards.push_back(d.reward);
    values.push_back(d.value);
  }
  GaeResult gae = ComputeGae(rewards, values, gamma, lambda);
  for (size_t i = 0; i < decisions.size(); ++i) {
    decisions[i].advantage = gae.advantages[i];
    decisions[i].ret = gae.returns[i];
  }
}

template <typename Rollout>
void NormalizeAcrossAgents(Rollout& rollout) {
  std::vector<float> all;
  for (const auto& agent : rollout.agents) {
    for (const auto& d : agent) all.push_back(d.advantage);
  }
  if (all.size() < 2) return;
  double sum = 0.0, sum_sq = 0.0;
  for (float a : all) {
    sum += a;
    sum_sq += static_cast<double>(a) * a;
  }
  double mean = sum / static_cast<double>(all.size());
  double var = sum_sq / static_cast<double>(all.size()) - mean * mean;
  float std = static_cast<float>(std::sqrt(std::max(var, 0.0)) + 1e-8);
  for (auto& agent : rollout.agents) {
    for (auto& d : agent) {
      d.advantage = static_cast<float>((d.advantage - mean) / std);
    }
  }
}

}  // namespace

void FinalizeUgvRollout(UgvRollout& rollout, float gamma, float lambda) {
  for (auto& agent : rollout.agents) FinalizeSequence(agent, gamma, lambda);
  NormalizeAcrossAgents(rollout);
}

void FinalizeUavRollout(UavRollout& rollout, float gamma, float lambda) {
  for (auto& agent : rollout.agents) FinalizeSequence(agent, gamma, lambda);
  NormalizeAcrossAgents(rollout);
}

}  // namespace garl::rl
