#include "sim/faults.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace garl::sim {

namespace {

// Stream tag separating the fault stream from the trainer's episode
// streams (which use the raw episode number); any fixed odd constant works.
constexpr uint64_t kFaultStreamTag = 0xFA17B075u;

// Canonical little-endian serialization buffer for digesting plans.
void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

int64_t WindowSlots(int64_t configured) { return std::max<int64_t>(1, configured); }

// Sub-stream selectors inside the fault lineage, so the serving request
// stream, the fs write stream (0xF5F5F5F5) and the fs read stream never
// alias each other.
constexpr uint64_t kServingRequestStream = 0x5EB71CE5u;
constexpr uint64_t kServingReadStream = 0x0DD15C0Fu;

}  // namespace

FaultCounts& FaultCounts::operator+=(const FaultCounts& other) {
  uav_dropouts += other.uav_dropouts;
  ugv_stalls += other.ugv_stalls;
  comm_blackouts += other.comm_blackouts;
  sensor_faults += other.sensor_faults;
  return *this;
}

bool FaultCounts::operator==(const FaultCounts& other) const {
  return uav_dropouts == other.uav_dropouts &&
         ugv_stalls == other.ugv_stalls &&
         comm_blackouts == other.comm_blackouts &&
         sensor_faults == other.sensor_faults;
}

FaultCounts EpisodeFaultPlan::Counts() const {
  FaultCounts counts;
  counts.uav_dropouts = static_cast<int64_t>(uav_dropouts.size());
  counts.ugv_stalls = static_cast<int64_t>(ugv_stalls.size());
  counts.comm_blackouts = static_cast<int64_t>(comm_blackouts.size());
  counts.sensor_faults = static_cast<int64_t>(sensor_faults.size());
  return counts;
}

uint32_t EpisodeFaultPlan::Digest() const {
  std::string buffer;
  AppendI64(&buffer, episode);
  AppendI64(&buffer, dims.num_ugvs);
  AppendI64(&buffer, dims.num_uavs);
  AppendI64(&buffer, dims.num_sensors);
  AppendI64(&buffer, dims.horizon);
  AppendI64(&buffer, static_cast<int64_t>(uav_dropouts.size()));
  for (const UavDropoutEvent& e : uav_dropouts) {
    AppendI64(&buffer, e.uav);
    AppendI64(&buffer, e.slot);
  }
  AppendI64(&buffer, static_cast<int64_t>(ugv_stalls.size()));
  for (const UgvStallEvent& e : ugv_stalls) {
    AppendI64(&buffer, e.ugv);
    AppendI64(&buffer, e.begin);
    AppendI64(&buffer, e.end);
  }
  AppendI64(&buffer, static_cast<int64_t>(comm_blackouts.size()));
  for (const CommBlackoutEvent& e : comm_blackouts) {
    AppendI64(&buffer, e.a);
    AppendI64(&buffer, e.b);
    AppendI64(&buffer, e.begin);
    AppendI64(&buffer, e.end);
  }
  AppendI64(&buffer, static_cast<int64_t>(sensor_faults.size()));
  for (const SensorFaultEvent& e : sensor_faults) {
    AppendI64(&buffer, e.sensor);
    AppendI64(&buffer, e.begin);
    AppendI64(&buffer, e.end);
    AppendF64(&buffer, e.gain);
  }
  return Crc32(buffer);
}

EpisodeFaultPlan BuildEpisodeFaultPlan(const FaultConfig& config,
                                       uint64_t base_seed, int64_t episode,
                                       const WorldDims& dims) {
  GARL_CHECK_GT(dims.horizon, 0);
  EpisodeFaultPlan plan;
  plan.episode = episode;
  plan.dims = dims;
  if (!config.enabled) return plan;

  // Two-level stream split: the fault lineage first (so fault and
  // trajectory streams never alias for any trainer seed), then the episode
  // within it. Pure function of (base_seed, config.seed, episode) —
  // thread-count-invariant and reconstructible after resume.
  Rng rng(Rng::StreamSeed(Rng::StreamSeed(base_seed, config.seed ^ kFaultStreamTag),
                          static_cast<uint64_t>(episode)));

  // Sampling order is part of the determinism contract: UAVs, then UGVs,
  // then ordered pairs, then sensors. Draws happen only for entities whose
  // Bernoulli fires, which is itself a deterministic function of the stream.
  for (int64_t v = 0; v < dims.num_uavs; ++v) {
    if (!rng.Bernoulli(config.uav_dropout_prob)) continue;
    plan.uav_dropouts.push_back({v, rng.UniformInt(0, dims.horizon - 1)});
  }
  for (int64_t u = 0; u < dims.num_ugvs; ++u) {
    if (!rng.Bernoulli(config.ugv_stall_prob)) continue;
    int64_t begin = rng.UniformInt(0, dims.horizon - 1);
    int64_t end = std::min(begin + WindowSlots(config.ugv_stall_slots),
                           dims.horizon);
    plan.ugv_stalls.push_back({u, begin, end});
  }
  for (int64_t a = 0; a < dims.num_ugvs; ++a) {
    for (int64_t b = a + 1; b < dims.num_ugvs; ++b) {
      if (!rng.Bernoulli(config.comm_blackout_prob)) continue;
      int64_t begin = rng.UniformInt(0, dims.horizon - 1);
      int64_t end = std::min(begin + WindowSlots(config.comm_blackout_slots),
                             dims.horizon);
      plan.comm_blackouts.push_back({a, b, begin, end});
    }
  }
  for (int64_t p = 0; p < dims.num_sensors; ++p) {
    if (!rng.Bernoulli(config.sensor_fault_prob)) continue;
    int64_t begin = rng.UniformInt(0, dims.horizon - 1);
    int64_t end = std::min(begin + WindowSlots(config.sensor_fault_slots),
                           dims.horizon);
    double gain = 0.0;  // hard read failure
    if (!rng.Bernoulli(0.5)) {
      gain = std::clamp(1.0 - config.sensor_noise_sigma * rng.Uniform(0.0, 1.0),
                        0.0, 1.0);
    }
    plan.sensor_faults.push_back({p, begin, end, gain});
  }
  return plan;
}

env::SlotFaults SlotFaultsAt(const EpisodeFaultPlan& plan, int64_t slot) {
  env::SlotFaults faults;
  for (const UavDropoutEvent& e : plan.uav_dropouts) {
    if (e.slot == slot) faults.uav_dropouts.push_back(e.uav);
  }
  for (const UgvStallEvent& e : plan.ugv_stalls) {
    if (slot < e.begin || slot >= e.end) continue;
    if (faults.ugv_stalled.empty()) {
      faults.ugv_stalled.assign(static_cast<size_t>(plan.dims.num_ugvs), 0);
    }
    faults.ugv_stalled[static_cast<size_t>(e.ugv)] = 1;
  }
  for (const CommBlackoutEvent& e : plan.comm_blackouts) {
    if (slot < e.begin || slot >= e.end) continue;
    if (faults.comm_blocked.empty()) {
      faults.comm_blocked.assign(
          static_cast<size_t>(plan.dims.num_ugvs * plan.dims.num_ugvs), 0);
    }
    faults.comm_blocked[static_cast<size_t>(e.a * plan.dims.num_ugvs + e.b)] = 1;
    faults.comm_blocked[static_cast<size_t>(e.b * plan.dims.num_ugvs + e.a)] = 1;
  }
  for (const SensorFaultEvent& e : plan.sensor_faults) {
    if (slot < e.begin || slot >= e.end) continue;
    if (faults.sensor_gain.empty()) {
      faults.sensor_gain.assign(static_cast<size_t>(plan.dims.num_sensors),
                                1.0);
    }
    faults.sensor_gain[static_cast<size_t>(e.sensor)] = e.gain;
  }
  return faults;
}

uint32_t ChainFaultDigest(uint32_t chained, uint32_t episode_digest) {
  std::string buffer;
  AppendU64(&buffer, episode_digest);
  return Crc32(buffer, chained);
}

void CountFaultEvents(const EpisodeFaultPlan& plan) {
  FaultCounts counts = plan.Counts();
  auto& registry = obs::MetricsRegistry::Global();
  if (counts.uav_dropouts > 0) {
    registry.GetCounter("faults.uav_dropouts").Increment(counts.uav_dropouts);
  }
  if (counts.ugv_stalls > 0) {
    registry.GetCounter("faults.ugv_stalls").Increment(counts.ugv_stalls);
  }
  if (counts.comm_blackouts > 0) {
    registry.GetCounter("faults.comm_blackouts")
        .Increment(counts.comm_blackouts);
  }
  if (counts.sensor_faults > 0) {
    registry.GetCounter("faults.sensor_faults").Increment(counts.sensor_faults);
  }
}

ScheduledFsFaults::ScheduledFsFaults(const FaultConfig& config,
                                     uint64_t base_seed)
    : config_(config),
      rng_(Rng::StreamSeed(Rng::StreamSeed(base_seed,
                                           config.seed ^ kFaultStreamTag),
                           0xF5F5F5F5u)),
      hook_([this](std::string_view path) { return OnWriteAttempt(path); }) {}

int64_t ScheduledFsFaults::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

int64_t ScheduledFsFaults::recovered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_;
}

int64_t ServingFaultPlan::MalformCount() const {
  int64_t count = 0;
  for (const ServingRequestFault& e : events) count += e.malform ? 1 : 0;
  return count;
}

int64_t ServingFaultPlan::StallCount() const {
  int64_t count = 0;
  for (const ServingRequestFault& e : events) count += e.stall_us > 0 ? 1 : 0;
  return count;
}

const ServingRequestFault* ServingFaultPlan::At(int64_t request) const {
  auto it = std::lower_bound(
      events.begin(), events.end(), request,
      [](const ServingRequestFault& e, int64_t r) { return e.request < r; });
  if (it == events.end() || it->request != request) return nullptr;
  return &*it;
}

uint32_t ServingFaultPlan::Digest() const {
  std::string buffer;
  AppendI64(&buffer, num_requests);
  AppendI64(&buffer, static_cast<int64_t>(events.size()));
  for (const ServingRequestFault& e : events) {
    AppendI64(&buffer, e.request);
    AppendI64(&buffer, e.malform ? 1 : 0);
    AppendI64(&buffer, e.stall_us);
  }
  return Crc32(buffer);
}

ServingFaultPlan BuildServingFaultPlan(const ServingFaultConfig& config,
                                       uint64_t base_seed,
                                       int64_t num_requests) {
  ServingFaultPlan plan;
  plan.num_requests = num_requests;
  if (!config.enabled) return plan;
  Rng rng(Rng::StreamSeed(
      Rng::StreamSeed(base_seed, config.seed ^ kFaultStreamTag),
      kServingRequestStream));
  // Fixed draw order per request (stall, then malform) regardless of which
  // events fire, so the schedule is a pure function of the stream.
  int64_t burst_left = 0;
  for (int64_t r = 0; r < num_requests; ++r) {
    ServingRequestFault fault;
    fault.request = r;
    if (rng.Bernoulli(config.stall_prob)) {
      fault.stall_us = std::max<int64_t>(1, config.stall_us);
    }
    const bool malform_draw = rng.Bernoulli(config.malform_prob);
    if (burst_left > 0) {
      fault.malform = true;
      --burst_left;
    } else if (malform_draw) {
      fault.malform = true;
      burst_left = std::max<int64_t>(1, config.malform_burst) - 1;
    }
    if (fault.malform || fault.stall_us > 0) plan.events.push_back(fault);
  }
  return plan;
}

ServingStallInjector::ServingStallInjector(const ServingFaultPlan* plan)
    : plan_(plan) {
  GARL_CHECK(plan_ != nullptr);
}

std::function<void()> ServingStallInjector::Hook() {
  return [this] { OnExecute(); };
}

void ServingStallInjector::OnExecute() {
  const int64_t call = next_call_.fetch_add(1, std::memory_order_relaxed);
  const ServingRequestFault* fault = plan_->At(call);
  if (fault == nullptr || fault->stall_us <= 0) return;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  // Busy-wait rather than sleep: a stalled worker occupies its thread, which
  // is the degradation mode we are modelling (and nanosleep granularity
  // would swamp microsecond stalls anyway).
  const int64_t until = obs::MonotonicNowNs() + fault->stall_us * 1000;
  while (obs::MonotonicNowNs() < until) {
  }
}

ScheduledFsReadFaults::ScheduledFsReadFaults(const ServingFaultConfig& config,
                                             uint64_t base_seed)
    : config_(config),
      rng_(Rng::StreamSeed(Rng::StreamSeed(base_seed,
                                           config.seed ^ kFaultStreamTag),
                           kServingReadStream)),
      hook_([this](std::string_view path) { return OnReadAttempt(path); }) {}

int64_t ScheduledFsReadFaults::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

int64_t ScheduledFsReadFaults::recovered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovered_;
}

InjectedReadFault ScheduledFsReadFaults::OnReadAttempt(std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key(path);
  int64_t& consecutive = consecutive_[key];
  bool inject =
      config_.read_fault_prob > 0.0 &&
      consecutive < std::max<int64_t>(config_.read_max_consecutive, 0) &&
      rng_.Bernoulli(config_.read_fault_prob);
  if (!inject) {
    if (consecutive > 0) {
      ++recovered_;
      obs::MetricsRegistry::Global().GetCounter("faults.fs_read_recovered")
          .Increment();
    }
    consecutive = 0;
    return InjectedReadFault{};
  }
  ++consecutive;
  ++injected_;
  obs::MetricsRegistry::Global().GetCounter("faults.fs_read_injected")
      .Increment();
  InjectedReadFault fault;
  fault.error_number = EIO;
  return fault;
}

InjectedWriteFault ScheduledFsFaults::OnWriteAttempt(std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string key(path);
  int64_t& consecutive = consecutive_[key];
  bool inject = config_.fs_fault_prob > 0.0 &&
                consecutive < std::max<int64_t>(config_.fs_max_consecutive, 0) &&
                rng_.Bernoulli(config_.fs_fault_prob);
  if (!inject) {
    if (consecutive > 0) {
      ++recovered_;
      obs::MetricsRegistry::Global().GetCounter("faults.fs_recovered")
          .Increment();
    }
    consecutive = 0;
    return InjectedWriteFault{};
  }
  ++consecutive;
  ++injected_;
  obs::MetricsRegistry::Global().GetCounter("faults.fs_injected").Increment();
  InjectedWriteFault fault;
  fault.error_number = EIO;
  fault.short_write = (injected_ % 2) == 0;  // alternate EIO / torn-write
  return fault;
}

}  // namespace garl::sim
