#ifndef GARL_SIM_FAULTS_H_
#define GARL_SIM_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/fs_util.h"
#include "common/rng.h"
#include "env/types.h"

// Deterministic fault-injection harness (see DESIGN.md, "Fault model &
// graceful degradation").
//
// An episode's fault schedule is a pure function of (trainer seed, fault
// seed, episode number): BuildEpisodeFaultPlan derives its RNG through the
// same SplitMix64 stream-splitting the trainer uses for episode sampling,
// so schedules are bit-reproducible per seed, invariant under
// GARL_NUM_THREADS, and resume-safe (the episode counter is already part of
// checkpoints). Four fault classes:
//
//   * UAV dropout      — the airframe fails at a slot and never flies again
//   * UGV stall        — the vehicle freezes for a window of slots
//   * comm blackout    — a pairwise UGV link carries no messages for a window
//   * sensor fault     — a sensor reads zero (hard) or attenuated (soft)
//
// plus filesystem faults (transient EIO / short-write on durable-write
// paths) driven through fs_util's write-fault hook by ScheduledFsFaults.
// The env layer consumes the first four through env::SlotFaults; nothing
// here touches World directly, keeping sim → env a one-way dependency.
//
// The serving layer has its own schedule family (same seeded SplitMix64
// stream splitting, same digest discipline): BuildServingFaultPlan draws
// per-request slow-worker stalls and malformed-observation bursts for a
// serve::PolicyServer request stream, ServingStallInjector turns the stall
// events into the server's worker_stall_hook, and ScheduledFsReadFaults
// drives fs_util's read-fault hook so checkpoint reads fail transiently
// during hot reload (serving_chaos_test).

namespace garl::sim {

// All probabilities are per entity per episode (fs_fault_prob is per write
// attempt). Default-constructed config is fully disabled; the trainer's
// fault path is a bitwise no-op in that state.
struct FaultConfig {
  bool enabled = false;
  // Fault stream selector, independent of the trainer seed: the same
  // trajectory seed can be replayed under different fault schedules.
  uint64_t seed = 0;

  double uav_dropout_prob = 0.0;
  double ugv_stall_prob = 0.0;
  int64_t ugv_stall_slots = 5;
  double comm_blackout_prob = 0.0;
  int64_t comm_blackout_slots = 5;
  double sensor_fault_prob = 0.0;
  int64_t sensor_fault_slots = 5;
  // Soft sensor faults attenuate the read rate by up to this fraction;
  // hard faults (half of them) read zero.
  double sensor_noise_sigma = 0.5;
  double fs_fault_prob = 0.0;
  // Transient-fault guarantee: never more than this many consecutive
  // injected failures per path, so a default RetryPolicy always recovers.
  int64_t fs_max_consecutive = 2;
};

// Entity counts the schedule is drawn against (must match the World).
struct WorldDims {
  int64_t num_ugvs = 0;
  int64_t num_uavs = 0;
  int64_t num_sensors = 0;
  int64_t horizon = 0;
};

struct UavDropoutEvent {
  int64_t uav = 0;
  int64_t slot = 0;
};

// Windows are [begin, end) in slot numbers.
struct UgvStallEvent {
  int64_t ugv = 0;
  int64_t begin = 0;
  int64_t end = 0;
};

struct CommBlackoutEvent {
  int64_t a = 0;  // a < b
  int64_t b = 0;
  int64_t begin = 0;
  int64_t end = 0;
};

struct SensorFaultEvent {
  int64_t sensor = 0;
  int64_t begin = 0;
  int64_t end = 0;
  double gain = 0.0;  // 0 = hard read failure, (0,1) = attenuated
};

struct FaultCounts {
  int64_t uav_dropouts = 0;
  int64_t ugv_stalls = 0;
  int64_t comm_blackouts = 0;
  int64_t sensor_faults = 0;

  FaultCounts& operator+=(const FaultCounts& other);
  bool operator==(const FaultCounts& other) const;
};

// One episode's complete fault schedule.
struct EpisodeFaultPlan {
  int64_t episode = 0;
  WorldDims dims;
  std::vector<UavDropoutEvent> uav_dropouts;
  std::vector<UgvStallEvent> ugv_stalls;
  std::vector<CommBlackoutEvent> comm_blackouts;
  std::vector<SensorFaultEvent> sensor_faults;

  FaultCounts Counts() const;
  // CRC-32 over the canonical little-endian serialization of the whole
  // plan (episode, dims, every event). Two plans digest equal iff they
  // schedule the same faults — this is what the run log's det payload
  // carries as the schedule fingerprint.
  uint32_t Digest() const;
};

// Derives the episode's schedule. `base_seed` is the trainer seed; the
// fault stream is split off it with config.seed so fault and trajectory
// randomness never alias. Sampling order is fixed (UAVs, UGVs, ordered
// pairs, sensors) and independent of which events fire.
EpisodeFaultPlan BuildEpisodeFaultPlan(const FaultConfig& config,
                                       uint64_t base_seed, int64_t episode,
                                       const WorldDims& dims);

// Projects the plan onto one slot in the env layer's vocabulary. Empty
// vectors mean "no fault of that class this slot".
env::SlotFaults SlotFaultsAt(const EpisodeFaultPlan& plan, int64_t slot);

// Order-dependent digest chain for merging per-episode digests into one
// per-iteration fingerprint (episode order, not completion order, so the
// merge is thread-count-invariant).
uint32_t ChainFaultDigest(uint32_t chained, uint32_t episode_digest);

// Bumps the global obs counters (faults.uav_dropouts, faults.ugv_stalls,
// faults.comm_blackouts, faults.sensor_faults) by the plan's event counts.
void CountFaultEvents(const EpisodeFaultPlan& plan);

// Drives fs_util's write-fault hook from a deterministic per-attempt
// stream: each durable-write attempt fails with fs_fault_prob (alternating
// EIO and short-write flavors), but never more than fs_max_consecutive
// times in a row for the same path, so retrying callers always recover.
// Registers the hook on construction and unregisters on destruction;
// injections/recoveries are also counted into the obs counters
// faults.fs_injected / faults.fs_recovered.
class ScheduledFsFaults {
 public:
  ScheduledFsFaults(const FaultConfig& config, uint64_t base_seed);
  ~ScheduledFsFaults() = default;
  ScheduledFsFaults(const ScheduledFsFaults&) = delete;
  ScheduledFsFaults& operator=(const ScheduledFsFaults&) = delete;

  int64_t injected() const;
  int64_t recovered() const;

 private:
  InjectedWriteFault OnWriteAttempt(std::string_view path);

  mutable std::mutex mutex_;
  FaultConfig config_;
  Rng rng_;
  std::unordered_map<std::string, int64_t> consecutive_;
  int64_t injected_ = 0;
  int64_t recovered_ = 0;
  ScopedWriteFaultHook hook_;  // last member: armed only once state is ready
};

// Serving-path fault classes. All probabilities are per request
// (read_fault_prob is per ReadFileToString attempt). Default-constructed
// config is fully disabled.
struct ServingFaultConfig {
  bool enabled = false;
  // Fault stream selector, independent of the request-stream seed.
  uint64_t seed = 0;

  // Slow-worker stall: the request's Execute is preceded by a busy-wait.
  double stall_prob = 0.0;
  int64_t stall_us = 200;
  // Malformed-observation burst: starting at a drawn request, this many
  // consecutive requests carry a corrupted observation.
  double malform_prob = 0.0;
  int64_t malform_burst = 1;
  // Transient checkpoint-read faults during hot reload.
  double read_fault_prob = 0.0;
  int64_t read_max_consecutive = 2;
};

// At most one event per request; absent request indices are clean.
struct ServingRequestFault {
  int64_t request = 0;
  bool malform = false;
  int64_t stall_us = 0;  // 0: no stall
};

// One request stream's complete serving fault schedule.
struct ServingFaultPlan {
  int64_t num_requests = 0;
  std::vector<ServingRequestFault> events;  // ascending by request index

  int64_t MalformCount() const;
  int64_t StallCount() const;
  // The event for `request`, nullptr when the request is clean.
  const ServingRequestFault* At(int64_t request) const;
  // CRC-32 over the canonical little-endian serialization (same discipline
  // as EpisodeFaultPlan::Digest): two plans digest equal iff they schedule
  // the same serving faults.
  uint32_t Digest() const;
};

// Derives the schedule for a stream of `num_requests` requests. Pure
// function of (base_seed, config.seed, request index): bit-reproducible,
// thread-count-invariant, independent of how requests get packed into
// batches. Draw order per request is fixed (stall, then malform).
ServingFaultPlan BuildServingFaultPlan(const ServingFaultConfig& config,
                                       uint64_t base_seed,
                                       int64_t num_requests);

// Adapts the plan's stall events to serve::PolicyServerOptions::
// worker_stall_hook: the k-th Execute across the server's lifetime
// busy-waits for the plan's request-k stall (call order inside a fan-out is
// scheduler-dependent, which is exactly the point — stalls perturb timing,
// never results). Thread-safe; `plan` must outlive the injector.
class ServingStallInjector {
 public:
  explicit ServingStallInjector(const ServingFaultPlan* plan);

  // Bind the result to PolicyServerOptions::worker_stall_hook.
  std::function<void()> Hook();

  int64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

 private:
  void OnExecute();

  const ServingFaultPlan* plan_;
  std::atomic<int64_t> next_call_{0};
  std::atomic<int64_t> stalls_{0};
};

// Read-side twin of ScheduledFsFaults: drives fs_util's read-fault hook
// from a deterministic per-attempt stream. Each ReadFileToString attempt
// fails with read_fault_prob (EIO), but never more than
// read_max_consecutive times in a row for the same path, so a reload retry
// loop always reaches a clean read. Counts into the obs counters
// faults.fs_read_injected / faults.fs_read_recovered.
class ScheduledFsReadFaults {
 public:
  ScheduledFsReadFaults(const ServingFaultConfig& config, uint64_t base_seed);
  ~ScheduledFsReadFaults() = default;
  ScheduledFsReadFaults(const ScheduledFsReadFaults&) = delete;
  ScheduledFsReadFaults& operator=(const ScheduledFsReadFaults&) = delete;

  int64_t injected() const;
  int64_t recovered() const;

 private:
  InjectedReadFault OnReadAttempt(std::string_view path);

  mutable std::mutex mutex_;
  ServingFaultConfig config_;
  Rng rng_;
  std::unordered_map<std::string, int64_t> consecutive_;
  int64_t injected_ = 0;
  int64_t recovered_ = 0;
  ScopedReadFaultHook hook_;  // last member: armed only once state is ready
};

}  // namespace garl::sim

#endif  // GARL_SIM_FAULTS_H_
