#include "serve/policy_server.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/clock.h"
#include "rl/inference.h"

namespace garl::serve {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kStarting:
      return "STARTING";
    case HealthState::kServing:
      return "SERVING";
    case HealthState::kDegraded:
      return "DEGRADED";
    case HealthState::kDraining:
      return "DRAINING";
  }
  return "UNKNOWN";
}

PolicyServer::PolicyServer(const core::ServingPlan* plan,
                           PolicyServerOptions options)
    : options_(std::move(options)) {
  GARL_CHECK(plan != nullptr);
  GARL_CHECK_GE(options_.max_batch, 1);
  GARL_CHECK_GE(options_.max_queue_depth, 1);
  GARL_CHECK_GE(options_.breaker_failure_threshold, 1);
  GARL_CHECK_GE(options_.breaker_probe_interval, 1);
  GARL_CHECK_GE(options_.breaker_probe_successes, 1);
  obs::MetricsRegistry& registry = options_.metrics != nullptr
                                       ? *options_.metrics
                                       : obs::MetricsRegistry::Global();
  latency_us_ =
      &registry.GetHistogram("serve/latency_us", options_.latency_bounds_us);
  deadline_miss_us_ = &registry.GetHistogram(
      "serve/deadline_miss_us", options_.deadline_miss_bounds_us);
  shed_total_ = &registry.GetCounter("serve/shed");
  rejected_total_ = &registry.GetCounter("serve/rejected");
  deadline_miss_total_ = &registry.GetCounter("serve/deadline_misses");
  execute_failure_total_ = &registry.GetCounter("serve/execute_failures");
  breaker_trip_total_ = &registry.GetCounter("serve/breaker_trips");
  reload_total_ = &registry.GetCounter("serve/reloads");
  reload_failure_total_ = &registry.GetCounter("serve/reload_failures");
  queue_depth_gauge_ = &registry.GetGauge("serve/queue_depth");

  auto state = std::make_shared<PlanState>();
  state->plan = plan;
  state->version = 1;
  plan_state_ = std::move(state);

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

PolicyServer::~PolicyServer() { Shutdown(); }

int64_t PolicyServer::NowNs() const {
  return options_.now_fn ? options_.now_fn() : obs::MonotonicNowNs();
}

auto PolicyServer::CurrentState() const -> std::shared_ptr<PlanState> {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return plan_state_;
}

std::unique_ptr<core::ServingWorkspace> PolicyServer::AcquireWorkspace(
    PlanState* state) {
  {
    std::lock_guard<std::mutex> lock(state->workspace_mutex);
    if (!state->pool.empty()) {
      std::unique_ptr<core::ServingWorkspace> ws = std::move(state->pool.back());
      state->pool.pop_back();
      return ws;
    }
  }
  // Cold path: at most one workspace per concurrently active chunk is ever
  // created; after warm-up every request runs allocation-free. The pool
  // belongs to the plan state, so a Reload retires old-shape workspaces
  // together with the old plan.
  return std::make_unique<core::ServingWorkspace>(state->plan->MakeWorkspace());
}

void PolicyServer::ReleaseWorkspace(PlanState* state,
                                    std::unique_ptr<core::ServingWorkspace> ws) {
  std::lock_guard<std::mutex> lock(state->workspace_mutex);
  state->pool.push_back(std::move(ws));
}

bool PolicyServer::AdmitThroughBreaker() {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_state_ != HealthState::kDegraded) return true;
  return (probe_counter_++ % options_.breaker_probe_interval) == 0;
}

void PolicyServer::RecordExecuteOutcome(bool ok) {
  if (!ok) execute_failure_total_->Increment();
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_state_ == HealthState::kDraining) return;
  if (ok) {
    consecutive_failures_ = 0;
    if (health_state_ == HealthState::kDegraded &&
        ++probe_successes_ >= options_.breaker_probe_successes) {
      health_state_ = HealthState::kServing;
      probe_counter_ = 0;
      probe_successes_ = 0;
    }
    return;
  }
  if (health_state_ == HealthState::kDegraded) {
    probe_successes_ = 0;
    return;
  }
  if (++consecutive_failures_ >= options_.breaker_failure_threshold) {
    health_state_ = HealthState::kDegraded;
    breaker_trip_total_->Increment();
    consecutive_failures_ = 0;
    probe_counter_ = 0;
    probe_successes_ = 0;
  }
}

void PolicyServer::MarkServingIfStarting() {
  std::lock_guard<std::mutex> lock(health_mutex_);
  if (health_state_ == HealthState::kStarting) {
    health_state_ = HealthState::kServing;
  }
}

void PolicyServer::ServeSpan(
    const std::vector<const std::vector<env::UgvObservation>*>& requests,
    std::vector<ServeResult>* results) {
  const int64_t n = static_cast<int64_t>(requests.size());
  results->clear();
  results->resize(static_cast<size_t>(n));
  if (n == 0) return;
  MarkServingIfStarting();
  std::shared_ptr<PlanState> state = CurrentState();

  // Breaker admission is decided sequentially, in request order, before the
  // fan-out: trip/probe points are a deterministic function of the request
  // stream, never of worker scheduling.
  std::vector<uint8_t> admitted(static_cast<size_t>(n), 0);
  int64_t admitted_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (AdmitThroughBreaker()) {
      admitted[static_cast<size_t>(i)] = 1;
      ++admitted_count;
    } else {
      rejected_total_->Increment();
      (*results)[static_cast<size_t>(i)].status =
          UnavailableError("circuit breaker open");
    }
  }

  PlanState* raw = state.get();
  ThreadPool::Global().ParallelFor(
      0, n, 1,
      [this, raw, &requests, &admitted, results](int64_t begin, int64_t end) {
        std::unique_ptr<core::ServingWorkspace> ws = AcquireWorkspace(raw);
        for (int64_t i = begin; i < end; ++i) {
          if (!admitted[static_cast<size_t>(i)]) continue;
          if (options_.worker_stall_hook) options_.worker_stall_hook();
          ServeResult& result = (*results)[static_cast<size_t>(i)];
          result.status =
              raw->plan->Execute(*requests[static_cast<size_t>(i)], ws.get(),
                                 &result.actions);
          if (result.status.ok()) {
            const size_t ugvs = requests[static_cast<size_t>(i)]->size();
            result.values.assign(ws->values.begin(),
                                 ws->values.begin() + ugvs);
          } else {
            result.actions.clear();
            result.values.clear();
          }
        }
        ReleaseWorkspace(raw, std::move(ws));
      });

  // Breaker feedback also runs sequentially in request order, after the
  // fan-out returned (garl_lint parallel-unsafe keeps it out of the body).
  for (int64_t i = 0; i < n; ++i) {
    if (admitted[static_cast<size_t>(i)]) {
      RecordExecuteOutcome((*results)[static_cast<size_t>(i)].status.ok());
    }
    (*results)[static_cast<size_t>(i)].plan_version = state->version;
  }
  served_.fetch_add(admitted_count, std::memory_order_relaxed);
}

void PolicyServer::ServeBatch(
    const std::vector<std::vector<env::UgvObservation>>& requests,
    std::vector<ServeResult>* results) {
  GARL_CHECK(results != nullptr);
  std::vector<const std::vector<env::UgvObservation>*> span;
  span.reserve(requests.size());
  for (const auto& request : requests) span.push_back(&request);
  ServeSpan(span, results);
}

std::future<ServeResult> PolicyServer::Submit(
    std::vector<env::UgvObservation> observations, int64_t deadline_us) {
  Pending pending;
  pending.observations = std::move(observations);
  pending.enqueue_ns = NowNs();
  int64_t effective_us = 0;
  if (deadline_us > 0) {
    effective_us = deadline_us;
  } else if (deadline_us == 0) {
    effective_us = options_.default_deadline_us;
  }
  if (effective_us > 0) {
    pending.deadline_ns = pending.enqueue_ns + effective_us * 1000;
  }
  std::future<ServeResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_) {
      ServeResult cancelled;
      cancelled.status = CancelledError("policy server is shut down");
      cancelled.plan_version = plan_version_.load(std::memory_order_relaxed);
      pending.promise.set_value(std::move(cancelled));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
      if (options_.overflow == OverflowPolicy::kRejectNewest) {
        rejected_total_->Increment();
        ServeResult rejected;
        rejected.status = UnavailableError("submit queue full");
        rejected.plan_version = plan_version_.load(std::memory_order_relaxed);
        pending.promise.set_value(std::move(rejected));
        return future;
      }
      // kShedOldest: the oldest queued request makes room for the newcomer.
      Pending oldest = std::move(queue_.front());
      queue_.pop_front();
      shed_total_->Increment();
      ServeResult shed;
      shed.status = UnavailableError("shed under overload (oldest-first)");
      shed.plan_version = plan_version_.load(std::memory_order_relaxed);
      oldest.promise.set_value(std::move(shed));
    }
    queue_.push_back(std::move(pending));
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

void PolicyServer::DispatcherLoop() {
  std::vector<Pending> batch;
  std::vector<const std::vector<env::UgvObservation>*> span;
  std::vector<size_t> live;
  std::vector<ServeResult> results;
  for (;;) {
    if (options_.dispatch_gate) options_.dispatch_gate();
    batch.clear();
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) {
        // Draining: every not-yet-dispatched request resolves kCancelled.
        // Submit() stops admitting once shutdown_ is set, so this empties
        // the queue for good.
        while (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        draining = true;
      } else {
        const int64_t take = std::min<int64_t>(
            options_.max_batch, static_cast<int64_t>(queue_.size()));
        for (int64_t i = 0; i < take; ++i) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    if (draining) {
      const int64_t version = plan_version_.load(std::memory_order_relaxed);
      for (Pending& pending : batch) {
        ServeResult cancelled;
        cancelled.status = CancelledError("policy server is shutting down");
        cancelled.plan_version = version;
        pending.promise.set_value(std::move(cancelled));
      }
      return;
    }
    // Deadline check at dequeue: an expired request completes here and never
    // consumes a plan Execute.
    const int64_t now_ns = NowNs();
    span.clear();
    live.clear();
    for (size_t i = 0; i < batch.size(); ++i) {
      Pending& pending = batch[i];
      if (pending.deadline_ns > 0 && now_ns >= pending.deadline_ns) {
        deadline_miss_total_->Increment();
        deadline_miss_us_->Observe(
            static_cast<double>(now_ns - pending.deadline_ns) / 1000.0);
        ServeResult expired;
        expired.status = DeadlineExceededError("deadline expired in queue");
        expired.plan_version = plan_version_.load(std::memory_order_relaxed);
        pending.promise.set_value(std::move(expired));
        continue;
      }
      span.push_back(&pending.observations);
      live.push_back(i);
    }
    results.clear();
    if (!span.empty()) ServeSpan(span, &results);
    // Latency is recorded here, after the fan-out returned — never from
    // inside a ParallelFor body.
    const int64_t done_ns = NowNs();
    for (size_t j = 0; j < live.size(); ++j) {
      Pending& pending = batch[live[j]];
      latency_us_->Observe(
          static_cast<double>(done_ns - pending.enqueue_ns) / 1000.0);
      pending.promise.set_value(std::move(results[j]));
    }
  }
}

Status PolicyServer::ValidateCandidate(const core::ServingPlan& candidate) {
  std::shared_ptr<PlanState> current = CurrentState();
  if (!candidate.ShapeCompatible(*current->plan)) {
    return FailedPreconditionError(StrPrintf(
        "candidate plan shape mismatch: B=%lld U=%lld ops=%zu+%zu, serving "
        "B=%lld U=%lld ops=%zu+%zu",
        static_cast<long long>(candidate.num_stops()),
        static_cast<long long>(candidate.num_ugvs()),
        candidate.spatial_ops().size(), candidate.comm_ops().size(),
        static_cast<long long>(current->plan->num_stops()),
        static_cast<long long>(current->plan->num_ugvs()),
        current->plan->spatial_ops().size(), current->plan->comm_ops().size()));
  }
  if (options_.probe_request.empty()) return Status::Ok();
  core::ServingWorkspace ws = candidate.MakeWorkspace();
  std::vector<env::UgvAction> actions;
  GARL_RETURN_IF_ERROR(candidate.Execute(options_.probe_request, &ws, &actions));
  auto all_finite = [](const std::vector<float>& values, size_t count) {
    for (size_t i = 0; i < count && i < values.size(); ++i) {
      if (!std::isfinite(values[i])) return false;
    }
    return true;
  };
  const size_t ugvs = options_.probe_request.size();
  const size_t stops = static_cast<size_t>(candidate.num_stops());
  if (!all_finite(ws.values, ugvs) ||
      !all_finite(ws.release_logits, ugvs * 2) ||
      !all_finite(ws.target_logits, ugvs * stops)) {
    return FailedPreconditionError(
        "candidate plan produced non-finite probe outputs");
  }
  return Status::Ok();
}

Status PolicyServer::Reload(const std::string& checkpoint_dir) {
  std::lock_guard<std::mutex> reload_lock(reload_mutex_);
  auto fail = [this](Status status) {
    reload_failure_total_->Increment();
    return status;
  };
  if (options_.reload_policy == nullptr || options_.reload_context == nullptr) {
    return fail(FailedPreconditionError(
        "Reload needs PolicyServerOptions::reload_policy and reload_context"));
  }
  // Load + compile + validate happen entirely off to the side: the serving
  // plan snapshots weights by value, so even a half-written reload_policy
  // (load failed mid-file) cannot disturb in-flight or future batches.
  StatusOr<int64_t> episode =
      rl::LoadPolicyForInference(checkpoint_dir, options_.reload_policy);
  if (!episode.ok()) return fail(episode.status());
  StatusOr<core::ServingPlan> candidate =
      core::ServingPlan::Compile(*options_.reload_policy,
                                 *options_.reload_context);
  if (!candidate.ok()) return fail(candidate.status());
  Status valid = ValidateCandidate(candidate.value());
  if (!valid.ok()) return fail(valid);

  auto state = std::make_shared<PlanState>();
  state->owned = std::move(candidate).value();
  state->plan = &*state->owned;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    state->version = plan_state_->version + 1;
    // The old state (plan + workspace pool) stays alive until the last
    // in-flight batch drops its snapshot, then frees itself.
    plan_state_ = state;
  }
  plan_version_.store(state->version, std::memory_order_relaxed);
  reload_total_->Increment();
  return Status::Ok();
}

HealthSnapshot PolicyServer::Health() const {
  HealthSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    snapshot.state = health_state_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  }
  snapshot.plan_version = plan_version_.load(std::memory_order_relaxed);
  snapshot.served = served_.load(std::memory_order_relaxed);
  snapshot.shed = shed_total_->value();
  snapshot.rejected = rejected_total_->value();
  snapshot.deadline_misses = deadline_miss_total_->value();
  snapshot.execute_failures = execute_failure_total_->value();
  snapshot.breaker_trips = breaker_trip_total_->value();
  snapshot.reloads = reload_total_->value();
  snapshot.reload_failures = reload_failure_total_->value();
  return snapshot;
}

void PolicyServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutdown_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_state_ = HealthState::kDraining;
  }
  queue_cv_.notify_all();
  // join_mutex_ makes concurrent Shutdown() calls safe: exactly one caller
  // joins, the rest wait for it (std::thread::join from two threads is UB).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace garl::serve
