#include "serve/policy_server.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/clock.h"

namespace garl::serve {

PolicyServer::PolicyServer(const core::ServingPlan* plan,
                           PolicyServerOptions options)
    : plan_(plan), options_(std::move(options)) {
  GARL_CHECK(plan_ != nullptr);
  GARL_CHECK_GE(options_.max_batch, 1);
  obs::MetricsRegistry& registry = options_.metrics != nullptr
                                       ? *options_.metrics
                                       : obs::MetricsRegistry::Global();
  latency_us_ =
      &registry.GetHistogram("serve/latency_us", options_.latency_bounds_us);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

PolicyServer::~PolicyServer() { Shutdown(); }

std::unique_ptr<core::ServingWorkspace> PolicyServer::AcquireWorkspace() {
  {
    std::lock_guard<std::mutex> lock(workspace_mutex_);
    if (!workspace_pool_.empty()) {
      std::unique_ptr<core::ServingWorkspace> ws =
          std::move(workspace_pool_.back());
      workspace_pool_.pop_back();
      return ws;
    }
  }
  // Cold path: at most one workspace per concurrently active chunk is ever
  // created; after warm-up every request runs allocation-free.
  return std::make_unique<core::ServingWorkspace>(plan_->MakeWorkspace());
}

void PolicyServer::ReleaseWorkspace(
    std::unique_ptr<core::ServingWorkspace> ws) {
  std::lock_guard<std::mutex> lock(workspace_mutex_);
  workspace_pool_.push_back(std::move(ws));
}

void PolicyServer::ServeSpan(
    const std::vector<const std::vector<env::UgvObservation>*>& requests,
    std::vector<ServeResult>* results) {
  const int64_t n = static_cast<int64_t>(requests.size());
  results->resize(static_cast<size_t>(n));
  ThreadPool::Global().ParallelFor(
      0, n, 1, [this, &requests, results](int64_t begin, int64_t end) {
        std::unique_ptr<core::ServingWorkspace> ws = AcquireWorkspace();
        for (int64_t i = begin; i < end; ++i) {
          ServeResult& result = (*results)[static_cast<size_t>(i)];
          result.status =
              plan_->Execute(*requests[static_cast<size_t>(i)], ws.get(),
                             &result.actions);
          if (result.status.ok()) {
            const size_t ugvs = requests[static_cast<size_t>(i)]->size();
            result.values.assign(ws->values.begin(),
                                 ws->values.begin() + ugvs);
          } else {
            result.actions.clear();
            result.values.clear();
          }
        }
        ReleaseWorkspace(std::move(ws));
      });
  served_.fetch_add(n, std::memory_order_relaxed);
}

void PolicyServer::ServeBatch(
    const std::vector<std::vector<env::UgvObservation>>& requests,
    std::vector<ServeResult>* results) {
  GARL_CHECK(results != nullptr);
  std::vector<const std::vector<env::UgvObservation>*> span;
  span.reserve(requests.size());
  for (const auto& request : requests) span.push_back(&request);
  ServeSpan(span, results);
}

std::future<ServeResult> PolicyServer::Submit(
    std::vector<env::UgvObservation> observations) {
  Pending pending;
  pending.observations = std::move(observations);
  pending.enqueue_ns = obs::MonotonicNowNs();
  std::future<ServeResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_) {
      ServeResult cancelled;
      cancelled.status = CancelledError("policy server is shut down");
      pending.promise.set_value(std::move(cancelled));
      return future;
    }
    queue_.push_back(std::move(pending));
  }
  queue_cv_.notify_one();
  return future;
}

void PolicyServer::DispatcherLoop() {
  std::vector<Pending> batch;
  std::vector<const std::vector<env::UgvObservation>*> span;
  std::vector<ServeResult> results;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      const int64_t take = std::min<int64_t>(
          options_.max_batch, static_cast<int64_t>(queue_.size()));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    span.clear();
    for (const Pending& pending : batch) span.push_back(&pending.observations);
    ServeSpan(span, &results);
    // Latency is recorded here, after the fan-out returned — never from
    // inside a ParallelFor body.
    const int64_t now_ns = obs::MonotonicNowNs();
    for (size_t i = 0; i < batch.size(); ++i) {
      latency_us_->Observe(
          static_cast<double>(now_ns - batch[i].enqueue_ns) / 1000.0);
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

void PolicyServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutdown_ && !dispatcher_.joinable()) return;
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace garl::serve
