#ifndef GARL_SERVE_POLICY_SERVER_H_
#define GARL_SERVE_POLICY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/serving_plan.h"
#include "env/types.h"
#include "obs/metrics.h"

// Batched observation->action front door over a compiled ServingPlan.
//
// Two entry points share one execution path:
//   - ServeBatch(): synchronous, caller-assembled cross-episode batch.
//   - Submit(): async request queue drained by a dedicated dispatcher
//     thread in batches of at most `max_batch`.
// Both fan requests out over the global ThreadPool with one plan Execute()
// per request on a pooled per-thread workspace. Each request is replayed
// sequentially and independently, so its bytes do not depend on how it was
// packed into a batch, what arrived around it, or GARL_NUM_THREADS — the
// packing-invariance property serving_test locks down.
//
// Overload and failure behavior (serving_chaos_test):
//   - Admission control: the Submit queue is bounded by `max_queue_depth`.
//     A full queue either rejects the newcomer (kRejectNewest) or sheds the
//     oldest queued request (kShedOldest); both resolve the victim's future
//     with kUnavailable, deterministically, under the queue lock.
//   - Deadlines: each request may carry a deadline (plus a server-wide
//     default). Expired requests complete with kDeadlineExceeded at dequeue,
//     before the fan-out, and never consume a plan Execute.
//   - Hot reload: Reload() loads a checkpoint, compiles a candidate plan,
//     validates it (clean CRC load, shape match, finite-output probe) and
//     atomically swaps plan + workspace pool between batches. Any failure
//     rolls back: the old plan keeps serving and a clean Status is returned.
//     Every ServeResult echoes the `plan_version` that produced it; because
//     a batch snapshots one plan state at entry, a single batch never mixes
//     versions.
//   - Circuit breaker: `breaker_failure_threshold` consecutive Execute
//     failures trip the server into kDegraded, where it fast-rejects with
//     kUnavailable except for every `breaker_probe_interval`-th request
//     (half-open probe); `breaker_probe_successes` consecutive probe
//     successes close the breaker back to kServing. All breaker decisions
//     happen sequentially in request order on the dispatcher/caller thread,
//     so trip points are deterministic for a deterministic request stream.
//
// Latency and deadline-miss histograms (microseconds) are recorded on the
// dispatcher thread after the fan-out returns; nothing observability-related
// runs inside ParallelFor bodies (garl_lint parallel-unsafe).

namespace garl::serve {

// What a full Submit queue does to make room.
enum class OverflowPolicy {
  kRejectNewest,  // fail the incoming request
  kShedOldest,    // fail the oldest queued request, admit the newcomer
};

// Lifecycle + breaker state, surfaced through Health().
enum class HealthState {
  kStarting,  // constructed, no batch completed yet
  kServing,   // healthy steady state
  kDegraded,  // breaker open: fast-reject with periodic half-open probes
  kDraining,  // Shutdown() started; every queued request resolves kCancelled
};

const char* HealthStateName(HealthState state);

// Point-in-time health/ops snapshot. Counters are cumulative since
// construction; queue_depth is instantaneous.
struct HealthSnapshot {
  HealthState state = HealthState::kStarting;
  int64_t plan_version = 0;
  int64_t queue_depth = 0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
  int64_t deadline_misses = 0;
  int64_t execute_failures = 0;
  int64_t breaker_trips = 0;
  int64_t reloads = 0;
  int64_t reload_failures = 0;
};

struct PolicyServerOptions {
  // Max requests the async dispatcher packs into one fan-out.
  int64_t max_batch = 64;
  // Upper bounds (microseconds) for the per-request latency histogram.
  std::vector<double> latency_bounds_us = {50,    100,   250,   500,
                                           1000,  2500,  5000,  10000,
                                           25000, 50000, 100000};
  // Upper bounds (microseconds) for the deadline-miss histogram (how far
  // past its deadline an expired request was observed at dequeue).
  std::vector<double> deadline_miss_bounds_us = {100,   500,    1000,  5000,
                                                 10000, 50000, 100000};
  // Registry owning the serve metrics; nullptr = MetricsRegistry::Global.
  obs::MetricsRegistry* metrics = nullptr;

  // Admission control: Submit fails (or sheds) once this many requests are
  // queued. Must be >= 1.
  int64_t max_queue_depth = 1024;
  OverflowPolicy overflow = OverflowPolicy::kRejectNewest;

  // Server-wide default deadline applied when Submit is called without an
  // explicit one. 0 disables the default.
  int64_t default_deadline_us = 0;

  // Circuit breaker tuning (see class comment). Thresholds must be >= 1.
  int64_t breaker_failure_threshold = 8;
  int64_t breaker_probe_interval = 4;
  int64_t breaker_probe_successes = 3;

  // Hot-reload wiring: Reload() loads the checkpoint into `reload_policy`
  // (which must be the serving model shape) and compiles the candidate plan
  // against `reload_context`. Reload() returns kFailedPrecondition when
  // either is null. `probe_request` is the canned observation set used for
  // the finite-output validation probe; when empty the probe is skipped.
  rl::FeatureUgvPolicy* reload_policy = nullptr;
  const rl::EnvContext* reload_context = nullptr;
  std::vector<env::UgvObservation> probe_request;

  // Test seams. `now_fn` replaces obs::MonotonicNowNs for enqueue stamps and
  // deadline checks, so deadline tests are clock-independent.
  // `dispatch_gate` is invoked by the dispatcher at the top of every drain
  // iteration, outside all server locks; chaos tests block it to fill the
  // queue to a deterministic depth. `worker_stall_hook` is invoked once per
  // admitted request inside the fan-out, before Execute — the slow-worker
  // injection point (sim::ServingFaultInjector). All three default to
  // no-ops and must not call back into the server.
  std::function<int64_t()> now_fn;
  std::function<void()> dispatch_gate;
  std::function<void()> worker_stall_hook;
};

// One request's answer. `status` is per request: a malformed observation
// fails its own request only, never the batch around it. `plan_version`
// identifies the plan state that handled the request (starts at 1, +1 per
// successful Reload); it is set for served, rejected and expired requests
// alike.
struct ServeResult {
  Status status;
  std::vector<env::UgvAction> actions;  // per UGV, greedy
  std::vector<float> values;            // per UGV critic value
  int64_t plan_version = 0;
};

class PolicyServer {
 public:
  // `plan` must outlive the server (it is plan_version 1; Reload snapshots
  // later plans by value).
  explicit PolicyServer(const core::ServingPlan* plan,
                        PolicyServerOptions options = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Serves `requests` (each the joint observation of one env step) as one
  // batch. `results` is resized to match; results[i] corresponds to
  // requests[i] whatever the internal chunking. The whole batch runs on one
  // plan version. Deadlines do not apply to this synchronous path; the
  // breaker does.
  void ServeBatch(const std::vector<std::vector<env::UgvObservation>>& requests,
                  std::vector<ServeResult>* results);

  // Enqueues one request; the dispatcher thread batches and serves it.
  // `deadline_us` semantics: > 0 is a per-request deadline measured from
  // enqueue; 0 applies the server default; < 0 disables any deadline.
  // A full queue resolves a future immediately with kUnavailable (the
  // newcomer's or the shed oldest's, per OverflowPolicy). After — or
  // concurrently with — Shutdown() the returned future deterministically
  // holds a kCancelled result; it never hangs.
  std::future<ServeResult> Submit(std::vector<env::UgvObservation> observations,
                                  int64_t deadline_us = 0);

  // Hot-swaps the serving plan from the newest checkpoint in
  // `checkpoint_dir`. On any failure (load error, compile error, shape
  // mismatch, non-finite probe output) the old plan keeps serving and the
  // error is returned — all-or-nothing, never a half-swapped state.
  // Safe to call while serving; concurrent Reloads serialize.
  [[nodiscard]] Status Reload(const std::string& checkpoint_dir);

  // Cancels every queued request (kCancelled), stops the dispatcher and
  // joins it. Idempotent and safe to race with Submit; the destructor
  // calls it.
  void Shutdown();

  HealthSnapshot Health() const;

  // Requests fully served so far (both entry points).
  int64_t served() const { return served_.load(std::memory_order_relaxed); }

  // Version of the plan new batches run on (1 until the first Reload).
  int64_t plan_version() const {
    return plan_version_.load(std::memory_order_relaxed);
  }

  // The latency histogram (async path only), for snapshots in tests/bench.
  const obs::Histogram& latency_histogram() const { return *latency_us_; }
  // How far past their deadline expired requests were at dequeue.
  const obs::Histogram& deadline_miss_histogram() const {
    return *deadline_miss_us_;
  }

 private:
  // One plan generation: the compiled plan, its version and the workspace
  // pool sized for it. A batch snapshots one PlanState at entry and holds it
  // via shared_ptr for the whole fan-out, so Reload can swap `plan_state_`
  // without waiting for in-flight batches and no batch ever mixes versions.
  struct PlanState {
    const core::ServingPlan* plan = nullptr;  // &*owned for reloaded states
    std::optional<core::ServingPlan> owned;
    int64_t version = 0;
    std::mutex workspace_mutex;
    std::vector<std::unique_ptr<core::ServingWorkspace>> pool;
  };

  struct Pending {
    std::vector<env::UgvObservation> observations;
    std::promise<ServeResult> promise;
    int64_t enqueue_ns = 0;
    int64_t deadline_ns = 0;  // 0: none
  };

  int64_t NowNs() const;
  std::shared_ptr<PlanState> CurrentState() const;
  void ServeSpan(
      const std::vector<const std::vector<env::UgvObservation>*>& requests,
      std::vector<ServeResult>* results);
  void DispatcherLoop();
  // Breaker admission for the next request, decided sequentially in request
  // order. Returns false when the breaker is open and this request is not a
  // half-open probe.
  bool AdmitThroughBreaker();
  // Feeds one Execute outcome (request order) back into the breaker.
  void RecordExecuteOutcome(bool ok);
  void MarkServingIfStarting();
  static std::unique_ptr<core::ServingWorkspace> AcquireWorkspace(
      PlanState* state);
  static void ReleaseWorkspace(PlanState* state,
                               std::unique_ptr<core::ServingWorkspace> ws);
  [[nodiscard]] Status ValidateCandidate(const core::ServingPlan& candidate);

  PolicyServerOptions options_;

  // Owned by the registry.
  obs::Histogram* latency_us_;
  obs::Histogram* deadline_miss_us_;
  obs::Counter* shed_total_;
  obs::Counter* rejected_total_;
  obs::Counter* deadline_miss_total_;
  obs::Counter* execute_failure_total_;
  obs::Counter* breaker_trip_total_;
  obs::Counter* reload_total_;
  obs::Counter* reload_failure_total_;
  obs::Gauge* queue_depth_gauge_;

  // Lock order (when nested): state_mutex_ -> queue_mutex_; health_mutex_
  // and reload_mutex_ never nest inside either.
  mutable std::mutex state_mutex_;
  std::shared_ptr<PlanState> plan_state_;
  std::atomic<int64_t> plan_version_{1};
  std::mutex reload_mutex_;  // serializes Reload() callers

  mutable std::mutex health_mutex_;
  HealthState health_state_ = HealthState::kStarting;
  int64_t consecutive_failures_ = 0;
  int64_t probe_counter_ = 0;
  int64_t probe_successes_ = 0;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::mutex join_mutex_;  // makes concurrent Shutdown() calls safe
  std::thread dispatcher_;
  std::atomic<int64_t> served_{0};
};

}  // namespace garl::serve

#endif  // GARL_SERVE_POLICY_SERVER_H_
