#ifndef GARL_SERVE_POLICY_SERVER_H_
#define GARL_SERVE_POLICY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/serving_plan.h"
#include "env/types.h"
#include "obs/metrics.h"

// Batched observation->action front door over a compiled ServingPlan.
//
// Two entry points share one execution path:
//   - ServeBatch(): synchronous, caller-assembled cross-episode batch.
//   - Submit(): async request queue drained by a dedicated dispatcher
//     thread in batches of at most `max_batch`.
// Both fan requests out over the global ThreadPool with one plan Execute()
// per request on a pooled per-thread workspace. Each request is replayed
// sequentially and independently, so its bytes do not depend on how it was
// packed into a batch, what arrived around it, or GARL_NUM_THREADS — the
// packing-invariance property serving_test locks down.
//
// Latency histograms (microseconds, enqueue to completion) are recorded on
// the dispatcher thread after the fan-out returns; nothing observability-
// related runs inside ParallelFor bodies (garl_lint parallel-unsafe).

namespace garl::serve {

struct PolicyServerOptions {
  // Max requests the async dispatcher packs into one fan-out.
  int64_t max_batch = 64;
  // Upper bounds (microseconds) for the per-request latency histogram.
  std::vector<double> latency_bounds_us = {50,    100,   250,   500,
                                           1000,  2500,  5000,  10000,
                                           25000, 50000, 100000};
  // Registry owning the latency histogram; nullptr = MetricsRegistry::Global.
  obs::MetricsRegistry* metrics = nullptr;
};

// One request's answer. `status` is per request: a malformed observation
// fails its own request only, never the batch around it.
struct ServeResult {
  Status status;
  std::vector<env::UgvAction> actions;  // per UGV, greedy
  std::vector<float> values;            // per UGV critic value
};

class PolicyServer {
 public:
  // `plan` must outlive the server.
  explicit PolicyServer(const core::ServingPlan* plan,
                        PolicyServerOptions options = {});
  ~PolicyServer();

  PolicyServer(const PolicyServer&) = delete;
  PolicyServer& operator=(const PolicyServer&) = delete;

  // Serves `requests` (each the joint observation of one env step) as one
  // batch. `results` is resized to match; results[i] corresponds to
  // requests[i] whatever the internal chunking.
  void ServeBatch(const std::vector<std::vector<env::UgvObservation>>& requests,
                  std::vector<ServeResult>* results);

  // Enqueues one request; the dispatcher thread batches and serves it.
  // After Shutdown() the returned future holds a Cancelled result.
  std::future<ServeResult> Submit(
      std::vector<env::UgvObservation> observations);

  // Drains the queue, stops the dispatcher and joins it. Idempotent; the
  // destructor calls it.
  void Shutdown();

  // Requests fully served so far (both entry points).
  int64_t served() const { return served_.load(std::memory_order_relaxed); }

  // The latency histogram (async path only), for snapshots in tests/bench.
  const obs::Histogram& latency_histogram() const { return *latency_us_; }

 private:
  struct Pending {
    std::vector<env::UgvObservation> observations;
    std::promise<ServeResult> promise;
    int64_t enqueue_ns = 0;
  };

  void ServeSpan(const std::vector<const std::vector<env::UgvObservation>*>&
                     requests,
                 std::vector<ServeResult>* results);
  void DispatcherLoop();
  std::unique_ptr<core::ServingWorkspace> AcquireWorkspace();
  void ReleaseWorkspace(std::unique_ptr<core::ServingWorkspace> ws);

  const core::ServingPlan* plan_;
  PolicyServerOptions options_;
  obs::Histogram* latency_us_;  // owned by the registry

  std::mutex workspace_mutex_;
  std::vector<std::unique_ptr<core::ServingWorkspace>> workspace_pool_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  std::thread dispatcher_;
  std::atomic<int64_t> served_{0};
};

}  // namespace garl::serve

#endif  // GARL_SERVE_POLICY_SERVER_H_
