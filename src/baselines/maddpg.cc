#include "baselines/maddpg.h"

#include <algorithm>
#include <cmath>

#include "baselines/common.h"
#include "common/check.h"
#include "nn/ops.h"
#include "rl/uav_controller.h"

namespace garl::baselines {

MaddpgPolicy::MaddpgPolicy(const rl::EnvContext& context,
                           MaddpgConfig config, Rng& rng)
    : context_(&context), config_(config) {
  int64_t obs_dim = EncodedObservationDim(context.num_ugvs);
  for (int64_t u = 0; u < context.num_ugvs; ++u) {
    ActorNet actor;
    actor.trunk =
        std::make_unique<nn::Linear>(obs_dim, config_.hidden, rng);
    actor.release = std::make_unique<nn::Linear>(config_.hidden, 2, rng);
    actor.target =
        std::make_unique<nn::Linear>(config_.hidden, context.num_stops, rng);
    actors_.push_back(std::move(actor));
  }
}

MaddpgPolicy::ActorOutput MaddpgPolicy::Actor(
    int64_t u, const nn::Tensor& encoded) const {
  GARL_CHECK_GE(u, 0);
  GARL_CHECK_LT(u, static_cast<int64_t>(actors_.size()));
  const ActorNet& actor = actors_[static_cast<size_t>(u)];
  nn::Tensor trunk = nn::Tanh(actor.trunk->Forward(encoded));
  return {actor.release->Forward(trunk), actor.target->Forward(trunk)};
}

std::vector<rl::UgvPolicyOutput> MaddpgPolicy::Forward(
    const std::vector<env::UgvObservation>& observations) {
  std::vector<rl::UgvPolicyOutput> outputs;
  for (const auto& obs : observations) {
    nn::Tensor encoded = nn::Tensor::FromVector(
        {EncodedObservationDim(context_->num_ugvs)},
        EncodeObservation(*context_, obs));
    ActorOutput actor = Actor(obs.self, encoded);
    rl::UgvPolicyOutput out;
    // Deterministic policy: sharpen logits so sampling ~= argmax.
    out.release_logits = nn::MulScalar(actor.release_logits, 1.0f);
    // Same generic data-at-current-stop release bias every other method's
    // head applies (the observation feature is equally available here).
    float here = std::max(0.0f, obs.stop_features.at({obs.current_stop, 2}));
    float best = 1e-6f;
    for (int64_t b = 0; b < context_->num_stops; ++b) {
      best = std::max(best, obs.stop_features.at({b, 2}));
    }
    out.release_logits = nn::Add(
        out.release_logits,
        nn::Tensor::FromVector({2}, {0.0f, 6.0f * (here / best) - 2.0f}));
    // No spatial prior on the target head: the MLP actor must learn
    // targeting from scratch, and its deterministic policy explores poorly
    // — the paper's criticism of MADDPG.
    out.target_logits = actor.target_logits;
    out.value = nn::Tensor::Scalar(0.0f);
    outputs.push_back(std::move(out));
  }
  return outputs;
}

std::vector<nn::Tensor> MaddpgPolicy::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const ActorNet& actor : actors_) {
    for (const auto* module :
         {actor.trunk.get(), actor.release.get(), actor.target.get()}) {
      for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
    }
  }
  return params;
}

namespace {

// Hard-copies source parameter values into destination.
void CopyParameters(const std::vector<nn::Tensor>& source,
                    std::vector<nn::Tensor> destination) {
  GARL_CHECK_EQ(source.size(), destination.size());
  for (size_t i = 0; i < source.size(); ++i) {
    destination[i].mutable_data() = source[i].data();
  }
}

void SoftUpdate(const std::vector<nn::Tensor>& source,
                std::vector<nn::Tensor> destination, float tau) {
  GARL_CHECK_EQ(source.size(), destination.size());
  for (size_t i = 0; i < source.size(); ++i) {
    auto& dst = destination[i].mutable_data();
    const auto& src = source[i].data();
    for (size_t j = 0; j < dst.size(); ++j) {
      dst[j] = tau * src[j] + (1.0f - tau) * dst[j];
    }
  }
}

}  // namespace

MaddpgTrainer::MaddpgTrainer(env::World* world, MaddpgPolicy* policy,
                             MaddpgConfig config, uint64_t seed)
    : world_(world),
      policy_(policy),
      config_(config),
      rng_(seed),
      buffer_(config.buffer_capacity) {
  GARL_CHECK(world_ != nullptr);
  GARL_CHECK(policy_ != nullptr);
  Rng init_rng = rng_.Split();
  target_policy_ = std::make_unique<MaddpgPolicy>(policy_->context(),
                                                  config_, init_rng);
  CopyParameters(policy_->Parameters(), target_policy_->Parameters());

  int64_t num_ugvs = policy_->context().num_ugvs;
  int64_t obs_dim = EncodedObservationDim(num_ugvs);
  int64_t critic_in = num_ugvs * (obs_dim + 3);
  for (int64_t u = 0; u < num_ugvs; ++u) {
    critics_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int64_t>{critic_in, config_.hidden, 1},
        nn::Activation::kTanh, init_rng));
    target_critics_.push_back(std::make_unique<nn::Mlp>(
        std::vector<int64_t>{critic_in, config_.hidden, 1},
        nn::Activation::kTanh, init_rng));
    CopyParameters(critics_.back()->Parameters(),
                   target_critics_.back()->Parameters());
  }
  actor_optimizer_ =
      std::make_unique<nn::Adam>(policy_->Parameters(), config_.actor_lr);
  std::vector<nn::Tensor> critic_params;
  for (const auto& critic : critics_) {
    for (const nn::Tensor& p : critic->Parameters()) {
      critic_params.push_back(p);
    }
  }
  critic_optimizer_ =
      std::make_unique<nn::Adam>(critic_params, config_.critic_lr);
}

std::vector<float> MaddpgTrainer::ActionSummary(
    const env::UgvAction& action) const {
  if (action.release || action.target_stop < 0) {
    return {1.0f, 0.0f, 0.0f};
  }
  return {0.0f,
          policy_->context().stop_xy.at({action.target_stop, 0}),
          policy_->context().stop_xy.at({action.target_stop, 1})};
}

nn::Tensor MaddpgTrainer::CriticInput(
    const std::vector<std::vector<float>>& obs,
    const std::vector<nn::Tensor>& actions) const {
  std::vector<nn::Tensor> parts;
  for (const auto& o : obs) {
    parts.push_back(nn::Tensor::FromVector(
        {static_cast<int64_t>(o.size())}, o));
  }
  for (const nn::Tensor& a : actions) parts.push_back(a);
  return nn::Concat(parts, 0);
}

MaddpgTrainer::Stats MaddpgTrainer::RunIteration() {
  Stats stats;
  int64_t num_ugvs = world_->num_ugvs();
  world_->Reset(static_cast<uint64_t>(1000 + ++episode_counter_));
  rl::GreedyUavController uav_controller;

  std::vector<std::vector<float>> prev_obs;
  std::vector<std::vector<float>> prev_actions;
  std::vector<float> pending_rewards(static_cast<size_t>(num_ugvs), 0.0f);
  bool have_prev = false;

  while (!world_->Done()) {
    // Encode all observations.
    std::vector<std::vector<float>> encoded;
    std::vector<env::UgvObservation> observations;
    for (int64_t u = 0; u < num_ugvs; ++u) {
      observations.push_back(world_->ObserveUgv(u));
      encoded.push_back(
          EncodeObservation(policy_->context(), observations.back()));
    }

    bool anyone_acts = false;
    for (int64_t u = 0; u < num_ugvs; ++u) {
      if (world_->UgvNeedsAction(u)) anyone_acts = true;
    }

    if (anyone_acts && have_prev) {
      Transition t;
      t.obs = prev_obs;
      for (const auto& a : prev_actions) t.actions.push_back(a);
      t.rewards = pending_rewards;
      t.next_obs = encoded;
      buffer_.Add(std::move(t));
      std::fill(pending_rewards.begin(), pending_rewards.end(), 0.0f);
      have_prev = false;
    }

    std::vector<env::UgvAction> ugv_actions(static_cast<size_t>(num_ugvs));
    if (anyone_acts) {
      std::vector<std::vector<float>> action_summaries;
      for (int64_t u = 0; u < num_ugvs; ++u) {
        env::UgvAction action;
        if (world_->UgvNeedsAction(u)) {
          if (rng_.Bernoulli(config_.epsilon)) {
            // Exploration: uniform random action.
            action.release = rng_.Bernoulli(0.3);
            action.target_stop =
                rng_.UniformInt(0, policy_->context().num_stops - 1);
          } else {
            nn::NoGradGuard no_grad;
            nn::Tensor enc = nn::Tensor::FromVector(
                {static_cast<int64_t>(encoded[static_cast<size_t>(u)]
                                          .size())},
                encoded[static_cast<size_t>(u)]);
            MaddpgPolicy::ActorOutput out = policy_->Actor(u, enc);
            const auto& rl = out.release_logits.data();
            action.release = rl[1] > rl[0];
            const auto& tl = out.target_logits.data();
            action.target_stop = static_cast<int64_t>(
                std::max_element(tl.begin(), tl.end()) - tl.begin());
          }
        } else {
          action.release = true;  // waiting placeholder
        }
        ugv_actions[static_cast<size_t>(u)] = action;
        action_summaries.push_back(ActionSummary(action));
      }
      prev_obs = encoded;
      prev_actions = action_summaries;
      have_prev = true;
    }

    std::vector<env::UavAction> uav_actions(
        static_cast<size_t>(world_->num_uavs()));
    for (int64_t v = 0; v < world_->num_uavs(); ++v) {
      if (world_->UavAirborne(v)) {
        uav_actions[static_cast<size_t>(v)] =
            uav_controller.Act(*world_, v, rng_);
      }
    }
    env::StepResult step = world_->Step(ugv_actions, uav_actions);
    for (int64_t u = 0; u < num_ugvs; ++u) {
      float r = static_cast<float>(step.ugv_rewards[static_cast<size_t>(u)]) *
                config_.reward_scale;
      pending_rewards[static_cast<size_t>(u)] += r;
      stats.episode_reward += r;
    }
  }
  if (have_prev) {
    Transition t;
    t.obs = prev_obs;
    for (const auto& a : prev_actions) t.actions.push_back(a);
    t.rewards = pending_rewards;
    t.next_obs = prev_obs;  // terminal: bootstrapping disabled below
    t.terminal = true;
    buffer_.Add(std::move(t));
  }
  stats.metrics = world_->Metrics();
  Update(stats);
  return stats;
}

void MaddpgTrainer::Update(Stats& stats) {
  if (buffer_.empty()) return;
  int64_t num_ugvs = policy_->context().num_ugvs;
  const nn::Tensor& stop_xy = policy_->context().stop_xy;
  double critic_loss_total = 0.0;
  int64_t loss_count = 0;

  // Relaxed (differentiable) action summary from actor heads.
  auto relaxed_action = [&](const MaddpgPolicy::ActorOutput& out) {
    nn::Tensor release = nn::Softmax(out.release_logits);  // [2]
    nn::Tensor target_probs = nn::Softmax(out.target_logits);
    nn::Tensor xy = nn::Reshape(
        nn::MatMul(nn::Reshape(target_probs,
                               {1, policy_->context().num_stops}),
                   stop_xy),
        {2});
    nn::Tensor p_wait = nn::Reshape(
        nn::Rows(nn::Reshape(release, {2, 1}), 1, 1), {1});
    return nn::Concat({p_wait, xy}, 0);  // [3]
  };

  for (int64_t step = 0; step < config_.updates_per_iteration; ++step) {
    auto batch = buffer_.Sample(config_.batch, rng_);

    // --- Critic update -----------------------------------------------------
    critic_optimizer_->ZeroGrad();
    std::vector<nn::Tensor> critic_losses;
    for (const Transition* t : batch) {
      // Target actions from target actors on next obs.
      std::vector<nn::Tensor> next_actions;
      {
        nn::NoGradGuard no_grad;
        for (int64_t u = 0; u < num_ugvs; ++u) {
          nn::Tensor enc = nn::Tensor::FromVector(
              {static_cast<int64_t>(t->next_obs[static_cast<size_t>(u)]
                                        .size())},
              t->next_obs[static_cast<size_t>(u)]);
          next_actions.push_back(
              relaxed_action(target_policy_->Actor(u, enc)));
        }
      }
      std::vector<nn::Tensor> taken_actions;
      for (const auto& a : t->actions) {
        taken_actions.push_back(nn::Tensor::FromVector({3}, a));
      }
      nn::Tensor x = CriticInput(t->obs, taken_actions);
      nn::Tensor x_next = CriticInput(t->next_obs, next_actions);
      for (int64_t u = 0; u < num_ugvs; ++u) {
        float target_q = t->rewards[static_cast<size_t>(u)];
        if (!t->terminal) {
          nn::NoGradGuard no_grad;
          target_q += config_.gamma *
                      target_critics_[static_cast<size_t>(u)]
                          ->Forward(x_next)
                          .data()[0];
        }
        nn::Tensor q = critics_[static_cast<size_t>(u)]->Forward(x);
        nn::Tensor loss = nn::Square(nn::AddScalar(
            nn::Reshape(q, {1}), -target_q));
        critic_losses.push_back(loss);
        critic_loss_total += loss.data()[0];
        ++loss_count;
      }
    }
    nn::Tensor critic_loss = nn::MulScalar(
        nn::Sum(nn::Concat(critic_losses, 0)),
        1.0f / static_cast<float>(critic_losses.size()));
    critic_loss.Backward();
    critic_optimizer_->ClipGradNorm(1.0f);
    critic_optimizer_->Step();

    // --- Actor update ------------------------------------------------------
    actor_optimizer_->ZeroGrad();
    std::vector<nn::Tensor> actor_losses;
    for (const Transition* t : batch) {
      for (int64_t u = 0; u < num_ugvs; ++u) {
        std::vector<nn::Tensor> joint_actions;
        for (int64_t o = 0; o < num_ugvs; ++o) {
          if (o == u) {
            nn::Tensor enc = nn::Tensor::FromVector(
                {static_cast<int64_t>(t->obs[static_cast<size_t>(o)]
                                          .size())},
                t->obs[static_cast<size_t>(o)]);
            joint_actions.push_back(relaxed_action(policy_->Actor(o, enc)));
          } else {
            joint_actions.push_back(nn::Tensor::FromVector(
                {3}, t->actions[static_cast<size_t>(o)]));
          }
        }
        nn::Tensor x = CriticInput(t->obs, joint_actions);
        nn::Tensor q = critics_[static_cast<size_t>(u)]->Forward(x);
        actor_losses.push_back(nn::Neg(nn::Reshape(q, {1})));
      }
    }
    nn::Tensor actor_loss = nn::MulScalar(
        nn::Sum(nn::Concat(actor_losses, 0)),
        1.0f / static_cast<float>(actor_losses.size()));
    actor_loss.Backward();
    actor_optimizer_->ClipGradNorm(1.0f);
    actor_optimizer_->Step();

    SoftUpdateTargets();
  }
  if (loss_count > 0) {
    stats.critic_loss = critic_loss_total / static_cast<double>(loss_count);
  }
}

void MaddpgTrainer::SoftUpdateTargets() {
  SoftUpdate(policy_->Parameters(), target_policy_->Parameters(),
             config_.tau);
  for (size_t u = 0; u < critics_.size(); ++u) {
    SoftUpdate(critics_[u]->Parameters(), target_critics_[u]->Parameters(),
               config_.tau);
  }
}

}  // namespace garl::baselines
