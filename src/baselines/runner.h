#ifndef GARL_BASELINES_RUNNER_H_
#define GARL_BASELINES_RUNNER_H_

#include <string>

#include "baselines/registry.h"
#include "env/world.h"

// One-call train-and-evaluate harness used by the benchmark binaries and
// examples: builds the method, trains it with the appropriate algorithm
// (IPPO for policy-gradient methods, MADDPG for MADDPG, nothing for
// Random) and reports evaluation metrics.

namespace garl::baselines {

struct RunOptions {
  MethodOptions method;
  int64_t train_iterations = 6;
  int64_t eval_episodes = 1;
  uint64_t seed = 1;
};

struct RunResult {
  std::string method;
  env::EpisodeMetrics metrics;
};

// Trains `method` on `world` and evaluates it (greedy actions, scripted
// greedy UAV controller). CHECK-fails on unknown method names.
RunResult TrainAndEvaluate(env::World& world, const std::string& method,
                           const RunOptions& options);

}  // namespace garl::baselines

#endif  // GARL_BASELINES_RUNNER_H_
