#ifndef GARL_BASELINES_DGN_H_
#define GARL_BASELINES_DGN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/gcn.h"
#include "nn/linear.h"
#include "rl/feature_policy.h"

// DGN baseline (Jiang et al., ICLR'19): graph convolutional reinforcement
// learning — agents are nodes of a communication graph and exchange
// messages via dot-product attention layers. Spatial encoding is a plain
// GCN; the attention weighs peers by feature similarity, not geometry, so
// it cannot react to the geometric changes E-Comm is built for.

namespace garl::baselines {

struct DgnConfig {
  int64_t gcn_layers = 2;
  int64_t hidden = 16;
  int64_t comm_dim = 32;
  int64_t comm_layers = 2;
};

class DgnExtractor : public rl::UgvFeatureExtractor {
 public:
  DgnExtractor(const rl::EnvContext& context, DgnConfig config, Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.comm_dim + 2; }
  std::string name() const override { return "DGN"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  const rl::EnvContext* context_;
  DgnConfig config_;
  std::unique_ptr<core::GcnStack> gcn_;
  std::unique_ptr<nn::Linear> embed_;  // pooled GCN + self -> comm_dim
  std::vector<std::unique_ptr<nn::Linear>> query_;
  std::vector<std::unique_ptr<nn::Linear>> key_;
  std::vector<std::unique_ptr<nn::Linear>> value_;
  std::vector<std::unique_ptr<nn::Linear>> merge_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_DGN_H_
