#include "baselines/common.h"

#include <algorithm>

#include "common/check.h"
#include "core/mc_gcn.h"

namespace garl::baselines {

nn::Tensor DataEstimate(const rl::EnvContext& context,
                        const env::UgvObservation& obs) {
  nn::Tensor est = nn::Tensor::Zeros({context.num_stops});
  auto& data = est.mutable_data();
  for (int64_t b = 0; b < context.num_stops; ++b) {
    float observed = obs.stop_features.at({b, 2});
    data[static_cast<size_t>(b)] =
        observed < 0.0f ? 0.4f : std::max(observed, 0.0f);
  }
  return est;
}

nn::Tensor StructurePrior(const rl::EnvContext& context,
                          const env::UgvObservation& obs,
                          int64_t hop_threshold, float separation) {
  nn::Tensor relevance = core::HopRelevance(
      context, obs.ugv_stops[static_cast<size_t>(obs.self)], hop_threshold);
  if (separation > 0.0f && obs.ugv_stops.size() > 1) {
    auto& data = relevance.mutable_data();
    float inv_others =
        separation / static_cast<float>(obs.ugv_stops.size() - 1);
    for (size_t other = 0; other < obs.ugv_stops.size(); ++other) {
      if (static_cast<int64_t>(other) == obs.self) continue;
      nn::Tensor so =
          core::HopRelevance(context, obs.ugv_stops[other], hop_threshold);
      for (size_t b = 0; b < data.size(); ++b) {
        data[b] -= inv_others * so.data()[b];
      }
    }
  }
  return nn::Mul(relevance, DataEstimate(context, obs));
}

nn::Tensor FusedDataEstimate(const rl::EnvContext& context,
                             const std::vector<env::UgvObservation>& all) {
  GARL_CHECK(!all.empty());
  nn::Tensor est = nn::Tensor::Zeros({context.num_stops});
  auto& data = est.mutable_data();
  for (int64_t b = 0; b < context.num_stops; ++b) {
    // Freshest estimate wins (Eq. 9b semantics).
    int64_t newest = -1;
    float value = 0.4f;  // optimism when nobody has approached
    for (const auto& obs : all) {
      int64_t when = obs.stop_seen_slot[static_cast<size_t>(b)];
      if (when > newest) {
        newest = when;
        value = std::max(obs.stop_features.at({b, 2}), 0.0f);
      }
    }
    data[static_cast<size_t>(b)] = value;
  }
  return est;
}

nn::Tensor StructurePriorFused(const rl::EnvContext& context,
                               const std::vector<env::UgvObservation>& all,
                               int64_t self, int64_t hop_threshold,
                               float separation) {
  const env::UgvObservation& obs = all[static_cast<size_t>(self)];
  nn::Tensor relevance = core::HopRelevance(
      context, obs.ugv_stops[static_cast<size_t>(obs.self)], hop_threshold);
  if (separation > 0.0f && obs.ugv_stops.size() > 1) {
    auto& data = relevance.mutable_data();
    float inv_others =
        separation / static_cast<float>(obs.ugv_stops.size() - 1);
    for (size_t other = 0; other < obs.ugv_stops.size(); ++other) {
      if (static_cast<int64_t>(other) == obs.self) continue;
      nn::Tensor so =
          core::HopRelevance(context, obs.ugv_stops[other], hop_threshold);
      for (size_t b = 0; b < data.size(); ++b) {
        data[b] -= inv_others * so.data()[b];
      }
    }
  }
  return nn::Mul(relevance, FusedDataEstimate(context, all));
}

void AddRadialDispersal(const rl::EnvContext& context,
                        const env::UgvObservation& obs,
                        const nn::Tensor& data_estimate, float coeff,
                        nn::Tensor& prior) {
  if (obs.ugv_positions_raw.size() < 2 || coeff == 0.0f) return;
  const env::Vec2& self_pos =
      obs.ugv_positions_raw[static_cast<size_t>(obs.self)];
  env::Vec2 resultant{0.0, 0.0};
  for (size_t other = 0; other < obs.ugv_positions_raw.size(); ++other) {
    if (static_cast<int64_t>(other) == obs.self) continue;
    env::Vec2 away = self_pos - obs.ugv_positions_raw[other];
    double norm = std::max(away.Norm(), 1.0);
    resultant = resultant + away * (1.0 / norm);
  }
  double res_norm = resultant.Norm();
  if (res_norm <= 1e-6) return;
  resultant = resultant * (1.0 / res_norm);
  auto& data = prior.mutable_data();
  float self_x = obs.ugv_positions.at({obs.self, 0});
  float self_y = obs.ugv_positions.at({obs.self, 1});
  for (int64_t b = 0; b < context.num_stops; ++b) {
    float dx = context.stop_xy.at({b, 0}) - self_x;
    float dy = context.stop_xy.at({b, 1}) - self_y;
    float norm = std::hypot(dx, dy);
    if (norm < 1e-6f) continue;
    float alignment = (dx * static_cast<float>(resultant.x) +
                       dy * static_cast<float>(resultant.y)) /
                      norm;
    data[static_cast<size_t>(b)] +=
        coeff * alignment * data_estimate.data()[static_cast<size_t>(b)];
  }
}

int64_t EncodedObservationDim(int64_t num_ugvs) {
  return 2 + 2 * (num_ugvs - 1) + 6;
}

std::vector<float> EncodeObservation(const rl::EnvContext& context,
                                     const env::UgvObservation& obs) {
  std::vector<float> encoded;
  float self_x = obs.ugv_positions.at({obs.self, 0});
  float self_y = obs.ugv_positions.at({obs.self, 1});
  encoded.push_back(self_x);
  encoded.push_back(self_y);
  for (int64_t other = 0; other < obs.ugv_positions.size(0); ++other) {
    if (other == obs.self) continue;
    encoded.push_back(obs.ugv_positions.at({other, 0}));
    encoded.push_back(obs.ugv_positions.at({other, 1}));
  }
  // Quadrant data summary around self + total + local.
  float quadrant[4] = {0, 0, 0, 0};
  float total = 0.0f;
  for (int64_t b = 0; b < context.num_stops; ++b) {
    float observed = std::max(obs.stop_features.at({b, 2}), 0.0f);
    total += observed;
    int east = obs.stop_features.at({b, 0}) >= self_x ? 1 : 0;
    int north = obs.stop_features.at({b, 1}) >= self_y ? 1 : 0;
    quadrant[2 * north + east] += observed;
  }
  float norm = std::max(total, 1.0f);
  for (float q : quadrant) encoded.push_back(q / norm);
  encoded.push_back(total / static_cast<float>(context.num_stops));
  encoded.push_back(
      std::max(obs.stop_features.at({obs.current_stop, 2}), 0.0f));
  GARL_CHECK_EQ(static_cast<int64_t>(encoded.size()),
                EncodedObservationDim(obs.ugv_positions.size(0)));
  return encoded;
}

}  // namespace garl::baselines
