#ifndef GARL_BASELINES_CUBIC_MAP_H_
#define GARL_BASELINES_CUBIC_MAP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "rl/feature_policy.h"

// CubicMap baseline (Wang et al., ICDE'22): memory-augmented CNN with a
// cubic writing / spatially-contextual reading mechanism. We rasterize the
// UGV's stop observation onto a grid, encode it with strided convolutions,
// and couple it to an external memory matrix: the current encoding is
// written to a rotating slot (cubic write) and read back by softmax
// attention (contextual read). No graph structure is used — the paper's
// point about this baseline.
//
// Note: the memory persists across Forward calls (detached from autograd)
// and is reset whenever a fresh-episode observation (all UGVs at one stop,
// nothing explored) is seen.

namespace garl::baselines {

struct CubicMapConfig {
  int64_t grid = 24;
  int64_t channels = 6;
  int64_t memory_slots = 8;
  int64_t memory_dim = 32;
  int64_t out_dim = 32;
};

class CubicMapExtractor : public rl::UgvFeatureExtractor {
 public:
  CubicMapExtractor(const rl::EnvContext& context, CubicMapConfig config,
                    Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.out_dim + 2; }
  std::string name() const override { return "CubicMap"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  nn::Tensor Rasterize(const env::UgvObservation& obs) const;

  const rl::EnvContext* context_;
  CubicMapConfig config_;
  std::unique_ptr<nn::Conv2dLayer> conv1_;
  std::unique_ptr<nn::Conv2dLayer> conv2_;
  int64_t flat_dim_ = 0;
  std::unique_ptr<nn::Linear> encode_;   // flat -> memory_dim
  std::unique_ptr<nn::Linear> readout_;  // [enc ; read] -> out_dim
  // Per-UGV external memory [slots, memory_dim] and write cursors.
  std::vector<nn::Tensor> memory_;
  std::vector<int64_t> cursor_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_CUBIC_MAP_H_
