#ifndef GARL_BASELINES_RANDOM_POLICY_H_
#define GARL_BASELINES_RANDOM_POLICY_H_

#include "rl/policy.h"

// "Random" baseline (Section V-D): uniform action distributions, zero
// value. Has no trainable parameters; PPO updates are no-ops on it.

namespace garl::baselines {

class RandomUgvPolicy : public rl::UgvPolicyNetwork {
 public:
  explicit RandomUgvPolicy(const rl::EnvContext& context)
      : num_stops_(context.num_stops) {}

  std::vector<rl::UgvPolicyOutput> Forward(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<rl::UgvPolicyOutput> outputs;
    for (size_t u = 0; u < observations.size(); ++u) {
      rl::UgvPolicyOutput out;
      out.release_logits = nn::Tensor::Zeros({2});
      out.target_logits = nn::Tensor::Zeros({num_stops_});
      out.value = nn::Tensor::Scalar(0.0f);
      outputs.push_back(std::move(out));
    }
    return outputs;
  }

  std::vector<nn::Tensor> Parameters() const override { return {}; }
  std::string name() const override { return "Random"; }

 private:
  int64_t num_stops_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_RANDOM_POLICY_H_
