#include "baselines/gam.h"

#include <algorithm>
#include <numeric>

#include "baselines/common.h"
#include "nn/ops.h"

namespace garl::baselines {

GamExtractor::GamExtractor(const rl::EnvContext& context, GamConfig config,
                           Rng& rng)
    : context_(&context), config_(config) {
  gcn_ = std::make_unique<core::GcnStack>(context.laplacian, 3,
                                          config_.hidden,
                                          config_.gcn_layers, rng);
  lstm_ = std::make_unique<nn::LstmCell>(config_.hidden,
                                         config_.lstm_hidden, rng);
  readout_ = std::make_unique<nn::Linear>(
      config_.lstm_hidden + config_.hidden, config_.out_dim, rng);
}

std::vector<nn::Tensor> GamExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  std::vector<nn::Tensor> features;
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);
  for (const auto& obs : observations) {
    nn::Tensor h = gcn_->Forward(obs.stop_features);  // [B, hidden]

    // Importance order: stops with the most observed data first.
    std::vector<int64_t> order(static_cast<size_t>(context_->num_stops));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&obs](int64_t a, int64_t b) {
                       return obs.stop_features.at({a, 2}) >
                              obs.stop_features.at({b, 2});
                     });
    int64_t k = std::min<int64_t>(config_.traverse_nodes,
                                  context_->num_stops);
    nn::LstmCell::State state = lstm_->InitialState();
    for (int64_t i = 0; i < k; ++i) {
      nn::Tensor row = nn::Reshape(nn::Rows(h, order[static_cast<size_t>(i)],
                                            1),
                                   {config_.hidden});
      state = lstm_->Forward(row, state);
    }
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(h, 0), inv_b);
    nn::Tensor feature = nn::Tanh(
        readout_->Forward(nn::Concat({state.h, pooled}, 0)));
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    features.push_back(nn::Concat({feature, self_xy}, 0));
  }
  return features;
}

rl::UgvPriors GamExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // Global traversal: full hop horizon, but single-center.
    priors.target.push_back(
        StructurePrior(*context_, obs, /*hop_threshold=*/8,
                       /*separation=*/0.0f));
  }
  return priors;
}

std::vector<nn::Tensor> GamExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* module :
       {static_cast<const nn::Module*>(gcn_.get()),
        static_cast<const nn::Module*>(lstm_.get()),
        static_cast<const nn::Module*>(readout_.get())}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::baselines
