#ifndef GARL_BASELINES_IC3NET_H_
#define GARL_BASELINES_IC3NET_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/gcn.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "rl/feature_policy.h"

// IC3Net baseline (Singh et al., ICLR'19): individualized LSTM policies
// with a learned binary gate deciding when to broadcast; received messages
// are the gated mean of the other agents' hidden states. The plain mean
// blurs the senders' geometry — the paper's criticism.
//
// Note: the original unrolls the LSTM over the episode; this
// implementation applies one LSTM step per decision from a zero state
// (recurrent state across PPO re-evaluations would de-synchronize the
// importance weights), keeping the gating mechanism intact.

namespace garl::baselines {

struct Ic3NetConfig {
  int64_t gcn_layers = 2;
  int64_t hidden = 16;
  int64_t lstm_hidden = 32;
};

class Ic3NetExtractor : public rl::UgvFeatureExtractor {
 public:
  Ic3NetExtractor(const rl::EnvContext& context, Ic3NetConfig config,
                  Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.lstm_hidden + 2; }
  std::string name() const override { return "IC3Net"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  const rl::EnvContext* context_;
  Ic3NetConfig config_;
  std::unique_ptr<core::GcnStack> gcn_;
  std::unique_ptr<nn::Linear> embed_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Linear> gate_;   // hidden -> 1 (communicate?)
  std::unique_ptr<nn::Linear> merge_;  // [hidden ; message] -> hidden
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_IC3NET_H_
