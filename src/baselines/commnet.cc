#include "baselines/commnet.h"

#include "baselines/common.h"
#include "nn/ops.h"

namespace garl::baselines {

CommNetExtractor::CommNetExtractor(const rl::EnvContext& context,
                                   CommNetConfig config, Rng& rng)
    : context_(&context), config_(config) {
  gcn_ = std::make_unique<core::GcnStack>(context.laplacian, 3,
                                          config_.hidden,
                                          config_.gcn_layers, rng);
  embed_ = std::make_unique<nn::Linear>(2 * config_.hidden + 2,
                                        config_.comm_dim, rng);
  for (int64_t l = 0; l < config_.comm_layers; ++l) {
    self_transform_.push_back(std::make_unique<nn::Linear>(
        config_.comm_dim, config_.comm_dim, rng));
    comm_transform_.push_back(std::make_unique<nn::Linear>(
        config_.comm_dim, config_.comm_dim, rng, /*with_bias=*/false));
  }
}

std::vector<nn::Tensor> CommNetExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  int64_t num_ugvs = static_cast<int64_t>(observations.size());
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);

  std::vector<nn::Tensor> h;
  for (const auto& obs : observations) {
    nn::Tensor encoded = gcn_->Forward(obs.stop_features);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(encoded, 0), inv_b);
    nn::Tensor self_row = nn::Reshape(
        nn::Rows(encoded, obs.ugv_stops[static_cast<size_t>(obs.self)], 1),
        {config_.hidden});
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    h.push_back(nn::Tanh(
        embed_->Forward(nn::Concat({pooled, self_row, self_xy}, 0))));
  }

  // Mean-communication layers: h' = tanh(W_h h + W_c mean(h_{-u})).
  for (int64_t l = 0; l < config_.comm_layers; ++l) {
    std::vector<nn::Tensor> next(static_cast<size_t>(num_ugvs));
    for (int64_t u = 0; u < num_ugvs; ++u) {
      nn::Tensor comm = nn::Tensor::Zeros({config_.comm_dim});
      if (num_ugvs > 1) {
        for (int64_t o = 0; o < num_ugvs; ++o) {
          if (o == u) continue;
          comm = nn::Add(comm, h[static_cast<size_t>(o)]);
        }
        comm = nn::MulScalar(comm, 1.0f / static_cast<float>(num_ugvs - 1));
      }
      next[static_cast<size_t>(u)] = nn::Tanh(
          nn::Add(self_transform_[l]->Forward(h[static_cast<size_t>(u)]),
                  comm_transform_[l]->Forward(comm)));
    }
    h = std::move(next);
  }

  for (int64_t u = 0; u < num_ugvs; ++u) {
    nn::Tensor self_xy = nn::Reshape(
        nn::Rows(observations[static_cast<size_t>(u)].ugv_positions,
                 observations[static_cast<size_t>(u)].self, 1),
        {2});
    h[static_cast<size_t>(u)] =
        nn::Concat({h[static_cast<size_t>(u)], self_xy}, 0);
  }
  return h;
}

rl::UgvPriors CommNetExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // Geometry-blind mean messages: single-center prior only.
    priors.target.push_back(
        StructurePrior(*context_, obs, /*hop_threshold=*/8,
                       /*separation=*/0.0f));
  }
  return priors;
}

std::vector<nn::Tensor> CommNetExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : gcn_->Parameters()) params.push_back(p);
  for (const nn::Tensor& p : embed_->Parameters()) params.push_back(p);
  for (const auto& group : {&self_transform_, &comm_transform_}) {
    for (const auto& module : *group) {
      for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
    }
  }
  return params;
}

}  // namespace garl::baselines
