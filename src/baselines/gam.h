#ifndef GARL_BASELINES_GAM_H_
#define GARL_BASELINES_GAM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/gcn.h"
#include "nn/lstm_cell.h"
#include "rl/feature_policy.h"

// GAM baseline (Wijesinghe & Wang, 2021, as adapted in the paper): a GNN
// encoder plus an LSTM that traverses stop nodes in importance order (most
// observed data first), capturing long- and short-term spatio-temporal
// structure. Still a single-UGV view: it cannot discount stops that other
// UGVs will claim.

namespace garl::baselines {

struct GamConfig {
  int64_t gcn_layers = 2;
  int64_t hidden = 16;
  int64_t lstm_hidden = 24;
  int64_t traverse_nodes = 12;  // top-K importance-ordered stops
  int64_t out_dim = 32;
};

class GamExtractor : public rl::UgvFeatureExtractor {
 public:
  GamExtractor(const rl::EnvContext& context, GamConfig config, Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.out_dim + 2; }
  std::string name() const override { return "GAM"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  const rl::EnvContext* context_;
  GamConfig config_;
  std::unique_ptr<core::GcnStack> gcn_;
  std::unique_ptr<nn::LstmCell> lstm_;
  std::unique_ptr<nn::Linear> readout_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_GAM_H_
