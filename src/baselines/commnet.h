#ifndef GARL_BASELINES_COMMNET_H_
#define GARL_BASELINES_COMMNET_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/gcn.h"
#include "nn/linear.h"
#include "rl/feature_policy.h"

// CommNet (Sukhbaatar & Fergus, NeurIPS'16) — the canonical
// communication-based MADRL model the paper's Section I uses to motivate
// E-Comm: per layer every agent receives the plain mean of the other
// agents' hidden states, h' = tanh(W_h h + W_c mean(h_others)). Being
// permutation-invariant and geometry-blind, it "cannot adapt to the
// constant changing of geometric shapes formed by UGVs".
//
// Not part of the paper's evaluated baseline set (Table/Figure benches use
// the eight published ones); provided as a library extension and used by
// the prior-ablation bench.

namespace garl::baselines {

struct CommNetConfig {
  int64_t gcn_layers = 2;
  int64_t hidden = 16;
  int64_t comm_dim = 32;
  int64_t comm_layers = 2;
};

class CommNetExtractor : public rl::UgvFeatureExtractor {
 public:
  CommNetExtractor(const rl::EnvContext& context, CommNetConfig config,
                   Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.comm_dim + 2; }
  std::string name() const override { return "CommNet"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  const rl::EnvContext* context_;
  CommNetConfig config_;
  std::unique_ptr<core::GcnStack> gcn_;
  std::unique_ptr<nn::Linear> embed_;
  std::vector<std::unique_ptr<nn::Linear>> self_transform_;  // W_h
  std::vector<std::unique_ptr<nn::Linear>> comm_transform_;  // W_c
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_COMMNET_H_
