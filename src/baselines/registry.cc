#include "baselines/registry.h"

#include "baselines/ae_comm.h"
#include "baselines/commnet.h"
#include "baselines/cubic_map.h"
#include "baselines/dgn.h"
#include "baselines/gam.h"
#include "baselines/gat.h"
#include "baselines/ic3net.h"
#include "baselines/maddpg.h"
#include "baselines/random_policy.h"
#include "core/garl_extractor.h"
#include "rl/feature_policy.h"

namespace garl::baselines {

const std::vector<std::string>& AllMethods() {
  static const std::vector<std::string>* methods =
      new std::vector<std::string>{  // garl-lint: allow(raw-new-delete) leaky static, destruction-order safe
          "GARL",   "CubicMap", "GAM",    "GAT",    "AE-Comm",
          "DGN",    "IC3Net",   "MADDPG", "Random",
      };
  return *methods;
}

const std::vector<std::string>& AblationMethods() {
  static const std::vector<std::string>* methods =
      new std::vector<std::string>{  // garl-lint: allow(raw-new-delete) leaky static, destruction-order safe
          "GARL",
          "GARL w/o MC",
          "GARL w/o E",
          "GARL w/o MC, E",
      };
  return *methods;
}

namespace {

std::unique_ptr<rl::UgvPolicyNetwork> MakeGarlVariant(
    const rl::EnvContext& context, const MethodOptions& options, bool use_mc,
    bool use_e, Rng& rng) {
  core::GarlConfig config;
  config.use_mc = use_mc;
  config.use_e = use_e;
  config.mc_gcn.layers = options.mc_layers;
  config.e_comm.layers = options.e_layers;
  return std::make_unique<rl::FeatureUgvPolicy>(
      std::make_unique<core::GarlExtractor>(context, config, rng), context,
      rl::FeaturePolicyOptions{}, rng);
}

template <typename Extractor, typename Config>
std::unique_ptr<rl::UgvPolicyNetwork> MakeFeatureMethod(
    const rl::EnvContext& context, Rng& rng) {
  return std::make_unique<rl::FeatureUgvPolicy>(
      std::make_unique<Extractor>(context, Config{}, rng), context,
      rl::FeaturePolicyOptions{}, rng);
}

}  // namespace

StatusOr<std::unique_ptr<rl::UgvPolicyNetwork>> MakeUgvPolicy(
    const std::string& method, const rl::EnvContext& context,
    const MethodOptions& options, Rng& rng) {
  if (method == "GARL") {
    return MakeGarlVariant(context, options, true, true, rng);
  }
  if (method == "GARL w/o MC") {
    return MakeGarlVariant(context, options, false, true, rng);
  }
  if (method == "GARL w/o E") {
    return MakeGarlVariant(context, options, true, false, rng);
  }
  if (method == "GARL w/o MC, E") {
    return MakeGarlVariant(context, options, false, false, rng);
  }
  if (method == "GAT") {
    return MakeFeatureMethod<GatExtractor, GatConfig>(context, rng);
  }
  if (method == "GAM") {
    return MakeFeatureMethod<GamExtractor, GamConfig>(context, rng);
  }
  if (method == "CubicMap") {
    return MakeFeatureMethod<CubicMapExtractor, CubicMapConfig>(context,
                                                                rng);
  }
  if (method == "DGN") {
    return MakeFeatureMethod<DgnExtractor, DgnConfig>(context, rng);
  }
  if (method == "IC3Net") {
    return MakeFeatureMethod<Ic3NetExtractor, Ic3NetConfig>(context, rng);
  }
  if (method == "AE-Comm") {
    return MakeFeatureMethod<AeCommExtractor, AeCommConfig>(context, rng);
  }
  if (method == "CommNet") {
    // Library extension (Section I's motivating comm model); not part of
    // the paper's evaluated baseline set.
    return MakeFeatureMethod<CommNetExtractor, CommNetConfig>(context, rng);
  }
  if (method == "MADDPG") {
    return std::unique_ptr<rl::UgvPolicyNetwork>(
        std::make_unique<MaddpgPolicy>(context, MaddpgConfig{}, rng));
  }
  if (method == "Random") {
    return std::unique_ptr<rl::UgvPolicyNetwork>(
        std::make_unique<RandomUgvPolicy>(context));
  }
  return InvalidArgumentError("unknown method: " + method);
}

}  // namespace garl::baselines
