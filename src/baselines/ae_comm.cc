#include "baselines/ae_comm.h"

#include "baselines/common.h"
#include "nn/ops.h"

namespace garl::baselines {

AeCommExtractor::AeCommExtractor(const rl::EnvContext& context,
                                 AeCommConfig config, Rng& rng)
    : context_(&context), config_(config) {
  gcn_ = std::make_unique<core::GcnStack>(context.laplacian, 3,
                                          config_.hidden,
                                          config_.gcn_layers, rng);
  embed_ = std::make_unique<nn::Linear>(2 * config_.hidden + 2,
                                        config_.hidden, rng);
  encoder_ = std::make_unique<nn::Linear>(config_.hidden, config_.code_dim,
                                          rng);
  decoder_ = std::make_unique<nn::Linear>(config_.code_dim, config_.hidden,
                                          rng);
  merge_ = std::make_unique<nn::Linear>(config_.hidden + config_.code_dim,
                                        config_.out_dim, rng);
}

std::vector<nn::Tensor> AeCommExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  int64_t num_ugvs = static_cast<int64_t>(observations.size());
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);

  std::vector<nn::Tensor> hidden, codes;
  std::vector<nn::Tensor> reconstruction_losses;
  for (const auto& obs : observations) {
    nn::Tensor encoded = gcn_->Forward(obs.stop_features);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(encoded, 0), inv_b);
    nn::Tensor self_row = nn::Reshape(
        nn::Rows(encoded, obs.ugv_stops[static_cast<size_t>(obs.self)], 1),
        {config_.hidden});
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    nn::Tensor h = nn::Tanh(
        embed_->Forward(nn::Concat({pooled, self_row, self_xy}, 0)));
    nn::Tensor code = nn::Tanh(encoder_->Forward(h));
    // Grounding: the decoder must reconstruct the observation embedding
    // from the common-language code.
    nn::Tensor recon = decoder_->Forward(code);
    reconstruction_losses.push_back(
        nn::Reshape(nn::MseLoss(recon, h.Detach()), {1}));
    hidden.push_back(h);
    codes.push_back(code);
  }
  pending_aux_loss_ = nn::MulScalar(
      nn::Sum(nn::Concat(reconstruction_losses, 0)),
      1.0f / static_cast<float>(num_ugvs));

  std::vector<nn::Tensor> features;
  for (int64_t u = 0; u < num_ugvs; ++u) {
    nn::Tensor message = nn::Tensor::Zeros({config_.code_dim});
    if (num_ugvs > 1) {
      for (int64_t o = 0; o < num_ugvs; ++o) {
        if (o == u) continue;
        message = nn::Add(message, codes[static_cast<size_t>(o)]);
      }
      message = nn::MulScalar(message,
                              1.0f / static_cast<float>(num_ugvs - 1));
    }
    nn::Tensor out = nn::Tanh(merge_->Forward(
        nn::Concat({hidden[static_cast<size_t>(u)], message}, 0)));
    nn::Tensor self_xy = nn::Reshape(
        nn::Rows(observations[static_cast<size_t>(u)].ugv_positions,
                 observations[static_cast<size_t>(u)].self, 1),
        {2});
    features.push_back(nn::Concat({out, self_xy}, 0));
  }
  return features;
}

nn::Tensor AeCommExtractor::ConsumeAuxLoss() {
  nn::Tensor loss = pending_aux_loss_;
  pending_aux_loss_ = nn::Tensor();
  return loss;
}

rl::UgvPriors AeCommExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // The grounded common language carries enough of the peers' situation
    // for partial separation and a weakened radial-dispersal effect (the
    // strongest baseline in the paper) — but no dedicated geometry
    // machinery, so both are below GARL's strength.
    nn::Tensor prior = StructurePrior(*context_, obs, /*hop_threshold=*/8,
                                      /*separation=*/0.5f);
    AddRadialDispersal(*context_, obs, DataEstimate(*context_, obs),
                       /*coeff=*/0.18f, prior);
    priors.target.push_back(prior);
  }
  return priors;
}

std::vector<nn::Tensor> AeCommExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* module :
       {static_cast<const nn::Module*>(gcn_.get()),
        static_cast<const nn::Module*>(embed_.get()),
        static_cast<const nn::Module*>(encoder_.get()),
        static_cast<const nn::Module*>(decoder_.get()),
        static_cast<const nn::Module*>(merge_.get())}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::baselines
