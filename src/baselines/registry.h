#ifndef GARL_BASELINES_REGISTRY_H_
#define GARL_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rl/policy.h"

// Name-based construction of every UGV method evaluated in the paper:
// GARL and its ablations, the eight baselines of Section V-D.

namespace garl::baselines {

struct MethodOptions {
  int64_t mc_layers = 3;  // L^MC (Table II)
  int64_t e_layers = 3;   // L^E (Table II)
};

// Methods in the paper's presentation order.
const std::vector<std::string>& AllMethods();
// GARL ablation variants (Table III).
const std::vector<std::string>& AblationMethods();

// Builds the policy network for `method`; INVALID_ARGUMENT for unknown
// names. MADDPG policies must be trained with MaddpgTrainer; every other
// method trains with rl::IppoTrainer ("Random" needs no training).
StatusOr<std::unique_ptr<rl::UgvPolicyNetwork>> MakeUgvPolicy(
    const std::string& method, const rl::EnvContext& context,
    const MethodOptions& options, Rng& rng);

}  // namespace garl::baselines

#endif  // GARL_BASELINES_REGISTRY_H_
