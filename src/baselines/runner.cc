#include "baselines/runner.h"

#include "baselines/maddpg.h"
#include "common/check.h"
#include "rl/evaluator.h"
#include "rl/ippo_trainer.h"
#include "rl/uav_controller.h"

namespace garl::baselines {

RunResult TrainAndEvaluate(env::World& world, const std::string& method,
                           const RunOptions& options) {
  rl::EnvContext context = rl::MakeEnvContext(world);
  Rng rng(options.seed);
  auto policy_or = MakeUgvPolicy(method, context, options.method, rng);
  GARL_CHECK_MSG(policy_or.ok(), policy_or.status().ToString());
  std::unique_ptr<rl::UgvPolicyNetwork> policy =
      std::move(policy_or).value();

  if (method == "MADDPG") {
    auto* maddpg = static_cast<MaddpgPolicy*>(policy.get());
    MaddpgTrainer trainer(&world, maddpg, MaddpgConfig{}, options.seed);
    for (int64_t i = 0; i < options.train_iterations; ++i) {
      trainer.RunIteration();
    }
  } else if (method != "Random") {
    rl::TrainConfig config;
    config.iterations = options.train_iterations;
    config.seed = options.seed;
    rl::IppoTrainer trainer(&world, policy.get(), nullptr, config);
    auto train_result = trainer.Train();
    GARL_CHECK_MSG(train_result.ok(), train_result.status().ToString());
  }

  rl::EvalOptions eval;
  eval.episodes = options.eval_episodes;
  eval.seed = options.seed + 7777;
  // All methods are evaluated by sampling from their policies (standard
  // PPO evaluation; hard argmax deadlocks in symmetric states).
  eval.greedy = false;
  RunResult result;
  result.method = method;
  if (method == "Random") {
    rl::RandomUavController uav_controller;
    result.metrics =
        rl::EvaluatePolicy(world, *policy, uav_controller, eval);
  } else {
    rl::GreedyUavController uav_controller;
    result.metrics =
        rl::EvaluatePolicy(world, *policy, uav_controller, eval);
  }
  return result;
}

}  // namespace garl::baselines
