#ifndef GARL_BASELINES_GAT_H_
#define GARL_BASELINES_GAT_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "rl/feature_policy.h"

// GAT baseline (Velickovic et al., 2017): graph attention layers over the
// stop network. Attention is restricted to immediate graph neighbours
// (1-hop), which is exactly the limitation the paper discusses — it cannot
// weigh useful far-away stops nor other UGVs' intentions.

namespace garl::baselines {

struct GatConfig {
  int64_t layers = 2;
  int64_t hidden = 16;
  int64_t out_dim = 32;
};

class GatExtractor : public rl::UgvFeatureExtractor {
 public:
  GatExtractor(const rl::EnvContext& context, GatConfig config, Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  int64_t feature_dim() const override { return config_.out_dim + 2; }
  std::string name() const override { return "GAT"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  nn::Tensor GatLayer(int64_t layer, const nn::Tensor& h) const;

  const rl::EnvContext* context_;
  GatConfig config_;
  nn::Tensor neighbor_mask_;  // [B, B]: 0 on edges/self, -1e9 elsewhere
  std::vector<std::unique_ptr<nn::Linear>> transforms_;   // W per layer
  std::vector<std::unique_ptr<nn::Linear>> attn_self_;    // a_1 per layer
  std::vector<std::unique_ptr<nn::Linear>> attn_neigh_;   // a_2 per layer
  std::unique_ptr<nn::Linear> readout_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_GAT_H_
