#include "baselines/cubic_map.h"

#include <algorithm>
#include <cmath>

#include "baselines/common.h"
#include "common/check.h"
#include "nn/ops.h"

namespace garl::baselines {

CubicMapExtractor::CubicMapExtractor(const rl::EnvContext& context,
                                     CubicMapConfig config, Rng& rng)
    : context_(&context), config_(config) {
  conv1_ = std::make_unique<nn::Conv2dLayer>(3, config_.channels, 3, 2, 1,
                                             rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(config_.channels,
                                             2 * config_.channels, 3, 2, 1,
                                             rng);
  int64_t s = conv2_->OutputSize(conv1_->OutputSize(config_.grid));
  flat_dim_ = 2 * config_.channels * s * s;
  encode_ = std::make_unique<nn::Linear>(flat_dim_, config_.memory_dim, rng);
  readout_ = std::make_unique<nn::Linear>(2 * config_.memory_dim,
                                          config_.out_dim, rng);
  // One independent memory per UGV (Tensor handles share storage, so each
  // needs its own allocation).
  for (int64_t u = 0; u < context.num_ugvs; ++u) {
    memory_.push_back(
        nn::Tensor::Zeros({config_.memory_slots, config_.memory_dim}));
  }
  cursor_.assign(static_cast<size_t>(context.num_ugvs), 0);
}

nn::Tensor CubicMapExtractor::Rasterize(
    const env::UgvObservation& obs) const {
  int64_t g = config_.grid;
  nn::Tensor image = nn::Tensor::Zeros({3, g, g});
  auto& data = image.mutable_data();
  auto cell = [g](float coord) {
    return std::clamp<int64_t>(static_cast<int64_t>(coord * g), 0, g - 1);
  };
  // Channel 0: observed stop data; channel 1: stop layout.
  for (int64_t b = 0; b < obs.stop_features.size(0); ++b) {
    int64_t ix = cell(obs.stop_features.at({b, 0}));
    int64_t iy = cell(obs.stop_features.at({b, 1}));
    data[(0 * g + iy) * g + ix] +=
        std::max(obs.stop_features.at({b, 2}), 0.0f);
    data[(1 * g + iy) * g + ix] = 1.0f;
  }
  // Channel 2: UGV positions (self weighted double).
  for (int64_t u = 0; u < obs.ugv_positions.size(0); ++u) {
    int64_t ix = cell(obs.ugv_positions.at({u, 0}));
    int64_t iy = cell(obs.ugv_positions.at({u, 1}));
    data[(2 * g + iy) * g + ix] += (u == obs.self) ? 2.0f : 1.0f;
  }
  return image;
}

std::vector<nn::Tensor> CubicMapExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  std::vector<nn::Tensor> features;
  for (const auto& obs : observations) {
    nn::Tensor x = nn::Reshape(Rasterize(obs),
                               {1, 3, config_.grid, config_.grid});
    x = nn::Relu(conv1_->Forward(x));
    x = nn::Relu(conv2_->Forward(x));
    nn::Tensor enc =
        nn::Tanh(encode_->Forward(nn::Reshape(x, {flat_dim_})));

    size_t u = static_cast<size_t>(obs.self);
    GARL_CHECK_LT(obs.self, static_cast<int64_t>(memory_.size()));
    // Contextual read: softmax attention of the encoding over memory rows.
    nn::Tensor scores = nn::Reshape(
        nn::MatMul(memory_[u], nn::Reshape(enc, {config_.memory_dim, 1})),
        {config_.memory_slots});
    nn::Tensor attn = nn::Softmax(scores);
    nn::Tensor read = nn::Reshape(
        nn::MatMul(nn::Reshape(attn, {1, config_.memory_slots}),
                   memory_[u]),
        {config_.memory_dim});
    nn::Tensor feature = nn::Tanh(
        readout_->Forward(nn::Concat({enc, read}, 0)));

    // Cubic write: store the (detached) encoding in the rotating slot. A
    // fresh tensor replaces the old memory so any autograd graph that read
    // the previous contents stays valid.
    nn::Tensor next_memory = nn::Tensor::FromVector(
        {config_.memory_slots, config_.memory_dim}, memory_[u].data());
    auto& slot_data = next_memory.mutable_data();
    const auto& enc_data = enc.data();
    int64_t row = cursor_[u];
    for (int64_t d = 0; d < config_.memory_dim; ++d) {
      slot_data[static_cast<size_t>(row * config_.memory_dim + d)] =
          enc_data[static_cast<size_t>(d)];
    }
    memory_[u] = next_memory;
    cursor_[u] = (cursor_[u] + 1) % config_.memory_slots;

    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    features.push_back(nn::Concat({feature, self_xy}, 0));
  }
  return features;
}

rl::UgvPriors CubicMapExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // No graph: euclidean proximity times data (roads ignored).
    nn::Tensor prior = DataEstimate(*context_, obs);
    auto& data = prior.mutable_data();
    float self_x = obs.ugv_positions.at({obs.self, 0});
    float self_y = obs.ugv_positions.at({obs.self, 1});
    for (int64_t b = 0; b < context_->num_stops; ++b) {
      float dx = obs.stop_features.at({b, 0}) - self_x;
      float dy = obs.stop_features.at({b, 1}) - self_y;
      data[static_cast<size_t>(b)] /= 1.0f + 12.0f * std::hypot(dx, dy);
    }
    priors.target.push_back(prior);
  }
  return priors;
}

std::vector<nn::Tensor> CubicMapExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* module :
       {static_cast<const nn::Module*>(conv1_.get()),
        static_cast<const nn::Module*>(conv2_.get()),
        static_cast<const nn::Module*>(encode_.get()),
        static_cast<const nn::Module*>(readout_.get())}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::baselines
