#include "baselines/ic3net.h"

#include "baselines/common.h"
#include "nn/ops.h"

namespace garl::baselines {

Ic3NetExtractor::Ic3NetExtractor(const rl::EnvContext& context,
                                 Ic3NetConfig config, Rng& rng)
    : context_(&context), config_(config) {
  gcn_ = std::make_unique<core::GcnStack>(context.laplacian, 3,
                                          config_.hidden,
                                          config_.gcn_layers, rng);
  embed_ = std::make_unique<nn::Linear>(2 * config_.hidden + 2,
                                        config_.lstm_hidden, rng);
  lstm_ = std::make_unique<nn::LstmCell>(config_.lstm_hidden,
                                         config_.lstm_hidden, rng);
  gate_ = std::make_unique<nn::Linear>(config_.lstm_hidden, 1, rng);
  merge_ = std::make_unique<nn::Linear>(2 * config_.lstm_hidden,
                                        config_.lstm_hidden, rng);
}

std::vector<nn::Tensor> Ic3NetExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  int64_t num_ugvs = static_cast<int64_t>(observations.size());
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);

  // Individual LSTM step per agent.
  std::vector<nn::Tensor> hidden;
  for (const auto& obs : observations) {
    nn::Tensor encoded = gcn_->Forward(obs.stop_features);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(encoded, 0), inv_b);
    nn::Tensor self_row = nn::Reshape(
        nn::Rows(encoded, obs.ugv_stops[static_cast<size_t>(obs.self)], 1),
        {config_.hidden});
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    nn::Tensor x = nn::Tanh(
        embed_->Forward(nn::Concat({pooled, self_row, self_xy}, 0)));
    nn::LstmCell::State state = lstm_->Forward(x, lstm_->InitialState());
    hidden.push_back(state.h);
  }

  // Gated mean communication: each sender scales its broadcast by a
  // sigmoid gate; receivers take the plain average.
  std::vector<nn::Tensor> gated;
  for (int64_t u = 0; u < num_ugvs; ++u) {
    nn::Tensor g = nn::Sigmoid(gate_->Forward(hidden[static_cast<size_t>(
        u)]));  // [1]
    nn::Tensor scaled = nn::ScaleRows(
        nn::Reshape(hidden[static_cast<size_t>(u)], {1, config_.lstm_hidden}),
        g);
    gated.push_back(nn::Reshape(scaled, {config_.lstm_hidden}));
  }

  std::vector<nn::Tensor> features;
  for (int64_t u = 0; u < num_ugvs; ++u) {
    nn::Tensor message = nn::Tensor::Zeros({config_.lstm_hidden});
    if (num_ugvs > 1) {
      for (int64_t o = 0; o < num_ugvs; ++o) {
        if (o == u) continue;
        message = nn::Add(message, gated[static_cast<size_t>(o)]);
      }
      message = nn::MulScalar(message,
                              1.0f / static_cast<float>(num_ugvs - 1));
    }
    nn::Tensor merged = nn::Tanh(merge_->Forward(
        nn::Concat({hidden[static_cast<size_t>(u)], message}, 0)));
    nn::Tensor self_xy = nn::Reshape(
        nn::Rows(observations[static_cast<size_t>(u)].ugv_positions,
                 observations[static_cast<size_t>(u)].self, 1),
        {2});
    features.push_back(nn::Concat({merged, self_xy}, 0));
  }
  return features;
}

rl::UgvPriors Ic3NetExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // Mean-blurred messages carry no usable peer geometry (no separation)
    // and the single-step recurrent summary limits reliable planning
    // range.
    priors.target.push_back(
        StructurePrior(*context_, obs, /*hop_threshold=*/4,
                       /*separation=*/0.0f));
  }
  return priors;
}

std::vector<nn::Tensor> Ic3NetExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Module* module :
       {static_cast<const nn::Module*>(gcn_.get()),
        static_cast<const nn::Module*>(embed_.get()),
        static_cast<const nn::Module*>(lstm_.get()),
        static_cast<const nn::Module*>(gate_.get()),
        static_cast<const nn::Module*>(merge_.get())}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::baselines
