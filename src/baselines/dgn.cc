#include "baselines/dgn.h"

#include <cmath>

#include "baselines/common.h"
#include "nn/ops.h"

namespace garl::baselines {

DgnExtractor::DgnExtractor(const rl::EnvContext& context, DgnConfig config,
                           Rng& rng)
    : context_(&context), config_(config) {
  gcn_ = std::make_unique<core::GcnStack>(context.laplacian, 3,
                                          config_.hidden,
                                          config_.gcn_layers, rng);
  embed_ = std::make_unique<nn::Linear>(2 * config_.hidden + 2,
                                        config_.comm_dim, rng);
  for (int64_t l = 0; l < config_.comm_layers; ++l) {
    query_.push_back(std::make_unique<nn::Linear>(config_.comm_dim,
                                                  config_.comm_dim, rng));
    key_.push_back(std::make_unique<nn::Linear>(config_.comm_dim,
                                                config_.comm_dim, rng));
    value_.push_back(std::make_unique<nn::Linear>(config_.comm_dim,
                                                  config_.comm_dim, rng));
    merge_.push_back(std::make_unique<nn::Linear>(2 * config_.comm_dim,
                                                  config_.comm_dim, rng));
  }
}

std::vector<nn::Tensor> DgnExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  int64_t num_ugvs = static_cast<int64_t>(observations.size());
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);

  // Per-agent embeddings from the GCN encoder.
  std::vector<nn::Tensor> h;
  for (const auto& obs : observations) {
    nn::Tensor encoded = gcn_->Forward(obs.stop_features);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(encoded, 0), inv_b);
    nn::Tensor self_row = nn::Reshape(
        nn::Rows(encoded, obs.ugv_stops[static_cast<size_t>(obs.self)], 1),
        {config_.hidden});
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    h.push_back(nn::Tanh(
        embed_->Forward(nn::Concat({pooled, self_row, self_xy}, 0))));
  }

  // Dot-product attention communication over all peers.
  float scale = 1.0f / std::sqrt(static_cast<float>(config_.comm_dim));
  for (int64_t l = 0; l < config_.comm_layers; ++l) {
    nn::Tensor stacked = nn::Stack(h);  // [U, comm_dim]
    nn::Tensor q = query_[l]->Forward(stacked);
    nn::Tensor k = key_[l]->Forward(stacked);
    nn::Tensor v = value_[l]->Forward(stacked);
    nn::Tensor attn = nn::Softmax(
        nn::MulScalar(nn::MatMul(q, nn::Transpose(k)), scale));  // [U, U]
    nn::Tensor mixed = nn::MatMul(attn, v);                      // [U, dim]
    std::vector<nn::Tensor> next;
    for (int64_t u = 0; u < num_ugvs; ++u) {
      nn::Tensor row = nn::Reshape(nn::Rows(mixed, u, 1),
                                   {config_.comm_dim});
      next.push_back(nn::Tanh(
          merge_[l]->Forward(nn::Concat({h[static_cast<size_t>(u)], row},
                                        0))));
    }
    h = std::move(next);
  }

  for (int64_t u = 0; u < num_ugvs; ++u) {
    nn::Tensor self_xy = nn::Reshape(
        nn::Rows(observations[static_cast<size_t>(u)].ugv_positions,
                 observations[static_cast<size_t>(u)].self, 1),
        {2});
    h[static_cast<size_t>(u)] =
        nn::Concat({h[static_cast<size_t>(u)], self_xy}, 0);
  }
  return h;
}

rl::UgvPriors DgnExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // Attention comm conveys some peer intent: weak separation.
    priors.target.push_back(
        StructurePrior(*context_, obs, /*hop_threshold=*/8,
                       /*separation=*/0.3f));
  }
  return priors;
}

std::vector<nn::Tensor> DgnExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const nn::Tensor& p : gcn_->Parameters()) params.push_back(p);
  for (const nn::Tensor& p : embed_->Parameters()) params.push_back(p);
  for (const auto& group : {&query_, &key_, &value_, &merge_}) {
    for (const auto& module : *group) {
      for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
    }
  }
  return params;
}

}  // namespace garl::baselines
