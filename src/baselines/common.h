#ifndef GARL_BASELINES_COMMON_H_
#define GARL_BASELINES_COMMON_H_

#include <cstdint>

#include "env/types.h"
#include "nn/tensor.h"
#include "rl/policy.h"

// Shared helpers for baseline feature extractors.

namespace garl::baselines {

// Observed-data estimate per stop: max(value, 0) with mild optimism for
// still-masked stops (same convention as GarlExtractor::DataEstimate).
nn::Tensor DataEstimate(const rl::EnvContext& context,
                        const env::UgvObservation& obs);

// Structural target prior shared by the baselines: hop relevance from the
// agent's stop, times the observed data, minus `separation` times the mean
// relevance from the other UGVs' stops. `separation` expresses how much
// coordination the method's architecture can express (0 = single-center
// greedy view; 1 = GARL's full multi-center subtraction); see DESIGN.md.
nn::Tensor StructurePrior(const rl::EnvContext& context,
                          const env::UgvObservation& obs,
                          int64_t hop_threshold, float separation);

// Data map fused across ALL agents' observations (per stop: the best
// non-masked estimate any agent holds; optimism only when no agent has
// ever approached the stop). Models communication mechanisms that share
// observation content itself — AE-Comm's grounded common language.
nn::Tensor FusedDataEstimate(const rl::EnvContext& context,
                             const std::vector<env::UgvObservation>& all);

// StructurePrior evaluated against the fused data map.
nn::Tensor StructurePriorFused(const rl::EnvContext& context,
                               const std::vector<env::UgvObservation>& all,
                               int64_t self, int64_t hop_threshold,
                               float separation);

// Adds `coeff * alignment * data` to `prior` for every stop, where
// alignment is the cosine between the stop bearing and the resultant
// direction away from the other UGVs (E-Comm's Eq. 28 "resultant force",
// reusable at reduced strength by baselines whose communication conveys
// partial geometry).
void AddRadialDispersal(const rl::EnvContext& context,
                        const env::UgvObservation& obs,
                        const nn::Tensor& data_estimate, float coeff,
                        nn::Tensor& prior);

// Compact hand-crafted observation vector (self position, peer positions,
// data summary in four quadrants, local data) used by MLP-based baselines
// (MADDPG). Dimension: 2 + 2*(U-1) + 6.
std::vector<float> EncodeObservation(const rl::EnvContext& context,
                                     const env::UgvObservation& obs);
int64_t EncodedObservationDim(int64_t num_ugvs);

}  // namespace garl::baselines

#endif  // GARL_BASELINES_COMMON_H_
