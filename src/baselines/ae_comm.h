#ifndef GARL_BASELINES_AE_COMM_H_
#define GARL_BASELINES_AE_COMM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/gcn.h"
#include "nn/linear.h"
#include "rl/feature_policy.h"

// AE-Comm baseline (Lin et al., NeurIPS'21): a communication autoencoder
// grounds a common language — each agent encodes its observation into a
// code, broadcasts it, and a decoder reconstruction loss keeps the codes
// informative. The strongest communication baseline in the paper, but it
// has no dedicated machinery for spatial/geometric structure.

namespace garl::baselines {

struct AeCommConfig {
  int64_t gcn_layers = 2;
  int64_t hidden = 16;
  int64_t code_dim = 16;
  int64_t out_dim = 32;
};

class AeCommExtractor : public rl::UgvFeatureExtractor {
 public:
  AeCommExtractor(const rl::EnvContext& context, AeCommConfig config,
                  Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;
  nn::Tensor ConsumeAuxLoss() override;

  int64_t feature_dim() const override { return config_.out_dim + 2; }
  std::string name() const override { return "AE-Comm"; }
  std::vector<nn::Tensor> Parameters() const override;

 private:
  const rl::EnvContext* context_;
  AeCommConfig config_;
  std::unique_ptr<core::GcnStack> gcn_;
  std::unique_ptr<nn::Linear> embed_;    // obs summary -> hidden
  std::unique_ptr<nn::Linear> encoder_;  // hidden -> code ("language")
  std::unique_ptr<nn::Linear> decoder_;  // code -> hidden (reconstruction)
  std::unique_ptr<nn::Linear> merge_;    // [hidden ; mean code] -> out
  nn::Tensor pending_aux_loss_;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_AE_COMM_H_
