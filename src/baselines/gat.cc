#include "baselines/gat.h"

#include "baselines/common.h"
#include "common/check.h"
#include "nn/ops.h"

namespace garl::baselines {

GatExtractor::GatExtractor(const rl::EnvContext& context, GatConfig config,
                           Rng& rng)
    : context_(&context), config_(config) {
  // Mask from the Laplacian's sparsity pattern (includes self loops).
  int64_t num_stops = context.num_stops;
  neighbor_mask_ = nn::Tensor::Zeros({num_stops, num_stops});
  auto& mask = neighbor_mask_.mutable_data();
  for (int64_t i = 0; i < num_stops; ++i) {
    for (int64_t j = 0; j < num_stops; ++j) {
      if (context.laplacian.at({i, j}) == 0.0f) {
        mask[i * num_stops + j] = -1e9f;
      }
    }
  }
  for (int64_t l = 0; l < config_.layers; ++l) {
    int64_t in = (l == 0) ? 3 : config_.hidden;
    transforms_.push_back(std::make_unique<nn::Linear>(
        in, config_.hidden, rng, /*with_bias=*/false));
    attn_self_.push_back(std::make_unique<nn::Linear>(
        config_.hidden, 1, rng, /*with_bias=*/false));
    attn_neigh_.push_back(std::make_unique<nn::Linear>(
        config_.hidden, 1, rng, /*with_bias=*/false));
  }
  readout_ = std::make_unique<nn::Linear>(2 * config_.hidden,
                                          config_.out_dim, rng);
}

nn::Tensor GatExtractor::GatLayer(int64_t layer, const nn::Tensor& h) const {
  int64_t num_stops = context_->num_stops;
  nn::Tensor wh = transforms_[static_cast<size_t>(layer)]->Forward(h);
  // e_ij = leakyrelu(a1 . Wh_i + a2 . Wh_j) computed via outer sums:
  // scores = s1 * 1^T + 1 * s2^T, then masked row-softmax.
  nn::Tensor s1 = attn_self_[static_cast<size_t>(layer)]->Forward(wh);
  nn::Tensor s2 = attn_neigh_[static_cast<size_t>(layer)]->Forward(wh);
  nn::Tensor ones_row = nn::Tensor::Full({1, num_stops}, 1.0f);
  nn::Tensor scores = nn::Add(nn::MatMul(s1, ones_row),
                              nn::Transpose(nn::MatMul(s2, ones_row)));
  // LeakyReLU(0.2): x - 0.8 * relu(-x).
  scores = nn::Sub(scores, nn::MulScalar(nn::Relu(nn::Neg(scores)), 0.8f));
  nn::Tensor alpha = nn::Softmax(nn::Add(scores, neighbor_mask_));
  return nn::Tanh(nn::MatMul(alpha, wh));
}

std::vector<nn::Tensor> GatExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  std::vector<nn::Tensor> features;
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);
  for (const auto& obs : observations) {
    nn::Tensor h = obs.stop_features;
    for (int64_t l = 0; l < config_.layers; ++l) h = GatLayer(l, h);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(h, 0), inv_b);
    nn::Tensor self_row = nn::Reshape(
        nn::Rows(h, obs.ugv_stops[static_cast<size_t>(obs.self)], 1),
        {config_.hidden});
    nn::Tensor feature = nn::Tanh(
        readout_->Forward(nn::Concat({pooled, self_row}, 0)));
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    features.push_back(nn::Concat({feature, self_xy}, 0));
  }
  return features;
}

rl::UgvPriors GatExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    // Short attention horizon (no far-node view), single-center.
    priors.target.push_back(
        StructurePrior(*context_, obs, /*hop_threshold=*/3,
                       /*separation=*/0.0f));
  }
  return priors;
}

std::vector<nn::Tensor> GatExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& group : {&transforms_, &attn_self_, &attn_neigh_}) {
    for (const auto& module : *group) {
      for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
    }
  }
  for (const nn::Tensor& p : readout_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace garl::baselines
