#ifndef GARL_BASELINES_MADDPG_H_
#define GARL_BASELINES_MADDPG_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "env/world.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/policy.h"
#include "rl/replay_buffer.h"

// MADDPG baseline (Lowe et al., NeurIPS'17): per-agent deterministic
// actors with centralized critics, trained off-policy from a replay
// buffer. Discrete actions are relaxed with Gumbel-softmax for the actor
// update; behaviour actions are epsilon-greedy argmax. The paper uses it
// as the classical MADRL reference and attributes its weakness to poor
// exploration of the deterministic policy.
//
// Actors consume the compact hand-crafted observation encoding
// (baselines::EncodeObservation); critics consume all agents' encodings
// plus all agents' action summaries (release flag + target stop xy).

namespace garl::baselines {

struct MaddpgConfig {
  int64_t hidden = 64;
  float actor_lr = 1e-3f;
  float critic_lr = 1e-3f;
  float gamma = 0.95f;
  float tau = 0.05f;       // soft target update
  float epsilon = 0.15f;   // epsilon-greedy behaviour noise
  int64_t batch = 32;
  int64_t buffer_capacity = 20000;
  int64_t updates_per_iteration = 40;
  float reward_scale = 1e-3f;
};

// Inference-side policy: exposes the actors through the common
// UgvPolicyNetwork interface so the shared evaluator can run it.
class MaddpgPolicy : public rl::UgvPolicyNetwork {
 public:
  MaddpgPolicy(const rl::EnvContext& context, MaddpgConfig config, Rng& rng);

  std::vector<rl::UgvPolicyOutput> Forward(
      const std::vector<env::UgvObservation>& observations) override;

  std::vector<nn::Tensor> Parameters() const override;
  std::string name() const override { return "MADDPG"; }

  // Actor heads for agent u on an encoded observation.
  struct ActorOutput {
    nn::Tensor release_logits;  // [2]
    nn::Tensor target_logits;   // [B]
  };
  ActorOutput Actor(int64_t u, const nn::Tensor& encoded) const;

  const rl::EnvContext& context() const { return *context_; }

 private:
  friend class MaddpgTrainer;
  const rl::EnvContext* context_;
  MaddpgConfig config_;
  // Per-agent actor: trunk + two heads.
  struct ActorNet {
    std::unique_ptr<nn::Linear> trunk;
    std::unique_ptr<nn::Linear> release;
    std::unique_ptr<nn::Linear> target;
  };
  std::vector<ActorNet> actors_;
};

class MaddpgTrainer {
 public:
  MaddpgTrainer(env::World* world, MaddpgPolicy* policy, MaddpgConfig config,
                uint64_t seed);

  // One episode of epsilon-greedy experience collection followed by
  // `updates_per_iteration` replay updates.
  struct Stats {
    double episode_reward = 0.0;
    double critic_loss = 0.0;
    env::EpisodeMetrics metrics;
  };
  Stats RunIteration();

 private:
  struct Transition {
    std::vector<std::vector<float>> obs;       // [U][D]
    std::vector<std::vector<float>> actions;   // [U][3]
    std::vector<float> rewards;                // [U]
    std::vector<std::vector<float>> next_obs;  // [U][D]
    bool terminal = false;
  };

  std::vector<float> ActionSummary(const env::UgvAction& action) const;
  nn::Tensor CriticInput(const std::vector<std::vector<float>>& obs,
                         const std::vector<nn::Tensor>& actions) const;
  void Update(Stats& stats);
  void SoftUpdateTargets();

  env::World* world_;
  MaddpgPolicy* policy_;
  MaddpgConfig config_;
  Rng rng_;
  std::unique_ptr<MaddpgPolicy> target_policy_;
  std::vector<std::unique_ptr<nn::Mlp>> critics_;
  std::vector<std::unique_ptr<nn::Mlp>> target_critics_;
  std::unique_ptr<nn::Adam> actor_optimizer_;
  std::unique_ptr<nn::Adam> critic_optimizer_;
  rl::ReplayBuffer<Transition> buffer_;
  int64_t episode_counter_ = 0;
};

}  // namespace garl::baselines

#endif  // GARL_BASELINES_MADDPG_H_
