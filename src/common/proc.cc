#include "common/proc.h"

#include <csignal>
#include <cstring>
#include <ctime>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/string_util.h"

namespace garl::proc {

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int /*sig*/) {
  // Async-signal-safe by construction: a single sig_atomic_t store.
  g_shutdown_requested = 1;
}

std::string ErrnoMessage(const std::string& what) {
  return StrPrintf("%s: %s", what.c_str(), std::strerror(errno));
}

ExitStatus DecodeWaitStatus(int wait_status) {
  ExitStatus result;
  if (WIFEXITED(wait_status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    result.signaled = true;
    result.term_signal = WTERMSIG(wait_status);
  }
  return result;
}

}  // namespace

Status InstallShutdownSignalHandlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a shutdown signal should interrupt blocking syscalls so
  // the poll loop notices promptly.
  action.sa_flags = 0;
  if (::sigaction(SIGTERM, &action, nullptr) != 0) {
    return InternalError(ErrnoMessage("sigaction(SIGTERM) failed"));
  }
  if (::sigaction(SIGINT, &action, nullptr) != 0) {
    return InternalError(ErrnoMessage("sigaction(SIGINT) failed"));
  }
  return Status::Ok();
}

bool ShutdownRequested() { return g_shutdown_requested != 0; }

void ResetShutdownRequestForTest() { g_shutdown_requested = 0; }

StatusOr<int64_t> SpawnProcess(const std::vector<std::string>& argv) {
  if (argv.empty()) return InvalidArgumentError("SpawnProcess: empty argv");
  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    c_argv.push_back(const_cast<char*>(arg.c_str()));
  }
  c_argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) return InternalError(ErrnoMessage("fork failed"));
  if (pid == 0) {
    ::execv(c_argv[0], c_argv.data());
    // Only reached when exec fails; _exit skips atexit handlers the child
    // inherited from the parent image.
    ::_exit(127);
  }
  return static_cast<int64_t>(pid);
}

StatusOr<ExitStatus> PollProcess(int64_t pid) {
  int wait_status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid), &wait_status, WNOHANG);
  } while (reaped < 0 && errno == EINTR);
  if (reaped < 0) {
    return InternalError(
        ErrnoMessage(StrPrintf("waitpid(%lld) failed",
                               static_cast<long long>(pid))));
  }
  if (reaped == 0) {
    ExitStatus result;
    result.running = true;
    return result;
  }
  return DecodeWaitStatus(wait_status);
}

StatusOr<ExitStatus> WaitProcess(int64_t pid) {
  int wait_status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid), &wait_status, 0);
  } while (reaped < 0 && errno == EINTR);
  if (reaped < 0) {
    return InternalError(
        ErrnoMessage(StrPrintf("waitpid(%lld) failed",
                               static_cast<long long>(pid))));
  }
  return DecodeWaitStatus(wait_status);
}

Status SendSignal(int64_t pid, int sig) {
  if (::kill(static_cast<pid_t>(pid), sig) != 0) {
    if (errno == ESRCH) {
      return NotFoundError(
          StrPrintf("no such process: %lld", static_cast<long long>(pid)));
    }
    return InternalError(
        ErrnoMessage(StrPrintf("kill(%lld, %d) failed",
                               static_cast<long long>(pid), sig)));
  }
  return Status::Ok();
}

void SleepMs(int64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  ::nanosleep(&ts, nullptr);
}

}  // namespace garl::proc
