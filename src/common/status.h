#ifndef GARL_COMMON_STATUS_H_
#define GARL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

// Minimal Status / StatusOr error-propagation types (no exceptions).
// Functions whose failure is an expected runtime condition (bad config,
// malformed input file) return Status or StatusOr<T>; invariant violations
// use GARL_CHECK.
//
// Both types are [[nodiscard]]: a dropped Status is a dropped error, and the
// fault-tolerance guarantees (crash-safe checkpoints, bit-identical resume)
// only hold if every Load/Save failure is either propagated or deliberately
// acknowledged. Best-effort call sites use WarnIfError; the garl_lint
// `status-discard` rule additionally rejects bare `(void)` laundering.

namespace garl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kCancelled,
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline bool IsCancelled(const Status& status) {
  return status.code() == StatusCode::kCancelled;
}
// kUnavailable: the callee is temporarily unable to accept the request
// (queue full, breaker open); retrying later is a reasonable response.
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline bool IsUnavailable(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}
// kDeadlineExceeded: the request's deadline expired before it was served;
// the work was never attempted (or its result was discarded).
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline bool IsDeadlineExceeded(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded;
}

// Holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit on purpose, mirrors absl.
      : status_(std::move(status)) {
    GARL_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT: implicit on purpose, mirrors absl.
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    GARL_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    GARL_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    GARL_CHECK_MSG(ok(), status_.ToString());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Logs a non-OK `status` to stderr and carries on. The sanctioned way to
// acknowledge a best-effort failure (benchmark CSV dumps, optional SVG
// renders) without tripping [[nodiscard]] or the lint status-discard rule.
void WarnIfError(const Status& status, std::string_view context);

#define GARL_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::garl::Status status_ = (expr);      \
    if (!status_.ok()) return status_;    \
  } while (false)

}  // namespace garl

#endif  // GARL_COMMON_STATUS_H_
