#ifndef GARL_COMMON_PROC_H_
#define GARL_COMMON_PROC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// Process-control helpers for the fleet supervisor (tools/garl_fleet):
// spawn, poll/wait, signal, sleep, plus the process-wide signal-safe
// shutdown flag that lets SIGTERM/SIGINT request a graceful
// checkpoint-and-exit from the training loop.
//
// This is the repo's ONE process-spawn path: library code outside this file
// must not call fork/exec*/system/popen/posix_spawn directly (machine-checked
// by garl_lint's `process-spawn` rule, mirroring the `direct-io` funnel).
// Funnelling process control through here keeps error handling uniform
// (EINTR retries, errno -> Status) and keeps the signal handler down to the
// one async-signal-safe store it is allowed to do.

namespace garl::proc {

// ---- Graceful shutdown flag -------------------------------------------------
//
// InstallShutdownSignalHandlers() routes SIGTERM and SIGINT to a handler that
// does exactly one thing: store 1 into a volatile sig_atomic_t. Long-running
// loops poll ShutdownRequested() at iteration boundaries and wind down
// cleanly (checkpoint, then exit with a distinct status). Installing twice
// is harmless.

[[nodiscard]] Status InstallShutdownSignalHandlers();
bool ShutdownRequested();
// Clears the flag (tests raise() a signal at themselves, then reset).
void ResetShutdownRequestForTest();

// ---- Child processes --------------------------------------------------------

// Result of polling or waiting on a child.
struct ExitStatus {
  bool running = false;   // still alive (PollProcess only)
  bool exited = false;    // terminated via exit(); exit_code valid
  int exit_code = 0;
  bool signaled = false;  // terminated by a signal; term_signal valid
  int term_signal = 0;
};

// fork + execv. `argv[0]` is the binary path (absolute or on PATH as execv
// resolves it — callers pass absolute paths). Returns the child pid. If the
// exec itself fails in the child, the child _exits with code 127.
[[nodiscard]] StatusOr<int64_t> SpawnProcess(
    const std::vector<std::string>& argv);

// Non-blocking waitpid. ExitStatus.running is true while the child lives;
// a reaped child reports exited/exit_code or signaled/term_signal. Each
// child is reaped at most once.
[[nodiscard]] StatusOr<ExitStatus> PollProcess(int64_t pid);

// Blocking waitpid (EINTR-tolerant).
[[nodiscard]] StatusOr<ExitStatus> WaitProcess(int64_t pid);

// kill(pid, sig). NotFound once the process is gone.
[[nodiscard]] Status SendSignal(int64_t pid, int sig);

// EINTR-tolerant nanosleep, so a signal (e.g. the supervisor's own SIGTERM)
// interrupts at most one slice of the wait.
void SleepMs(int64_t ms);

}  // namespace garl::proc

#endif  // GARL_COMMON_PROC_H_
