#ifndef GARL_COMMON_ENV_FLAGS_H_
#define GARL_COMMON_ENV_FLAGS_H_

#include <cstdint>
#include <string>

// Benchmark/example knobs read from environment variables so the harnesses
// can be scaled up for full reproductions without recompiling
// (e.g. GARL_TRAIN_ITERS=200 ./bench_table3).

namespace garl {

// Returns the integer value of env var `name`, or `default_value` if unset
// or unparsable.
int64_t EnvInt(const char* name, int64_t default_value);

// Returns the string value of env var `name`, or `default_value` if unset.
std::string EnvString(const char* name, const std::string& default_value);

}  // namespace garl

#endif  // GARL_COMMON_ENV_FLAGS_H_
