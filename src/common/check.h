#ifndef GARL_COMMON_CHECK_H_
#define GARL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// CHECK-style invariant macros. A failed check is a programmer error: the
// process prints the failing condition (with file:line) to stderr and
// aborts. Recoverable conditions should use garl::Status instead.

namespace garl::internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* condition,
                                   const std::string& message) {
  std::fprintf(stderr, "GARL_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Stringifies two operands for the binary-comparison CHECK variants.
template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream os;
  os << "(lhs=" << a << ", rhs=" << b << ")";
  return os.str();
}

}  // namespace garl::internal

#define GARL_CHECK(condition)                                          \
  do {                                                                 \
    if (!(condition)) {                                                \
      ::garl::internal::CheckFail(__FILE__, __LINE__, #condition, ""); \
    }                                                                  \
  } while (false)

#define GARL_CHECK_MSG(condition, msg)                                  \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::garl::internal::CheckFail(__FILE__, __LINE__, #condition, msg); \
    }                                                                   \
  } while (false)

#define GARL_CHECK_OP_(op, a, b)                                     \
  do {                                                               \
    if (!((a)op(b))) {                                               \
      ::garl::internal::CheckFail(                                   \
          __FILE__, __LINE__, #a " " #op " " #b,                     \
          ::garl::internal::FormatOperands((a), (b)));               \
    }                                                                \
  } while (false)

#define GARL_CHECK_EQ(a, b) GARL_CHECK_OP_(==, a, b)
#define GARL_CHECK_NE(a, b) GARL_CHECK_OP_(!=, a, b)
#define GARL_CHECK_LT(a, b) GARL_CHECK_OP_(<, a, b)
#define GARL_CHECK_LE(a, b) GARL_CHECK_OP_(<=, a, b)
#define GARL_CHECK_GT(a, b) GARL_CHECK_OP_(>, a, b)
#define GARL_CHECK_GE(a, b) GARL_CHECK_OP_(>=, a, b)

#ifndef NDEBUG
#define GARL_DCHECK(condition) GARL_CHECK(condition)
#else
#define GARL_DCHECK(condition) \
  do {                         \
  } while (false)
#endif

#endif  // GARL_COMMON_CHECK_H_
