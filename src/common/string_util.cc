#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace garl {

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  GARL_CHECK_GE(size, 0);
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> result;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      result.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  result.push_back(current);
  return result;
}

}  // namespace garl
