#include "common/status.h"

#include <cstdio>

namespace garl {

void WarnIfError(const Status& status, std::string_view context) {
  if (status.ok()) return;
  std::fprintf(stderr, "[garl] WARNING: %.*s: %s\n",
               static_cast<int>(context.size()), context.data(),
               status.ToString().c_str());
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace garl
