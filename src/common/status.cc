#include "common/status.h"

namespace garl {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace garl
