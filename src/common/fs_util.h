#ifndef GARL_COMMON_FS_UTIL_H_
#define GARL_COMMON_FS_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

// Filesystem helpers for durable checkpoints: whole-file read, crash-safe
// atomic replace (temp file + flush + fsync + rename) and a CRC-32 used as
// an end-to-end integrity footer on every checkpoint artifact.

namespace garl {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
// Crc32("123456789") == 0xCBF43926. `seed` chains incremental updates:
// Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Reads the entire file at `path` into a string.
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

// Atomically creates-or-replaces `path` with `contents`: writes a temporary
// file in the same directory, fsyncs it, then renames over `path`. A crash
// at any point leaves either the old file or the new file, never a
// truncated mix. The stray temp file from an interrupted write is removed
// on the next successful call for the same path.
[[nodiscard]] Status AtomicWriteFile(const std::string& path, std::string_view contents);

}  // namespace garl

#endif  // GARL_COMMON_FS_UTIL_H_
