#ifndef GARL_COMMON_FS_UTIL_H_
#define GARL_COMMON_FS_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

// Filesystem helpers for durable artifacts (checkpoints, run logs, table
// dumps): whole-file read, crash-safe atomic replace (temp file + flush +
// fsync + rename), retry-with-exponential-backoff wrappers for transient
// I/O errors, a durable line appender, and a CRC-32 used as an end-to-end
// integrity footer on every checkpoint artifact.
//
// This is the repo's ONE durable-write path: library code outside this file
// must not open std::ofstream or call mutating std::filesystem operations
// directly (machine-checked by garl_lint's `direct-io` rule). Funnelling
// every write through here keeps the retry/atomicity semantics uniform and
// makes the whole I/O surface fault-injectable for tests.

namespace garl {

// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
// Crc32("123456789") == 0xCBF43926. `seed` chains incremental updates:
// Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

// Reads the entire file at `path` into a string.
[[nodiscard]] StatusOr<std::string> ReadFileToString(const std::string& path);

// Retry discipline for transient write failures (EIO, short writes, injected
// faults). Attempt k sleeps initial_backoff_ms * 2^(k-1) ms before retrying,
// capped at max_backoff_ms. `sleep_fn` is the test seam: when set it replaces
// the real nanosleep, so chaos tests run at full speed and can record the
// exact backoff sequence.
struct RetryPolicy {
  int64_t max_attempts = 5;
  int64_t initial_backoff_ms = 1;
  int64_t max_backoff_ms = 64;
  std::function<void(int64_t ms)> sleep_fn;  // null: real sleep
};

// A fault to inject into the next write attempt. error_number == 0 means no
// fault; otherwise the attempt fails with that errno, after first writing
// roughly half the payload when `short_write` is set (modelling a torn
// write that a later retry must mask).
struct InjectedWriteFault {
  int error_number = 0;
  bool short_write = false;
};

// Process-wide write-fault hook, consulted once per write attempt with the
// destination path. Installing a hook replaces any previous one; install an
// empty function to clear. Deterministic schedules (src/sim/faults.*) and
// chaos tests are the only intended users.
using WriteFaultHook = std::function<InjectedWriteFault(std::string_view path)>;
void SetWriteFaultHook(WriteFaultHook hook);

// RAII installer: sets the hook on construction, clears it on destruction.
class ScopedWriteFaultHook {
 public:
  explicit ScopedWriteFaultHook(WriteFaultHook hook);
  ~ScopedWriteFaultHook();
  ScopedWriteFaultHook(const ScopedWriteFaultHook&) = delete;
  ScopedWriteFaultHook& operator=(const ScopedWriteFaultHook&) = delete;
};

// A fault to inject into the next whole-file read. error_number == 0 means
// no fault; otherwise ReadFileToString fails with that errno before touching
// the file, modelling a flaky disk during checkpoint load / hot reload.
struct InjectedReadFault {
  int error_number = 0;
};

// Process-wide read-fault hook, consulted once per ReadFileToString call with
// the source path. Same contract as the write hook: installing replaces any
// previous hook, empty clears, deterministic schedules and chaos tests are
// the only intended users.
using ReadFaultHook = std::function<InjectedReadFault(std::string_view path)>;
void SetReadFaultHook(ReadFaultHook hook);

// RAII installer for the read-fault hook.
class ScopedReadFaultHook {
 public:
  explicit ScopedReadFaultHook(ReadFaultHook hook);
  ~ScopedReadFaultHook();
  ScopedReadFaultHook(const ScopedReadFaultHook&) = delete;
  ScopedReadFaultHook& operator=(const ScopedReadFaultHook&) = delete;
};

// Atomically creates-or-replaces `path` with `contents`: writes a temporary
// file in the same directory, fsyncs it, then renames over `path`. A crash
// at any point leaves either the old file or the new file, never a
// truncated mix. The stray temp file from an interrupted write is removed
// on the next successful call for the same path. Single attempt: transient
// failures surface immediately (WriteFileDurable adds the retry loop).
[[nodiscard]] Status AtomicWriteFile(const std::string& path, std::string_view contents);

// AtomicWriteFile behind the retry policy: transient failures (including
// injected ones) are retried with exponential backoff; the last error is
// returned once the attempt budget is exhausted. This is the call every
// durable artifact writer in the repo should use.
[[nodiscard]] Status WriteFileDurable(const std::string& path, std::string_view contents,
                                      const RetryPolicy& policy = {});

// Whether opening an append target starts fresh (truncate) or resumes after
// existing bytes (the crash-recovery path: a restarted trainer continues the
// same heartbeat or log file).
enum class AppendMode {
  kTruncate,
  kContinue,
};

// Size of the file at `path` in bytes (stat; read-only, so not part of the
// durable-write funnel). NotFound if the file does not exist.
[[nodiscard]] StatusOr<int64_t> FileSizeBytes(const std::string& path);

// Durable line appender for streaming logs (JSONL run logs). Open truncates
// `path` (or seeks to its end under AppendMode::kContinue); Append pushes
// bytes with the same retry discipline as WriteFileDurable and tracks how
// much of the current payload already reached the file, so a short write
// followed by a retry never duplicates or drops bytes.
class AppendFile {
 public:
  [[nodiscard]] static StatusOr<AppendFile> Open(
      const std::string& path, RetryPolicy policy = {},
      AppendMode mode = AppendMode::kTruncate);
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  [[nodiscard]] Status Append(std::string_view data);
  const std::string& path() const { return path_; }

 private:
  AppendFile(std::string path, int fd, RetryPolicy policy)
      : path_(std::move(path)), fd_(fd), policy_(std::move(policy)) {}

  std::string path_;
  int fd_ = -1;
  RetryPolicy policy_;
};

// Size-bounded appender for week-long streaming logs: writes through
// AppendFile, but rolls over to a new segment once the current one has
// reached `max_segment_bytes`. Rollover happens only at record boundaries
// (one Append call == one record), so a record never straddles segments; a
// segment may therefore exceed the cap by at most one record.
//
// Segment naming is deterministic: segment k lives at
// SegmentPath(base_path, k) == base_path + ".%06lld" % k, so readers
// (obs::CollectRunLogInputs, garl_tracecat) can stitch segments back in
// order by name alone. max_segment_bytes == 0 disables rotation entirely:
// all bytes go to `base_path` itself, byte-for-byte identical to a plain
// AppendFile (which keeps unrotated golden logs stable).
class RotatingAppendFile {
 public:
  // `start_segment` is the segment index to open first; resuming writers
  // pass the highest existing segment with AppendMode::kContinue.
  [[nodiscard]] static StatusOr<RotatingAppendFile> Open(
      const std::string& base_path, int64_t max_segment_bytes,
      RetryPolicy policy = {}, AppendMode mode = AppendMode::kTruncate,
      int64_t start_segment = 0);

  [[nodiscard]] Status Append(std::string_view record);

  // Path of the segment Append currently writes to.
  const std::string& current_path() const { return file_->path(); }
  int64_t segment_index() const { return segment_index_; }

  // base_path itself when rotation is disabled (max_segment_bytes == 0).
  static std::string SegmentPath(const std::string& base_path,
                                 int64_t max_segment_bytes, int64_t index);

 private:
  RotatingAppendFile(std::string base_path, int64_t max_segment_bytes,
                     RetryPolicy policy, int64_t segment_index,
                     int64_t segment_bytes, AppendFile file)
      : base_path_(std::move(base_path)),
        max_segment_bytes_(max_segment_bytes),
        policy_(std::move(policy)),
        segment_index_(segment_index),
        segment_bytes_(segment_bytes),
        file_(std::move(file)) {}

  std::string base_path_;
  int64_t max_segment_bytes_ = 0;
  RetryPolicy policy_;
  int64_t segment_index_ = 0;
  int64_t segment_bytes_ = 0;
  std::optional<AppendFile> file_;
};

// Creates `path`'s directory chain (mkdir -p semantics).
[[nodiscard]] Status EnsureDirectory(const std::string& path);

// Recursively removes `path` (file or directory). Best effort by contract:
// callers use it for retention pruning where a leftover directory wastes
// disk but breaks nothing.
void RemoveAllBestEffort(const std::string& path);

}  // namespace garl

#endif  // GARL_COMMON_FS_UTIL_H_
