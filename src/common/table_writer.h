#ifndef GARL_COMMON_TABLE_WRITER_H_
#define GARL_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

// fs_util.h re-exported for EnsureDirectory, which historically lived here;
// includers of table_writer.h keep compiling unchanged.
#include "common/fs_util.h"
#include "common/status.h"

// Console table / CSV emission used by the benchmark harnesses to print the
// paper's tables and dump figure series.

namespace garl {

// Accumulates rows of string cells and prints them as an aligned ASCII table.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  // Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with 4 decimals.
  void AddRow(const std::string& label, const std::vector<double>& values);

  // Renders the table with column alignment to `os`.
  void Print(std::ostream& os) const;

  // Writes the table as CSV to `path`. Creates parent directory if needed.
  [[nodiscard]] Status WriteCsv(const std::string& path) const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace garl

#endif  // GARL_COMMON_TABLE_WRITER_H_
