#include "common/rng.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace garl {

std::string Rng::SerializeState() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::DeserializeState(const std::string& text) {
  // Parse into a scratch engine so malformed input leaves `engine_` intact.
  std::mt19937_64 engine;
  std::istringstream in(text);
  in >> engine;
  if (in.fail()) return InvalidArgumentError("malformed RNG state");
  engine_ = engine;
  return Status::Ok();
}

int64_t Rng::SampleIndex(const std::vector<double>& weights) {
  GARL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GARL_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) {
    return UniformInt(0, static_cast<int64_t>(weights.size()) - 1);
  }
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

}  // namespace garl
