#ifndef GARL_COMMON_RNG_H_
#define GARL_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

// Deterministic, splittable pseudo-random number generator. Every stochastic
// component in the library receives an explicit Rng so that campus
// generation, training and evaluation are reproducible for a given seed.

namespace garl {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  float UniformF(float lo, float hi) {
    return static_cast<float>(Uniform(lo, hi));
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Standard normal scaled to mean/stddev.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  float NormalF(float mean = 0.0f, float stddev = 1.0f) {
    return static_cast<float>(Normal(mean, stddev));
  }

  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  // Samples an index from an (unnormalized, non-negative) weight vector.
  // Falls back to uniform if all weights are zero.
  int64_t SampleIndex(const std::vector<double>& weights);

  // Derives an independent child generator; the parent's stream advances.
  Rng Split() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL); }

  // Stateless stream derivation (SplitMix64 finalizer over seed + stream):
  // the seed for stream `stream` of base seed `seed` is a pure function of
  // its inputs, so parallel workers can reconstruct their streams from
  // (trainer seed, episode number) alone — no parent stream to advance, and
  // the result is identical no matter which thread asks. Used by parallel
  // rollout collection to keep metrics bit-identical for any thread count.
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream) {
    uint64_t z = seed + stream * 0x9E3779B97F4A7C15ULL + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

  // Full engine state (the textual operator<< form of std::mt19937_64), so
  // a checkpointed trainer resumes its random stream bit-identically.
  // SerializeState does not perturb the stream.
  std::string SerializeState() const;
  [[nodiscard]] Status DeserializeState(const std::string& text);

 private:
  std::mt19937_64 engine_;
};

}  // namespace garl

#endif  // GARL_COMMON_RNG_H_
