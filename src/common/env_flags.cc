#include "common/env_flags.h"

#include <cstdlib>

namespace garl {

int64_t EnvInt(const char* name, int64_t default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  int64_t parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') return default_value;
  return parsed;
}

std::string EnvString(const char* name, const std::string& default_value) {
  const char* value = std::getenv(name);
  if (value == nullptr) return default_value;
  return value;
}

}  // namespace garl
