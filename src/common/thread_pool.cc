#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/check.h"
#include "common/env_flags.h"

namespace garl {

namespace {

thread_local bool t_in_pool_worker = false;

// Worker-exit hooks: a fixed array of plain function pointers so there is
// nothing to heap-allocate and nothing with a destructor that static
// teardown could run before the last worker exits.
constexpr int kMaxWorkerExitHooks = 8;
std::atomic<void (*)()> g_worker_exit_hooks[kMaxWorkerExitHooks];
std::atomic<int> g_worker_exit_hook_count{0};

void RunWorkerExitHooks() {
  int count = g_worker_exit_hook_count.load(std::memory_order_acquire);
  for (int i = 0; i < count && i < kMaxWorkerExitHooks; ++i) {
    // A slot whose pointer store hasn't landed yet reads null — skip it;
    // registration racing a worker's death loses harmlessly.
    if (void (*hook)() = g_worker_exit_hooks[i].load(std::memory_order_acquire)) {
      hook();
    }
  }
}

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

int64_t DefaultThreads() {
  int64_t hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  return std::max<int64_t>(EnvInt("GARL_NUM_THREADS", std::max<int64_t>(hw, 1)),
                           1);
}

}  // namespace

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(std::max<int64_t>(num_threads, 1)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int64_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    PfJob* job = nullptr;
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Only wake for a broadcast job while it still has unclaimed chunks;
      // once the ticket is exhausted the stragglers' finalization happens on
      // the threads already registered.
      cv_.wait(lock, [this] {
        return stop_ || !queue_.empty() ||
               (pf_job_ != nullptr &&
                pf_job_->next_chunk.load(std::memory_order_relaxed) <
                    pf_job_->chunks);
      });
      if (pf_job_ != nullptr &&
          pf_job_->next_chunk.load(std::memory_order_relaxed) <
              pf_job_->chunks) {
        job = pf_job_;
        // Register under mutex_: the caller clears pf_job_ under the same
        // mutex before it starts waiting for active == 0, so every worker
        // that grabbed the pointer is counted.
        job->active.fetch_add(1, std::memory_order_relaxed);
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        break;  // stop_ and drained
      }
    }
    if (job != nullptr) {
      int64_t chunks_done = 0;
      std::exception_ptr error;
      RunPfChunks(job, &chunks_done, &error);
      {
        // All completion state flips inside job->m, with the notify issued
        // before unlocking: the instant the caller's predicate can become
        // true it already holds job->m, so it cannot destroy the job while
        // this thread still touches it.
        std::lock_guard<std::mutex> job_lock(job->m);
        job->done += chunks_done;
        if (error && !job->first_error) job->first_error = error;
        job->active.fetch_sub(1, std::memory_order_relaxed);
        job->cv.notify_all();
      }
      continue;
    }
    task();  // exceptions land in the task's future
  }
  RunWorkerExitHooks();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // inline: future still carries result/exception
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  int64_t span = end - begin;
  grain = std::max<int64_t>(grain, 1);
  // Inline when parallelism cannot help or must not be used (reentrancy).
  if (span <= grain || num_threads_ <= 1 || workers_.empty() ||
      t_in_pool_worker) {
    inline_parallel_fors_.fetch_add(1, std::memory_order_relaxed);
    body(begin, end);
    return;
  }
  // Same partition as ever — chunk boundaries are part of the determinism
  // contract (each output location belongs to exactly one chunk).
  int64_t chunks = std::min(num_threads_, (span + grain - 1) / grain);
  int64_t chunk_size = (span + chunks - 1) / chunks;

  // Stack-allocated broadcast job: workers claim chunk indices from
  // next_chunk instead of popping per-chunk heap tasks off the queue.
  PfJob job;
  job.begin = begin;
  job.end = end;
  job.chunks = chunks;
  job.chunk_size = chunk_size;
  job.body = &body;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pf_job_ != nullptr) {
      // Another external thread already has a job broadcast. Rare (the
      // trainer is single-threaded at this level) — just run inline rather
      // than queueing behind it.
      inline_parallel_fors_.fetch_add(1, std::memory_order_relaxed);
      body(begin, end);
      return;
    }
    pf_job_ = &job;
  }
  cv_.notify_all();

  int64_t chunks_done = 0;
  std::exception_ptr error;
  RunPfChunks(&job, &chunks_done, &error);

  {
    // Close the job: no worker can register after this block, so `active`
    // can only fall from here on.
    std::lock_guard<std::mutex> lock(mutex_);
    if (pf_job_ == &job) pf_job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> job_lock(job.m);
    job.done += chunks_done;
    if (error && !job.first_error) job.first_error = error;
    job.cv.wait(job_lock, [&job] {
      return job.done == job.chunks &&
             job.active.load(std::memory_order_relaxed) == 0;
    });
  }
  if (job.first_error) std::rethrow_exception(job.first_error);
}

void ThreadPool::RunPfChunks(PfJob* job, int64_t* chunks_done,
                             std::exception_ptr* error) {
  for (;;) {
    int64_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->chunks) return;
    int64_t chunk_begin = job->begin + c * job->chunk_size;
    int64_t chunk_end = std::min(chunk_begin + job->chunk_size, job->end);
    try {
      (*job->body)(chunk_begin, chunk_end);
    } catch (...) {
      if (!*error) *error = std::current_exception();
    }
    ++*chunks_done;  // a chunk that threw still counts as executed
  }
}

void ThreadPool::RegisterWorkerExitHook(void (*hook)()) {
  int idx = g_worker_exit_hook_count.fetch_add(1, std::memory_order_acq_rel);
  GARL_CHECK_LT(idx, kMaxWorkerExitHooks);
  g_worker_exit_hooks[idx].store(hook, std::memory_order_release);
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

ThreadPool::InlineScope::InlineScope() : previous_(t_in_pool_worker) {
  t_in_pool_worker = true;
}

ThreadPool::InlineScope::~InlineScope() { t_in_pool_worker = previous_; }

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int64_t num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace garl
