#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/env_flags.h"

namespace garl {

namespace {

thread_local bool t_in_pool_worker = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

int64_t DefaultThreads() {
  int64_t hw = static_cast<int64_t>(std::thread::hardware_concurrency());
  return std::max<int64_t>(EnvInt("GARL_NUM_THREADS", std::max<int64_t>(hw, 1)),
                           1);
}

}  // namespace

ThreadPool::ThreadPool(int64_t num_threads)
    : num_threads_(std::max<int64_t>(num_threads, 1)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int64_t i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // inline: future still carries result/exception
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  int64_t span = end - begin;
  grain = std::max<int64_t>(grain, 1);
  // Inline when parallelism cannot help or must not be used (reentrancy).
  if (span <= grain || num_threads_ <= 1 || workers_.empty() ||
      t_in_pool_worker) {
    inline_parallel_fors_.fetch_add(1, std::memory_order_relaxed);
    body(begin, end);
    return;
  }
  int64_t chunks = std::min(num_threads_, (span + grain - 1) / grain);
  int64_t chunk_size = (span + chunks - 1) / chunks;

  // First-exception slot shared by all chunks.
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::atomic<int64_t> remaining(chunks - 1);
  std::mutex done_mutex;
  std::condition_variable done_cv;

  auto run_chunk = [&](int64_t chunk_begin, int64_t chunk_end) {
    try {
      body(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  // Chunks 1..N-1 go to workers; the caller runs chunk 0 itself.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int64_t c = 1; c < chunks; ++c) {
      int64_t chunk_begin = begin + c * chunk_size;
      int64_t chunk_end = std::min(chunk_begin + chunk_size, end);
      queue_.emplace_back([&, chunk_begin, chunk_end] {
        run_chunk(chunk_begin, chunk_end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();
  run_chunk(begin, std::min(begin + chunk_size, end));
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

ThreadPool::InlineScope::InlineScope() : previous_(t_in_pool_worker) {
  t_in_pool_worker = true;
}

ThreadPool::InlineScope::~InlineScope() { t_in_pool_worker = previous_; }

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(int64_t num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace garl
