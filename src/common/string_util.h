#ifndef GARL_COMMON_STRING_UTIL_H_
#define GARL_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace garl {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& separator);

// Splits `text` on `delimiter`; empty fields are preserved.
std::vector<std::string> Split(const std::string& text, char delimiter);

}  // namespace garl

#endif  // GARL_COMMON_STRING_UTIL_H_
