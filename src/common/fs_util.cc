#include "common/fs_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/string_util.h"

namespace garl {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return StrPrintf("%s: %s: %s", what.c_str(), path.c_str(),
                   std::strerror(errno));
}

std::mutex& HookMutex() {
  static std::mutex mutex;
  return mutex;
}

WriteFaultHook& HookStorage() {
  static WriteFaultHook hook;
  return hook;
}

// Copies the hook out under the lock, then invokes it unlocked: the hook is
// user code (a fault schedule) and may itself take locks.
InjectedWriteFault ConsultWriteFaultHook(std::string_view path) {
  WriteFaultHook hook;
  {
    std::lock_guard<std::mutex> lock(HookMutex());
    hook = HookStorage();
  }
  if (!hook) return InjectedWriteFault{};
  return hook(path);
}

ReadFaultHook& ReadHookStorage() {
  static ReadFaultHook hook;
  return hook;
}

InjectedReadFault ConsultReadFaultHook(std::string_view path) {
  ReadFaultHook hook;
  {
    std::lock_guard<std::mutex> lock(HookMutex());
    hook = ReadHookStorage();
  }
  if (!hook) return InjectedReadFault{};
  return hook(path);
}

void SleepMs(const RetryPolicy& policy, int64_t ms) {
  if (policy.sleep_fn) {
    policy.sleep_fn(ms);
    return;
  }
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  ::nanosleep(&ts, nullptr);
}

// Writes all of [data, data+size) to `fd`, retrying EINTR. Returns 0 on
// success or the failing errno; *written_out gets the byte count that
// actually reached the fd either way.
int WriteAll(int fd, const char* data, size_t size, size_t* written_out) {
  size_t written = 0;
  int error_number = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_number = errno;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (written_out != nullptr) *written_out = written;
  return error_number;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  return Crc32(data.data(), data.size(), seed);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  InjectedReadFault fault = ConsultReadFaultHook(path);
  if (fault.error_number != 0) {
    errno = fault.error_number;
    return InternalError(ErrnoMessage("injected read fault", path));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return InternalError("read failed: " + path);
  return contents.str();
}

void SetWriteFaultHook(WriteFaultHook hook) {
  std::lock_guard<std::mutex> lock(HookMutex());
  HookStorage() = std::move(hook);
}

ScopedWriteFaultHook::ScopedWriteFaultHook(WriteFaultHook hook) {
  SetWriteFaultHook(std::move(hook));
}

ScopedWriteFaultHook::~ScopedWriteFaultHook() { SetWriteFaultHook(nullptr); }

void SetReadFaultHook(ReadFaultHook hook) {
  std::lock_guard<std::mutex> lock(HookMutex());
  ReadHookStorage() = std::move(hook);
}

ScopedReadFaultHook::ScopedReadFaultHook(ReadFaultHook hook) {
  SetReadFaultHook(std::move(hook));
}

ScopedReadFaultHook::~ScopedReadFaultHook() { SetReadFaultHook(nullptr); }

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return InternalError(ErrnoMessage("cannot open for write", tmp_path));

  InjectedWriteFault fault = ConsultWriteFaultHook(path);
  if (fault.error_number != 0) {
    if (fault.short_write && !contents.empty()) {
      // Model a crash mid-write: leave a torn temp file behind. The retry's
      // O_TRUNC reopen (and the rename barrier) must mask it.
      (void)WriteAll(fd, contents.data(), (contents.size() + 1) / 2, nullptr);
      ::close(fd);
    } else {
      ::close(fd);
      ::unlink(tmp_path.c_str());
    }
    errno = fault.error_number;
    return InternalError(ErrnoMessage("injected write fault", tmp_path));
  }

  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = InternalError(ErrnoMessage("write failed", tmp_path));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  // Durability point: the payload must reach the disk before the rename
  // makes it visible, or a crash could publish an empty/partial file.
  if (::fsync(fd) != 0) {
    Status status = InternalError(ErrnoMessage("fsync failed", tmp_path));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return InternalError(ErrnoMessage("close failed", tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status status = InternalError(ErrnoMessage("rename failed", path));
    ::unlink(tmp_path.c_str());
    return status;
  }
  return Status::Ok();
}

Status WriteFileDurable(const std::string& path, std::string_view contents,
                        const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return InvalidArgumentError("RetryPolicy.max_attempts must be >= 1");
  }
  Status last = Status::Ok();
  int64_t backoff_ms = policy.initial_backoff_ms;
  for (int64_t attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = AtomicWriteFile(path, contents);
    if (last.ok()) return last;
    if (attempt == policy.max_attempts) break;
    SleepMs(policy, backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
  }
  return Status(last.code(),
                StrPrintf("durable write failed after %lld attempts: %s",
                          static_cast<long long>(policy.max_attempts),
                          last.message().c_str()));
}

StatusOr<int64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return InternalError(ErrnoMessage("stat failed", path));
  }
  return static_cast<int64_t>(st.st_size);
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path,
                                      RetryPolicy policy, AppendMode mode) {
  if (policy.max_attempts < 1) {
    return InvalidArgumentError("RetryPolicy.max_attempts must be >= 1");
  }
  int flags = O_WRONLY | O_CREAT |
              (mode == AppendMode::kTruncate ? O_TRUNC : O_APPEND);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return InternalError(ErrnoMessage("cannot open for append", path));
  return AppendFile(path, fd, std::move(policy));
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      policy_(std::move(other.policy_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    policy_ = std::move(other.policy_);
    other.fd_ = -1;
  }
  return *this;
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return InternalError("append to moved-from AppendFile: " + path_);
  // Bytes of `data` already in the file; a retry resumes here so a short
  // write neither duplicates nor drops log bytes.
  size_t offset = 0;
  Status last = Status::Ok();
  int64_t backoff_ms = policy_.initial_backoff_ms;
  for (int64_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    InjectedWriteFault fault = ConsultWriteFaultHook(path_);
    int error_number = 0;
    if (fault.error_number != 0) {
      size_t remaining = data.size() - offset;
      if (fault.short_write && remaining > 1) {
        size_t torn = 0;
        error_number = WriteAll(fd_, data.data() + offset, remaining / 2, &torn);
        offset += torn;
      }
      if (error_number == 0) error_number = fault.error_number;
    } else {
      size_t wrote = 0;
      error_number = WriteAll(fd_, data.data() + offset, data.size() - offset,
                              &wrote);
      offset += wrote;
      if (error_number == 0 && ::fsync(fd_) != 0) error_number = errno;
      if (error_number == 0) return Status::Ok();
    }
    errno = error_number;
    last = InternalError(ErrnoMessage("append failed", path_));
    if (attempt == policy_.max_attempts) break;
    SleepMs(policy_, backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, policy_.max_backoff_ms);
  }
  return Status(last.code(),
                StrPrintf("durable append failed after %lld attempts: %s",
                          static_cast<long long>(policy_.max_attempts),
                          last.message().c_str()));
}

std::string RotatingAppendFile::SegmentPath(const std::string& base_path,
                                            int64_t max_segment_bytes,
                                            int64_t index) {
  if (max_segment_bytes <= 0) return base_path;
  return base_path + StrPrintf(".%06lld", static_cast<long long>(index));
}

StatusOr<RotatingAppendFile> RotatingAppendFile::Open(
    const std::string& base_path, int64_t max_segment_bytes,
    RetryPolicy policy, AppendMode mode, int64_t start_segment) {
  if (max_segment_bytes < 0) {
    return InvalidArgumentError("max_segment_bytes must be >= 0");
  }
  if (start_segment < 0) {
    return InvalidArgumentError("start_segment must be >= 0");
  }
  const std::string path =
      SegmentPath(base_path, max_segment_bytes, start_segment);
  StatusOr<AppendFile> file = AppendFile::Open(path, policy, mode);
  if (!file.ok()) return file.status();
  int64_t bytes = 0;
  if (mode == AppendMode::kContinue) {
    StatusOr<int64_t> size = FileSizeBytes(path);
    if (!size.ok()) return size.status();
    bytes = size.value();
  }
  return RotatingAppendFile(base_path, max_segment_bytes, std::move(policy),
                            start_segment, bytes, std::move(file).value());
}

Status RotatingAppendFile::Append(std::string_view record) {
  if (!file_.has_value()) {
    return InternalError("append to moved-from RotatingAppendFile: " +
                         base_path_);
  }
  if (max_segment_bytes_ > 0 && segment_bytes_ > 0 &&
      segment_bytes_ + static_cast<int64_t>(record.size()) >
          max_segment_bytes_) {
    const std::string next =
        SegmentPath(base_path_, max_segment_bytes_, segment_index_ + 1);
    StatusOr<AppendFile> file =
        AppendFile::Open(next, policy_, AppendMode::kTruncate);
    if (!file.ok()) return file.status();
    file_ = std::move(file).value();
    ++segment_index_;
    segment_bytes_ = 0;
  }
  GARL_RETURN_IF_ERROR(file_->Append(record));
  segment_bytes_ += static_cast<int64_t>(record.size());
  return Status::Ok();
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::Ok();
  std::string partial = (path[0] == '/') ? "/" : "";
  for (const std::string& part : Split(path, '/')) {
    if (part.empty()) continue;
    if (!partial.empty() && partial.back() != '/') partial += "/";
    partial += part;
    if (partial == ".") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return InternalError(ErrnoMessage("mkdir failed", partial));
    }
  }
  return Status::Ok();
}

void RemoveAllBestEffort(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(std::filesystem::path(path), ec);
}

}  // namespace garl
