#include "common/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace garl {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return StrPrintf("%s: %s: %s", what.c_str(), path.c_str(),
                   std::strerror(errno));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(std::string_view data, uint32_t seed) {
  return Crc32(data.data(), data.size(), seed);
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) return InternalError("read failed: " + path);
  return contents.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp_path = path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return InternalError(ErrnoMessage("cannot open for write", tmp_path));

  size_t written = 0;
  while (written < contents.size()) {
    ssize_t n = ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = InternalError(ErrnoMessage("write failed", tmp_path));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  // Durability point: the payload must reach the disk before the rename
  // makes it visible, or a crash could publish an empty/partial file.
  if (::fsync(fd) != 0) {
    Status status = InternalError(ErrnoMessage("fsync failed", tmp_path));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return InternalError(ErrnoMessage("close failed", tmp_path));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    Status status = InternalError(ErrnoMessage("rename failed", path));
    ::unlink(tmp_path.c_str());
    return status;
  }
  return Status::Ok();
}

}  // namespace garl
