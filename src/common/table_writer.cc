#include "common/table_writer.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/fs_util.h"
#include "common/string_util.h"

namespace garl {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  GARL_CHECK(!header_.empty());
}

void TableWriter::AddRow(std::vector<std::string> row) {
  GARL_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label,
                         const std::vector<double>& values) {
  GARL_CHECK_EQ(values.size() + 1, header_.size());
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(StrPrintf("%.4f", v));
  AddRow(std::move(row));
}

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

namespace {

// Escapes a CSV field per RFC 4180 if it contains a delimiter/quote/newline.
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Status TableWriter::WriteCsv(const std::string& path) const {
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    GARL_RETURN_IF_ERROR(EnsureDirectory(path.substr(0, slash)));
  }
  std::ostringstream out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ",";
      out << CsvEscape(row[c]);
    }
    out << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return WriteFileDurable(path, out.str());
}

}  // namespace garl
