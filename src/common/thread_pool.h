#ifndef GARL_COMMON_THREAD_POOL_H_
#define GARL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size thread pool shared by the tensor kernels (blocked GEMM, conv,
// row-wise reductions) and the rollout layer (parallel episode collection).
//
// Sizing: ThreadPool::Global() is created on first use with
// GARL_NUM_THREADS threads (default: std::thread::hardware_concurrency).
// `num_threads` counts the caller too, so a pool of N spawns N-1 workers;
// N == 1 means everything runs inline on the caller's thread.
//
// Determinism contract: ParallelFor partitions [begin, end) into disjoint
// chunks and the caller blocks until all chunks finish. Kernels built on it
// assign each output location to exactly one chunk and keep the within-chunk
// accumulation order identical to the sequential loop, so results are
// bit-identical for every thread count (see DESIGN.md, Threading model).
//
// Reentrancy: a ParallelFor issued from inside a pool task runs inline and
// sequential on that worker (no nested fan-out, no deadlock).

namespace garl {

class ThreadPool {
 public:
  // `num_threads` <= 1 creates a pool that runs everything inline.
  explicit ThreadPool(int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency including the calling thread (>= 1).
  int64_t num_threads() const { return num_threads_; }

  // Lifetime usage counters, for the observability layer (run-log `rt`
  // section). Values depend on thread count and scheduling — they are
  // runtime data, never deterministic payload.
  struct Stats {
    int64_t tasks_submitted = 0;    // Submit() calls
    int64_t parallel_fors = 0;      // non-empty ParallelFor() calls
    int64_t inline_parallel_fors = 0;  // ...of which ran fully inline
  };
  Stats stats() const {
    Stats s;
    s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
    s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
    s.inline_parallel_fors =
        inline_parallel_fors_.load(std::memory_order_relaxed);
    return s;
  }

  // Enqueues `task` on a worker (runs inline when there are no workers).
  // The future rethrows any exception the task threw.
  std::future<void> Submit(std::function<void()> task);

  // Runs body(chunk_begin, chunk_end) over a partition of [begin, end).
  // At most num_threads() chunks; no chunk smaller than `grain` (except the
  // last). Runs inline when the range fits one grain, the pool has one
  // thread, or the caller is itself a pool worker. Blocks until every chunk
  // completed; the first exception thrown by any chunk is rethrown.
  //
  // Allocation-free in steady state: the job descriptor lives on the
  // caller's stack and workers claim chunk indices from an atomic counter —
  // nothing is heap-allocated per call or per chunk (unlike Submit, which
  // pays one packaged_task per task). Only one broadcast job can be in
  // flight; a second external thread calling ParallelFor concurrently runs
  // its range inline.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  // Registers a hook every worker runs once, just before its thread exits
  // (pool destruction). Fixed capacity of 8, process-wide, never
  // unregistered — hooks must be idempotent and safe during shutdown. The
  // tensor arena uses this to hand a dying worker's cached buffers back to
  // the shared pool.
  static void RegisterWorkerExitHook(void (*hook)());

  // True when the calling thread is one of this process's pool workers.
  static bool InWorker();

  // RAII: while alive, ParallelFor calls issued from this thread run inline
  // instead of enqueuing chunks. The rollout layer wraps the episode it runs
  // on the calling thread with this so its kernel chunks don't queue behind
  // whole-episode tasks already handed to the workers.
  class InlineScope {
   public:
    InlineScope();
    ~InlineScope();
    InlineScope(const InlineScope&) = delete;
    InlineScope& operator=(const InlineScope&) = delete;

   private:
    bool previous_;
  };

  // Process-wide pool, created on first use with GARL_NUM_THREADS threads
  // (default hardware_concurrency).
  static ThreadPool& Global();

  // Replaces the global pool (benchmarks / determinism tests). Must not be
  // called while kernels or rollouts are in flight.
  static void SetGlobalThreads(int64_t num_threads);

 private:
  // One in-flight ParallelFor, broadcast to every worker. The struct lives
  // on the calling thread's stack; workers may only register themselves
  // (active++) under the pool mutex while pf_job_ still points at it, and
  // the caller waits until done == chunks and active == 0 before letting the
  // frame die, so no worker can touch a freed job.
  struct PfJob {
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunks = 0;
    int64_t chunk_size = 0;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    std::atomic<int64_t> next_chunk{0};  // chunk claim ticket
    std::atomic<int64_t> active{0};      // workers currently inside the job
    std::mutex m;                        // guards done / first_error
    std::condition_variable cv;          // caller waits on completion
    int64_t done = 0;                    // chunks fully executed
    std::exception_ptr first_error;
  };

  void WorkerLoop();
  // Claims and runs chunks until the ticket runs out. Reports how many this
  // thread completed and the first exception it saw; touches no job state
  // that needs a lock.
  static void RunPfChunks(PfJob* job, int64_t* chunks_done,
                          std::exception_ptr* error);

  int64_t num_threads_;
  std::atomic<int64_t> tasks_submitted_{0};
  std::atomic<int64_t> parallel_fors_{0};
  std::atomic<int64_t> inline_parallel_fors_{0};
  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  PfJob* pf_job_ = nullptr;  // guarded by mutex_
  bool stop_ = false;
};

}  // namespace garl

#endif  // GARL_COMMON_THREAD_POOL_H_
