#ifndef GARL_COMMON_THREAD_POOL_H_
#define GARL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

// Fixed-size thread pool shared by the tensor kernels (blocked GEMM, conv,
// row-wise reductions) and the rollout layer (parallel episode collection).
//
// Sizing: ThreadPool::Global() is created on first use with
// GARL_NUM_THREADS threads (default: std::thread::hardware_concurrency).
// `num_threads` counts the caller too, so a pool of N spawns N-1 workers;
// N == 1 means everything runs inline on the caller's thread.
//
// Determinism contract: ParallelFor partitions [begin, end) into disjoint
// chunks and the caller blocks until all chunks finish. Kernels built on it
// assign each output location to exactly one chunk and keep the within-chunk
// accumulation order identical to the sequential loop, so results are
// bit-identical for every thread count (see DESIGN.md, Threading model).
//
// Reentrancy: a ParallelFor issued from inside a pool task runs inline and
// sequential on that worker (no nested fan-out, no deadlock).

namespace garl {

class ThreadPool {
 public:
  // `num_threads` <= 1 creates a pool that runs everything inline.
  explicit ThreadPool(int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total concurrency including the calling thread (>= 1).
  int64_t num_threads() const { return num_threads_; }

  // Lifetime usage counters, for the observability layer (run-log `rt`
  // section). Values depend on thread count and scheduling — they are
  // runtime data, never deterministic payload.
  struct Stats {
    int64_t tasks_submitted = 0;    // Submit() calls
    int64_t parallel_fors = 0;      // non-empty ParallelFor() calls
    int64_t inline_parallel_fors = 0;  // ...of which ran fully inline
  };
  Stats stats() const {
    Stats s;
    s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
    s.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
    s.inline_parallel_fors =
        inline_parallel_fors_.load(std::memory_order_relaxed);
    return s;
  }

  // Enqueues `task` on a worker (runs inline when there are no workers).
  // The future rethrows any exception the task threw.
  std::future<void> Submit(std::function<void()> task);

  // Runs body(chunk_begin, chunk_end) over a partition of [begin, end).
  // At most num_threads() chunks; no chunk smaller than `grain` (except the
  // last). Runs inline when the range fits one grain, the pool has one
  // thread, or the caller is itself a pool worker. Blocks until every chunk
  // completed; the first exception thrown by any chunk is rethrown.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  // True when the calling thread is one of this process's pool workers.
  static bool InWorker();

  // RAII: while alive, ParallelFor calls issued from this thread run inline
  // instead of enqueuing chunks. The rollout layer wraps the episode it runs
  // on the calling thread with this so its kernel chunks don't queue behind
  // whole-episode tasks already handed to the workers.
  class InlineScope {
   public:
    InlineScope();
    ~InlineScope();
    InlineScope(const InlineScope&) = delete;
    InlineScope& operator=(const InlineScope&) = delete;

   private:
    bool previous_;
  };

  // Process-wide pool, created on first use with GARL_NUM_THREADS threads
  // (default hardware_concurrency).
  static ThreadPool& Global();

  // Replaces the global pool (benchmarks / determinism tests). Must not be
  // called while kernels or rollouts are in flight.
  static void SetGlobalThreads(int64_t num_threads);

 private:
  void WorkerLoop();

  int64_t num_threads_;
  std::atomic<int64_t> tasks_submitted_{0};
  std::atomic<int64_t> parallel_fors_{0};
  std::atomic<int64_t> inline_parallel_fors_{0};
  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace garl

#endif  // GARL_COMMON_THREAD_POOL_H_
