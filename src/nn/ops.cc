#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/thread_pool.h"

namespace garl::nn {

using internal::TensorImpl;
using Impl = std::shared_ptr<internal::TensorImpl>;

namespace {

constexpr float kLogFloor = 1e-12f;

// thread_local so pool workers can run inference concurrently: each rollout
// worker installs its own NoGradGuard without touching the other threads'
// grad mode.
thread_local bool g_grad_mode = true;

// --- Parallelism helpers ----------------------------------------------------
//
// Every parallel kernel partitions its output locations into disjoint chunks
// (ThreadPool::ParallelFor) and keeps the within-chunk accumulation order
// identical to the sequential loop, so results are bit-identical for any
// GARL_NUM_THREADS (the determinism contract in DESIGN.md).

// Fused multiply-add count below which a kernel stays on the calling thread;
// GARL's smallest layers (16-64 wide) never pay pool overhead.
constexpr int64_t kParallelCutoff = 1 << 15;
// Elementwise loops: elements per chunk.
constexpr int64_t kElementwiseGrain = 1 << 14;

// Rows per chunk so each chunk carries at least kParallelCutoff FMAs of
// per-row work `row_cost`.
int64_t RowGrain(int64_t row_cost) {
  return std::max<int64_t>(1, kParallelCutoff / std::max<int64_t>(row_cost, 1));
}

// C[n,m] += A[n,k] * B[k,m], all row-major. Cache-blocked over the inner
// dimension and parallel over row blocks of C. Each row of C is owned by
// exactly one chunk and accumulates in ascending-p order, so the result is
// bit-identical for every thread count. Zero entries of A are skipped (the
// graph ops multiply by Laplacians that are mostly zeros).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
  constexpr int64_t kPanel = 256;  // B-panel depth kept hot in cache
  auto rows = [a, b, c, k, m](int64_t row_begin, int64_t row_end) {
    for (int64_t pb = 0; pb < k; pb += kPanel) {
      int64_t pe = std::min(pb + kPanel, k);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * m;
        for (int64_t p = pb; p < pe; ++p) {
          float aip = arow[p];
          if (aip == 0.0f) continue;
          const float* brow = b + p * m;
          for (int64_t j = 0; j < m; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  };
  ThreadPool::Global().ParallelFor(0, n, RowGrain(k * m), rows);
}

// Contiguous [cols, rows] transpose of a row-major [rows, cols] matrix, so
// the two backward GEMMs of MatMul stream both operands with unit stride.
std::vector<float> PackTranspose(const float* src, int64_t rows,
                                 int64_t cols) {
  std::vector<float> out(static_cast<size_t>(rows * cols));
  constexpr int64_t kBlock = 64;  // tile so src and out lines both stay hot
  for (int64_t ib = 0; ib < rows; ib += kBlock) {
    int64_t ie = std::min(ib + kBlock, rows);
    for (int64_t jb = 0; jb < cols; jb += kBlock) {
      int64_t je = std::min(jb + kBlock, cols);
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t j = jb; j < je; ++j) {
          out[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
  return out;
}

bool AnyRequiresGrad(const std::vector<Tensor>& inputs) {
  for (const Tensor& t : inputs) {
    if (t.impl()->requires_grad) return true;
  }
  return false;
}

// Creates an op output node. `backward` may assume all parents have
// allocated gradient buffers (the backward sweep guarantees it).
Tensor MakeOp(std::vector<int64_t> shape, std::vector<float> value,
              const std::vector<Tensor>& inputs,
              std::function<void(TensorImpl&)> backward) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->value = std::move(value);
  GARL_CHECK_EQ(impl->Numel(), static_cast<int64_t>(impl->value.size()));
  if (g_grad_mode && AnyRequiresGrad(inputs)) {
    impl->requires_grad = true;
    impl->parents.reserve(inputs.size());
    for (const Tensor& t : inputs) impl->parents.push_back(t.impl());
    impl->backward_fn = std::move(backward);
  }
  return Tensor::Wrap(std::move(impl));
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GARL_CHECK_MSG(a.shape() == b.shape(),
                 "shape mismatch: " + a.ShapeString() + " vs " +
                     b.ShapeString());
}

// Elementwise binary helper: fwd(a_i, b_i) -> out_i and backward producing
// (dL/da_i, dL/db_i) from (a_i, b_i, dL/dout_i). Forward and backward chunk
// the index space; each index is touched by exactly one chunk (grads for
// index i go to slot i of each parent, even when the parents alias).
template <typename Fwd, typename Bwd>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, Fwd fwd, Bwd bwd) {
  CheckSameShape(a, b);
  const auto& av = a.data();
  const auto& bv = b.data();
  std::vector<float> out(av.size());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(av.size()), kElementwiseGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = fwd(av[i], bv[i]);
      });
  Impl ai = a.impl(), bi = b.impl();
  return MakeOp(a.shape(), std::move(out), {a, b},
                [ai, bi, bwd](TensorImpl& self) {
                  ThreadPool::Global().ParallelFor(
                      0, static_cast<int64_t>(self.value.size()),
                      kElementwiseGrain, [&](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          auto [da, db] = bwd(ai->value[i], bi->value[i],
                                              self.grad[i]);
                          ai->grad[i] += da;
                          bi->grad[i] += db;
                        }
                      });
                });
}

// Elementwise unary helper: backward receives (x_i, y_i, dL/dy_i).
template <typename Fwd, typename Bwd>
Tensor ElementwiseUnary(const Tensor& a, Fwd fwd, Bwd bwd) {
  const auto& av = a.data();
  std::vector<float> out(av.size());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(av.size()), kElementwiseGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = fwd(av[i]);
      });
  Impl ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, bwd](TensorImpl& self) {
                  ThreadPool::Global().ParallelFor(
                      0, static_cast<int64_t>(self.value.size()),
                      kElementwiseGrain, [&](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          ai->grad[i] += bwd(ai->value[i], self.value[i],
                                             self.grad[i]);
                        }
                      });
                });
}

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

bool GradModeEnabled() { return g_grad_mode; }

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float g) { return std::pair<float, float>(g, g); });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float g) { return std::pair<float, float>(g, -g); });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x * y; },
      [](float x, float y, float g) {
        return std::pair<float, float>(g * y, g * x);
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](float x, float y) { return x / y; },
      [](float x, float y, float g) {
        return std::pair<float, float>(g / y, -g * x / (y * y));
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ElementwiseUnary(
      a, [s](float x) { return x + s; },
      [](float, float, float g) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return ElementwiseUnary(
      a, [s](float x) { return x * s; },
      [s](float, float, float g) { return g * s; });
}

Tensor AddRowVector(const Tensor& mat, const Tensor& bias) {
  GARL_CHECK_EQ(mat.dim(), 2);
  GARL_CHECK_EQ(bias.dim(), 1);
  int64_t n = mat.size(0), m = mat.size(1);
  GARL_CHECK_EQ(bias.size(0), m);
  std::vector<float> out(mat.data());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) out[i * m + j] += bias.data()[j];
  }
  Impl mi = mat.impl(), bi = bias.impl();
  return MakeOp(mat.shape(), std::move(out), {mat, bias},
                [mi, bi, n, m](TensorImpl& self) {
                  for (int64_t i = 0; i < n; ++i) {
                    for (int64_t j = 0; j < m; ++j) {
                      float g = self.grad[i * m + j];
                      mi->grad[i * m + j] += g;
                      bi->grad[j] += g;
                    }
                  }
                });
}

Tensor ScaleRows(const Tensor& mat, const Tensor& scale) {
  GARL_CHECK_EQ(mat.dim(), 2);
  GARL_CHECK_EQ(scale.dim(), 1);
  int64_t n = mat.size(0), m = mat.size(1);
  GARL_CHECK_EQ(scale.size(0), n);
  std::vector<float> out(mat.data());
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) out[i * m + j] *= scale.data()[i];
  }
  Impl mi = mat.impl(), si = scale.impl();
  return MakeOp(mat.shape(), std::move(out), {mat, scale},
                [mi, si, n, m](TensorImpl& self) {
                  for (int64_t i = 0; i < n; ++i) {
                    for (int64_t j = 0; j < m; ++j) {
                      float g = self.grad[i * m + j];
                      mi->grad[i * m + j] += g * si->value[i];
                      si->grad[i] += g * mi->value[i * m + j];
                    }
                  }
                });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return -x; },
      [](float, float, float g) { return -g; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::exp(x); },
      [](float, float y, float g) { return g * y; });
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::log(std::max(x, kLogFloor)); },
      [](float x, float, float g) { return g / std::max(x, kLogFloor); });
}

Tensor Sqrt(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y, float g) { return g / (2.0f * std::max(y, 1e-8f)); });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return x * x; },
      [](float x, float, float g) { return 2.0f * g * x; });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float, float g) { return x > 0.0f ? g : 0.0f; });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y, float g) { return g * (1.0f - y * y); });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y, float g) { return g * y * (1.0f - y); });
}

Tensor Clip(const Tensor& a, float lo, float hi) {
  GARL_CHECK_LE(lo, hi);
  return ElementwiseUnary(
      a, [lo, hi](float x) { return std::clamp(x, lo, hi); },
      [lo, hi](float x, float, float g) {
        return (x > lo && x < hi) ? g : 0.0f;
      });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK_EQ(b.dim(), 2);
  int64_t n = a.size(0), k = a.size(1), m = b.size(1);
  GARL_CHECK_MSG(b.size(0) == k, "matmul inner dim mismatch: " +
                                     a.ShapeString() + " x " +
                                     b.ShapeString());
  std::vector<float> out(static_cast<size_t>(n * m), 0.0f);
  GemmAccumulate(a.data().data(), b.data().data(), out.data(), n, k, m);
  Impl ai = a.impl(), bi = b.impl();
  return MakeOp({n, m}, std::move(out), {a, b},
                [ai, bi, n, k, m](TensorImpl& self) {
                  // Two explicit GEMMs instead of one scalar triple-loop
                  // striding both grads: dA = dOut * B^T and dB = A^T * dOut,
                  // each against a packed transpose so all operands stream
                  // with unit stride. Row blocks of dA / dB parallelize
                  // independently; when a and b alias the two passes run
                  // back-to-back on the same grad buffer, never racing.
                  std::vector<float> bt =
                      PackTranspose(bi->value.data(), k, m);  // [m, k]
                  GemmAccumulate(self.grad.data(), bt.data(), ai->grad.data(),
                                 n, m, k);
                  std::vector<float> at =
                      PackTranspose(ai->value.data(), n, k);  // [k, n]
                  GemmAccumulate(at.data(), self.grad.data(), bi->grad.data(),
                                 k, n, m);
                });
}

Tensor Transpose(const Tensor& a) {
  GARL_CHECK_EQ(a.dim(), 2);
  int64_t n = a.size(0), m = a.size(1);
  // Single up-front resize (every element is overwritten below) and a tiled
  // walk so both the source rows and destination columns stay cache-hot.
  std::vector<float> out;
  out.resize(static_cast<size_t>(n * m));
  const float* src = a.data().data();
  constexpr int64_t kBlock = 64;
  for (int64_t ib = 0; ib < n; ib += kBlock) {
    int64_t ie = std::min(ib + kBlock, n);
    for (int64_t jb = 0; jb < m; jb += kBlock) {
      int64_t je = std::min(jb + kBlock, m);
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t j = jb; j < je; ++j) out[j * n + i] = src[i * m + j];
      }
    }
  }
  Impl ai = a.impl();
  return MakeOp({m, n}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        ai->grad[i * m + j] += self.grad[j * n + i];
      }
    }
  });
}

Tensor Sum(const Tensor& a) {
  float total = 0.0f;
  for (float v : a.data()) total += v;
  Impl ai = a.impl();
  return MakeOp({}, {total}, {a}, [ai](TensorImpl& self) {
    float g = self.grad[0];
    for (float& gi : ai->grad) gi += g;
  });
}

Tensor Mean(const Tensor& a) {
  int64_t n = a.numel();
  GARL_CHECK_GT(n, 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(n));
}

Tensor SumDim(const Tensor& a, int64_t dim) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK(dim == 0 || dim == 1);
  int64_t n = a.size(0), m = a.size(1);
  const auto& av = a.data();
  Impl ai = a.impl();
  if (dim == 0) {
    // Column reduction: chunk the columns; each output column accumulates
    // over ascending rows within one chunk (deterministic for any thread
    // count).
    std::vector<float> out(static_cast<size_t>(m), 0.0f);
    ThreadPool::Global().ParallelFor(
        0, m, RowGrain(n), [&](int64_t jb, int64_t je) {
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = jb; j < je; ++j) out[j] += av[i * m + j];
          }
        });
    return MakeOp({m}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
      ThreadPool::Global().ParallelFor(
          0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
            for (int64_t i = ib; i < ie; ++i) {
              for (int64_t j = 0; j < m; ++j) {
                ai->grad[i * m + j] += self.grad[j];
              }
            }
          });
    });
  }
  std::vector<float> out(static_cast<size_t>(n), 0.0f);
  ThreadPool::Global().ParallelFor(
      0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          for (int64_t j = 0; j < m; ++j) out[i] += av[i * m + j];
        }
      });
  return MakeOp({n}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
    ThreadPool::Global().ParallelFor(
        0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
          for (int64_t i = ib; i < ie; ++i) {
            for (int64_t j = 0; j < m; ++j) {
              ai->grad[i * m + j] += self.grad[i];
            }
          }
        });
  });
}

Tensor Norm(const Tensor& a, float eps) {
  GARL_CHECK_EQ(a.dim(), 1);
  float sq = 0.0f;
  for (float v : a.data()) sq += v * v;
  float norm = std::sqrt(sq + eps);
  Impl ai = a.impl();
  return MakeOp({}, {norm}, {a}, [ai, norm](TensorImpl& self) {
    float g = self.grad[0] / norm;
    for (size_t i = 0; i < ai->value.size(); ++i) {
      ai->grad[i] += g * ai->value[i];
    }
  });
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  GARL_CHECK_EQ(a.dim(), 1);
  CheckSameShape(a, b);
  return Sum(Mul(a, b));
}

namespace {

// Softmax over contiguous rows of length `m`; rows are independent, so they
// chunk across the pool.
void SoftmaxRows(const std::vector<float>& in, int64_t rows, int64_t m,
                 std::vector<float>& out) {
  out.resize(in.size());
  ThreadPool::Global().ParallelFor(
      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const float* x = &in[r * m];
          float* y = &out[r * m];
          float max_v = *std::max_element(x, x + m);
          float total = 0.0f;
          for (int64_t j = 0; j < m; ++j) {
            y[j] = std::exp(x[j] - max_v);
            total += y[j];
          }
          for (int64_t j = 0; j < m; ++j) y[j] /= total;
        }
      });
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  GARL_CHECK(a.dim() == 1 || a.dim() == 2);
  int64_t rows = a.dim() == 2 ? a.size(0) : 1;
  int64_t m = a.dim() == 2 ? a.size(1) : a.size(0);
  std::vector<float> out;
  SoftmaxRows(a.data(), rows, m, out);
  Impl ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, rows, m](TensorImpl& self) {
                  // dx_j = y_j * (g_j - sum_k g_k y_k); rows independent.
                  ThreadPool::Global().ParallelFor(
                      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
                        for (int64_t r = rb; r < re; ++r) {
                          const float* y = &self.value[r * m];
                          const float* g = &self.grad[r * m];
                          float dot = 0.0f;
                          for (int64_t j = 0; j < m; ++j) dot += g[j] * y[j];
                          for (int64_t j = 0; j < m; ++j) {
                            ai->grad[r * m + j] += y[j] * (g[j] - dot);
                          }
                        }
                      });
                });
}

Tensor LogSoftmax(const Tensor& a) {
  GARL_CHECK(a.dim() == 1 || a.dim() == 2);
  int64_t rows = a.dim() == 2 ? a.size(0) : 1;
  int64_t m = a.dim() == 2 ? a.size(1) : a.size(0);
  std::vector<float> soft;
  SoftmaxRows(a.data(), rows, m, soft);
  std::vector<float> out(soft.size());
  for (size_t i = 0; i < soft.size(); ++i) {
    out[i] = std::log(std::max(soft[i], kLogFloor));
  }
  Impl ai = a.impl();
  // Keep softmax values for backward: dx_j = g_j - y_j * sum_k g_k.
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, rows, m, soft = std::move(soft)](TensorImpl& self) {
                  ThreadPool::Global().ParallelFor(
                      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
                        for (int64_t r = rb; r < re; ++r) {
                          const float* g = &self.grad[r * m];
                          float total = 0.0f;
                          for (int64_t j = 0; j < m; ++j) total += g[j];
                          for (int64_t j = 0; j < m; ++j) {
                            ai->grad[r * m + j] +=
                                g[j] - soft[r * m + j] * total;
                          }
                        }
                      });
                });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  GARL_CHECK_EQ(n, a.numel());
  Impl ai = a.impl();
  return MakeOp(std::move(shape), a.data(), {a}, [ai](TensorImpl& self) {
    for (size_t i = 0; i < self.grad.size(); ++i) {
      ai->grad[i] += self.grad[i];
    }
  });
}

Tensor Rows(const Tensor& a, int64_t start, int64_t len) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK_GE(start, 0);
  GARL_CHECK_GE(len, 0);
  GARL_CHECK_LE(start + len, a.size(0));
  int64_t m = a.size(1);
  std::vector<float> out(a.data().begin() + start * m,
                         a.data().begin() + (start + len) * m);
  Impl ai = a.impl();
  return MakeOp({len, m}, std::move(out), {a},
                [ai, start, m](TensorImpl& self) {
                  for (size_t i = 0; i < self.grad.size(); ++i) {
                    ai->grad[static_cast<size_t>(start * m) + i] +=
                        self.grad[i];
                  }
                });
}

Tensor IndexRows(const Tensor& a, const std::vector<int64_t>& indices) {
  GARL_CHECK_EQ(a.dim(), 2);
  int64_t m = a.size(1);
  // Validate first, then gather in one reserved append pass — no
  // zero-initialize-then-overwrite and no incremental regrowth.
  for (int64_t idx : indices) {
    GARL_CHECK_GE(idx, 0);
    GARL_CHECK_LT(idx, a.size(0));
  }
  const float* src = a.data().data();
  std::vector<float> out;
  out.reserve(indices.size() * static_cast<size_t>(m));
  for (int64_t idx : indices) {
    out.insert(out.end(), src + idx * m, src + (idx + 1) * m);
  }
  Impl ai = a.impl();
  return MakeOp({static_cast<int64_t>(indices.size()), m}, std::move(out),
                {a}, [ai, indices, m](TensorImpl& self) {
                  for (size_t r = 0; r < indices.size(); ++r) {
                    for (int64_t j = 0; j < m; ++j) {
                      ai->grad[indices[r] * m + j] += self.grad[r * m + j];
                    }
                  }
                });
}

Tensor Gather1d(const Tensor& a, int64_t index) {
  GARL_CHECK_EQ(a.dim(), 1);
  GARL_CHECK_GE(index, 0);
  GARL_CHECK_LT(index, a.size(0));
  Impl ai = a.impl();
  return MakeOp({}, {a.data()[static_cast<size_t>(index)]}, {a},
                [ai, index](TensorImpl& self) {
                  ai->grad[static_cast<size_t>(index)] += self.grad[0];
                });
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  GARL_CHECK(!parts.empty());
  int64_t rank = parts[0].dim();
  GARL_CHECK(rank == 1 || rank == 2);
  GARL_CHECK_GE(dim, 0);
  GARL_CHECK_LT(dim, rank);
  if (rank == 1) {
    int64_t total = 0;
    for (const Tensor& p : parts) {
      GARL_CHECK_EQ(p.dim(), 1);
      total += p.size(0);
    }
    std::vector<float> out;
    out.reserve(static_cast<size_t>(total));
    for (const Tensor& p : parts) {
      out.insert(out.end(), p.data().begin(), p.data().end());
    }
    std::vector<Impl> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    return MakeOp({total}, std::move(out), parts, [impls](TensorImpl& self) {
      size_t offset = 0;
      for (const Impl& p : impls) {
        for (size_t i = 0; i < p->value.size(); ++i) {
          p->grad[i] += self.grad[offset + i];
        }
        offset += p->value.size();
      }
    });
  }
  if (dim == 0) {
    int64_t m = parts[0].size(1);
    int64_t total = 0;
    for (const Tensor& p : parts) {
      GARL_CHECK_EQ(p.dim(), 2);
      GARL_CHECK_EQ(p.size(1), m);
      total += p.size(0);
    }
    std::vector<float> out;
    out.reserve(static_cast<size_t>(total * m));
    for (const Tensor& p : parts) {
      out.insert(out.end(), p.data().begin(), p.data().end());
    }
    std::vector<Impl> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    return MakeOp({total, m}, std::move(out), parts,
                  [impls](TensorImpl& self) {
                    size_t offset = 0;
                    for (const Impl& p : impls) {
                      for (size_t i = 0; i < p->value.size(); ++i) {
                        p->grad[i] += self.grad[offset + i];
                      }
                      offset += p->value.size();
                    }
                  });
  }
  // dim == 1: column-wise concat of 2-D tensors with equal row counts.
  // Append row-major — row i of every part in turn — so the output is built
  // in one reserved pass instead of zero-filled and then re-copied.
  int64_t n = parts[0].size(0);
  int64_t total_m = 0;
  for (const Tensor& p : parts) {
    GARL_CHECK_EQ(p.dim(), 2);
    GARL_CHECK_EQ(p.size(0), n);
    total_m += p.size(1);
  }
  std::vector<float> out;
  out.reserve(static_cast<size_t>(n * total_m));
  for (int64_t i = 0; i < n; ++i) {
    for (const Tensor& p : parts) {
      int64_t m = p.size(1);
      const float* row = p.data().data() + i * m;
      out.insert(out.end(), row, row + m);
    }
  }
  std::vector<Impl> impls;
  std::vector<int64_t> widths;
  for (const Tensor& p : parts) {
    impls.push_back(p.impl());
    widths.push_back(p.size(1));
  }
  return MakeOp({n, total_m}, std::move(out), parts,
                [impls, widths, n, total_m](TensorImpl& self) {
                  int64_t col = 0;
                  for (size_t k = 0; k < impls.size(); ++k) {
                    int64_t m = widths[k];
                    for (int64_t i = 0; i < n; ++i) {
                      for (int64_t j = 0; j < m; ++j) {
                        impls[k]->grad[i * m + j] +=
                            self.grad[i * total_m + col + j];
                      }
                    }
                    col += m;
                  }
                });
}

Tensor Stack(const std::vector<Tensor>& parts) {
  GARL_CHECK(!parts.empty());
  std::vector<Tensor> rows;
  rows.reserve(parts.size());
  for (const Tensor& p : parts) {
    GARL_CHECK_EQ(p.dim(), 1);
    rows.push_back(Reshape(p, {1, p.size(0)}));
  }
  return Concat(rows, 0);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  CheckSameShape(pred, target);
  return Mean(Square(Sub(pred, target)));
}

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding) {
  GARL_CHECK_EQ(input.dim(), 4);
  GARL_CHECK_EQ(weight.dim(), 4);
  GARL_CHECK_GE(stride, 1);
  GARL_CHECK_GE(padding, 0);
  int64_t batch = input.size(0), channels = input.size(1);
  int64_t height = input.size(2), width = input.size(3);
  int64_t filters = weight.size(0), kh = weight.size(2), kw = weight.size(3);
  GARL_CHECK_EQ(weight.size(1), channels);
  if (bias.defined()) {
    GARL_CHECK_EQ(bias.dim(), 1);
    GARL_CHECK_EQ(bias.size(0), filters);
  }
  int64_t oh = (height + 2 * padding - kh) / stride + 1;
  int64_t ow = (width + 2 * padding - kw) / stride + 1;
  GARL_CHECK_GT(oh, 0);
  GARL_CHECK_GT(ow, 0);

  const auto& in = input.data();
  const auto& wt = weight.data();
  const float* bias_data = bias.defined() ? bias.data().data() : nullptr;
  std::vector<float> out(static_cast<size_t>(batch * filters * oh * ow),
                         0.0f);
  auto in_at = [&](int64_t b, int64_t c, int64_t y, int64_t x) -> float {
    if (y < 0 || y >= height || x < 0 || x >= width) return 0.0f;
    return in[((b * channels + c) * height + y) * width + x];
  };
  // Forward parallelizes over (batch, filter) planes; every output cell is
  // written by exactly one chunk.
  int64_t plane_cost = oh * ow * channels * kh * kw;
  ThreadPool::Global().ParallelFor(
      0, batch * filters, RowGrain(plane_cost),
      [&](int64_t lo, int64_t hi) {
        for (int64_t bf = lo; bf < hi; ++bf) {
          int64_t b = bf / filters, f = bf % filters;
          float bias_v = bias_data != nullptr ? bias_data[f] : 0.0f;
          for (int64_t y = 0; y < oh; ++y) {
            for (int64_t x = 0; x < ow; ++x) {
              float acc = bias_v;
              for (int64_t c = 0; c < channels; ++c) {
                for (int64_t dy = 0; dy < kh; ++dy) {
                  for (int64_t dx = 0; dx < kw; ++dx) {
                    acc += in_at(b, c, y * stride + dy - padding,
                                 x * stride + dx - padding) *
                           wt[((f * channels + c) * kh + dy) * kw + dx];
                  }
                }
              }
              out[((b * filters + f) * oh + y) * ow + x] = acc;
            }
          }
        }
      });
  std::vector<Tensor> inputs = {input, weight};
  if (bias.defined()) inputs.push_back(bias);
  Impl ii = input.impl(), wi = weight.impl();
  Impl bi = bias.defined() ? bias.impl() : nullptr;
  return MakeOp(
      {batch, filters, oh, ow}, std::move(out), inputs,
      [ii, wi, bi, batch, channels, height, width, filters, kh, kw, oh, ow,
       stride, padding, plane_cost](TensorImpl& self) {
        // Two passes with disjoint write sets: input grads parallelize over
        // batch entries (each dI[b] owned by one chunk), weight/bias grads
        // over filters (each dW[f], dBias[f] owned by one chunk). Within a
        // chunk the accumulation order matches the sequential loops, so
        // grads are bit-identical for any thread count.
        ThreadPool::Global().ParallelFor(
            0, batch, RowGrain(filters * plane_cost),
            [&](int64_t blo, int64_t bhi) {
              for (int64_t b = blo; b < bhi; ++b) {
                for (int64_t f = 0; f < filters; ++f) {
                  for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                      float g =
                          self.grad[((b * filters + f) * oh + y) * ow + x];
                      if (g == 0.0f) continue;
                      for (int64_t c = 0; c < channels; ++c) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                          for (int64_t dx = 0; dx < kw; ++dx) {
                            int64_t iy = y * stride + dy - padding;
                            int64_t ix = x * stride + dx - padding;
                            if (iy < 0 || iy >= height || ix < 0 ||
                                ix >= width) {
                              continue;
                            }
                            ii->grad[((b * channels + c) * height + iy) *
                                         width +
                                     ix] +=
                                g *
                                wi->value[((f * channels + c) * kh + dy) *
                                              kw +
                                          dx];
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
        ThreadPool::Global().ParallelFor(
            0, filters, RowGrain(batch * plane_cost / std::max<int64_t>(
                                                          filters, 1)),
            [&](int64_t flo, int64_t fhi) {
              for (int64_t f = flo; f < fhi; ++f) {
                for (int64_t b = 0; b < batch; ++b) {
                  for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                      float g =
                          self.grad[((b * filters + f) * oh + y) * ow + x];
                      if (g == 0.0f) continue;
                      if (bi) bi->grad[f] += g;
                      for (int64_t c = 0; c < channels; ++c) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                          for (int64_t dx = 0; dx < kw; ++dx) {
                            int64_t iy = y * stride + dy - padding;
                            int64_t ix = x * stride + dx - padding;
                            if (iy < 0 || iy >= height || ix < 0 ||
                                ix >= width) {
                              continue;
                            }
                            wi->grad[((f * channels + c) * kh + dy) * kw +
                                     dx] +=
                                g * ii->value[((b * channels + c) * height +
                                               iy) *
                                                  width +
                                              ix];
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
      });
}

}  // namespace garl::nn
