#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/check.h"
#include "common/thread_pool.h"
#include "nn/arena.h"
#include "nn/simd.h"

namespace garl::nn {

using internal::TensorImpl;
using Impl = std::shared_ptr<internal::TensorImpl>;

namespace {

constexpr float kLogFloor = 1e-12f;

// thread_local so pool workers can run inference concurrently: each rollout
// worker installs its own NoGradGuard without touching the other threads'
// grad mode.
thread_local bool g_grad_mode = true;

// --- Parallelism helpers ----------------------------------------------------
//
// Every parallel kernel partitions its output locations into disjoint chunks
// (ThreadPool::ParallelFor) and keeps the within-chunk accumulation order
// identical to the sequential loop, so results are bit-identical for any
// GARL_NUM_THREADS (the determinism contract in DESIGN.md).

// Fused multiply-add count below which a kernel stays on the calling thread;
// GARL's smallest layers (16-64 wide) never pay pool overhead.
constexpr int64_t kParallelCutoff = 1 << 15;
// Elementwise loops: elements per chunk.
constexpr int64_t kElementwiseGrain = 1 << 14;

// Rows per chunk so each chunk carries at least kParallelCutoff FMAs of
// per-row work `row_cost`.
int64_t RowGrain(int64_t row_cost) {
  return std::max<int64_t>(1, kParallelCutoff / std::max<int64_t>(row_cost, 1));
}

// --- SIMD chunk helpers ------------------------------------------------------
//
// Each helper runs a generic functor element-wise over [lo, hi): lane-wise
// vector body over full groups of simd::kLanes when `vec` is set, scalar
// otherwise and for the tail. The functors are pure lane-wise IEEE single
// expressions, so a vector lane computes exactly the scalar bits and the
// GARL_SIMD=0/1 outputs are byte-identical (simd.h, determinism contract).
// In-place use (out aliasing an input) is fine: loads of group i complete
// before its store, and groups are disjoint.

// out[i] = f(a[i])
template <typename F>
void MapUnaryChunk(const float* a, float* out, int64_t lo, int64_t hi,
                   bool vec, F f) {
  int64_t i = lo;
#if GARL_SIMD_COMPILED
  if (vec) {
    for (; i + simd::kLanes <= hi; i += simd::kLanes) {
      simd::StoreU(out + i, f(simd::LoadU(a + i)));
    }
  }
#else
  (void)vec;
#endif
  for (; i < hi; ++i) out[i] = f(a[i]);
}

// out[i] = f(a[i], b[i])
template <typename F>
void MapBinaryChunk(const float* a, const float* b, float* out, int64_t lo,
                    int64_t hi, bool vec, F f) {
  int64_t i = lo;
#if GARL_SIMD_COMPILED
  if (vec) {
    for (; i + simd::kLanes <= hi; i += simd::kLanes) {
      simd::StoreU(out + i, f(simd::LoadU(a + i), simd::LoadU(b + i)));
    }
  }
#else
  (void)vec;
#endif
  for (; i < hi; ++i) out[i] = f(a[i], b[i]);
}

// dst[i] += f(a[i])
template <typename F>
void AccumulateMap1(float* dst, const float* a, int64_t lo, int64_t hi,
                    bool vec, F f) {
  int64_t i = lo;
#if GARL_SIMD_COMPILED
  if (vec) {
    for (; i + simd::kLanes <= hi; i += simd::kLanes) {
      simd::StoreU(dst + i, simd::LoadU(dst + i) + f(simd::LoadU(a + i)));
    }
  }
#else
  (void)vec;
#endif
  for (; i < hi; ++i) dst[i] += f(a[i]);
}

// dst[i] += f(a[i], b[i])
template <typename F>
void AccumulateMap2(float* dst, const float* a, const float* b, int64_t lo,
                    int64_t hi, bool vec, F f) {
  int64_t i = lo;
#if GARL_SIMD_COMPILED
  if (vec) {
    for (; i + simd::kLanes <= hi; i += simd::kLanes) {
      simd::StoreU(dst + i, simd::LoadU(dst + i) +
                                f(simd::LoadU(a + i), simd::LoadU(b + i)));
    }
  }
#else
  (void)vec;
#endif
  for (; i < hi; ++i) dst[i] += f(a[i], b[i]);
}

// dst[i] += f(a[i], b[i], c[i])
template <typename F>
void AccumulateMap3(float* dst, const float* a, const float* b, const float* c,
                    int64_t lo, int64_t hi, bool vec, F f) {
  int64_t i = lo;
#if GARL_SIMD_COMPILED
  if (vec) {
    for (; i + simd::kLanes <= hi; i += simd::kLanes) {
      simd::StoreU(dst + i,
                   simd::LoadU(dst + i) +
                       f(simd::LoadU(a + i), simd::LoadU(b + i),
                         simd::LoadU(c + i)));
    }
  }
#else
  (void)vec;
#endif
  for (; i < hi; ++i) dst[i] += f(a[i], b[i], c[i]);
}

// dst[i] += src[i]
inline void AddInto(float* dst, const float* src, int64_t len, bool vec) {
  AccumulateMap1(dst, src, 0, len, vec, [](auto x) { return x; });
}

// C[n,m] += A[n,k] * B[k,m], all row-major. Parallel over row blocks of C;
// each row of C is owned by exactly one chunk and accumulates in ascending-p
// order, so the result is bit-identical for every thread count. Zero entries
// of A are skipped (the graph ops multiply by Laplacians that are mostly
// zeros) on both paths — the skip adds/omits exactly the same terms.
//
// Vector path: each row is processed in register tiles of 2*kLanes output
// columns; the tile accumulates over all of p in registers and each lane j
// sees the same ascending-p add sequence (with the same zero-skips) as the
// scalar inner loop, so C's bits match the scalar path exactly. The build
// compiles this file with -ffp-contract=off, so a + b*c can never fuse into
// an FMA with different rounding.
void GemmAccumulate(const float* a, const float* b, float* c, int64_t n,
                    int64_t k, int64_t m) {
#if GARL_SIMD_COMPILED
  if (simd::Enabled()) {
    auto rows = [a, b, c, k, m](int64_t row_begin, int64_t row_end) {
      // 2 rows x 16 columns of C live in registers per pass (eight XMM
      // accumulators): the independent chains hide the vector-add latency,
      // and each B row segment is loaded once for both C rows. Per C row and
      // lane the accumulation is still one chain in ascending p with the
      // same per-row zero-skip as the scalar path, so the bits cannot
      // differ.
      constexpr int64_t kL = simd::kLanes;
      constexpr int64_t kTile = 4 * kL;
      const int64_t mv = m - m % kTile;
      // Scalar column tail shared by both loops below.
      auto scalar_tail = [&](const float* arow, float* crow) {
        for (int64_t j = mv; j < m; ++j) {
          float acc = crow[j];
          for (int64_t p = 0; p < k; ++p) {
            float aip = arow[p];
            if (aip == 0.0f) continue;
            acc += aip * b[p * m + j];
          }
          crow[j] = acc;
        }
      };
      int64_t i = row_begin;
      for (; i + 1 < row_end; i += 2) {
        const float* a0 = a + i * k;
        const float* a1 = a0 + k;
        float* c0 = c + i * m;
        float* c1 = c0 + m;
        for (int64_t jb = 0; jb < mv; jb += kTile) {
          float* c0j = c0 + jb;
          float* c1j = c1 + jb;
          simd::VF x00 = simd::LoadU(c0j);
          simd::VF x01 = simd::LoadU(c0j + kL);
          simd::VF x02 = simd::LoadU(c0j + 2 * kL);
          simd::VF x03 = simd::LoadU(c0j + 3 * kL);
          simd::VF x10 = simd::LoadU(c1j);
          simd::VF x11 = simd::LoadU(c1j + kL);
          simd::VF x12 = simd::LoadU(c1j + 2 * kL);
          simd::VF x13 = simd::LoadU(c1j + 3 * kL);
          for (int64_t p = 0; p < k; ++p) {
            float a0p = a0[p];
            float a1p = a1[p];
            if (a0p == 0.0f && a1p == 0.0f) continue;
            const float* brow = b + p * m + jb;
            simd::VF b0 = simd::LoadU(brow);
            simd::VF b1 = simd::LoadU(brow + kL);
            simd::VF b2 = simd::LoadU(brow + 2 * kL);
            simd::VF b3 = simd::LoadU(brow + 3 * kL);
            if (a0p != 0.0f) {
              simd::VF va = simd::Broadcast(a0p);
              x00 = x00 + va * b0;
              x01 = x01 + va * b1;
              x02 = x02 + va * b2;
              x03 = x03 + va * b3;
            }
            if (a1p != 0.0f) {
              simd::VF va = simd::Broadcast(a1p);
              x10 = x10 + va * b0;
              x11 = x11 + va * b1;
              x12 = x12 + va * b2;
              x13 = x13 + va * b3;
            }
          }
          simd::StoreU(c0j, x00);
          simd::StoreU(c0j + kL, x01);
          simd::StoreU(c0j + 2 * kL, x02);
          simd::StoreU(c0j + 3 * kL, x03);
          simd::StoreU(c1j, x10);
          simd::StoreU(c1j + kL, x11);
          simd::StoreU(c1j + 2 * kL, x12);
          simd::StoreU(c1j + 3 * kL, x13);
        }
        scalar_tail(a0, c0);
        scalar_tail(a1, c1);
      }
      for (; i < row_end; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * m;
        for (int64_t jb = 0; jb < mv; jb += kTile) {
          float* cj = crow + jb;
          simd::VF x0 = simd::LoadU(cj);
          simd::VF x1 = simd::LoadU(cj + kL);
          simd::VF x2 = simd::LoadU(cj + 2 * kL);
          simd::VF x3 = simd::LoadU(cj + 3 * kL);
          for (int64_t p = 0; p < k; ++p) {
            float aip = arow[p];
            if (aip == 0.0f) continue;
            const float* brow = b + p * m + jb;
            simd::VF va = simd::Broadcast(aip);
            x0 = x0 + va * simd::LoadU(brow);
            x1 = x1 + va * simd::LoadU(brow + kL);
            x2 = x2 + va * simd::LoadU(brow + 2 * kL);
            x3 = x3 + va * simd::LoadU(brow + 3 * kL);
          }
          simd::StoreU(cj, x0);
          simd::StoreU(cj + kL, x1);
          simd::StoreU(cj + 2 * kL, x2);
          simd::StoreU(cj + 3 * kL, x3);
        }
        scalar_tail(arow, crow);
      }
    };
    ThreadPool::Global().ParallelFor(0, n, RowGrain(k * m), rows);
    return;
  }
#endif
  constexpr int64_t kPanel = 256;  // B-panel depth kept hot in cache
  auto rows = [a, b, c, k, m](int64_t row_begin, int64_t row_end) {
    for (int64_t pb = 0; pb < k; pb += kPanel) {
      int64_t pe = std::min(pb + kPanel, k);
      for (int64_t i = row_begin; i < row_end; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * m;
        for (int64_t p = pb; p < pe; ++p) {
          float aip = arow[p];
          if (aip == 0.0f) continue;
          const float* brow = b + p * m;
          for (int64_t j = 0; j < m; ++j) crow[j] += aip * brow[j];
        }
      }
    }
  };
  ThreadPool::Global().ParallelFor(0, n, RowGrain(k * m), rows);
}

// Contiguous [cols, rows] transpose of a row-major [rows, cols] matrix into
// `out` (scratch-arena workspace), so the two backward GEMMs of MatMul
// stream both operands with unit stride.
void PackTransposeInto(const float* src, int64_t rows, int64_t cols,
                       float* out) {
  constexpr int64_t kBlock = 64;  // tile so src and out lines both stay hot
  for (int64_t ib = 0; ib < rows; ib += kBlock) {
    int64_t ie = std::min(ib + kBlock, rows);
    for (int64_t jb = 0; jb < cols; jb += kBlock) {
      int64_t je = std::min(jb + kBlock, cols);
      for (int64_t i = ib; i < ie; ++i) {
        for (int64_t j = jb; j < je; ++j) {
          out[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

// Pool-backed copy of `src` (op outputs that start as a copy of an input).
std::vector<float> ArenaCopy(const std::vector<float>& src) {
  std::vector<float> out =
      arena::AcquireUninit(static_cast<int64_t>(src.size()));
  std::copy(src.begin(), src.end(), out.begin());
  return out;
}

// Pool-backed single-float buffer (scalar op outputs).
std::vector<float> ScalarVec(float v) {
  std::vector<float> out = arena::AcquireUninit(1);
  out[0] = v;
  return out;
}

// Shared handle that returns a pooled buffer on destruction; copyable so a
// capturing lambda still converts to std::function (backward closures).
struct PooledVec {
  std::vector<float> data;
  explicit PooledVec(std::vector<float> d) : data(std::move(d)) {}
  ~PooledVec() { arena::Release(std::move(data)); }
  PooledVec(const PooledVec&) = delete;
  PooledVec& operator=(const PooledVec&) = delete;
};

bool AnyRequiresGrad(const std::vector<Tensor>& inputs) {
  for (const Tensor& t : inputs) {
    if (t.impl()->requires_grad) return true;
  }
  return false;
}

// Creates an op output node. `backward` may assume all parents have
// allocated gradient buffers (the backward sweep guarantees it).
Tensor MakeOp(std::vector<int64_t> shape, std::vector<float> value,
              const std::vector<Tensor>& inputs,
              std::function<void(TensorImpl&)> backward) {
  auto impl = internal::NewTensorImpl();
  impl->shape = std::move(shape);
  impl->value = std::move(value);
  GARL_CHECK_EQ(impl->Numel(), static_cast<int64_t>(impl->value.size()));
  if (g_grad_mode && AnyRequiresGrad(inputs)) {
    impl->requires_grad = true;
    impl->parents.reserve(inputs.size());
    for (const Tensor& t : inputs) impl->parents.push_back(t.impl());
    impl->backward_fn = std::move(backward);
  }
  return Tensor::Wrap(std::move(impl));
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  GARL_CHECK_MSG(a.shape() == b.shape(),
                 "shape mismatch: " + a.ShapeString() + " vs " +
                     b.ShapeString());
}

// Elementwise binary helper: fwd(a_i, b_i) -> out_i and backward producing
// (dL/da_i, dL/db_i) from (a_i, b_i, dL/dout_i). Forward and backward chunk
// the index space; each index is touched by exactly one chunk (grads for
// index i go to slot i of each parent, even when the parents alias — each
// vector group updates da fully before loading db, matching the scalar
// read-modify-write order lane-wise). `fwd`/`bwd` are generic lambdas valid
// on float and simd::VF.
template <typename Fwd, typename Bwd>
Tensor ElementwiseBinary(const Tensor& a, const Tensor& b, Fwd fwd, Bwd bwd) {
  CheckSameShape(a, b);
  const auto& av = a.data();
  const auto& bv = b.data();
  const bool vec = simd::Enabled();
  std::vector<float> out = arena::AcquireUninit(a.numel());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(av.size()), kElementwiseGrain,
      [&](int64_t lo, int64_t hi) {
        MapBinaryChunk(av.data(), bv.data(), out.data(), lo, hi, vec, fwd);
      });
  Impl ai = a.impl(), bi = b.impl();
  return MakeOp(a.shape(), std::move(out), {a, b},
                [ai, bi, bwd](TensorImpl& self) {
                  [[maybe_unused]] const bool bvec = simd::Enabled();
                  ThreadPool::Global().ParallelFor(
                      0, static_cast<int64_t>(self.value.size()),
                      kElementwiseGrain, [&](int64_t lo, int64_t hi) {
                        const float* x = ai->value.data();
                        const float* y = bi->value.data();
                        const float* g = self.grad.data();
                        float* dx = ai->grad.data();
                        float* dy = bi->grad.data();
                        int64_t i = lo;
#if GARL_SIMD_COMPILED
                        if (bvec) {
                          for (; i + simd::kLanes <= hi; i += simd::kLanes) {
                            auto [da, db] =
                                bwd(simd::LoadU(x + i), simd::LoadU(y + i),
                                    simd::LoadU(g + i));
                            simd::StoreU(dx + i, simd::LoadU(dx + i) + da);
                            simd::StoreU(dy + i, simd::LoadU(dy + i) + db);
                          }
                        }
#endif
                        for (; i < hi; ++i) {
                          auto [da, db] = bwd(x[i], y[i], g[i]);
                          dx[i] += da;
                          dy[i] += db;
                        }
                      });
                });
}

// Elementwise unary helper for scalar-only transcendental ops (exp/log/tanh/
// sigmoid/sqrt go through libm one element at a time on both SIMD modes —
// there is no vector libm here, and a polynomial version would change bits).
// Backward receives (x_i, y_i, dL/dy_i).
template <typename Fwd, typename Bwd>
Tensor ElementwiseUnary(const Tensor& a, Fwd fwd, Bwd bwd) {
  const auto& av = a.data();
  std::vector<float> out = arena::AcquireUninit(a.numel());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(av.size()), kElementwiseGrain,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) out[i] = fwd(av[i]);
      });
  Impl ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, bwd](TensorImpl& self) {
                  ThreadPool::Global().ParallelFor(
                      0, static_cast<int64_t>(self.value.size()),
                      kElementwiseGrain, [&](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) {
                          ai->grad[i] += bwd(ai->value[i], self.value[i],
                                             self.grad[i]);
                        }
                      });
                });
}

// Vectorized unary helper for lane-wise ops (neg/square/relu/clip/affine).
// `fwd` is generic over float/simd::VF; backward receives (x_i, y_i, g_i).
template <typename Fwd, typename Bwd>
Tensor ElementwiseUnaryVec(const Tensor& a, Fwd fwd, Bwd bwd) {
  const auto& av = a.data();
  const bool vec = simd::Enabled();
  std::vector<float> out = arena::AcquireUninit(a.numel());
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(av.size()), kElementwiseGrain,
      [&](int64_t lo, int64_t hi) {
        MapUnaryChunk(av.data(), out.data(), lo, hi, vec, fwd);
      });
  Impl ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, bwd](TensorImpl& self) {
                  const bool bvec = simd::Enabled();
                  ThreadPool::Global().ParallelFor(
                      0, static_cast<int64_t>(self.value.size()),
                      kElementwiseGrain, [&](int64_t lo, int64_t hi) {
                        AccumulateMap3(ai->grad.data(), ai->value.data(),
                                       self.value.data(), self.grad.data(),
                                       lo, hi, bvec, bwd);
                      });
                });
}

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

bool GradModeEnabled() { return g_grad_mode; }

Tensor Add(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](auto x, auto y) { return x + y; },
      [](auto, auto, auto g) { return std::pair(g, g); });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](auto x, auto y) { return x - y; },
      [](auto, auto, auto g) { return std::pair(g, -g); });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](auto x, auto y) { return x * y; },
      [](auto x, auto y, auto g) { return std::pair(g * y, g * x); });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return ElementwiseBinary(
      a, b, [](auto x, auto y) { return x / y; },
      [](auto x, auto y, auto g) {
        return std::pair(g / y, -g * x / (y * y));
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ElementwiseUnaryVec(
      a, [s](auto x) { return x + s; },
      [](auto, auto, auto g) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return ElementwiseUnaryVec(
      a, [s](auto x) { return x * s; },
      [s](auto, auto, auto g) { return g * s; });
}

Tensor AddRowVector(const Tensor& mat, const Tensor& bias) {
  GARL_CHECK_EQ(mat.dim(), 2);
  GARL_CHECK_EQ(bias.dim(), 1);
  int64_t n = mat.size(0), m = mat.size(1);
  GARL_CHECK_EQ(bias.size(0), m);
  const bool vec = simd::Enabled();
  std::vector<float> out = arena::AcquireUninit(n * m);
  const float* src = mat.data().data();
  const float* bv = bias.data().data();
  for (int64_t i = 0; i < n; ++i) {
    MapBinaryChunk(src + i * m, bv, out.data() + i * m, 0, m, vec,
                   [](auto x, auto y) { return x + y; });
  }
  Impl mi = mat.impl(), bi = bias.impl();
  return MakeOp(mat.shape(), std::move(out), {mat, bias},
                [mi, bi, n, m](TensorImpl& self) {
                  // Bias grad sums rows in ascending i; per column j that is
                  // the sequential order, and lanes are independent, so the
                  // vector body keeps the bits.
                  const bool bvec = simd::Enabled();
                  for (int64_t i = 0; i < n; ++i) {
                    const float* g = self.grad.data() + i * m;
                    AddInto(mi->grad.data() + i * m, g, m, bvec);
                    AddInto(bi->grad.data(), g, m, bvec);
                  }
                });
}

Tensor ScaleRows(const Tensor& mat, const Tensor& scale) {
  GARL_CHECK_EQ(mat.dim(), 2);
  GARL_CHECK_EQ(scale.dim(), 1);
  int64_t n = mat.size(0), m = mat.size(1);
  GARL_CHECK_EQ(scale.size(0), n);
  const bool vec = simd::Enabled();
  std::vector<float> out = arena::AcquireUninit(n * m);
  const float* src = mat.data().data();
  for (int64_t i = 0; i < n; ++i) {
    float s = scale.data()[i];
    MapUnaryChunk(src + i * m, out.data() + i * m, 0, m, vec,
                  [s](auto x) { return x * s; });
  }
  Impl mi = mat.impl(), si = scale.impl();
  return MakeOp(mat.shape(), std::move(out), {mat, scale},
                [mi, si, n, m](TensorImpl& self) {
                  const bool bvec = simd::Enabled();
                  for (int64_t i = 0; i < n; ++i) {
                    const float* g = self.grad.data() + i * m;
                    float s = si->value[i];
                    AccumulateMap1(mi->grad.data() + i * m, g, 0, m, bvec,
                                   [s](auto gx) { return gx * s; });
                    // Running dot over j stays scalar: it is a sequential
                    // reduction whose order defines the bits.
                    float acc = 0.0f;
                    const float* mrow = mi->value.data() + i * m;
                    for (int64_t j = 0; j < m; ++j) acc += g[j] * mrow[j];
                    si->grad[i] += acc;
                  }
                });
}

Tensor Neg(const Tensor& a) {
  return ElementwiseUnaryVec(
      a, [](auto x) { return -x; },
      [](auto, auto, auto g) { return -g; });
}

Tensor Exp(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::exp(x); },
      [](float, float y, float g) { return g * y; });
}

Tensor Log(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::log(std::max(x, kLogFloor)); },
      [](float x, float, float g) { return g / std::max(x, kLogFloor); });
}

Tensor Sqrt(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::sqrt(std::max(x, 0.0f)); },
      [](float, float y, float g) { return g / (2.0f * std::max(y, 1e-8f)); });
}

Tensor Square(const Tensor& a) {
  return ElementwiseUnaryVec(
      a, [](auto x) { return x * x; },
      [](auto x, auto, auto g) { return 2.0f * g * x; });
}

Tensor Relu(const Tensor& a) {
  return ElementwiseUnaryVec(
      a, [](auto x) { return simd::Relu(x); },
      [](auto x, auto, auto g) { return simd::ReluGate(x, g); });
}

Tensor Tanh(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return std::tanh(x); },
      [](float, float y, float g) { return g * (1.0f - y * y); });
}

Tensor Sigmoid(const Tensor& a) {
  return ElementwiseUnary(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y, float g) { return g * y * (1.0f - y); });
}

Tensor Clip(const Tensor& a, float lo, float hi) {
  GARL_CHECK_LE(lo, hi);
  // simd::Clamp reproduces std::clamp's compare order exactly (lane-wise).
  return ElementwiseUnaryVec(
      a, [lo, hi](auto x) { return simd::Clamp(x, lo, hi); },
      [lo, hi](auto x, auto, auto g) { return simd::ClipGate(x, lo, hi, g); });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK_EQ(b.dim(), 2);
  int64_t n = a.size(0), k = a.size(1), m = b.size(1);
  GARL_CHECK_MSG(b.size(0) == k, "matmul inner dim mismatch: " +
                                     a.ShapeString() + " x " +
                                     b.ShapeString());
  std::vector<float> out = arena::AcquireZeroed(n * m);
  GemmAccumulate(a.data().data(), b.data().data(), out.data(), n, k, m);
  Impl ai = a.impl(), bi = b.impl();
  return MakeOp({n, m}, std::move(out), {a, b},
                [ai, bi, n, k, m](TensorImpl& self) {
                  // Two explicit GEMMs instead of one scalar triple-loop
                  // striding both grads: dA = dOut * B^T and dB = A^T * dOut,
                  // each against a packed transpose so all operands stream
                  // with unit stride. Row blocks of dA / dB parallelize
                  // independently; when a and b alias the two passes run
                  // back-to-back on the same grad buffer, never racing.
                  // Packed transposes live in this thread's scratch arena;
                  // they stay valid across the GemmAccumulate ParallelFors
                  // (the caller blocks until every chunk finished).
                  arena::ScratchScope scratch;
                  float* bt =
                      arena::ThreadScratch().AllocateFloats(k * m);  // [m, k]
                  PackTransposeInto(bi->value.data(), k, m, bt);
                  GemmAccumulate(self.grad.data(), bt, ai->grad.data(),
                                 n, m, k);
                  float* at =
                      arena::ThreadScratch().AllocateFloats(n * k);  // [k, n]
                  PackTransposeInto(ai->value.data(), n, k, at);
                  GemmAccumulate(at, self.grad.data(), bi->grad.data(),
                                 k, n, m);
                });
}

Tensor Transpose(const Tensor& a) {
  GARL_CHECK_EQ(a.dim(), 2);
  int64_t n = a.size(0), m = a.size(1);
  // Arena buffer (every element is overwritten below) and a tiled walk so
  // both the source rows and destination columns stay cache-hot.
  std::vector<float> out = arena::AcquireUninit(n * m);
  PackTransposeInto(a.data().data(), n, m, out.data());
  Impl ai = a.impl();
  return MakeOp({m, n}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < m; ++j) {
        ai->grad[i * m + j] += self.grad[j * n + i];
      }
    }
  });
}

Tensor Sum(const Tensor& a) {
  // Sequential running sum: the global reduction order is the deterministic
  // payload, so it stays scalar on both SIMD modes.
  float total = 0.0f;
  for (float v : a.data()) total += v;
  Impl ai = a.impl();
  return MakeOp({}, ScalarVec(total), {a}, [ai](TensorImpl& self) {
    const bool bvec = simd::Enabled();
    float g = self.grad[0];
    float* dst = ai->grad.data();
    MapUnaryChunk(dst, dst, 0, static_cast<int64_t>(ai->grad.size()), bvec,
                  [g](auto x) { return x + g; });
  });
}

Tensor Mean(const Tensor& a) {
  int64_t n = a.numel();
  GARL_CHECK_GT(n, 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(n));
}

Tensor SumDim(const Tensor& a, int64_t dim) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK(dim == 0 || dim == 1);
  int64_t n = a.size(0), m = a.size(1);
  const auto& av = a.data();
  Impl ai = a.impl();
  const bool vec = simd::Enabled();
  if (dim == 0) {
    // Column reduction: chunk the columns; each output column accumulates
    // over ascending rows within one chunk (deterministic for any thread
    // count). Columns are independent lanes, so the ascending-i order per
    // column is identical on the vector path.
    std::vector<float> out = arena::AcquireZeroed(m);
    ThreadPool::Global().ParallelFor(
        0, m, RowGrain(n), [&](int64_t jb, int64_t je) {
          for (int64_t i = 0; i < n; ++i) {
            AccumulateMap1(out.data(), av.data() + i * m, jb, je, vec,
                           [](auto x) { return x; });
          }
        });
    return MakeOp({m}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
      const bool bvec = simd::Enabled();
      ThreadPool::Global().ParallelFor(
          0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
            for (int64_t i = ib; i < ie; ++i) {
              AddInto(ai->grad.data() + i * m, self.grad.data(), m, bvec);
            }
          });
    });
  }
  // Row reduction: each out[i] is a sequential running sum over j — that
  // order is the deterministic payload, so it stays scalar on both modes.
  std::vector<float> out = arena::AcquireZeroed(n);
  ThreadPool::Global().ParallelFor(
      0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) {
          for (int64_t j = 0; j < m; ++j) out[i] += av[i * m + j];
        }
      });
  return MakeOp({n}, std::move(out), {a}, [ai, n, m](TensorImpl& self) {
    const bool bvec = simd::Enabled();
    ThreadPool::Global().ParallelFor(
        0, n, RowGrain(m), [&](int64_t ib, int64_t ie) {
          for (int64_t i = ib; i < ie; ++i) {
            float g = self.grad[i];
            float* dst = ai->grad.data() + i * m;
            MapUnaryChunk(dst, dst, 0, m, bvec,
                          [g](auto x) { return x + g; });
          }
        });
  });
}

Tensor Norm(const Tensor& a, float eps) {
  GARL_CHECK_EQ(a.dim(), 1);
  float sq = 0.0f;
  for (float v : a.data()) sq += v * v;
  float norm = std::sqrt(sq + eps);
  Impl ai = a.impl();
  return MakeOp({}, ScalarVec(norm), {a}, [ai, norm](TensorImpl& self) {
    const bool bvec = simd::Enabled();
    float g = self.grad[0] / norm;
    AccumulateMap1(ai->grad.data(), ai->value.data(), 0,
                   static_cast<int64_t>(ai->value.size()), bvec,
                   [g](auto x) { return g * x; });
  });
}

Tensor Dot(const Tensor& a, const Tensor& b) {
  GARL_CHECK_EQ(a.dim(), 1);
  CheckSameShape(a, b);
  return Sum(Mul(a, b));
}

namespace {

// Row max folded with simd::Max. Max is associative/commutative for the
// finite logits this sees, so the vector fold (lane maxes, then a lane
// reduction, then the tail) produces the same value as the scalar
// left-to-right fold; downstream x[j] - max_v bits match either way.
float RowMax(const float* x, int64_t m, bool vec) {
  int64_t j = 0;
  float max_v = x[0];
#if GARL_SIMD_COMPILED
  if (vec && m >= simd::kLanes) {
    simd::VF vm = simd::LoadU(x);
    j = simd::kLanes;
    for (; j + simd::kLanes <= m; j += simd::kLanes) {
      vm = simd::Max(vm, simd::LoadU(x + j));
    }
    max_v = simd::ReduceMax(vm);
  }
#else
  (void)vec;
#endif
  for (; j < m; ++j) max_v = simd::Max(max_v, x[j]);
  return max_v;
}

// Softmax over contiguous rows of length `m`; rows are independent, so they
// chunk across the pool. The exp/total pass stays scalar (libm + sequential
// running sum); the normalizing divide is lane-wise and vectorizes.
void SoftmaxRows(const std::vector<float>& in, int64_t rows, int64_t m,
                 std::vector<float>& out) {
  GARL_CHECK_EQ(out.size(), in.size());
  const bool vec = simd::Enabled();
  ThreadPool::Global().ParallelFor(
      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
        for (int64_t r = rb; r < re; ++r) {
          const float* x = &in[r * m];
          float* y = &out[r * m];
          float max_v = RowMax(x, m, vec);
          float total = 0.0f;
          for (int64_t j = 0; j < m; ++j) {
            y[j] = std::exp(x[j] - max_v);
            total += y[j];
          }
          float inv = total;
          MapUnaryChunk(y, y, 0, m, vec, [inv](auto v) { return v / inv; });
        }
      });
}

}  // namespace

Tensor Softmax(const Tensor& a) {
  GARL_CHECK(a.dim() == 1 || a.dim() == 2);
  int64_t rows = a.dim() == 2 ? a.size(0) : 1;
  int64_t m = a.dim() == 2 ? a.size(1) : a.size(0);
  std::vector<float> out = arena::AcquireUninit(a.numel());
  SoftmaxRows(a.data(), rows, m, out);
  Impl ai = a.impl();
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, rows, m](TensorImpl& self) {
                  // dx_j = y_j * (g_j - sum_k g_k y_k); rows independent.
                  // The dot is a sequential reduction (stays scalar); the
                  // per-element update is lane-wise.
                  const bool bvec = simd::Enabled();
                  ThreadPool::Global().ParallelFor(
                      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
                        for (int64_t r = rb; r < re; ++r) {
                          const float* y = &self.value[r * m];
                          const float* g = &self.grad[r * m];
                          float dot = 0.0f;
                          for (int64_t j = 0; j < m; ++j) dot += g[j] * y[j];
                          AccumulateMap2(
                              ai->grad.data() + r * m, y, g, 0, m, bvec,
                              [dot](auto yv, auto gv) {
                                return yv * (gv - dot);
                              });
                        }
                      });
                });
}

Tensor LogSoftmax(const Tensor& a) {
  GARL_CHECK(a.dim() == 1 || a.dim() == 2);
  int64_t rows = a.dim() == 2 ? a.size(0) : 1;
  int64_t m = a.dim() == 2 ? a.size(1) : a.size(0);
  std::vector<float> soft = arena::AcquireUninit(a.numel());
  SoftmaxRows(a.data(), rows, m, soft);
  std::vector<float> out = arena::AcquireUninit(a.numel());
  for (size_t i = 0; i < soft.size(); ++i) {
    out[i] = std::log(std::max(soft[i], kLogFloor));
  }
  Impl ai = a.impl();
  // Keep softmax values for backward: dx_j = g_j - y_j * sum_k g_k. The
  // shared holder hands the buffer back to the pool when the graph node
  // dies, keeping steady-state iterations allocation-free.
  auto soft_keep = std::make_shared<PooledVec>(std::move(soft));
  return MakeOp(a.shape(), std::move(out), {a},
                [ai, rows, m, soft_keep](TensorImpl& self) {
                  const bool bvec = simd::Enabled();
                  const std::vector<float>& sv = soft_keep->data;
                  ThreadPool::Global().ParallelFor(
                      0, rows, RowGrain(m), [&](int64_t rb, int64_t re) {
                        for (int64_t r = rb; r < re; ++r) {
                          const float* g = &self.grad[r * m];
                          float total = 0.0f;
                          for (int64_t j = 0; j < m; ++j) total += g[j];
                          AccumulateMap2(
                              ai->grad.data() + r * m, g, sv.data() + r * m,
                              0, m, bvec, [total](auto gv, auto yv) {
                                return gv - yv * total;
                              });
                        }
                      });
                });
}

Tensor Reshape(const Tensor& a, std::vector<int64_t> shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  GARL_CHECK_EQ(n, a.numel());
  Impl ai = a.impl();
  return MakeOp(std::move(shape), ArenaCopy(a.data()), {a},
                [ai](TensorImpl& self) {
                  AddInto(ai->grad.data(), self.grad.data(),
                          static_cast<int64_t>(self.grad.size()),
                          simd::Enabled());
                });
}

Tensor Rows(const Tensor& a, int64_t start, int64_t len) {
  GARL_CHECK_EQ(a.dim(), 2);
  GARL_CHECK_GE(start, 0);
  GARL_CHECK_GE(len, 0);
  GARL_CHECK_LE(start + len, a.size(0));
  int64_t m = a.size(1);
  std::vector<float> out = arena::AcquireUninit(len * m);
  std::copy(a.data().begin() + start * m, a.data().begin() + (start + len) * m,
            out.begin());
  Impl ai = a.impl();
  return MakeOp({len, m}, std::move(out), {a},
                [ai, start, m](TensorImpl& self) {
                  AddInto(ai->grad.data() + start * m, self.grad.data(),
                          static_cast<int64_t>(self.grad.size()),
                          simd::Enabled());
                });
}

Tensor IndexRows(const Tensor& a, const std::vector<int64_t>& indices) {
  GARL_CHECK_EQ(a.dim(), 2);
  int64_t m = a.size(1);
  // Validate first, then gather in one reserved append pass — no
  // zero-initialize-then-overwrite and no incremental regrowth.
  for (int64_t idx : indices) {
    GARL_CHECK_GE(idx, 0);
    GARL_CHECK_LT(idx, a.size(0));
  }
  const float* src = a.data().data();
  std::vector<float> out =
      arena::AcquireUninit(static_cast<int64_t>(indices.size()) * m);
  float* dst = out.data();
  for (int64_t idx : indices) {
    std::memcpy(dst, src + idx * m, static_cast<size_t>(m) * sizeof(float));
    dst += m;
  }
  Impl ai = a.impl();
  return MakeOp({static_cast<int64_t>(indices.size()), m}, std::move(out),
                {a}, [ai, indices, m](TensorImpl& self) {
                  // Rows scatter sequentially (indices may repeat, so the
                  // ascending-r order is the contract); within a row the
                  // adds are lane-wise.
                  const bool bvec = simd::Enabled();
                  for (size_t r = 0; r < indices.size(); ++r) {
                    AddInto(ai->grad.data() + indices[r] * m,
                            self.grad.data() + static_cast<int64_t>(r) * m, m,
                            bvec);
                  }
                });
}

Tensor Gather1d(const Tensor& a, int64_t index) {
  GARL_CHECK_EQ(a.dim(), 1);
  GARL_CHECK_GE(index, 0);
  GARL_CHECK_LT(index, a.size(0));
  Impl ai = a.impl();
  return MakeOp({}, ScalarVec(a.data()[static_cast<size_t>(index)]), {a},
                [ai, index](TensorImpl& self) {
                  ai->grad[static_cast<size_t>(index)] += self.grad[0];
                });
}

Tensor Concat(const std::vector<Tensor>& parts, int64_t dim) {
  GARL_CHECK(!parts.empty());
  int64_t rank = parts[0].dim();
  GARL_CHECK(rank == 1 || rank == 2);
  GARL_CHECK_GE(dim, 0);
  GARL_CHECK_LT(dim, rank);
  if (rank == 1) {
    int64_t total = 0;
    for (const Tensor& p : parts) {
      GARL_CHECK_EQ(p.dim(), 1);
      total += p.size(0);
    }
    std::vector<float> out = arena::AcquireUninit(total);
    float* dst = out.data();
    for (const Tensor& p : parts) {
      std::copy(p.data().begin(), p.data().end(), dst);
      dst += p.data().size();
    }
    std::vector<Impl> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    return MakeOp({total}, std::move(out), parts, [impls](TensorImpl& self) {
      const bool bvec = simd::Enabled();
      int64_t offset = 0;
      for (const Impl& p : impls) {
        int64_t len = static_cast<int64_t>(p->value.size());
        AddInto(p->grad.data(), self.grad.data() + offset, len, bvec);
        offset += len;
      }
    });
  }
  if (dim == 0) {
    int64_t m = parts[0].size(1);
    int64_t total = 0;
    for (const Tensor& p : parts) {
      GARL_CHECK_EQ(p.dim(), 2);
      GARL_CHECK_EQ(p.size(1), m);
      total += p.size(0);
    }
    std::vector<float> out = arena::AcquireUninit(total * m);
    float* dst = out.data();
    for (const Tensor& p : parts) {
      std::copy(p.data().begin(), p.data().end(), dst);
      dst += p.data().size();
    }
    std::vector<Impl> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl());
    return MakeOp({total, m}, std::move(out), parts,
                  [impls](TensorImpl& self) {
                    const bool bvec = simd::Enabled();
                    int64_t offset = 0;
                    for (const Impl& p : impls) {
                      int64_t len = static_cast<int64_t>(p->value.size());
                      AddInto(p->grad.data(), self.grad.data() + offset, len,
                              bvec);
                      offset += len;
                    }
                  });
  }
  // dim == 1: column-wise concat of 2-D tensors with equal row counts.
  // Append row-major — row i of every part in turn — so the output is built
  // in one reserved pass instead of zero-filled and then re-copied.
  int64_t n = parts[0].size(0);
  int64_t total_m = 0;
  for (const Tensor& p : parts) {
    GARL_CHECK_EQ(p.dim(), 2);
    GARL_CHECK_EQ(p.size(0), n);
    total_m += p.size(1);
  }
  std::vector<float> out = arena::AcquireUninit(n * total_m);
  float* dst = out.data();
  for (int64_t i = 0; i < n; ++i) {
    for (const Tensor& p : parts) {
      int64_t m = p.size(1);
      const float* row = p.data().data() + i * m;
      std::memcpy(dst, row, static_cast<size_t>(m) * sizeof(float));
      dst += m;
    }
  }
  std::vector<Impl> impls;
  std::vector<int64_t> widths;
  for (const Tensor& p : parts) {
    impls.push_back(p.impl());
    widths.push_back(p.size(1));
  }
  return MakeOp({n, total_m}, std::move(out), parts,
                [impls, widths, n, total_m](TensorImpl& self) {
                  const bool bvec = simd::Enabled();
                  int64_t col = 0;
                  for (size_t k = 0; k < impls.size(); ++k) {
                    int64_t m = widths[k];
                    for (int64_t i = 0; i < n; ++i) {
                      AddInto(impls[k]->grad.data() + i * m,
                              self.grad.data() + i * total_m + col, m, bvec);
                    }
                    col += m;
                  }
                });
}

Tensor Stack(const std::vector<Tensor>& parts) {
  GARL_CHECK(!parts.empty());
  std::vector<Tensor> rows;
  rows.reserve(parts.size());
  for (const Tensor& p : parts) {
    GARL_CHECK_EQ(p.dim(), 1);
    rows.push_back(Reshape(p, {1, p.size(0)}));
  }
  return Concat(rows, 0);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  CheckSameShape(pred, target);
  return Mean(Square(Sub(pred, target)));
}

Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding) {
  GARL_CHECK_EQ(input.dim(), 4);
  GARL_CHECK_EQ(weight.dim(), 4);
  GARL_CHECK_GE(stride, 1);
  GARL_CHECK_GE(padding, 0);
  int64_t batch = input.size(0), channels = input.size(1);
  int64_t height = input.size(2), width = input.size(3);
  int64_t filters = weight.size(0), kh = weight.size(2), kw = weight.size(3);
  GARL_CHECK_EQ(weight.size(1), channels);
  if (bias.defined()) {
    GARL_CHECK_EQ(bias.dim(), 1);
    GARL_CHECK_EQ(bias.size(0), filters);
  }
  int64_t oh = (height + 2 * padding - kh) / stride + 1;
  int64_t ow = (width + 2 * padding - kw) / stride + 1;
  GARL_CHECK_GT(oh, 0);
  GARL_CHECK_GT(ow, 0);

  const auto& in = input.data();
  const auto& wt = weight.data();
  const float* bias_data = bias.defined() ? bias.data().data() : nullptr;
  std::vector<float> out = arena::AcquireUninit(batch * filters * oh * ow);
  auto in_at = [&](int64_t b, int64_t c, int64_t y, int64_t x) -> float {
    if (y < 0 || y >= height || x < 0 || x >= width) return 0.0f;
    return in[((b * channels + c) * height + y) * width + x];
  };
  // Scalar output cell; shared by the scalar path and the vector path's
  // column tail so both add exactly the same term sequence (padding terms
  // included as literal zeros).
  auto cell = [&](int64_t b, int64_t f, int64_t y, int64_t x, float bias_v) {
    float acc = bias_v;
    for (int64_t c = 0; c < channels; ++c) {
      for (int64_t dy = 0; dy < kh; ++dy) {
        for (int64_t dx = 0; dx < kw; ++dx) {
          acc += in_at(b, c, y * stride + dy - padding,
                       x * stride + dx - padding) *
                 wt[((f * channels + c) * kh + dy) * kw + dx];
        }
      }
    }
    return acc;
  };
#if GARL_SIMD_COMPILED
  // Zero-padded unaligned load of input row lanes [ix0, ix0+kLanes). An
  // out-of-bounds lane contributes 0 * w, exactly like in_at's 0.0f.
  auto load_row_span = [width](const float* row, int64_t ix0) -> simd::VF {
    if (row == nullptr) return simd::Zero();
    if (ix0 >= 0 && ix0 + simd::kLanes <= width) return simd::LoadU(row + ix0);
    float staged[simd::kLanes] = {};
    for (int64_t l = 0; l < simd::kLanes; ++l) {
      int64_t ix = ix0 + l;
      if (ix >= 0 && ix < width) staged[l] = row[ix];
    }
    return simd::LoadU(staged);
  };
#endif
  [[maybe_unused]] const bool vec = simd::Enabled() && stride == 1;
  // Forward parallelizes over (batch, filter) planes; every output cell is
  // written by exactly one chunk. The vector path assigns each lane one
  // output column and accumulates the (c, dy, dx) terms in the scalar order,
  // so the plane's bits match the scalar path.
  int64_t plane_cost = oh * ow * channels * kh * kw;
  ThreadPool::Global().ParallelFor(
      0, batch * filters, RowGrain(plane_cost),
      [&](int64_t lo, int64_t hi) {
        for (int64_t bf = lo; bf < hi; ++bf) {
          int64_t b = bf / filters, f = bf % filters;
          float bias_v = bias_data != nullptr ? bias_data[f] : 0.0f;
          for (int64_t y = 0; y < oh; ++y) {
            int64_t x = 0;
#if GARL_SIMD_COMPILED
            if (vec) {
              float* orow = &out[((b * filters + f) * oh + y) * ow];
              for (; x + simd::kLanes <= ow; x += simd::kLanes) {
                simd::VF acc = simd::Broadcast(bias_v);
                for (int64_t c = 0; c < channels; ++c) {
                  for (int64_t dy = 0; dy < kh; ++dy) {
                    int64_t iy = y + dy - padding;
                    const float* irow =
                        (iy >= 0 && iy < height)
                            ? &in[((b * channels + c) * height + iy) * width]
                            : nullptr;
                    for (int64_t dx = 0; dx < kw; ++dx) {
                      float w = wt[((f * channels + c) * kh + dy) * kw + dx];
                      acc = acc + load_row_span(irow, x + dx - padding) * w;
                    }
                  }
                }
                simd::StoreU(orow + x, acc);
              }
            }
#endif
            for (; x < ow; ++x) {
              out[((b * filters + f) * oh + y) * ow + x] =
                  cell(b, f, y, x, bias_v);
            }
          }
        }
      });
  std::vector<Tensor> inputs = {input, weight};
  if (bias.defined()) inputs.push_back(bias);
  Impl ii = input.impl(), wi = weight.impl();
  Impl bi = bias.defined() ? bias.impl() : nullptr;
  return MakeOp(
      {batch, filters, oh, ow}, std::move(out), inputs,
      [ii, wi, bi, batch, channels, height, width, filters, kh, kw, oh, ow,
       stride, padding, plane_cost](TensorImpl& self) {
        // Two passes with disjoint write sets: input grads parallelize over
        // batch entries (each dI[b] owned by one chunk), weight/bias grads
        // over filters (each dW[f], dBias[f] owned by one chunk). Within a
        // chunk the accumulation order matches the sequential loops, so
        // grads are bit-identical for any thread count. Backward stays
        // scalar on both SIMD modes: its scatter/gather strides don't map to
        // lanes cleanly, and conv runs only in the CNN baseline, not the
        // MC-GCN hot path.
        ThreadPool::Global().ParallelFor(
            0, batch, RowGrain(filters * plane_cost),
            [&](int64_t blo, int64_t bhi) {
              for (int64_t b = blo; b < bhi; ++b) {
                for (int64_t f = 0; f < filters; ++f) {
                  for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                      float g =
                          self.grad[((b * filters + f) * oh + y) * ow + x];
                      if (g == 0.0f) continue;
                      for (int64_t c = 0; c < channels; ++c) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                          for (int64_t dx = 0; dx < kw; ++dx) {
                            int64_t iy = y * stride + dy - padding;
                            int64_t ix = x * stride + dx - padding;
                            if (iy < 0 || iy >= height || ix < 0 ||
                                ix >= width) {
                              continue;
                            }
                            ii->grad[((b * channels + c) * height + iy) *
                                         width +
                                     ix] +=
                                g *
                                wi->value[((f * channels + c) * kh + dy) *
                                              kw +
                                          dx];
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
        ThreadPool::Global().ParallelFor(
            0, filters, RowGrain(batch * plane_cost / std::max<int64_t>(
                                                          filters, 1)),
            [&](int64_t flo, int64_t fhi) {
              for (int64_t f = flo; f < fhi; ++f) {
                for (int64_t b = 0; b < batch; ++b) {
                  for (int64_t y = 0; y < oh; ++y) {
                    for (int64_t x = 0; x < ow; ++x) {
                      float g =
                          self.grad[((b * filters + f) * oh + y) * ow + x];
                      if (g == 0.0f) continue;
                      if (bi) bi->grad[f] += g;
                      for (int64_t c = 0; c < channels; ++c) {
                        for (int64_t dy = 0; dy < kh; ++dy) {
                          for (int64_t dx = 0; dx < kw; ++dx) {
                            int64_t iy = y * stride + dy - padding;
                            int64_t ix = x * stride + dx - padding;
                            if (iy < 0 || iy >= height || ix < 0 ||
                                ix >= width) {
                              continue;
                            }
                            wi->grad[((f * channels + c) * kh + dy) * kw +
                                     dx] +=
                                g * ii->value[((b * channels + c) * height +
                                               iy) *
                                                  width +
                                              ix];
                          }
                        }
                      }
                    }
                  }
                }
              }
            });
      });
}

}  // namespace garl::nn
