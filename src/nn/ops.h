#ifndef GARL_NN_OPS_H_
#define GARL_NN_OPS_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

// Differentiable tensor operations. Every function returns a fresh tensor;
// when gradient mode is enabled (default) and any input transitively
// requires a gradient, the output is wired into the autograd DAG.

namespace garl::nn {

// RAII guard disabling gradient recording (used during rollouts/evaluation
// to avoid building throwaway graphs).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

bool GradModeEnabled();

// --- Elementwise binary (same shape) ----------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

// --- Scalar variants ---------------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// Adds row vector `bias` [m] to every row of `mat` [n, m].
Tensor AddRowVector(const Tensor& mat, const Tensor& bias);

// Scales row i of `mat` [n, m] by `scale[i]` ([n]); both inputs get grads.
Tensor ScaleRows(const Tensor& mat, const Tensor& scale);

// --- Elementwise unary -------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
// Natural log; inputs are clamped to >= kLogFloor for stability.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
// Clamps values to [lo, hi]; gradient is passed only through unclamped lanes.
Tensor Clip(const Tensor& a, float lo, float hi);

// --- Linear algebra ----------------------------------------------------------
// [n, k] x [k, m] -> [n, m].
Tensor MatMul(const Tensor& a, const Tensor& b);
// 2-D transpose.
Tensor Transpose(const Tensor& a);

// --- Reductions ---------------------------------------------------------------
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
// Sums a 2-D tensor over `dim` (0 -> [m], 1 -> [n]).
Tensor SumDim(const Tensor& a, int64_t dim);
// L2 norm of a 1-D tensor; `eps` keeps the gradient finite at zero.
Tensor Norm(const Tensor& a, float eps = 1e-8f);
// Inner product of two 1-D tensors.
Tensor Dot(const Tensor& a, const Tensor& b);

// --- Softmax family ------------------------------------------------------------
// Softmax over the last dimension (1-D or 2-D input).
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);

// --- Shape ops ------------------------------------------------------------------
Tensor Reshape(const Tensor& a, std::vector<int64_t> shape);
// Rows [start, start+len) of a 2-D tensor.
Tensor Rows(const Tensor& a, int64_t start, int64_t len);
// Gathers rows of a 2-D tensor in the given order (repeats allowed).
Tensor IndexRows(const Tensor& a, const std::vector<int64_t>& indices);
// Element `index` of a 1-D tensor, as a scalar tensor.
Tensor Gather1d(const Tensor& a, int64_t index);
// Concatenation along `dim` (supports 1-D dim=0 and 2-D dim=0/1).
Tensor Concat(const std::vector<Tensor>& parts, int64_t dim);
// Stacks 1-D tensors of equal length into a matrix [parts.size(), m].
Tensor Stack(const std::vector<Tensor>& parts);

// --- Losses -----------------------------------------------------------------------
// Mean squared error between same-shape tensors.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

// --- Convolution --------------------------------------------------------------------
// input [N, C, H, W], weight [F, C, kh, kw], bias [F] (may be undefined for
// no bias). Stride >= 1, zero padding.
Tensor Conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int64_t stride, int64_t padding);

// --- Operators ------------------------------------------------------------------------
inline Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return AddScalar(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return AddScalar(a, -s); }
inline Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
inline Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }
inline Tensor operator-(const Tensor& a) { return Neg(a); }

}  // namespace garl::nn

#endif  // GARL_NN_OPS_H_
