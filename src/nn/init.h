#ifndef GARL_NN_INIT_H_
#define GARL_NN_INIT_H_

#include "common/rng.h"
#include "nn/tensor.h"

// Parameter initialization schemes.

namespace garl::nn {

// Fills `t` uniformly in [-bound, bound].
void UniformInit(Tensor& t, float bound, Rng& rng);

// Xavier/Glorot uniform for a [fan_out x fan_in]-style weight.
void XavierInit(Tensor& t, int64_t fan_in, int64_t fan_out, Rng& rng);

// Kaiming/He uniform (ReLU gain) based on fan_in.
void KaimingInit(Tensor& t, int64_t fan_in, Rng& rng);

// Orthogonal-ish init used for policy heads: Xavier scaled by `gain`.
void ScaledXavierInit(Tensor& t, int64_t fan_in, int64_t fan_out, float gain,
                      Rng& rng);

}  // namespace garl::nn

#endif  // GARL_NN_INIT_H_
