#include "nn/lstm_cell.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  gates_ = std::make_unique<Linear>(input_size + hidden_size,
                                    4 * hidden_size, rng);
}

LstmCell::State LstmCell::InitialState() const {
  return {Tensor::Zeros({hidden_size_}), Tensor::Zeros({hidden_size_})};
}

LstmCell::State LstmCell::Forward(const Tensor& input,
                                  const State& state) const {
  GARL_CHECK_EQ(input.dim(), 1);
  GARL_CHECK_EQ(input.size(0), input_size_);
  Tensor xh = Concat({input, state.h}, 0);
  Tensor gates = gates_->Forward(xh);  // [4*hidden]
  Tensor g2 = Reshape(gates, {4, hidden_size_});
  Tensor i = Sigmoid(Reshape(Rows(g2, 0, 1), {hidden_size_}));
  Tensor f = Sigmoid(Reshape(Rows(g2, 1, 1), {hidden_size_}));
  Tensor g = Tanh(Reshape(Rows(g2, 2, 1), {hidden_size_}));
  Tensor o = Sigmoid(Reshape(Rows(g2, 3, 1), {hidden_size_}));
  Tensor c = Add(Mul(f, state.c), Mul(i, g));
  Tensor h = Mul(o, Tanh(c));
  return {h, c};
}

std::vector<Tensor> LstmCell::Parameters() const {
  return gates_->Parameters();
}

}  // namespace garl::nn
