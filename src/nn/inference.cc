#include "nn/inference.h"

#include <utility>

#include "nn/arena.h"

namespace garl::nn {

void StripForInference(std::vector<Tensor>& parameters) {
  for (Tensor& p : parameters) {
    if (!p.defined()) continue;
    internal::TensorImpl& impl = *p.impl();
    impl.requires_grad = false;
    if (!impl.grad.empty()) arena::Release(std::move(impl.grad));
    impl.grad.clear();
    impl.parents.clear();
    impl.backward_fn = nullptr;
  }
}

}  // namespace garl::nn
