#ifndef GARL_NN_DISTRIBUTIONS_H_
#define GARL_NN_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"

// Policy distributions for PPO/MADDPG. Sampling is done outside the autograd
// graph; LogProb/Entropy build differentiable expressions for training.

namespace garl::nn {

// Discrete distribution parameterized by unnormalized logits [k].
class Categorical {
 public:
  explicit Categorical(Tensor logits);

  // Samples an index using the current probabilities.
  int64_t Sample(Rng& rng) const;

  // argmax action.
  int64_t Mode() const;

  // Differentiable log pi(action).
  Tensor LogProb(int64_t action) const;

  // Differentiable entropy (scalar).
  Tensor Entropy() const;

  // Probability vector (no autograd history).
  std::vector<float> Probabilities() const;

  const Tensor& logits() const { return logits_; }

 private:
  Tensor logits_;  // [k]
};

// Diagonal Gaussian over R^d, parameterized by a mean tensor [d] and a
// log-std tensor [d] (typically a learned state-independent parameter).
class DiagGaussian {
 public:
  DiagGaussian(Tensor mean, Tensor log_std);

  std::vector<float> Sample(Rng& rng) const;
  std::vector<float> Mode() const;

  // Differentiable log-density at `action` (scalar tensor).
  Tensor LogProb(const std::vector<float>& action) const;

  // Differentiable entropy (scalar).
  Tensor Entropy() const;

 private:
  Tensor mean_;     // [d]
  Tensor log_std_;  // [d]
};

}  // namespace garl::nn

#endif  // GARL_NN_DISTRIBUTIONS_H_
