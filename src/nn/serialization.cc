#include "nn/serialization.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "common/fs_util.h"
#include "common/string_util.h"

namespace garl::nn {

namespace {

constexpr uint32_t kMagicV1 = 0x4741524Cu;  // "GARL"
constexpr uint32_t kMagicV2 = 0x47524C32u;  // "GRL2"
constexpr uint32_t kVersion = 2;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Sequential little-endian reader over a byte buffer; every read is
// bounds-checked so truncated or corrupted input degrades to a Status,
// never an out-of-range access.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadFloats(std::vector<float>& dst) {
    size_t want = dst.size() * sizeof(float);
    if (want == 0) return true;
    if (bytes_.size() - pos_ < want) return false;
    std::memcpy(dst.data(), bytes_.data() + pos_, want);
    pos_ += want;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// Parses the tensor list shared by v1 and v2 (everything after the header).
Status ParseTensors(Cursor& cursor, uint64_t count,
                    std::vector<Tensor>& parameters,
                    const std::string& origin) {
  if (count != parameters.size()) {
    return InvalidArgumentError(StrPrintf(
        "parameter count mismatch: file has %llu, model has %zu",
        static_cast<unsigned long long>(count), parameters.size()));
  }
  for (Tensor& p : parameters) {
    uint32_t rank = 0;
    if (!cursor.Read(&rank) || rank != static_cast<uint32_t>(p.dim())) {
      return InvalidArgumentError("tensor rank mismatch in " + origin);
    }
    for (int64_t expected : p.shape()) {
      int64_t dim = 0;
      if (!cursor.Read(&dim) || dim != expected) {
        return InvalidArgumentError("tensor shape mismatch in " + origin);
      }
    }
    if (!cursor.ReadFloats(p.mutable_data())) {
      return InvalidArgumentError("truncated checkpoint: " + origin);
    }
  }
  if (!cursor.AtEnd()) {
    return InvalidArgumentError("trailing bytes after last tensor in " +
                                origin);
  }
  return Status::Ok();
}

}  // namespace

void SerializeParameters(const std::vector<Tensor>& parameters,
                         std::string* out) {
  AppendPod(out, kMagicV2);
  AppendPod(out, kVersion);
  AppendPod(out, static_cast<uint64_t>(parameters.size()));
  for (const Tensor& p : parameters) {
    AppendPod(out, static_cast<uint32_t>(p.dim()));
    for (int64_t d : p.shape()) AppendPod(out, d);
    if (p.numel() > 0) {
      out->append(reinterpret_cast<const char*>(p.data().data()),
                  static_cast<size_t>(p.numel()) * sizeof(float));
    }
  }
}

Status DeserializeParameters(std::string_view bytes,
                             std::vector<Tensor>& parameters) {
  Cursor cursor(bytes);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!cursor.Read(&magic) || magic != kMagicV2) {
    return InvalidArgumentError("bad parameter stream magic");
  }
  if (!cursor.Read(&version) || version != kVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported parameter stream version %u", version));
  }
  if (!cursor.Read(&count)) {
    return InvalidArgumentError("truncated parameter stream header");
  }
  return ParseTensors(cursor, count, parameters, "parameter stream");
}

Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path) {
  std::string payload;
  SerializeParameters(parameters, &payload);
  AppendPod(&payload, Crc32(payload));
  return WriteFileDurable(path, payload);
}

Status LoadParameters(const std::string& path,
                      std::vector<Tensor>& parameters) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  if (bytes.size() < sizeof(uint32_t)) {
    return InvalidArgumentError("bad checkpoint header: " + path);
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));

  if (magic == kMagicV2) {
    if (bytes.size() < 2 * sizeof(uint32_t)) {
      return InvalidArgumentError("truncated checkpoint: " + path);
    }
    size_t payload_size = bytes.size() - sizeof(uint32_t);
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
    uint32_t actual_crc = Crc32(bytes.data(), payload_size);
    if (stored_crc != actual_crc) {
      return InvalidArgumentError(StrPrintf(
          "checkpoint CRC mismatch in %s: stored %08x, computed %08x",
          path.c_str(), stored_crc, actual_crc));
    }
    return DeserializeParameters(
        std::string_view(bytes.data(), payload_size), parameters);
  }

  if (magic == kMagicV1) {
    // v1 (no CRC footer) is retired: silently loading un-checksummed bytes
    // undermines the end-to-end integrity story, so the format now demands
    // an explicit one-shot conversion.
    return FailedPreconditionError(StrPrintf(
        "%s is a legacy v1 checkpoint; v1 loading is retired — convert it "
        "once with `garl_fleet --migrate-v1 %s <output>` and load the v2 "
        "result",
        path.c_str(), path.c_str()));
  }

  return InvalidArgumentError("bad checkpoint header: " + path);
}

Status MigrateV1ParameterFile(const std::string& src_path,
                              const std::string& dst_path) {
  StatusOr<std::string> contents = ReadFileToString(src_path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  Cursor cursor(bytes);
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!cursor.Read(&magic)) {
    return InvalidArgumentError("bad checkpoint header: " + src_path);
  }
  if (magic != kMagicV1) {
    return InvalidArgumentError(
        src_path + " is not a v1 checkpoint (wrong magic)");
  }
  if (!cursor.Read(&count)) {
    return InvalidArgumentError("bad checkpoint header: " + src_path);
  }
  // v1 tensors are self-describing (rank + shape precede each payload), so
  // the migrator reconstructs them without a model to match against.
  std::vector<Tensor> parameters;
  parameters.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t rank = 0;
    if (!cursor.Read(&rank) || rank > 8) {
      return InvalidArgumentError(StrPrintf(
          "bad tensor rank for tensor %llu in %s",
          static_cast<unsigned long long>(i), src_path.c_str()));
    }
    std::vector<int64_t> shape(rank);
    int64_t numel = 1;
    for (uint32_t d = 0; d < rank; ++d) {
      if (!cursor.Read(&shape[d]) || shape[d] < 0) {
        return InvalidArgumentError(StrPrintf(
            "bad tensor shape for tensor %llu in %s",
            static_cast<unsigned long long>(i), src_path.c_str()));
      }
      numel *= shape[d];
    }
    if (numel < 0 || static_cast<uint64_t>(numel) > bytes.size()) {
      return InvalidArgumentError(StrPrintf(
          "implausible tensor size for tensor %llu in %s",
          static_cast<unsigned long long>(i), src_path.c_str()));
    }
    Tensor tensor = Tensor::Zeros(std::move(shape));
    if (!cursor.ReadFloats(tensor.mutable_data())) {
      return InvalidArgumentError("truncated checkpoint: " + src_path);
    }
    parameters.push_back(std::move(tensor));
  }
  if (!cursor.AtEnd()) {
    return InvalidArgumentError("trailing bytes after last tensor in " +
                                src_path);
  }
  return SaveParameters(parameters, dst_path);
}

}  // namespace garl::nn
