#include "nn/serialization.h"

#include <cstdint>
#include <fstream>

#include "common/string_util.h"

namespace garl::nn {

namespace {
constexpr uint32_t kMagic = 0x4741524Cu;  // "GARL"
}

Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open for write: " + path);
  uint32_t magic = kMagic;
  uint64_t count = parameters.size();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : parameters) {
    uint32_t rank = static_cast<uint32_t>(p.dim());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int64_t d : p.shape()) {
      int64_t dim = d;
      out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.numel() * sizeof(float)));
  }
  if (!out) return InternalError("write failed: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::string& path,
                      std::vector<Tensor>& parameters) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  uint32_t magic = 0;
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || magic != kMagic) {
    return InvalidArgumentError("bad checkpoint header: " + path);
  }
  if (count != parameters.size()) {
    return InvalidArgumentError(StrPrintf(
        "parameter count mismatch: file has %llu, model has %zu",
        static_cast<unsigned long long>(count), parameters.size()));
  }
  for (Tensor& p : parameters) {
    uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank != static_cast<uint32_t>(p.dim())) {
      return InvalidArgumentError("tensor rank mismatch in " + path);
    }
    for (int64_t expected : p.shape()) {
      int64_t dim = 0;
      in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
      if (!in || dim != expected) {
        return InvalidArgumentError("tensor shape mismatch in " + path);
      }
    }
    in.read(reinterpret_cast<char*>(p.mutable_data().data()),
            static_cast<std::streamsize>(p.numel() * sizeof(float)));
    if (!in) return InvalidArgumentError("truncated checkpoint: " + path);
  }
  return Status::Ok();
}

}  // namespace garl::nn
