#ifndef GARL_NN_LSTM_CELL_H_
#define GARL_NN_LSTM_CELL_H_

#include <memory>
#include <utility>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace garl::nn {

// One-step LSTM cell (used by the IC3Net and GAM baselines).
// Gates: i, f, g, o computed from [x; h]; c' = f*c + i*g; h' = o*tanh(c').
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    Tensor h;  // [hidden]
    Tensor c;  // [hidden]
  };

  // Zero-initialized state.
  State InitialState() const;

  // Advances one step for a single 1-D input [input_size].
  State Forward(const Tensor& input, const State& state) const;

  std::vector<Tensor> Parameters() const override;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  std::unique_ptr<Linear> gates_;  // [input+hidden] -> 4*hidden
};

}  // namespace garl::nn

#endif  // GARL_NN_LSTM_CELL_H_
