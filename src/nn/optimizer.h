#ifndef GARL_NN_OPTIMIZER_H_
#define GARL_NN_OPTIMIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

// First-order optimizers over flat parameter lists.

namespace garl::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  // Clears accumulated gradients on every parameter.
  void ZeroGrad();

  // Applies one update from the current gradients.
  virtual void Step() = 0;

  // Scales gradients so the global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm. A non-finite norm (NaN/Inf gradients) is
  // returned unmodified and NO scaling is applied — clipping would smear
  // the NaN into every parameter; the caller's divergence sentinel decides
  // what to do with the poisoned step.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr);
  void Step() override;

 private:
  float lr_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  // Full optimizer state (hyperparameters, step count, first/second moment
  // buffers), so a restored trainer continues bit-identically. Serialize*
  // work on in-memory buffers (used by the divergence sentinel's rollback
  // snapshots); Save/LoadState wrap them with a CRC-32 footer and atomic
  // file replacement for durable checkpoints.
  void SerializeState(std::string* out) const;
  [[nodiscard]] Status DeserializeState(std::string_view bytes);  // strict, sizes must match
  [[nodiscard]] Status SaveState(const std::string& path) const;
  [[nodiscard]] Status LoadState(const std::string& path);

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t step_count_ = 0;
  // First/second moments for all parameters, flattened into two contiguous
  // buffers (one heap block each instead of 2N). Parameter i's slice is
  // [offsets_[i], offsets_[i + 1]). The serialized layout (v1) still writes
  // per-parameter numel + m-slice + v-slice, so checkpoints are unchanged.
  std::vector<float> m_;
  std::vector<float> v_;
  std::vector<size_t> offsets_;
};

}  // namespace garl::nn

#endif  // GARL_NN_OPTIMIZER_H_
