#ifndef GARL_NN_OPTIMIZER_H_
#define GARL_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

// First-order optimizers over flat parameter lists.

namespace garl::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> parameters);
  virtual ~Optimizer() = default;

  // Clears accumulated gradients on every parameter.
  void ZeroGrad();

  // Applies one update from the current gradients.
  virtual void Step() = 0;

  // Scales gradients so the global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& parameters() const { return parameters_; }

 protected:
  std::vector<Tensor> parameters_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> parameters, float lr);
  void Step() override;

 private:
  float lr_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> parameters, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace garl::nn

#endif  // GARL_NN_OPTIMIZER_H_
