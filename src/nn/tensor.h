#ifndef GARL_NN_TENSOR_H_
#define GARL_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

// Dense float32 tensor with reverse-mode automatic differentiation.
//
// A Tensor is a cheap handle (shared_ptr) to a TensorImpl node. Operations
// on tensors (see ops.h) build a DAG; Tensor::Backward() on a scalar loss
// runs a topological backward sweep and accumulates gradients into every
// node with requires_grad set (leaves are the trainable parameters).
//
// The engine is deliberately small: float32 only, ranks 0-4, no views (every
// op materializes its output), single-threaded. This is sufficient for the
// paper's models (MLP/GCN/CNN/LSTM stacks over a few hundred graph nodes).

namespace garl::nn {

class Tensor;

namespace internal {

struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> value;
  std::vector<float> grad;  // allocated lazily, same length as value
  bool requires_grad = false;

  // Autograd edges: backward_fn reads this->grad and accumulates into
  // parents' grads. Empty for leaves.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  std::function<void(TensorImpl&)> backward_fn;

  TensorImpl() = default;
  // Returns value/grad storage to the arena buffer pool (nn/arena.h) so the
  // next op of the same size reuses it instead of hitting the heap.
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  int64_t Numel() const;
  void EnsureGrad();
};

// Allocates a TensorImpl via the arena node pool: one pooled block holds the
// node and its shared_ptr control block (std::allocate_shared), so graph
// construction stays heap-allocation-free in steady state.
std::shared_ptr<TensorImpl> NewTensorImpl();

}  // namespace internal

class Tensor {
 public:
  Tensor() = default;  // null handle

  // --- Factories -----------------------------------------------------------
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float fill,
                     bool requires_grad = false);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);
  // Identity matrix [n, n].
  static Tensor Eye(int64_t n);

  // --- Introspection -------------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const std::vector<int64_t>& shape() const;
  int64_t dim() const;
  int64_t size(int64_t d) const;
  int64_t numel() const;
  bool requires_grad() const;

  // --- Data access ---------------------------------------------------------
  const std::vector<float>& data() const;
  std::vector<float>& mutable_data();
  float item() const;                       // scalar tensors only
  float at(std::initializer_list<int64_t> idx) const;
  void set(std::initializer_list<int64_t> idx, float v);

  // Gradient buffer of a requires_grad tensor (empty until Backward ran).
  const std::vector<float>& grad() const;
  void ZeroGrad();

  // --- Autograd ------------------------------------------------------------
  // Runs backpropagation from this scalar tensor.
  void Backward();
  // Returns a copy sharing no autograd history (constant w.r.t. the graph).
  Tensor Detach() const;

  // Identity check (same underlying node).
  bool IsSameAs(const Tensor& other) const { return impl_ == other.impl_; }

  std::string ShapeString() const;

  // Internal: used by ops.cc to wire the graph.
  std::shared_ptr<internal::TensorImpl> impl() const { return impl_; }
  static Tensor Wrap(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

// Flattened row-major offset of `idx` within `shape`.
int64_t FlatIndex(const std::vector<int64_t>& shape,
                  const std::vector<int64_t>& idx);

}  // namespace garl::nn

#endif  // GARL_NN_TENSOR_H_
