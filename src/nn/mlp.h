#ifndef GARL_NN_MLP_H_
#define GARL_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace garl::nn {

enum class Activation { kNone, kRelu, kTanh, kSigmoid };

// Applies `activation` to `x` (kNone is the identity).
Tensor Activate(const Tensor& x, Activation activation);

// Multi-layer perceptron: Linear -> act -> ... -> Linear, with `activation`
// between layers and optionally on the output.
class Mlp : public Module {
 public:
  // `sizes` = {in, hidden..., out}; at least two entries.
  Mlp(const std::vector<int64_t>& sizes, Activation activation, Rng& rng,
      bool activate_output = false);

  Tensor Forward(const Tensor& input) const;

  std::vector<Tensor> Parameters() const override;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
  bool activate_output_;
};

}  // namespace garl::nn

#endif  // GARL_NN_MLP_H_
