#ifndef GARL_NN_GRAD_CHECK_H_
#define GARL_NN_GRAD_CHECK_H_

#include <functional>

#include "nn/tensor.h"

// Finite-difference gradient verification used by the nn test suite.

namespace garl::nn {

// Compares the analytic gradient of `loss_fn` (a scalar-valued function of
// `input`, which must require grad) against central finite differences.
// Returns the maximum absolute difference over all input coordinates.
float MaxGradError(Tensor& input,
                   const std::function<Tensor(const Tensor&)>& loss_fn,
                   float epsilon = 1e-3f);

}  // namespace garl::nn

#endif  // GARL_NN_GRAD_CHECK_H_
