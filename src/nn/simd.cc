#include "nn/simd.h"

#include <atomic>

#include "common/env_flags.h"

namespace garl::nn::simd {

namespace {

// -1 = not yet read from the environment; 0/1 = cached decision.
std::atomic<int> g_enabled{-1};

}  // namespace

bool Enabled() {
#if !GARL_SIMD_COMPILED
  return false;
#else
  int cached = g_enabled.load(std::memory_order_relaxed);
  if (cached < 0) {
    cached = EnvInt("GARL_SIMD", 1) != 0 ? 1 : 0;
    g_enabled.store(cached, std::memory_order_relaxed);
  }
  return cached != 0;
#endif
}

void SetEnabledForTest(bool enabled) {
#if !GARL_SIMD_COMPILED
  (void)enabled;  // compiled out: scalar either way, A/B tests still pass
#else
  g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
#endif
}

}  // namespace garl::nn::simd
