#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace garl::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  GARL_CHECK_GT(in_features, 0);
  GARL_CHECK_GT(out_features, 0);
  weight_ = Tensor::Zeros({out_features, in_features}, /*requires_grad=*/true);
  XavierInit(weight_, in_features, out_features, rng);
  if (with_bias) {
    bias_ = Tensor::Zeros({out_features}, /*requires_grad=*/true);
  }
}

Tensor Linear::Forward(const Tensor& input) const {
  bool vector_input = input.dim() == 1;
  Tensor x = vector_input ? Reshape(input, {1, input.size(0)}) : input;
  GARL_CHECK_EQ(x.dim(), 2);
  GARL_CHECK_EQ(x.size(1), in_features_);
  Tensor y = MatMul(x, Transpose(weight_));
  if (bias_.defined()) y = AddRowVector(y, bias_);
  if (vector_input) y = Reshape(y, {out_features_});
  return y;
}

std::vector<Tensor> Linear::Parameters() const {
  std::vector<Tensor> params = {weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

}  // namespace garl::nn
