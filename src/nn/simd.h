#ifndef GARL_NN_SIMD_H_
#define GARL_NN_SIMD_H_

#include <cstdint>
#include <cstring>

// Portable SIMD layer for the tensor kernels, built on GCC/Clang vector
// extensions (no intrinsics, no -march requirement). Kernels in ops.cc use
// these helpers for their wide inner loops and fall back to scalar code when
// SIMD is disabled.
//
// Determinism contract: every helper here is a lane-wise IEEE-754 single
// operation (+, -, *, /, compare-select). A lane computes exactly the bits
// the scalar fallback computes for the same element, so kernels that keep
// per-element accumulation order identical between their scalar and vector
// bodies produce byte-identical outputs under GARL_SIMD=0 and GARL_SIMD=1.
// The build adds -ffp-contract=off to the kernel targets so no FMA
// contraction can change rounding (see DESIGN.md, Memory & SIMD kernels).
//
// Gating:
//  - compile time: the GARL_SIMD CMake option (default ON) defines
//    GARL_SIMD_COMPILED; with it OFF the vector types are not even compiled.
//  - runtime: the GARL_SIMD env flag (default 1) read once on first use;
//    SetEnabledForTest flips the cached flag for in-process A/B tests.

#ifndef GARL_SIMD_COMPILED
#define GARL_SIMD_COMPILED 1
#endif

namespace garl::nn::simd {

// Lanes per vector: 4 x float32 = 128-bit, one XMM register on baseline
// x86-64. Wider generic vectors are a trap without -mavx: GCC emulates them
// in pairs and, in branchy kernels (the GEMM zero-skip), spills every
// accumulator through the stack each iteration — measured slower than
// scalar. At 128 bits the kernels hold their accumulator tiles in registers.
inline constexpr int64_t kLanes = 4;

// True when vectorized kernel bodies should run. Reads the GARL_SIMD env
// flag once (default on) and requires GARL_SIMD_COMPILED.
bool Enabled();

// Overrides the runtime flag (both directions). Used by the bench harness
// and the SIMD-vs-scalar bit-equality tests to A/B within one process.
void SetEnabledForTest(bool enabled);

// Scalar overloads so kernel lambdas can be generic over float and VF.
inline float Max(float a, float b) { return a > b ? a : b; }
inline float Min(float a, float b) { return a < b ? a : b; }
// Matches std::clamp ordering: NaN propagates (x < lo and hi < x are false).
inline float Clamp(float x, float lo, float hi) {
  return x < lo ? lo : (hi < x ? hi : x);
}
// Relu value/gradient gates.
inline float Relu(float x) { return x > 0.0f ? x : 0.0f; }
inline float ReluGate(float x, float g) { return x > 0.0f ? g : 0.0f; }
// Gradient passes only strictly inside the clip interval.
inline float ClipGate(float x, float lo, float hi, float g) {
  return (x > lo && x < hi) ? g : 0.0f;
}

#if GARL_SIMD_COMPILED

typedef float VF __attribute__((vector_size(4 * sizeof(float)), may_alias));

inline VF LoadU(const float* p) {
  VF v;
  std::memcpy(&v, p, sizeof(VF));
  return v;
}

inline void StoreU(float* p, VF v) { std::memcpy(p, &v, sizeof(VF)); }

inline VF Broadcast(float x) { return VF{x, x, x, x}; }

inline VF Zero() { return Broadcast(0.0f); }

inline VF Max(VF a, VF b) { return a > b ? a : b; }
inline VF Min(VF a, VF b) { return a < b ? a : b; }

inline VF Clamp(VF x, float lo, float hi) {
  VF vlo = Broadcast(lo);
  VF vhi = Broadcast(hi);
  return x < vlo ? vlo : (vhi < x ? vhi : x);
}

inline VF Relu(VF x) { return x > Zero() ? x : Zero(); }
inline VF ReluGate(VF x, VF g) { return x > Zero() ? g : Zero(); }

inline VF ClipGate(VF x, float lo, float hi, VF g) {
  return ((x > Broadcast(lo)) & (x < Broadcast(hi))) ? g : Zero();
}

// Horizontal max over all lanes, folded in ascending lane order. Max is
// associative/commutative for the finite values softmax feeds it, so the
// fold order cannot change the value (see ops.cc, SoftmaxRows).
inline float ReduceMax(VF v) {
  float m = v[0];
  for (int64_t l = 1; l < kLanes; ++l) m = Max(m, v[l]);
  return m;
}

#endif  // GARL_SIMD_COMPILED

}  // namespace garl::nn::simd

#endif  // GARL_NN_SIMD_H_
