#ifndef GARL_NN_ARENA_H_
#define GARL_NN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

// Arena/slab allocation for the tensor stack. Two cooperating pieces:
//
//  1. A buffer pool (AcquireUninit / AcquireZeroed / Release) that recycles
//     the std::vector<float> storage behind TensorImpl value/grad buffers.
//     Training builds and drops the same DAG every iteration, so after one
//     warmup pass every Acquire is served from a thread-local free list and
//     steady-state iterations perform zero heap allocations (asserted by
//     arena_test via the counters below). Buffers keep their std::vector
//     identity, so Tensor::data() still hands out const std::vector<float>&
//     and no call site changes.
//
//  2. A bump-pointer scratch Arena of 64-byte-aligned slabs for transient
//     kernel workspace (packed transposes, conv edge staging). Each thread
//     gets its own instance via ThreadScratch(); kernels mark/restore it
//     with ScratchScope so nested ops compose.
//
// Ownership rules (see DESIGN.md, Memory & SIMD kernels):
//  - Pool buffers are owned by whoever holds the vector; Release is the only
//    way to return one. Releasing on a different thread than Acquire is fine
//    (free lists are thread-local; capacity migrates through a shared
//    orphan list when threads exit).
//  - Scratch pointers are valid only until the enclosing ScratchScope ends;
//    never store them in a Tensor.
//
// All counters are process-global and monotonically increasing except
// cached_bytes/outstanding snapshots. They are runtime observability data
// (run-log `rt` payload), never deterministic payload.

namespace garl::nn::arena {

struct ArenaStats {
  // Pool misses that hit the heap (vector construction) + scratch slab
  // mallocs. Flat across steady-state iterations once warm.
  int64_t heap_allocs = 0;
  // Acquires served from a free list + scratch allocations served in-slab.
  int64_t reuses = 0;
  // Buffers returned via Release (kept or evicted).
  int64_t releases = 0;
  // Buffers dropped on Release because the cache cap was reached.
  int64_t evictions = 0;
  // Bytes currently parked in free lists (all threads + orphans).
  int64_t cached_bytes = 0;
  // Peak of cached_bytes over the process lifetime.
  int64_t high_water_bytes = 0;
  // Total capacity of all scratch-arena slabs ever allocated.
  int64_t scratch_bytes = 0;
  // Autograd node-pool misses that hit the heap / hits served from a node
  // free list. Tracked separately from heap_allocs so arena_test can assert
  // the node headers specifically stay allocation-free in steady state.
  int64_t node_heap_allocs = 0;
  int64_t node_reuses = 0;
};

// Snapshot of the process-wide counters.
ArenaStats GlobalStats();

// Zeroes the monotonic counters (not the caches). Tests only.
void ResetStatsForTest();

// --- Tensor buffer pool -----------------------------------------------------

// Returns a vector of exactly `numel` floats with unspecified contents
// (recycled buffers keep stale values). Use when every element is written.
std::vector<float> AcquireUninit(int64_t numel);

// Returns a vector of exactly `numel` zero floats. Use for accumulation
// targets (GEMM outputs, gradients).
std::vector<float> AcquireZeroed(int64_t numel);

// Returns a buffer to the pool (keyed by size). Empty vectors are ignored;
// vectors that would push the cache over its cap are freed instead.
void Release(std::vector<float>&& buffer);

// Moves this thread's free lists to the shared orphan list so other threads
// can reuse the capacity. Registered as a pool worker-exit hook; callable
// directly in tests.
void FlushThreadCache();

// Overrides the cache cap (GARL_ARENA_MAX_CACHED_MB, default 512). Tests
// only; pass a negative value to restore the env-derived default.
void SetMaxCachedBytesForTest(int64_t max_bytes);

// --- Autograd node pool -----------------------------------------------------
//
// TensorImpl node headers — the single block std::allocate_shared emits for
// the object plus its shared_ptr control block — were the one remaining
// per-op malloc after value/grad buffers moved into the pool above. Training
// builds and drops thousands of identically-sized node blocks per iteration,
// so they get the same treatment: thread-local free lists keyed by rounded
// block size, orphan migration on thread exit, the shared cache-byte cap,
// and dedicated counters (node_heap_allocs / node_reuses).

// Pooled block of at least `bytes` bytes, aligned for any ordinary type.
void* AcquireNode(std::size_t bytes);

// Returns a block obtained from AcquireNode with the same `bytes`.
void ReleaseNode(void* ptr, std::size_t bytes);

// Allocator adapter over AcquireNode/ReleaseNode for std::allocate_shared.
// Stateless: all instances are interchangeable.
template <typename T>
struct NodePoolAllocator {
  using value_type = T;
  NodePoolAllocator() noexcept = default;
  template <typename U>
  NodePoolAllocator(const NodePoolAllocator<U>&) noexcept {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(AcquireNode(n * sizeof(T)));
  }
  void deallocate(T* ptr, std::size_t n) noexcept {
    ReleaseNode(ptr, n * sizeof(T));
  }
};

template <typename A, typename B>
bool operator==(const NodePoolAllocator<A>&,
                const NodePoolAllocator<B>&) noexcept {
  return true;
}
template <typename A, typename B>
bool operator!=(const NodePoolAllocator<A>&,
                const NodePoolAllocator<B>&) noexcept {
  return false;
}

// --- Scratch arena ----------------------------------------------------------

class Arena {
 public:
  explicit Arena(int64_t initial_bytes = 1 << 16);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 64-byte-aligned uninitialized scratch, valid until Reset/RestoreMark.
  // Grows by doubling slabs when the current slabs are exhausted.
  float* AllocateFloats(int64_t count);

  // Releases all allocations (keeps slab capacity for reuse).
  void Reset();

  // Mark/restore for nested scopes (prefer ScratchScope).
  struct Mark {
    int64_t slab = 0;
    int64_t used = 0;
  };
  Mark SaveMark() const;
  void RestoreMark(Mark mark);

  int64_t capacity_bytes() const;
  int64_t used_bytes() const;
  int64_t slab_count() const { return static_cast<int64_t>(slabs_.size()); }

 private:
  struct Slab {
    char* base = nullptr;  // 64-byte aligned
    int64_t capacity = 0;
    int64_t used = 0;
  };

  Slab& GrowFor(int64_t bytes);

  std::vector<Slab> slabs_;
  int64_t active_ = 0;  // index of the slab currently bump-allocating
  int64_t next_slab_bytes_;
};

// This thread's scratch arena (created on first use, reset by ScratchScope).
Arena& ThreadScratch();

// RAII mark/restore over ThreadScratch() so nested kernels compose.
class ScratchScope {
 public:
  ScratchScope();
  ~ScratchScope();

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  Arena::Mark mark_;
};

}  // namespace garl::nn::arena

#endif  // GARL_NN_ARENA_H_
