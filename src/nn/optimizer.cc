#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace garl::nn {

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (Tensor& p : parameters_) {
    GARL_CHECK(p.defined());
    GARL_CHECK(p.requires_grad());
    (void)p.grad();  // allocate the gradient buffer
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  GARL_CHECK_GT(max_norm, 0.0f);
  double sq = 0.0;
  for (Tensor& p : parameters_) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-8f);
    for (Tensor& p : parameters_) {
      auto& grad = p.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr)
    : Optimizer(std::move(parameters)), lr_(lr) {}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    auto& value = p.mutable_data();
    const auto& grad = p.grad();
    for (size_t i = 0; i < value.size(); ++i) value[i] -= lr_ * grad[i];
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(parameters_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(parameters_[i].numel()), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    auto& value = parameters_[i].mutable_data();
    const auto& grad = parameters_[i].grad();
    for (size_t j = 0; j < value.size(); ++j) {
      float g = grad[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      float m_hat = m_[i][j] / bc1;
      float v_hat = v_[i][j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace garl::nn
