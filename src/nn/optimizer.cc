#include "nn/optimizer.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/fs_util.h"
#include "common/string_util.h"

namespace garl::nn {

namespace {

constexpr uint32_t kAdamMagic = 0x4741444Du;  // "GADM"
constexpr uint32_t kAdamVersion = 1;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

bool ReadFloats(std::string_view bytes, size_t* pos, std::vector<float>& dst) {
  size_t want = dst.size() * sizeof(float);
  if (want == 0) return true;
  if (bytes.size() - *pos < want) return false;
  std::memcpy(dst.data(), bytes.data() + *pos, want);
  *pos += want;
  return true;
}

void AppendFloats(std::string* out, const std::vector<float>& src) {
  if (src.empty()) return;
  out->append(reinterpret_cast<const char*>(src.data()),
              src.size() * sizeof(float));
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (Tensor& p : parameters_) {
    GARL_CHECK(p.defined());
    GARL_CHECK(p.requires_grad());
    (void)p.grad();  // allocate the gradient buffer
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  GARL_CHECK_GT(max_norm, 0.0f);
  double sq = 0.0;
  for (Tensor& p : parameters_) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(sq));
  if (!std::isfinite(norm)) return norm;
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-8f);
    for (Tensor& p : parameters_) {
      auto& grad = p.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr)
    : Optimizer(std::move(parameters)), lr_(lr) {}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    auto& value = p.mutable_data();
    const auto& grad = p.grad();
    for (size_t i = 0; i < value.size(); ++i) value[i] -= lr_ * grad[i];
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(parameters_.size());
  v_.resize(parameters_.size());
  for (size_t i = 0; i < parameters_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(parameters_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(parameters_[i].numel()), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < parameters_.size(); ++i) {
    auto& value = parameters_[i].mutable_data();
    const auto& grad = parameters_[i].grad();
    for (size_t j = 0; j < value.size(); ++j) {
      float g = grad[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      float m_hat = m_[i][j] / bc1;
      float v_hat = v_[i][j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void Adam::SerializeState(std::string* out) const {
  AppendPod(out, kAdamMagic);
  AppendPod(out, kAdamVersion);
  AppendPod(out, step_count_);
  AppendPod(out, lr_);
  AppendPod(out, beta1_);
  AppendPod(out, beta2_);
  AppendPod(out, eps_);
  AppendPod(out, static_cast<uint64_t>(m_.size()));
  for (size_t i = 0; i < m_.size(); ++i) {
    AppendPod(out, static_cast<uint64_t>(m_[i].size()));
    AppendFloats(out, m_[i]);
    AppendFloats(out, v_[i]);
  }
}

Status Adam::DeserializeState(std::string_view bytes) {
  size_t pos = 0;
  uint32_t magic = 0, version = 0;
  if (!ReadPod(bytes, &pos, &magic) || magic != kAdamMagic) {
    return InvalidArgumentError("bad Adam state magic");
  }
  if (!ReadPod(bytes, &pos, &version) || version != kAdamVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported Adam state version %u", version));
  }
  int64_t step_count = 0;
  float lr = 0, beta1 = 0, beta2 = 0, eps = 0;
  uint64_t num_params = 0;
  if (!ReadPod(bytes, &pos, &step_count) || !ReadPod(bytes, &pos, &lr) ||
      !ReadPod(bytes, &pos, &beta1) || !ReadPod(bytes, &pos, &beta2) ||
      !ReadPod(bytes, &pos, &eps) || !ReadPod(bytes, &pos, &num_params)) {
    return InvalidArgumentError("truncated Adam state header");
  }
  if (num_params != m_.size()) {
    return InvalidArgumentError(StrPrintf(
        "Adam state parameter count mismatch: state has %llu, optimizer "
        "has %zu",
        static_cast<unsigned long long>(num_params), m_.size()));
  }
  // Parse into scratch buffers first so a corrupt tail cannot leave the
  // optimizer half-restored.
  std::vector<std::vector<float>> m(m_.size()), v(v_.size());
  for (size_t i = 0; i < m_.size(); ++i) {
    uint64_t numel = 0;
    if (!ReadPod(bytes, &pos, &numel) || numel != m_[i].size()) {
      return InvalidArgumentError(
          StrPrintf("Adam state size mismatch at parameter %zu", i));
    }
    m[i].resize(m_[i].size());
    v[i].resize(v_[i].size());
    if (!ReadFloats(bytes, &pos, m[i]) || !ReadFloats(bytes, &pos, v[i])) {
      return InvalidArgumentError("truncated Adam state");
    }
  }
  if (pos != bytes.size()) {
    return InvalidArgumentError("trailing bytes after Adam state");
  }
  step_count_ = step_count;
  lr_ = lr;
  beta1_ = beta1;
  beta2_ = beta2;
  eps_ = eps;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

Status Adam::SaveState(const std::string& path) const {
  std::string payload;
  SerializeState(&payload);
  AppendPod(&payload, Crc32(payload));
  return WriteFileDurable(path, payload);
}

Status Adam::LoadState(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  if (bytes.size() < 2 * sizeof(uint32_t)) {
    return InvalidArgumentError("truncated Adam state file: " + path);
  }
  size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (stored_crc != Crc32(bytes.data(), payload_size)) {
    return InvalidArgumentError("Adam state CRC mismatch in " + path);
  }
  return DeserializeState(std::string_view(bytes.data(), payload_size));
}

}  // namespace garl::nn
