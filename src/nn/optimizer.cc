#include "nn/optimizer.h"

#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/fs_util.h"
#include "common/string_util.h"
#include "nn/simd.h"

namespace garl::nn {

namespace {

constexpr uint32_t kAdamMagic = 0x4741444Du;  // "GADM"
constexpr uint32_t kAdamVersion = 1;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view bytes, size_t* pos, T* value) {
  if (bytes.size() - *pos < sizeof(T)) return false;
  std::memcpy(value, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

bool ReadFloatSpan(std::string_view bytes, size_t* pos, float* dst, size_t n) {
  size_t want = n * sizeof(float);
  if (want == 0) return true;
  if (bytes.size() - *pos < want) return false;
  std::memcpy(dst, bytes.data() + *pos, want);
  *pos += want;
  return true;
}

void AppendFloatSpan(std::string* out, const float* src, size_t n) {
  if (n == 0) return;
  out->append(reinterpret_cast<const char*>(src), n * sizeof(float));
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> parameters)
    : parameters_(std::move(parameters)) {
  for (Tensor& p : parameters_) {
    GARL_CHECK(p.defined());
    GARL_CHECK(p.requires_grad());
    (void)p.grad();  // allocate the gradient buffer
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  GARL_CHECK_GT(max_norm, 0.0f);
  double sq = 0.0;
  for (Tensor& p : parameters_) {
    for (float g : p.grad()) sq += static_cast<double>(g) * g;
  }
  float norm = static_cast<float>(std::sqrt(sq));
  if (!std::isfinite(norm)) return norm;
  if (norm > max_norm) {
    float scale = max_norm / (norm + 1e-8f);
    for (Tensor& p : parameters_) {
      auto& grad = p.impl()->grad;
      int64_t n = static_cast<int64_t>(grad.size());
      int64_t i = 0;
#if GARL_SIMD_COMPILED
      if (simd::Enabled()) {
        simd::VF vs = simd::Broadcast(scale);
        for (; i + simd::kLanes <= n; i += simd::kLanes) {
          simd::StoreU(&grad[i], simd::LoadU(&grad[i]) * vs);
        }
      }
#endif
      for (; i < n; ++i) grad[i] *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> parameters, float lr)
    : Optimizer(std::move(parameters)), lr_(lr) {}

void Sgd::Step() {
  for (Tensor& p : parameters_) {
    auto& value = p.mutable_data();
    const auto& grad = p.grad();
    int64_t n = static_cast<int64_t>(value.size());
    int64_t i = 0;
#if GARL_SIMD_COMPILED
    // Lane-wise v -= lr*g: same bits as the scalar loop for every element.
    if (simd::Enabled()) {
      simd::VF vlr = simd::Broadcast(lr_);
      for (; i + simd::kLanes <= n; i += simd::kLanes) {
        simd::StoreU(&value[i],
                     simd::LoadU(&value[i]) - vlr * simd::LoadU(&grad[i]));
      }
    }
#endif
    for (; i < n; ++i) value[i] -= lr_ * grad[i];
  }
}

Adam::Adam(std::vector<Tensor> parameters, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(parameters)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  offsets_.resize(parameters_.size() + 1, 0);
  for (size_t i = 0; i < parameters_.size(); ++i) {
    offsets_[i + 1] =
        offsets_[i] + static_cast<size_t>(parameters_[i].numel());
  }
  m_.assign(offsets_.back(), 0.0f);
  v_.assign(offsets_.back(), 0.0f);
}

void Adam::Step() {
  ++step_count_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  // Scalar on purpose: the sqrt in the denominator dominates and keeps this
  // loop out of SIMD reach; flattening m_/v_ already removed the per-param
  // indirection. Identical arithmetic to the pre-flattening version.
  for (size_t i = 0; i < parameters_.size(); ++i) {
    auto& value = parameters_[i].mutable_data();
    const auto& grad = parameters_[i].grad();
    float* m = m_.data() + offsets_[i];
    float* v = v_.data() + offsets_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      float g = grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      float m_hat = m[j] / bc1;
      float v_hat = v[j] / bc2;
      value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void Adam::SerializeState(std::string* out) const {
  AppendPod(out, kAdamMagic);
  AppendPod(out, kAdamVersion);
  AppendPod(out, step_count_);
  AppendPod(out, lr_);
  AppendPod(out, beta1_);
  AppendPod(out, beta2_);
  AppendPod(out, eps_);
  size_t num_params = offsets_.size() - 1;
  AppendPod(out, static_cast<uint64_t>(num_params));
  for (size_t i = 0; i < num_params; ++i) {
    size_t numel = offsets_[i + 1] - offsets_[i];
    AppendPod(out, static_cast<uint64_t>(numel));
    AppendFloatSpan(out, m_.data() + offsets_[i], numel);
    AppendFloatSpan(out, v_.data() + offsets_[i], numel);
  }
}

Status Adam::DeserializeState(std::string_view bytes) {
  size_t pos = 0;
  uint32_t magic = 0, version = 0;
  if (!ReadPod(bytes, &pos, &magic) || magic != kAdamMagic) {
    return InvalidArgumentError("bad Adam state magic");
  }
  if (!ReadPod(bytes, &pos, &version) || version != kAdamVersion) {
    return InvalidArgumentError(
        StrPrintf("unsupported Adam state version %u", version));
  }
  int64_t step_count = 0;
  float lr = 0, beta1 = 0, beta2 = 0, eps = 0;
  uint64_t num_params = 0;
  if (!ReadPod(bytes, &pos, &step_count) || !ReadPod(bytes, &pos, &lr) ||
      !ReadPod(bytes, &pos, &beta1) || !ReadPod(bytes, &pos, &beta2) ||
      !ReadPod(bytes, &pos, &eps) || !ReadPod(bytes, &pos, &num_params)) {
    return InvalidArgumentError("truncated Adam state header");
  }
  size_t have_params = offsets_.size() - 1;
  if (num_params != have_params) {
    return InvalidArgumentError(StrPrintf(
        "Adam state parameter count mismatch: state has %llu, optimizer "
        "has %zu",
        static_cast<unsigned long long>(num_params), have_params));
  }
  // Parse into scratch buffers first so a corrupt tail cannot leave the
  // optimizer half-restored.
  std::vector<float> m(m_.size()), v(v_.size());
  for (size_t i = 0; i < have_params; ++i) {
    size_t expect = offsets_[i + 1] - offsets_[i];
    uint64_t numel = 0;
    if (!ReadPod(bytes, &pos, &numel) || numel != expect) {
      return InvalidArgumentError(
          StrPrintf("Adam state size mismatch at parameter %zu", i));
    }
    if (!ReadFloatSpan(bytes, &pos, m.data() + offsets_[i], expect) ||
        !ReadFloatSpan(bytes, &pos, v.data() + offsets_[i], expect)) {
      return InvalidArgumentError("truncated Adam state");
    }
  }
  if (pos != bytes.size()) {
    return InvalidArgumentError("trailing bytes after Adam state");
  }
  step_count_ = step_count;
  lr_ = lr;
  beta1_ = beta1;
  beta2_ = beta2;
  eps_ = eps;
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::Ok();
}

Status Adam::SaveState(const std::string& path) const {
  std::string payload;
  SerializeState(&payload);
  AppendPod(&payload, Crc32(payload));
  return WriteFileDurable(path, payload);
}

Status Adam::LoadState(const std::string& path) {
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& bytes = contents.value();
  if (bytes.size() < 2 * sizeof(uint32_t)) {
    return InvalidArgumentError("truncated Adam state file: " + path);
  }
  size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (stored_crc != Crc32(bytes.data(), payload_size)) {
    return InvalidArgumentError("Adam state CRC mismatch in " + path);
  }
  return DeserializeState(std::string_view(bytes.data(), payload_size));
}

}  // namespace garl::nn
