#ifndef GARL_NN_INFERENCE_H_
#define GARL_NN_INFERENCE_H_

#include <vector>

#include "nn/tensor.h"

namespace garl::nn {

// Strips training-only state from `parameters` in place: clears
// requires_grad (so later forwards build no autograd nodes over them),
// returns gradient buffers to the arena and drops any stale graph edges.
// Serving loads call this right after LoadParameters so a policy server
// never holds grad memory; see rl::LoadPolicyForInference.
void StripForInference(std::vector<Tensor>& parameters);

}  // namespace garl::nn

#endif  // GARL_NN_INFERENCE_H_
