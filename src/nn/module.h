#ifndef GARL_NN_MODULE_H_
#define GARL_NN_MODULE_H_

#include <vector>

#include "nn/tensor.h"

// Base class for trainable network components. A Module owns parameter
// tensors (requires_grad leaves) and exposes them for optimizers and
// (de)serialization. Composite modules register child parameters by
// appending the children's Parameters().

namespace garl::nn {

class Module {
 public:
  virtual ~Module() = default;

  // All trainable parameter tensors, in a stable order.
  virtual std::vector<Tensor> Parameters() const = 0;

  // Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t total = 0;
    for (const Tensor& p : Parameters()) total += p.numel();
    return total;
  }
};

}  // namespace garl::nn

#endif  // GARL_NN_MODULE_H_
