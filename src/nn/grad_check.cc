#include "nn/grad_check.h"

#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace garl::nn {

float MaxGradError(Tensor& input,
                   const std::function<Tensor(const Tensor&)>& loss_fn,
                   float epsilon) {
  GARL_CHECK(input.requires_grad());
  input.ZeroGrad();
  Tensor loss = loss_fn(input);
  GARL_CHECK_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<float> analytic = input.grad();

  float max_err = 0.0f;
  auto& values = input.mutable_data();
  for (size_t i = 0; i < values.size(); ++i) {
    float original = values[i];
    values[i] = original + epsilon;
    float plus;
    {
      NoGradGuard no_grad;
      plus = loss_fn(input).item();
    }
    values[i] = original - epsilon;
    float minus;
    {
      NoGradGuard no_grad;
      minus = loss_fn(input).item();
    }
    values[i] = original;
    float numeric = (plus - minus) / (2.0f * epsilon);
    max_err = std::max(max_err, std::fabs(numeric - analytic[i]));
  }
  return max_err;
}

}  // namespace garl::nn
