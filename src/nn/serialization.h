#ifndef GARL_NN_SERIALIZATION_H_
#define GARL_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

// Binary (de)serialization of parameter lists, used to checkpoint trained
// policies. Format: magic, count, then per-tensor rank/shape/f32 payload.

namespace garl::nn {

// Writes `parameters` to `path`.
Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path);

// Loads values from `path` into `parameters` (shapes must match exactly).
Status LoadParameters(const std::string& path,
                      std::vector<Tensor>& parameters);

}  // namespace garl::nn

#endif  // GARL_NN_SERIALIZATION_H_
