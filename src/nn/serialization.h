#ifndef GARL_NN_SERIALIZATION_H_
#define GARL_NN_SERIALIZATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

// Binary (de)serialization of parameter lists, used to checkpoint trained
// policies.
//
// Format v2 (current): magic "GRL2", u32 version, u64 count, then per-tensor
// u32 rank / i64 shape / f32 payload, closed by a CRC-32 footer over every
// preceding byte. Files are written atomically (temp file + fsync + rename),
// so a crash mid-save can never leave a truncated file at the final path,
// and any post-crash or on-disk corruption is caught by the CRC on load.
//
// Format v1 (legacy, RETIRED): magic "GARL", u64 count, tensors, no footer.
// Loading a v1 file returns FailedPrecondition pointing at the one-shot
// `garl_fleet --migrate-v1` conversion (MigrateV1ParameterFile below); the
// un-checksummed format no longer loads silently.

namespace garl::nn {

// Appends the v2 stream (header + tensors, without the CRC footer) to
// `*out`. Building block shared by file checkpoints and in-memory trainer
// snapshots.
void SerializeParameters(const std::vector<Tensor>& parameters,
                         std::string* out);

// Strict inverse of SerializeParameters: `bytes` must contain exactly one
// v2 stream whose count/ranks/shapes match `parameters`. Trailing bytes are
// rejected so count/shape corruption cannot slip through.
[[nodiscard]] Status DeserializeParameters(std::string_view bytes,
                             std::vector<Tensor>& parameters);

// Atomically writes `parameters` to `path` in format v2.
[[nodiscard]] Status SaveParameters(const std::vector<Tensor>& parameters,
                      const std::string& path);

// Loads values from `path` into `parameters` (shapes must match exactly).
// Accepts v2 only (CRC-validated before any tensor is touched); a legacy v1
// file yields FailedPrecondition naming the migration path.
[[nodiscard]] Status LoadParameters(const std::string& path,
                      std::vector<Tensor>& parameters);

// One-shot v1 -> v2 conversion (the `garl_fleet --migrate-v1` back end):
// parses the self-describing legacy stream at `src_path` and atomically
// writes it to `dst_path` as v2 with a CRC footer.
[[nodiscard]] Status MigrateV1ParameterFile(const std::string& src_path,
                                            const std::string& dst_path);

}  // namespace garl::nn

#endif  // GARL_NN_SERIALIZATION_H_
