#ifndef GARL_NN_LINEAR_H_
#define GARL_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace garl::nn {

// Fully connected layer: y = x W^T + b (x is [n, in] or [in]).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool with_bias = true);

  // [n, in] -> [n, out]; a 1-D [in] input yields a 1-D [out] output.
  Tensor Forward(const Tensor& input) const;

  std::vector<Tensor> Parameters() const override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }
  bool has_bias() const { return bias_.defined(); }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out] (undefined when with_bias=false)
};

}  // namespace garl::nn

#endif  // GARL_NN_LINEAR_H_
