#include "nn/init.h"

#include <cmath>

namespace garl::nn {

void UniformInit(Tensor& t, float bound, Rng& rng) {
  for (float& v : t.mutable_data()) v = rng.UniformF(-bound, bound);
}

void XavierInit(Tensor& t, int64_t fan_in, int64_t fan_out, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  UniformInit(t, bound, rng);
}

void KaimingInit(Tensor& t, int64_t fan_in, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(fan_in));
  UniformInit(t, bound, rng);
}

void ScaledXavierInit(Tensor& t, int64_t fan_in, int64_t fan_out, float gain,
                      Rng& rng) {
  XavierInit(t, fan_in, fan_out, rng);
  for (float& v : t.mutable_data()) v *= gain;
}

}  // namespace garl::nn
