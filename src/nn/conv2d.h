#ifndef GARL_NN_CONV2D_H_
#define GARL_NN_CONV2D_H_

#include "common/rng.h"
#include "nn/module.h"
#include "nn/tensor.h"

namespace garl::nn {

// 2-D convolution layer over [N, C, H, W] inputs (used by the UAV local-map
// policy, Eq. 17, and the CubicMap baseline).
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              int64_t stride, int64_t padding, Rng& rng);

  Tensor Forward(const Tensor& input) const;

  std::vector<Tensor> Parameters() const override;

  // Output spatial size for a given input size.
  int64_t OutputSize(int64_t input_size) const;

 private:
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  Tensor weight_;  // [out, in, k, k]
  Tensor bias_;    // [out]
};

}  // namespace garl::nn

#endif  // GARL_NN_CONV2D_H_
