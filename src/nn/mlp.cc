#include "nn/mlp.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::nn {

Tensor Activate(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
  }
  GARL_CHECK_MSG(false, "unknown activation");
  return x;
}

Mlp::Mlp(const std::vector<int64_t>& sizes, Activation activation, Rng& rng,
         bool activate_output)
    : activation_(activation), activate_output_(activate_output) {
  GARL_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(sizes[i], sizes[i + 1], rng));
  }
}

Tensor Mlp::Forward(const Tensor& input) const {
  Tensor x = input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    x = layers_[i]->Forward(x);
    bool last = (i + 1 == layers_.size());
    if (!last || activate_output_) x = Activate(x, activation_);
  }
  return x;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    for (const Tensor& p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::nn
