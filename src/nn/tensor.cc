#include "nn/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"
#include "nn/arena.h"

namespace garl::nn {

namespace internal {

TensorImpl::~TensorImpl() {
  arena::Release(std::move(value));
  arena::Release(std::move(grad));
}

int64_t TensorImpl::Numel() const {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != value.size()) {
    arena::Release(std::move(grad));
    grad = arena::AcquireZeroed(static_cast<int64_t>(value.size()));
  }
}

std::shared_ptr<TensorImpl> NewTensorImpl() {
  return std::allocate_shared<TensorImpl>(arena::NodePoolAllocator<TensorImpl>());
}

}  // namespace internal

using internal::TensorImpl;

Tensor Tensor::Wrap(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float fill,
                    bool requires_grad) {
  auto impl = internal::NewTensorImpl();
  impl->shape = std::move(shape);
  int64_t n = impl->Numel();
  GARL_CHECK_GE(n, 0);
  impl->value = arena::AcquireUninit(n);
  std::fill(impl->value.begin(), impl->value.end(), fill);
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values, bool requires_grad) {
  auto impl = internal::NewTensorImpl();
  impl->shape = std::move(shape);
  GARL_CHECK_EQ(impl->Numel(), static_cast<int64_t>(values.size()));
  impl->value = std::move(values);
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  auto impl = internal::NewTensorImpl();
  impl->value = arena::AcquireUninit(1);
  impl->value[0] = value;
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t = Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) t.impl_->value[i * n + i] = 1.0f;
  return t;
}

const std::vector<int64_t>& Tensor::shape() const {
  GARL_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t d) const {
  GARL_CHECK_GE(d, 0);
  GARL_CHECK_LT(d, dim());
  return shape()[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  GARL_CHECK(defined());
  return impl_->Numel();
}

bool Tensor::requires_grad() const {
  GARL_CHECK(defined());
  return impl_->requires_grad;
}

const std::vector<float>& Tensor::data() const {
  GARL_CHECK(defined());
  return impl_->value;
}

std::vector<float>& Tensor::mutable_data() {
  GARL_CHECK(defined());
  return impl_->value;
}

float Tensor::item() const {
  GARL_CHECK_EQ(numel(), 1);
  return impl_->value[0];
}

int64_t FlatIndex(const std::vector<int64_t>& shape,
                  const std::vector<int64_t>& idx) {
  GARL_CHECK_EQ(shape.size(), idx.size());
  int64_t flat = 0;
  for (size_t d = 0; d < shape.size(); ++d) {
    GARL_CHECK_GE(idx[d], 0);
    GARL_CHECK_LT(idx[d], shape[d]);
    flat = flat * shape[d] + idx[d];
  }
  return flat;
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data()[static_cast<size_t>(
      FlatIndex(shape(), std::vector<int64_t>(idx)))];
}

void Tensor::set(std::initializer_list<int64_t> idx, float v) {
  mutable_data()[static_cast<size_t>(
      FlatIndex(shape(), std::vector<int64_t>(idx)))] = v;
}

const std::vector<float>& Tensor::grad() const {
  GARL_CHECK(defined());
  GARL_CHECK_MSG(impl_->requires_grad, "grad() on non-grad tensor");
  impl_->EnsureGrad();
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  GARL_CHECK(defined());
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

namespace {

// Builds a reverse topological order (root first) over the autograd DAG.
void TopoSort(const std::shared_ptr<TensorImpl>& root,
              std::vector<TensorImpl*>& order) {
  std::unordered_set<TensorImpl*> visited;
  // Iterative DFS post-order, then reverse.
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  std::vector<TensorImpl*> post;
  if (visited.insert(root.get()).second) {
    stack.push_back({root.get(), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      post.push_back(frame.node);
      stack.pop_back();
    }
  }
  order.assign(post.rbegin(), post.rend());
}

}  // namespace

void Tensor::Backward() {
  GARL_CHECK(defined());
  GARL_CHECK_MSG(numel() == 1, "Backward() requires a scalar loss");
  std::vector<TensorImpl*> order;
  TopoSort(impl_, order);
  for (TensorImpl* node : order) node->EnsureGrad();
  impl_->grad[0] = 1.0f;
  for (TensorImpl* node : order) {
    if (node->backward_fn) node->backward_fn(*node);
  }
}

Tensor Tensor::Detach() const {
  GARL_CHECK(defined());
  auto impl = internal::NewTensorImpl();
  impl->shape = impl_->shape;
  impl->value = arena::AcquireUninit(static_cast<int64_t>(impl_->value.size()));
  std::copy(impl_->value.begin(), impl_->value.end(), impl->value.begin());
  impl->requires_grad = false;
  return Wrap(std::move(impl));
}

std::string Tensor::ShapeString() const {
  if (!defined()) return "<null>";
  std::vector<std::string> dims;
  for (int64_t d : shape()) dims.push_back(std::to_string(d));
  return "[" + Join(dims, ", ") + "]";
}

}  // namespace garl::nn
