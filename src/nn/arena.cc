#include "nn/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/env_flags.h"
#include "common/thread_pool.h"

// This file (with tensor.cc) is the sanctioned home of raw allocation in the
// repo: garl_lint's raw-new-delete rule exempts src/nn/arena.* so every
// other file has to funnel through it.

namespace garl::nn::arena {

namespace {

constexpr int64_t kAlignment = 64;

// --- process-wide counters (trivially destructible, safe at exit) ----------
std::atomic<int64_t> g_heap_allocs{0};
std::atomic<int64_t> g_reuses{0};
std::atomic<int64_t> g_releases{0};
std::atomic<int64_t> g_evictions{0};
std::atomic<int64_t> g_cached_bytes{0};
std::atomic<int64_t> g_high_water_bytes{0};
std::atomic<int64_t> g_scratch_bytes{0};
std::atomic<int64_t> g_node_heap_allocs{0};
std::atomic<int64_t> g_node_reuses{0};
std::atomic<int64_t> g_max_cached_override{-1};

int64_t MaxCachedBytes() {
  int64_t override_bytes = g_max_cached_override.load(std::memory_order_relaxed);
  if (override_bytes >= 0) return override_bytes;
  static const int64_t from_env =
      EnvInt("GARL_ARENA_MAX_CACHED_MB", 512) * (int64_t{1} << 20);
  return from_env;
}

void BumpHighWater(int64_t cached_now) {
  int64_t seen = g_high_water_bytes.load(std::memory_order_relaxed);
  while (cached_now > seen &&
         !g_high_water_bytes.compare_exchange_weak(seen, cached_now,
                                                   std::memory_order_relaxed)) {
  }
}

// Free lists keyed by element count. Buffers are stored at full size so a
// hit is ready to hand out without resizing.
using FreeLists = std::unordered_map<int64_t, std::vector<std::vector<float>>>;

// Capacity owned by exited threads, shared so survivors can reuse it.
struct Orphanage {
  std::mutex mutex;
  FreeLists lists;
};

Orphanage& GetOrphanage() {
  // Leaked on purpose: worker thread_local destructors may run during static
  // destruction, after a function-local static would already be gone.
  static Orphanage* orphanage = new Orphanage;  // garl-lint: allow(raw-new-delete)
  return *orphanage;
}

int64_t BytesOf(const std::vector<float>& buffer) {
  return static_cast<int64_t>(buffer.size() * sizeof(float));
}

struct ThreadCache {
  FreeLists lists;
  ~ThreadCache();
};

// Guard against touching the cache after its destructor ran (static/thread
// teardown order). The bool is trivially destructible so it stays valid for
// the whole thread lifetime.
thread_local bool t_cache_destroyed = false;
thread_local ThreadCache t_cache;

void MoveListsToOrphanage(FreeLists* lists) {
  if (lists->empty()) return;
  Orphanage& orphanage = GetOrphanage();
  std::lock_guard<std::mutex> lock(orphanage.mutex);
  for (auto& [numel, buffers] : *lists) {
    auto& dst = orphanage.lists[numel];
    std::move(buffers.begin(), buffers.end(), std::back_inserter(dst));
  }
  lists->clear();
}

ThreadCache::~ThreadCache() {
  t_cache_destroyed = true;
  MoveListsToOrphanage(&lists);
}

// --- autograd node free lists -----------------------------------------------
// Raw blocks for allocate_shared'd TensorImpl nodes. Same shape as the
// buffer pool: thread-local lists keyed by size class, orphanage for exited
// threads, shared cache-byte accounting. Blocks are rounded up to the
// alignment quantum so in practice one size class serves every node.

using NodeLists = std::unordered_map<std::size_t, std::vector<void*>>;

struct NodeOrphanage {
  std::mutex mutex;
  NodeLists lists;
};

NodeOrphanage& GetNodeOrphanage() {
  // Leaked for the same teardown-order reason as GetOrphanage above.
  static NodeOrphanage* orphanage = new NodeOrphanage;  // garl-lint: allow(raw-new-delete)
  return *orphanage;
}

struct NodeCache {
  NodeLists lists;
  ~NodeCache();
};

thread_local bool t_node_cache_destroyed = false;
thread_local NodeCache t_node_cache;

void MoveNodeListsToOrphanage(NodeLists* lists) {
  if (lists->empty()) return;
  NodeOrphanage& orphanage = GetNodeOrphanage();
  std::lock_guard<std::mutex> lock(orphanage.mutex);
  for (auto& [bytes, blocks] : *lists) {
    auto& dst = orphanage.lists[bytes];
    dst.insert(dst.end(), blocks.begin(), blocks.end());
  }
  lists->clear();
}

NodeCache::~NodeCache() {
  t_node_cache_destroyed = true;
  MoveNodeListsToOrphanage(&lists);
}

std::size_t NodeSizeClass(std::size_t bytes) {
  return (bytes + static_cast<std::size_t>(kAlignment) - 1) &
         ~(static_cast<std::size_t>(kAlignment) - 1);
}

bool PopCachedNode(std::size_t klass, void** out) {
  if (!t_node_cache_destroyed) {
    auto it = t_node_cache.lists.find(klass);
    if (it != t_node_cache.lists.end() && !it->second.empty()) {
      *out = it->second.back();
      it->second.pop_back();
      return true;
    }
  }
  NodeOrphanage& orphanage = GetNodeOrphanage();
  std::lock_guard<std::mutex> lock(orphanage.mutex);
  auto it = orphanage.lists.find(klass);
  if (it == orphanage.lists.end() || it->second.empty()) return false;
  *out = it->second.back();
  it->second.pop_back();
  return true;
}

// Dying pool workers hand their cached buffers and node blocks back to the
// shared pool promptly instead of waiting on thread_local teardown order.
void EnsureWorkerExitHook() {
  static std::once_flag register_flush;
  std::call_once(register_flush, [] {
    ThreadPool::RegisterWorkerExitHook(&FlushThreadCache);
  });
}

// Pops a recycled buffer of exactly `numel` elements, or returns false.
bool PopCached(int64_t numel, std::vector<float>* out) {
  if (!t_cache_destroyed) {
    auto it = t_cache.lists.find(numel);
    if (it != t_cache.lists.end() && !it->second.empty()) {
      *out = std::move(it->second.back());
      it->second.pop_back();
      return true;
    }
  }
  Orphanage& orphanage = GetOrphanage();
  std::lock_guard<std::mutex> lock(orphanage.mutex);
  auto it = orphanage.lists.find(numel);
  if (it == orphanage.lists.end() || it->second.empty()) return false;
  *out = std::move(it->second.back());
  it->second.pop_back();
  return true;
}

}  // namespace

ArenaStats GlobalStats() {
  ArenaStats stats;
  stats.heap_allocs = g_heap_allocs.load(std::memory_order_relaxed);
  stats.reuses = g_reuses.load(std::memory_order_relaxed);
  stats.releases = g_releases.load(std::memory_order_relaxed);
  stats.evictions = g_evictions.load(std::memory_order_relaxed);
  stats.cached_bytes = g_cached_bytes.load(std::memory_order_relaxed);
  stats.high_water_bytes = g_high_water_bytes.load(std::memory_order_relaxed);
  stats.scratch_bytes = g_scratch_bytes.load(std::memory_order_relaxed);
  stats.node_heap_allocs = g_node_heap_allocs.load(std::memory_order_relaxed);
  stats.node_reuses = g_node_reuses.load(std::memory_order_relaxed);
  return stats;
}

void ResetStatsForTest() {
  g_heap_allocs.store(0, std::memory_order_relaxed);
  g_reuses.store(0, std::memory_order_relaxed);
  g_releases.store(0, std::memory_order_relaxed);
  g_evictions.store(0, std::memory_order_relaxed);
  g_high_water_bytes.store(g_cached_bytes.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  g_node_heap_allocs.store(0, std::memory_order_relaxed);
  g_node_reuses.store(0, std::memory_order_relaxed);
}

std::vector<float> AcquireUninit(int64_t numel) {
  GARL_CHECK_GE(numel, 0);
  if (numel == 0) return {};
  EnsureWorkerExitHook();
  std::vector<float> buffer;
  if (PopCached(numel, &buffer)) {
    g_reuses.fetch_add(1, std::memory_order_relaxed);
    g_cached_bytes.fetch_sub(BytesOf(buffer), std::memory_order_relaxed);
    return buffer;
  }
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::vector<float>(static_cast<size_t>(numel));
}

std::vector<float> AcquireZeroed(int64_t numel) {
  std::vector<float> buffer = AcquireUninit(numel);
  std::fill(buffer.begin(), buffer.end(), 0.0f);
  return buffer;
}

void Release(std::vector<float>&& buffer) {
  if (buffer.empty()) return;
  g_releases.fetch_add(1, std::memory_order_relaxed);
  int64_t bytes = BytesOf(buffer);
  int64_t cached = g_cached_bytes.load(std::memory_order_relaxed);
  if (t_cache_destroyed || cached + bytes > MaxCachedBytes()) {
    g_evictions.fetch_add(1, std::memory_order_relaxed);
    std::vector<float> drop = std::move(buffer);  // freed here
    return;
  }
  int64_t numel = static_cast<int64_t>(buffer.size());
  t_cache.lists[numel].push_back(std::move(buffer));
  BumpHighWater(g_cached_bytes.fetch_add(bytes, std::memory_order_relaxed) +
                bytes);
}

void FlushThreadCache() {
  if (!t_cache_destroyed) MoveListsToOrphanage(&t_cache.lists);
  if (!t_node_cache_destroyed) MoveNodeListsToOrphanage(&t_node_cache.lists);
}

void* AcquireNode(std::size_t bytes) {
  EnsureWorkerExitHook();
  const std::size_t klass = NodeSizeClass(bytes);
  void* block = nullptr;
  if (PopCachedNode(klass, &block)) {
    g_node_reuses.fetch_add(1, std::memory_order_relaxed);
    g_cached_bytes.fetch_sub(static_cast<int64_t>(klass),
                             std::memory_order_relaxed);
    return block;
  }
  g_node_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return ::operator new(klass);
}

void ReleaseNode(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const std::size_t klass = NodeSizeClass(bytes);
  int64_t cached = g_cached_bytes.load(std::memory_order_relaxed);
  if (t_node_cache_destroyed ||
      cached + static_cast<int64_t>(klass) > MaxCachedBytes()) {
    g_evictions.fetch_add(1, std::memory_order_relaxed);
    ::operator delete(ptr);
    return;
  }
  t_node_cache.lists[klass].push_back(ptr);
  BumpHighWater(g_cached_bytes.fetch_add(static_cast<int64_t>(klass),
                                         std::memory_order_relaxed) +
                static_cast<int64_t>(klass));
}

void SetMaxCachedBytesForTest(int64_t max_bytes) {
  g_max_cached_override.store(max_bytes, std::memory_order_relaxed);
}

// --- Scratch arena ----------------------------------------------------------

namespace {

int64_t AlignUp(int64_t n) { return (n + kAlignment - 1) & ~(kAlignment - 1); }

}  // namespace

Arena::Arena(int64_t initial_bytes)
    : next_slab_bytes_(std::max<int64_t>(AlignUp(initial_bytes), kAlignment)) {}

Arena::~Arena() {
  for (Slab& slab : slabs_) {
    ::operator delete(slab.base, std::align_val_t{kAlignment});
  }
}

Arena::Slab& Arena::GrowFor(int64_t bytes) {
  int64_t capacity = std::max(next_slab_bytes_, AlignUp(bytes));
  next_slab_bytes_ = capacity * 2;
  Slab slab;
  slab.base = static_cast<char*>(
      ::operator new(static_cast<size_t>(capacity), std::align_val_t{kAlignment}));
  slab.capacity = capacity;
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  g_scratch_bytes.fetch_add(capacity, std::memory_order_relaxed);
  slabs_.push_back(slab);
  active_ = static_cast<int64_t>(slabs_.size()) - 1;
  return slabs_.back();
}

float* Arena::AllocateFloats(int64_t count) {
  GARL_CHECK_GE(count, 0);
  int64_t bytes = AlignUp(count * static_cast<int64_t>(sizeof(float)));
  // Try the active slab, then any later slab kept from a previous high-water
  // pass, then grow.
  for (int64_t s = active_; s < static_cast<int64_t>(slabs_.size()); ++s) {
    Slab& slab = slabs_[static_cast<size_t>(s)];
    if (slab.capacity - slab.used >= bytes) {
      float* out = reinterpret_cast<float*>(slab.base + slab.used);
      slab.used += bytes;
      active_ = s;
      g_reuses.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
  }
  Slab& slab = GrowFor(bytes);
  float* out = reinterpret_cast<float*>(slab.base);
  slab.used = bytes;
  return out;
}

void Arena::Reset() {
  for (Slab& slab : slabs_) slab.used = 0;
  active_ = 0;
}

Arena::Mark Arena::SaveMark() const {
  Mark mark;
  mark.slab = active_;
  mark.used = slabs_.empty()
                  ? 0
                  : slabs_[static_cast<size_t>(active_)].used;
  return mark;
}

void Arena::RestoreMark(Mark mark) {
  for (int64_t s = mark.slab + 1; s < static_cast<int64_t>(slabs_.size());
       ++s) {
    slabs_[static_cast<size_t>(s)].used = 0;
  }
  if (!slabs_.empty() && mark.slab < static_cast<int64_t>(slabs_.size())) {
    slabs_[static_cast<size_t>(mark.slab)].used = mark.used;
  }
  active_ = std::min(mark.slab,
                     std::max<int64_t>(
                         0, static_cast<int64_t>(slabs_.size()) - 1));
}

int64_t Arena::capacity_bytes() const {
  int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.capacity;
  return total;
}

int64_t Arena::used_bytes() const {
  int64_t total = 0;
  for (const Slab& slab : slabs_) total += slab.used;
  return total;
}

Arena& ThreadScratch() {
  thread_local Arena scratch;
  return scratch;
}

ScratchScope::ScratchScope() : mark_(ThreadScratch().SaveMark()) {}

ScratchScope::~ScratchScope() { ThreadScratch().RestoreMark(mark_); }

}  // namespace garl::nn::arena
