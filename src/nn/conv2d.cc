#include "nn/conv2d.h"

#include "common/check.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace garl::nn {

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, int64_t stride, int64_t padding,
                         Rng& rng)
    : kernel_(kernel), stride_(stride), padding_(padding) {
  GARL_CHECK_GT(in_channels, 0);
  GARL_CHECK_GT(out_channels, 0);
  GARL_CHECK_GT(kernel, 0);
  weight_ = Tensor::Zeros({out_channels, in_channels, kernel, kernel},
                          /*requires_grad=*/true);
  KaimingInit(weight_, in_channels * kernel * kernel, rng);
  bias_ = Tensor::Zeros({out_channels}, /*requires_grad=*/true);
}

Tensor Conv2dLayer::Forward(const Tensor& input) const {
  return Conv2d(input, weight_, bias_, stride_, padding_);
}

std::vector<Tensor> Conv2dLayer::Parameters() const {
  return {weight_, bias_};
}

int64_t Conv2dLayer::OutputSize(int64_t input_size) const {
  return (input_size + 2 * padding_ - kernel_) / stride_ + 1;
}

}  // namespace garl::nn
