#include "nn/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/ops.h"

namespace garl::nn {

namespace {
constexpr float kLogTwoPi = 1.8378770664093453f;
}

Categorical::Categorical(Tensor logits) : logits_(std::move(logits)) {
  GARL_CHECK(logits_.defined());
  GARL_CHECK_EQ(logits_.dim(), 1);
  GARL_CHECK_GT(logits_.size(0), 0);
}

std::vector<float> Categorical::Probabilities() const {
  NoGradGuard no_grad;
  return Softmax(logits_.Detach()).data();
}

int64_t Categorical::Sample(Rng& rng) const {
  std::vector<float> probs = Probabilities();
  std::vector<double> weights(probs.begin(), probs.end());
  return rng.SampleIndex(weights);
}

int64_t Categorical::Mode() const {
  const auto& v = logits_.data();
  return static_cast<int64_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

Tensor Categorical::LogProb(int64_t action) const {
  return Gather1d(LogSoftmax(logits_), action);
}

Tensor Categorical::Entropy() const {
  Tensor log_p = LogSoftmax(logits_);
  Tensor p = Softmax(logits_);
  return Neg(Sum(Mul(p, log_p)));
}

DiagGaussian::DiagGaussian(Tensor mean, Tensor log_std)
    : mean_(std::move(mean)), log_std_(std::move(log_std)) {
  GARL_CHECK(mean_.defined());
  GARL_CHECK(log_std_.defined());
  GARL_CHECK_EQ(mean_.dim(), 1);
  GARL_CHECK(mean_.shape() == log_std_.shape());
}

std::vector<float> DiagGaussian::Sample(Rng& rng) const {
  std::vector<float> out(mean_.data());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] += std::exp(log_std_.data()[i]) * rng.NormalF();
  }
  return out;
}

std::vector<float> DiagGaussian::Mode() const { return mean_.data(); }

Tensor DiagGaussian::LogProb(const std::vector<float>& action) const {
  GARL_CHECK_EQ(static_cast<int64_t>(action.size()), mean_.size(0));
  Tensor a = Tensor::FromVector({mean_.size(0)},
                                std::vector<float>(action.begin(),
                                                   action.end()));
  // logp = -0.5 * sum(((a-mu)/sigma)^2 + 2*log_sigma + log(2*pi)).
  Tensor std = Exp(log_std_);
  Tensor z = Div(Sub(a, mean_), std);
  Tensor per_dim = Add(AddScalar(MulScalar(log_std_, 2.0f), kLogTwoPi),
                       Square(z));
  return MulScalar(Sum(per_dim), -0.5f);
}

Tensor DiagGaussian::Entropy() const {
  // H = sum(log_sigma + 0.5*log(2*pi*e)).
  constexpr float kHalfLogTwoPiE = 1.4189385332046727f;
  return Sum(AddScalar(log_std_, kHalfLogTwoPiE));
}

}  // namespace garl::nn
