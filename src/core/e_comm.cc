#include "core/e_comm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "nn/ops.h"

namespace garl::core {

EComm::EComm(const rl::EnvContext& context, ECommConfig config, Rng& rng)
    : context_(&context), config_(config) {
  GARL_CHECK_GE(config_.layers, 1);
  for (int64_t l = 0; l < config_.layers; ++l) {
    phi_m_.push_back(
        std::make_unique<nn::Linear>(config_.hidden, config_.hidden, rng));
    phi_h_.push_back(
        std::make_unique<nn::Linear>(2 * config_.hidden, config_.hidden,
                                     rng));
    phi_g_.push_back(std::make_unique<nn::Linear>(config_.hidden, 1, rng));
  }
  w3_ = nn::Tensor::Zeros({2, 2}, /*requires_grad=*/true);
  nn::XavierInit(w3_, 2, 2, rng);
  phi_u_ = std::make_unique<nn::Linear>(config_.hidden + 2, config_.hidden,
                                        rng);
}

std::vector<std::vector<int64_t>> EComm::BuildNeighborhoods(
    const std::vector<nn::Tensor>& g0, double radius) {
  int64_t n = static_cast<int64_t>(g0.size());
  std::vector<std::vector<int64_t>> neighbors(static_cast<size_t>(n));
  for (int64_t u = 0; u < n; ++u) {
    double best = 1e18;
    int64_t nearest = -1;
    for (int64_t o = 0; o < n; ++o) {
      if (o == u) continue;
      double dx = g0[u].data()[0] - g0[o].data()[0];
      double dy = g0[u].data()[1] - g0[o].data()[1];
      double d = std::hypot(dx, dy);
      if (d <= radius) neighbors[static_cast<size_t>(u)].push_back(o);
      if (d < best) {
        best = d;
        nearest = o;
      }
    }
    if (neighbors[static_cast<size_t>(u)].empty() && nearest >= 0) {
      neighbors[static_cast<size_t>(u)].push_back(nearest);
    }
  }
  return neighbors;
}

void EComm::MaskNeighborhoods(
    const std::vector<std::vector<uint8_t>>& blocked,
    std::vector<std::vector<int64_t>>* neighbors) {
  auto link_blocked = [&blocked](size_t a, size_t b) {
    return a < blocked.size() && b < blocked[a].size() && blocked[a][b] != 0;
  };
  for (size_t u = 0; u < neighbors->size(); ++u) {
    auto& peers = (*neighbors)[u];
    peers.erase(std::remove_if(peers.begin(), peers.end(),
                               [&](int64_t o) {
                                 size_t so = static_cast<size_t>(o);
                                 return link_blocked(u, so) ||
                                        link_blocked(so, u);
                               }),
                peers.end());
  }
}

EComm::State EComm::Communicate(
    const std::vector<nn::Tensor>& h0, const std::vector<nn::Tensor>& g0,
    const std::vector<std::vector<int64_t>>& neighbors) const {
  GARL_CHECK_EQ(h0.size(), g0.size());
  GARL_CHECK_EQ(h0.size(), neighbors.size());
  State state{h0, g0};
  int64_t num_ugvs = static_cast<int64_t>(h0.size());

  for (int64_t l = 0; l < config_.layers; ++l) {
    std::vector<nn::Tensor> next_h(static_cast<size_t>(num_ugvs));
    std::vector<nn::Tensor> next_g(static_cast<size_t>(num_ugvs));
    // Messages are a function of the sender only (Eq. 27a): compute once.
    std::vector<nn::Tensor> sent(static_cast<size_t>(num_ugvs));
    for (int64_t u = 0; u < num_ugvs; ++u) {
      sent[static_cast<size_t>(u)] =
          nn::Tanh(phi_m_[l]->Forward(state.h[static_cast<size_t>(u)]));
    }
    for (int64_t u = 0; u < num_ugvs; ++u) {
      const auto& peers = neighbors[static_cast<size_t>(u)];
      if (peers.empty()) {
        // Isolated UGV: zero message, geometry unchanged.
        nn::Tensor zero = nn::Tensor::Zeros({config_.hidden});
        next_h[static_cast<size_t>(u)] = nn::Tanh(phi_h_[l]->Forward(
            nn::Concat({state.h[static_cast<size_t>(u)], zero}, 0)));
        next_g[static_cast<size_t>(u)] = state.g[static_cast<size_t>(u)];
        continue;
      }
      // Relative geometry (Eq. 25) and importance weights (Eq. 26).
      std::vector<nn::Tensor> r;        // [2] per peer (differentiable)
      std::vector<nn::Tensor> r_hat;    // unit vectors
      std::vector<float> weight_logits;
      for (int64_t peer : peers) {
        nn::Tensor diff = nn::Sub(state.g[static_cast<size_t>(u)],
                                  state.g[static_cast<size_t>(peer)]);
        r.push_back(diff);
        float norm = std::max<float>(
            std::hypot(diff.data()[0], diff.data()[1]),
            config_.min_distance);
        weight_logits.push_back(1.0f / norm);
        r_hat.push_back(nn::MulScalar(diff, 1.0f / norm));
      }
      // alpha = softmax(exp-logits): stabilized softmax over 1/||r||.
      float max_logit =
          *std::max_element(weight_logits.begin(), weight_logits.end());
      std::vector<float> alpha(weight_logits.size());
      float total = 0.0f;
      for (size_t i = 0; i < weight_logits.size(); ++i) {
        alpha[i] = std::exp(weight_logits[i] - max_logit);
        total += alpha[i];
      }
      for (float& a : alpha) a /= total;

      // Aggregate messages (Eq. 27b) and the radial update (Eq. 28).
      nn::Tensor m = nn::Tensor::Zeros({config_.hidden});
      nn::Tensor g_tilde = nn::Tensor::Zeros({2});
      for (size_t i = 0; i < peers.size(); ++i) {
        const nn::Tensor& msg = sent[static_cast<size_t>(peers[i])];
        m = nn::Add(m, nn::MulScalar(msg, alpha[i]));
        nn::Tensor scale = phi_g_[l]->Forward(msg);  // [1]
        nn::Tensor contrib = nn::MulScalar(
            nn::Mul(nn::Concat({scale, scale}, 0), r_hat[i]), alpha[i]);
        g_tilde = nn::Add(g_tilde, contrib);
      }
      next_h[static_cast<size_t>(u)] = nn::Tanh(phi_h_[l]->Forward(
          nn::Concat({state.h[static_cast<size_t>(u)], m}, 0)));
      // Eq. 29: clipped radial step. The clip is applied to the vector's
      // *norm* (rescaling), not per component — component-wise clipping
      // would depend on the coordinate frame and break rotation
      // equivariance.
      float g_norm = std::hypot(g_tilde.data()[0], g_tilde.data()[1]);
      if (g_norm > config_.g_clip) {
        g_tilde = nn::MulScalar(g_tilde, config_.g_clip / g_norm);
      }
      next_g[static_cast<size_t>(u)] =
          nn::Add(state.g[static_cast<size_t>(u)], g_tilde);
    }
    state.h = std::move(next_h);
    state.g = std::move(next_g);
  }
  return state;
}

EComm::Readout EComm::ReadOut(const nn::Tensor& h_final,
                              const nn::Tensor& g_final,
                              const nn::Tensor& stop_xy) const {
  GARL_CHECK_EQ(stop_xy.dim(), 2);
  GARL_CHECK_EQ(stop_xy.size(1), 2);
  // z = X[:2] W3 g^T (Eq. 30a): [B,2] x [2,2] x [2,1] -> [B].
  nn::Tensor g_col = nn::Reshape(g_final, {2, 1});
  nn::Tensor z = nn::Reshape(
      nn::MatMul(nn::MatMul(stop_xy, w3_), g_col), {stop_xy.size(0)});
  // Pool z to keep phi_u's input size independent of B; the full z vector
  // is returned for the policy's target prior.
  float inv_b = 1.0f / static_cast<float>(stop_xy.size(0));
  nn::Tensor z_mean = nn::Reshape(nn::MulScalar(nn::Sum(z), inv_b), {1});
  nn::Tensor z_norm = nn::Reshape(nn::Norm(z), {1});
  nn::Tensor z_stats = nn::Concat({z_mean, z_norm}, 0);
  Readout out;
  out.stop_preference = z;
  out.feature = nn::Tanh(
      phi_u_->Forward(nn::Concat({h_final, z_stats}, 0)));
  return out;
}

std::vector<nn::Tensor> EComm::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& layer : {&phi_m_, &phi_h_, &phi_g_}) {
    for (const auto& module : *layer) {
      for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
    }
  }
  params.push_back(w3_);
  for (const nn::Tensor& p : phi_u_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace garl::core
