#include "core/mc_gcn.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::core {

McGcn::McGcn(const rl::EnvContext& context, McGcnConfig config, Rng& rng)
    : context_(&context), config_(config) {
  GARL_CHECK_GE(config_.layers, 1);
  for (int64_t l = 0; l < config_.layers; ++l) {
    int64_t dim = (l == 0) ? 3 : config_.hidden;
    attention_.push_back(
        std::make_unique<nn::Linear>(dim, dim, rng, /*with_bias=*/false));
    weights_.push_back(std::make_unique<nn::Linear>(dim, config_.hidden, rng,
                                                    /*with_bias=*/false));
  }
  // Readout consumes [mean-pool ; attention-pool ; self-node row] of the
  // top layer. The self row keeps the feature UGV-specific even when the
  // multi-center attention coincides across agents (exact for U = 2).
  readout_ = std::make_unique<nn::Linear>(3 * config_.hidden,
                                          config_.out_dim, rng);
}

nn::Tensor HopRelevance(const rl::EnvContext& context, int64_t stop,
                        int64_t threshold) {
  int64_t num_stops = context.num_stops;
  GARL_CHECK_GE(stop, 0);
  GARL_CHECK_LT(stop, num_stops);
  nn::Tensor s = nn::Tensor::Zeros({num_stops});
  auto& data = s.mutable_data();
  const auto& hops = context.hops[static_cast<size_t>(stop)];
  for (int64_t b = 0; b < num_stops; ++b) {
    int64_t d = hops[static_cast<size_t>(b)];
    if (d < 0 || d > threshold) continue;  // s = 1/inf = 0
    data[static_cast<size_t>(b)] = 1.0f / (static_cast<float>(d) + 1.0f);
  }
  return s;
}

nn::Tensor McGcn::Relevance(int64_t stop) const {
  return HopRelevance(*context_, stop, config_.hop_threshold);
}

nn::Tensor McGcn::StructureFeatures(const std::vector<int64_t>& ugv_stops,
                                    int64_t self) const {
  int64_t num_ugvs = static_cast<int64_t>(ugv_stops.size());
  GARL_CHECK_GE(self, 0);
  GARL_CHECK_LT(self, num_ugvs);
  nn::Tensor s = Relevance(ugv_stops[static_cast<size_t>(self)]);
  if (num_ugvs == 1) return s;
  auto& data = s.mutable_data();
  float inv_others = 1.0f / static_cast<float>(num_ugvs - 1);
  for (int64_t other = 0; other < num_ugvs; ++other) {
    if (other == self) continue;
    nn::Tensor so = Relevance(ugv_stops[static_cast<size_t>(other)]);
    for (size_t b = 0; b < data.size(); ++b) {
      data[b] -= inv_others * so.data()[b];
    }
  }
  return s;
}

McGcn::Output McGcn::Forward(const nn::Tensor& stop_features,
                             const std::vector<int64_t>& ugv_stops,
                             int64_t self) const {
  GARL_CHECK_EQ(stop_features.dim(), 2);
  GARL_CHECK_EQ(stop_features.size(0), context_->num_stops);
  GARL_CHECK_EQ(stop_features.size(1), 3);
  int64_t num_ugvs = static_cast<int64_t>(ugv_stops.size());
  nn::Tensor structure = StructureFeatures(ugv_stops, self);

  nn::Tensor h = stop_features;
  nn::Tensor attention_weights;  // C of the most recent layer
  for (size_t l = 0; l < weights_.size(); ++l) {
    // Attention scores (Eq. 21a): F^{uu'} = H W1 (H[b_t^{u'}])^T -> [B].
    nn::Tensor hw = attention_[l]->Forward(h);  // [B, d]
    auto attend_to = [&](int64_t stop) {
      nn::Tensor center = nn::Rows(h, stop, 1);          // [1, d]
      return nn::Reshape(nn::MatMul(hw, nn::Transpose(center)),
                         {context_->num_stops});          // [B]
    };
    nn::Tensor node_scores =
        attend_to(ugv_stops[static_cast<size_t>(self)]);  // F^{uu}
    if (num_ugvs > 1) {
      // Multi-center reduction (Eq. 21b).
      std::vector<nn::Tensor> others;
      for (int64_t other = 0; other < num_ugvs; ++other) {
        if (other == self) continue;
        others.push_back(attend_to(ugv_stops[static_cast<size_t>(other)]));
      }
      nn::Tensor mean_others = others[0];
      for (size_t i = 1; i < others.size(); ++i) {
        mean_others = nn::Add(mean_others, others[i]);
      }
      mean_others =
          nn::MulScalar(mean_others, 1.0f / static_cast<float>(others.size()));
      node_scores = nn::Sub(node_scores, mean_others);
    }
    // C = softmax(S . N), scaled by B so the mean node weight stays ~1 and
    // deep stacks do not wash features out (Eq. 21c).
    attention_weights = nn::MulScalar(
        nn::Softmax(nn::Mul(structure, node_scores)),
        static_cast<float>(context_->num_stops));
    // Attention-weighted graph convolution (Eq. 22).
    nn::Tensor propagated =
        weights_[l]->Forward(nn::MatMul(context_->laplacian, h));
    h = nn::Tanh(nn::ScaleRows(propagated, attention_weights));
  }

  // Readout (Eq. 23): mean pooling + attention pooling, then phi_H.
  float inv_b = 1.0f / static_cast<float>(context_->num_stops);
  nn::Tensor mean_pool = nn::MulScalar(nn::SumDim(h, 0), inv_b);
  nn::Tensor attn_pool = nn::MulScalar(
      nn::SumDim(nn::ScaleRows(h, attention_weights), 0), inv_b);
  nn::Tensor self_row = nn::Reshape(
      nn::Rows(h, ugv_stops[static_cast<size_t>(self)], 1),
      {config_.hidden});
  Output out;
  out.feature = nn::Tanh(
      readout_->Forward(nn::Concat({mean_pool, attn_pool, self_row}, 0)));
  out.attention = attention_weights;
  return out;
}

std::vector<nn::Tensor> McGcn::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& w : attention_) {
    for (const nn::Tensor& p : w->Parameters()) params.push_back(p);
  }
  for (const auto& w : weights_) {
    for (const nn::Tensor& p : w->Parameters()) params.push_back(p);
  }
  for (const nn::Tensor& p : readout_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace garl::core
