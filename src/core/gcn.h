#ifndef GARL_CORE_GCN_H_
#define GARL_CORE_GCN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

// Plain graph convolution stack (Eq. 1a): X^{l+1} = sigma(L X^l W^l).
// Used by the GARL-w/o-MC ablation and the communication baselines that
// need a vanilla spatial encoder.

namespace garl::core {

class GcnStack : public nn::Module {
 public:
  // `laplacian` is the precomputed normalized Laplacian [B, B] (Eq. 1b).
  GcnStack(nn::Tensor laplacian, int64_t in_dim, int64_t hidden,
           int64_t layers, Rng& rng);

  // [B, in_dim] -> [B, hidden].
  nn::Tensor Forward(const nn::Tensor& node_features) const;

  std::vector<nn::Tensor> Parameters() const override;

  int64_t hidden() const { return hidden_; }
  int64_t layers() const { return static_cast<int64_t>(weights_.size()); }
  // Read-only layer access for the serving-plan compiler (core/serving_plan).
  const nn::Linear& weight(int64_t layer) const {
    return *weights_[static_cast<size_t>(layer)];
  }

 private:
  nn::Tensor laplacian_;
  int64_t hidden_;
  std::vector<std::unique_ptr<nn::Linear>> weights_;
};

}  // namespace garl::core

#endif  // GARL_CORE_GCN_H_
