#include "core/serving_plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "core/garl_extractor.h"
#include "env/geometry.h"

// The scalar kernels below intentionally mirror the accumulation orders of
// the tensor forward (nn/ops.cc, core/mc_gcn.cc, core/e_comm.cc,
// rl/feature_policy.cc): products before sums, ascending-index running
// totals, max-subtracted softmax, float hypot where the tensor path uses
// float hypot and double where it uses double. Bit-identity is guaranteed
// between Execute() calls (the only thing the determinism gates compare);
// agreement with the tensor path is argmax-level and test-enforced.

namespace garl::core {
namespace {

ServingDense SnapshotDense(const nn::Linear& layer) {
  ServingDense dense;
  dense.in = layer.in_features();
  dense.out = layer.out_features();
  dense.w = layer.weight().data();
  if (layer.has_bias()) dense.b = layer.bias().data();
  return dense;
}

// y = W x (+ b): product sums ascend over the input index, the bias lands
// after the accumulation like MatMul-then-Add does.
void DenseVec(const ServingDense& d, const float* x, float* y) {
  for (int64_t i = 0; i < d.out; ++i) {
    const float* row = d.w.data() + i * d.in;
    float acc = 0.0f;
    for (int64_t j = 0; j < d.in; ++j) acc += row[j] * x[j];
    y[i] = d.b.empty() ? acc : acc + d.b[static_cast<size_t>(i)];
  }
}

void TanhInPlace(float* x, int64_t n) {
  for (int64_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
}

float DotAscending(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

// Max-subtracted softmax with an ascending running total (nn::Softmax).
void SoftmaxInPlace(float* x, int64_t n) {
  float max_v = x[0];
  for (int64_t i = 1; i < n; ++i) max_v = std::max(max_v, x[i]);
  float total = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    x[i] = std::exp(x[i] - max_v);
    total += x[i];
  }
  for (int64_t i = 0; i < n; ++i) x[i] /= total;
}

int64_t FirstMaxIndex(const float* x, int64_t n) {
  int64_t best = 0;
  for (int64_t i = 1; i < n; ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

Status ValidateObservation(const env::UgvObservation& obs, int64_t num_stops) {
  if (!obs.stop_features.defined() || obs.stop_features.dim() != 2 ||
      obs.stop_features.size(0) != num_stops ||
      obs.stop_features.size(1) != 3) {
    return InvalidArgumentError("serving: stop_features must be [B, 3]");
  }
  int64_t obs_ugvs = static_cast<int64_t>(obs.ugv_stops.size());
  if (obs_ugvs == 0 || obs.self < 0 || obs.self >= obs_ugvs) {
    return InvalidArgumentError("serving: self out of ugv_stops range");
  }
  if (!obs.ugv_positions.defined() || obs.ugv_positions.dim() != 2 ||
      obs.ugv_positions.size(1) != 2 ||
      obs.ugv_positions.size(0) < obs_ugvs) {
    return InvalidArgumentError("serving: ugv_positions must be [U, 2]");
  }
  for (int64_t stop : obs.ugv_stops) {
    if (stop < 0 || stop >= num_stops) {
      return InvalidArgumentError("serving: ugv stop index out of range");
    }
  }
  if (obs.current_stop < 0 || obs.current_stop >= num_stops) {
    return InvalidArgumentError("serving: current_stop out of range");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ServingPlan> ServingPlan::Compile(const rl::FeatureUgvPolicy& policy,
                                           const rl::EnvContext& context) {
  const auto* extractor =
      dynamic_cast<const GarlExtractor*>(&policy.extractor());
  if (extractor == nullptr) {
    return FailedPreconditionError(
        "serving: only GarlExtractor-backed policies can be compiled (got " +
        policy.name() + ")");
  }
  if (context.num_stops <= 0 || context.num_ugvs <= 0) {
    return InvalidArgumentError("serving: empty env context");
  }
  const GarlConfig& config = extractor->config();

  ServingPlan plan;
  plan.num_stops_ = context.num_stops;
  plan.num_ugvs_ = context.num_ugvs;
  plan.use_mc_ = config.use_mc;
  plan.use_e_ = config.use_e;
  plan.mc_hidden_ = config.mc_gcn.hidden;
  plan.e_hidden_ = config.e_comm.hidden;
  plan.policy_hidden_ = policy.options().hidden;
  plan.mc_separation_ = config.mc_separation;
  plan.e_radial_ = config.e_radial;
  plan.g_clip_ = config.e_comm.g_clip;
  plan.min_distance_ = config.e_comm.min_distance;
  plan.prior_scale_ = policy.options().prior_scale;
  plan.release_prior_scale_ = policy.options().release_prior_scale;
  plan.neighbor_radius_norm_ = context.neighbor_radius_norm;

  const int64_t B = plan.num_stops_;
  if (!context.laplacian.defined() ||
      context.laplacian.numel() != B * B ||
      !context.stop_xy.defined() || context.stop_xy.numel() != B * 2 ||
      static_cast<int64_t>(context.hops.size()) != B) {
    return InvalidArgumentError("serving: malformed env context tables");
  }
  plan.laplacian_ = context.laplacian.data();
  plan.stop_xy_ = context.stop_xy.data();
  plan.hops_ = context.hops;

  // HopRelevance for every possible center stop (Eq. 19-20), so serving
  // never recomputes shortest-path reciprocals.
  plan.relevance_.assign(static_cast<size_t>(B * B), 0.0f);
  for (int64_t s = 0; s < B; ++s) {
    const auto& hops = context.hops[static_cast<size_t>(s)];
    if (static_cast<int64_t>(hops.size()) != B) {
      return InvalidArgumentError("serving: malformed hop table");
    }
    for (int64_t b = 0; b < B; ++b) {
      int64_t d = hops[static_cast<size_t>(b)];
      if (d < 0 || d > config.mc_gcn.hop_threshold) continue;
      plan.relevance_[static_cast<size_t>(s * B + b)] =
          1.0f / (static_cast<float>(d) + 1.0f);
    }
  }

  for (int64_t u = 0; u < plan.num_ugvs_; ++u) {
    const nn::Tensor& prior = policy.direction_prior(u);
    if (!prior.defined() || prior.numel() != B) {
      return InvalidArgumentError("serving: malformed direction prior");
    }
    plan.direction_prior_.insert(plan.direction_prior_.end(),
                                 prior.data().begin(), prior.data().end());
  }

  if (plan.use_mc_) {
    const McGcn* mc = extractor->mc_gcn();
    GARL_CHECK(mc != nullptr);
    for (int64_t l = 0; l < config.mc_gcn.layers; ++l) {
      plan.mc_attention_.push_back(SnapshotDense(mc->attention(l)));
      plan.mc_weights_.push_back(SnapshotDense(mc->weight(l)));
      plan.spatial_ops_.push_back({ServingOpKind::kMcLayer, l});
    }
    plan.mc_readout_ = SnapshotDense(mc->readout());
    plan.spatial_ops_.insert(plan.spatial_ops_.begin(),
                             {ServingOpKind::kMcStructure, 0});
    plan.spatial_ops_.push_back({ServingOpKind::kMcReadout, 0});
  } else {
    const GcnStack* gcn = extractor->gcn();
    GARL_CHECK(gcn != nullptr);
    GARL_CHECK(extractor->gcn_readout() != nullptr);
    for (int64_t l = 0; l < gcn->layers(); ++l) {
      plan.gcn_weights_.push_back(SnapshotDense(gcn->weight(l)));
      plan.spatial_ops_.push_back({ServingOpKind::kGcnLayer, l});
    }
    plan.gcn_readout_ = SnapshotDense(*extractor->gcn_readout());
    plan.spatial_ops_.push_back({ServingOpKind::kGcnReadout, 0});
  }

  if (plan.use_e_) {
    const EComm* e_comm = extractor->e_comm();
    GARL_CHECK(e_comm != nullptr);
    for (int64_t l = 0; l < config.e_comm.layers; ++l) {
      plan.phi_m_.push_back(SnapshotDense(e_comm->phi_m(l)));
      plan.phi_h_.push_back(SnapshotDense(e_comm->phi_h(l)));
      plan.phi_g_.push_back(SnapshotDense(e_comm->phi_g(l)));
      plan.comm_ops_.push_back({ServingOpKind::kCommLayer, l});
    }
    plan.phi_u_ = SnapshotDense(e_comm->phi_u());
    plan.comm_ops_.push_back({ServingOpKind::kCommReadout, 0});
    // X[:2] W3 (Eq. 30a) is request-independent: fold it once.
    const std::vector<float>& w3 = e_comm->w3().data();
    if (w3.size() != 4) {
      return InvalidArgumentError("serving: W3 must be [2, 2]");
    }
    plan.xy_w3_.assign(static_cast<size_t>(B * 2), 0.0f);
    for (int64_t b = 0; b < B; ++b) {
      for (int64_t k = 0; k < 2; ++k) {
        float acc = 0.0f;
        for (int64_t j = 0; j < 2; ++j) {
          acc += plan.stop_xy_[static_cast<size_t>(b * 2 + j)] *
                 w3[static_cast<size_t>(j * 2 + k)];
        }
        plan.xy_w3_[static_cast<size_t>(b * 2 + k)] = acc;
      }
    }
  }

  plan.trunk_ = SnapshotDense(policy.trunk());
  plan.release_head_ = SnapshotDense(policy.release_head());
  plan.target_head_ = SnapshotDense(policy.target_head());
  plan.value_head_ = SnapshotDense(policy.value_head());
  if (plan.trunk_.in != plan.e_hidden_ + 2 ||
      plan.target_head_.out != B || plan.release_head_.out != 2 ||
      plan.value_head_.out != 1) {
    return FailedPreconditionError(
        "serving: policy head shapes do not match the GARL layout");
  }
  return plan;
}

bool ServingPlan::ShapeCompatible(const ServingPlan& other) const {
  return num_stops_ == other.num_stops_ && num_ugvs_ == other.num_ugvs_ &&
         use_mc_ == other.use_mc_ && use_e_ == other.use_e_ &&
         mc_hidden_ == other.mc_hidden_ && e_hidden_ == other.e_hidden_ &&
         policy_hidden_ == other.policy_hidden_ &&
         spatial_ops_.size() == other.spatial_ops_.size() &&
         comm_ops_.size() == other.comm_ops_.size();
}

ServingWorkspace ServingPlan::MakeWorkspace() const {
  ServingWorkspace ws;
  const size_t B = static_cast<size_t>(num_stops_);
  const size_t U = static_cast<size_t>(num_ugvs_);
  const size_t max_dim =
      static_cast<size_t>(std::max<int64_t>(3, std::max(mc_hidden_, e_hidden_)));
  const size_t e = static_cast<size_t>(e_hidden_);
  ws.h.assign(B * max_dim, 0.0f);
  ws.h_next.assign(B * max_dim, 0.0f);
  ws.hw.assign(B * max_dim, 0.0f);
  ws.lh.assign(B * max_dim, 0.0f);
  ws.structure.assign(B, 0.0f);
  ws.scores.assign(B, 0.0f);
  ws.scores_acc.assign(B, 0.0f);
  ws.attn.assign(B, 0.0f);
  ws.pooled.assign(3 * static_cast<size_t>(std::max(mc_hidden_, e_hidden_)),
                   0.0f);
  ws.spatial.assign(U * e, 0.0f);
  ws.features.assign(U * e, 0.0f);
  ws.comm_h.assign(U * e, 0.0f);
  ws.comm_h_next.assign(U * e, 0.0f);
  ws.sent.assign(U * e, 0.0f);
  ws.g.assign(U * 2, 0.0f);
  ws.g_next.assign(U * 2, 0.0f);
  ws.m.assign(e, 0.0f);
  ws.phi_h_in.assign(2 * e, 0.0f);
  ws.peer_logits.assign(U, 0.0f);
  ws.alpha.assign(U, 0.0f);
  ws.r_hat.assign(U * 2, 0.0f);
  ws.neighbors.resize(U);
  for (auto& list : ws.neighbors) list.reserve(U);
  ws.head_in.assign(e + 2, 0.0f);
  ws.trunk.assign(static_cast<size_t>(policy_hidden_), 0.0f);
  ws.data_est.assign(B, 0.0f);
  ws.relevance.assign(B, 0.0f);
  ws.release_logits.assign(U * 2, 0.0f);
  ws.target_logits.assign(U * B, 0.0f);
  ws.values.assign(U, 0.0f);
  return ws;
}

void ServingPlan::RunSpatial(const env::UgvObservation& obs, int64_t slot,
                             ServingWorkspace* ws) const {
  const int64_t B = num_stops_;
  const std::vector<float>& sf = obs.stop_features.data();
  std::memcpy(ws->h.data(), sf.data(), sizeof(float) * static_cast<size_t>(B * 3));
  const int64_t self_stop = obs.ugv_stops[static_cast<size_t>(obs.self)];
  const int64_t obs_ugvs = static_cast<int64_t>(obs.ugv_stops.size());

  for (const ServingOp& op : spatial_ops_) {
    switch (op.kind) {
      case ServingOpKind::kMcStructure: {
        // S (Eq. 18): own relevance minus the mean of the other centers'.
        const float* self_rel = &relevance_[static_cast<size_t>(self_stop * B)];
        std::memcpy(ws->structure.data(), self_rel,
                    sizeof(float) * static_cast<size_t>(B));
        if (obs_ugvs > 1) {
          float inv_others = 1.0f / static_cast<float>(obs_ugvs - 1);
          for (int64_t other = 0; other < obs_ugvs; ++other) {
            if (other == obs.self) continue;
            const float* so = &relevance_[static_cast<size_t>(
                obs.ugv_stops[static_cast<size_t>(other)] * B)];
            for (int64_t b = 0; b < B; ++b) {
              ws->structure[static_cast<size_t>(b)] -=
                  inv_others * so[b];
            }
          }
        }
        break;
      }
      case ServingOpKind::kMcLayer: {
        const int64_t d = (op.layer == 0) ? 3 : mc_hidden_;
        const ServingDense& att = mc_attention_[static_cast<size_t>(op.layer)];
        const ServingDense& w = mc_weights_[static_cast<size_t>(op.layer)];
        // hw = H W1; attention scores F (Eq. 21a) via dot with center rows.
        for (int64_t b = 0; b < B; ++b) {
          DenseVec(att, ws->h.data() + b * d, ws->hw.data() + b * d);
        }
        const float* center = ws->h.data() + self_stop * d;
        for (int64_t b = 0; b < B; ++b) {
          ws->scores[static_cast<size_t>(b)] =
              DotAscending(ws->hw.data() + b * d, center, d);
        }
        if (obs_ugvs > 1) {
          // Multi-center reduction (Eq. 21b).
          std::fill(ws->scores_acc.begin(), ws->scores_acc.end(), 0.0f);
          int64_t others = 0;
          for (int64_t other = 0; other < obs_ugvs; ++other) {
            if (other == obs.self) continue;
            ++others;
            const float* other_center =
                ws->h.data() +
                obs.ugv_stops[static_cast<size_t>(other)] * d;
            for (int64_t b = 0; b < B; ++b) {
              ws->scores_acc[static_cast<size_t>(b)] +=
                  DotAscending(ws->hw.data() + b * d, other_center, d);
            }
          }
          float inv = 1.0f / static_cast<float>(others);
          for (int64_t b = 0; b < B; ++b) {
            ws->scores[static_cast<size_t>(b)] -=
                ws->scores_acc[static_cast<size_t>(b)] * inv;
          }
        }
        // C = B * softmax(S . N) (Eq. 21c).
        for (int64_t b = 0; b < B; ++b) {
          ws->attn[static_cast<size_t>(b)] =
              ws->structure[static_cast<size_t>(b)] *
              ws->scores[static_cast<size_t>(b)];
        }
        SoftmaxInPlace(ws->attn.data(), B);
        const float scale = static_cast<float>(B);
        for (int64_t b = 0; b < B; ++b) {
          ws->attn[static_cast<size_t>(b)] *= scale;
        }
        // H' = tanh(C . (L H W2)) (Eq. 22).
        for (int64_t i = 0; i < B; ++i) {
          const float* lrow = &laplacian_[static_cast<size_t>(i * B)];
          for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t k = 0; k < B; ++k) {
              acc += lrow[k] * ws->h[static_cast<size_t>(k * d + j)];
            }
            ws->lh[static_cast<size_t>(i * d + j)] = acc;
          }
        }
        for (int64_t b = 0; b < B; ++b) {
          DenseVec(w, ws->lh.data() + b * d,
                   ws->h_next.data() + b * mc_hidden_);
        }
        for (int64_t b = 0; b < B; ++b) {
          const float c = ws->attn[static_cast<size_t>(b)];
          float* row = ws->h_next.data() + b * mc_hidden_;
          for (int64_t j = 0; j < mc_hidden_; ++j) {
            row[j] = std::tanh(row[j] * c);
          }
        }
        std::swap(ws->h, ws->h_next);
        break;
      }
      case ServingOpKind::kMcReadout: {
        // Eq. 23: [mean-pool ; attention-pool ; self row] -> phi_H.
        const float inv_b = 1.0f / static_cast<float>(B);
        const int64_t hd = mc_hidden_;
        for (int64_t j = 0; j < hd; ++j) {
          float mean_acc = 0.0f;
          float attn_acc = 0.0f;
          for (int64_t b = 0; b < B; ++b) {
            const float v = ws->h[static_cast<size_t>(b * hd + j)];
            mean_acc += v;
            attn_acc += v * ws->attn[static_cast<size_t>(b)];
          }
          ws->pooled[static_cast<size_t>(j)] = mean_acc * inv_b;
          ws->pooled[static_cast<size_t>(hd + j)] = attn_acc * inv_b;
        }
        std::memcpy(ws->pooled.data() + 2 * hd,
                    ws->h.data() + self_stop * hd,
                    sizeof(float) * static_cast<size_t>(hd));
        float* out = ws->spatial.data() + slot * e_hidden_;
        DenseVec(mc_readout_, ws->pooled.data(), out);
        TanhInPlace(out, e_hidden_);
        break;
      }
      case ServingOpKind::kGcnLayer: {
        const int64_t d = (op.layer == 0) ? 3 : mc_hidden_;
        const ServingDense& w = gcn_weights_[static_cast<size_t>(op.layer)];
        for (int64_t i = 0; i < B; ++i) {
          const float* lrow = &laplacian_[static_cast<size_t>(i * B)];
          for (int64_t j = 0; j < d; ++j) {
            float acc = 0.0f;
            for (int64_t k = 0; k < B; ++k) {
              acc += lrow[k] * ws->h[static_cast<size_t>(k * d + j)];
            }
            ws->lh[static_cast<size_t>(i * d + j)] = acc;
          }
        }
        for (int64_t b = 0; b < B; ++b) {
          float* row = ws->h_next.data() + b * mc_hidden_;
          DenseVec(w, ws->lh.data() + b * d, row);
          TanhInPlace(row, mc_hidden_);
        }
        std::swap(ws->h, ws->h_next);
        break;
      }
      case ServingOpKind::kGcnReadout: {
        const float inv_b = 1.0f / static_cast<float>(B);
        for (int64_t j = 0; j < mc_hidden_; ++j) {
          float acc = 0.0f;
          for (int64_t b = 0; b < B; ++b) {
            acc += ws->h[static_cast<size_t>(b * mc_hidden_ + j)];
          }
          ws->pooled[static_cast<size_t>(j)] = acc * inv_b;
        }
        float* out = ws->spatial.data() + slot * e_hidden_;
        DenseVec(gcn_readout_, ws->pooled.data(), out);
        TanhInPlace(out, e_hidden_);
        break;
      }
      default:
        GARL_CHECK_MSG(false, "spatial section holds no comm/head ops");
    }
  }
}

void ServingPlan::RunComm(const std::vector<env::UgvObservation>& observations,
                          ServingWorkspace* ws) const {
  const int64_t U = static_cast<int64_t>(observations.size());
  const int64_t e = e_hidden_;

  for (int64_t u = 0; u < U; ++u) {
    const env::UgvObservation& obs = observations[static_cast<size_t>(u)];
    const std::vector<float>& pos = obs.ugv_positions.data();
    ws->g[static_cast<size_t>(u * 2 + 0)] =
        pos[static_cast<size_t>(obs.self * 2 + 0)];
    ws->g[static_cast<size_t>(u * 2 + 1)] =
        pos[static_cast<size_t>(obs.self * 2 + 1)];
  }

  // Neighborhoods by radius with nearest-peer fallback
  // (EComm::BuildNeighborhoods; distances in double like the tensor path).
  for (int64_t u = 0; u < U; ++u) {
    auto& peers = ws->neighbors[static_cast<size_t>(u)];
    peers.clear();
    double best = 1e18;
    int64_t nearest = -1;
    for (int64_t o = 0; o < U; ++o) {
      if (o == u) continue;
      double dx = ws->g[static_cast<size_t>(u * 2)] -
                  ws->g[static_cast<size_t>(o * 2)];
      double dy = ws->g[static_cast<size_t>(u * 2 + 1)] -
                  ws->g[static_cast<size_t>(o * 2 + 1)];
      double dist = std::hypot(dx, dy);
      if (dist <= neighbor_radius_norm_) peers.push_back(o);
      if (dist < best) {
        best = dist;
        nearest = o;
      }
    }
    if (peers.empty() && nearest >= 0) peers.push_back(nearest);
  }
  bool any_blocked = false;
  for (const auto& obs : observations) {
    any_blocked = any_blocked || !obs.comm_blocked.empty();
  }
  if (any_blocked) {
    auto link_blocked = [&observations](size_t a, size_t b) {
      return a < observations.size() &&
             b < observations[a].comm_blocked.size() &&
             observations[a].comm_blocked[b] != 0;
    };
    for (size_t u = 0; u < static_cast<size_t>(U); ++u) {
      auto& peers = ws->neighbors[u];
      peers.erase(std::remove_if(peers.begin(), peers.end(),
                                 [&](int64_t o) {
                                   size_t so = static_cast<size_t>(o);
                                   return link_blocked(u, so) ||
                                          link_blocked(so, u);
                                 }),
                  peers.end());
    }
  }

  std::memcpy(ws->comm_h.data(), ws->spatial.data(),
              sizeof(float) * static_cast<size_t>(U * e));

  for (const ServingOp& op : comm_ops_) {
    switch (op.kind) {
      case ServingOpKind::kCommLayer: {
        const ServingDense& phi_m = phi_m_[static_cast<size_t>(op.layer)];
        const ServingDense& phi_h = phi_h_[static_cast<size_t>(op.layer)];
        const ServingDense& phi_g = phi_g_[static_cast<size_t>(op.layer)];
        // Messages depend on the sender only (Eq. 27a).
        for (int64_t u = 0; u < U; ++u) {
          float* out = ws->sent.data() + u * e;
          DenseVec(phi_m, ws->comm_h.data() + u * e, out);
          TanhInPlace(out, e);
        }
        for (int64_t u = 0; u < U; ++u) {
          const auto& peers = ws->neighbors[static_cast<size_t>(u)];
          float* next_h = ws->comm_h_next.data() + u * e;
          if (peers.empty()) {
            // Isolated UGV: zero message, geometry unchanged.
            std::memcpy(ws->phi_h_in.data(), ws->comm_h.data() + u * e,
                        sizeof(float) * static_cast<size_t>(e));
            std::fill(ws->phi_h_in.begin() + e, ws->phi_h_in.end(), 0.0f);
            DenseVec(phi_h, ws->phi_h_in.data(), next_h);
            TanhInPlace(next_h, e);
            ws->g_next[static_cast<size_t>(u * 2)] =
                ws->g[static_cast<size_t>(u * 2)];
            ws->g_next[static_cast<size_t>(u * 2 + 1)] =
                ws->g[static_cast<size_t>(u * 2 + 1)];
            continue;
          }
          // Relative geometry (Eq. 25) + importance weights (Eq. 26).
          const int64_t num_peers = static_cast<int64_t>(peers.size());
          for (int64_t i = 0; i < num_peers; ++i) {
            const int64_t peer = peers[static_cast<size_t>(i)];
            const float dx = ws->g[static_cast<size_t>(u * 2)] -
                             ws->g[static_cast<size_t>(peer * 2)];
            const float dy = ws->g[static_cast<size_t>(u * 2 + 1)] -
                             ws->g[static_cast<size_t>(peer * 2 + 1)];
            const float norm =
                std::max<float>(std::hypot(dx, dy), min_distance_);
            const float inv = 1.0f / norm;
            ws->peer_logits[static_cast<size_t>(i)] = inv;
            ws->r_hat[static_cast<size_t>(i * 2)] = dx * inv;
            ws->r_hat[static_cast<size_t>(i * 2 + 1)] = dy * inv;
          }
          float max_logit = ws->peer_logits[0];
          for (int64_t i = 1; i < num_peers; ++i) {
            max_logit =
                std::max(max_logit, ws->peer_logits[static_cast<size_t>(i)]);
          }
          float total = 0.0f;
          for (int64_t i = 0; i < num_peers; ++i) {
            ws->alpha[static_cast<size_t>(i)] =
                std::exp(ws->peer_logits[static_cast<size_t>(i)] - max_logit);
            total += ws->alpha[static_cast<size_t>(i)];
          }
          for (int64_t i = 0; i < num_peers; ++i) {
            ws->alpha[static_cast<size_t>(i)] /= total;
          }
          // Aggregate messages (Eq. 27b) + radial update (Eq. 28-29).
          std::fill(ws->m.begin(), ws->m.end(), 0.0f);
          float g_tilde_x = 0.0f;
          float g_tilde_y = 0.0f;
          for (int64_t i = 0; i < num_peers; ++i) {
            const float a = ws->alpha[static_cast<size_t>(i)];
            const float* msg =
                ws->sent.data() + peers[static_cast<size_t>(i)] * e;
            for (int64_t j = 0; j < e; ++j) {
              ws->m[static_cast<size_t>(j)] += msg[j] * a;
            }
            float scale = 0.0f;
            DenseVec(phi_g, msg, &scale);
            g_tilde_x += (scale * ws->r_hat[static_cast<size_t>(i * 2)]) * a;
            g_tilde_y +=
                (scale * ws->r_hat[static_cast<size_t>(i * 2 + 1)]) * a;
          }
          std::memcpy(ws->phi_h_in.data(), ws->comm_h.data() + u * e,
                      sizeof(float) * static_cast<size_t>(e));
          std::memcpy(ws->phi_h_in.data() + e, ws->m.data(),
                      sizeof(float) * static_cast<size_t>(e));
          DenseVec(phi_h, ws->phi_h_in.data(), next_h);
          TanhInPlace(next_h, e);
          const float g_norm = std::hypot(g_tilde_x, g_tilde_y);
          if (g_norm > g_clip_) {
            const float factor = g_clip_ / g_norm;
            g_tilde_x *= factor;
            g_tilde_y *= factor;
          }
          ws->g_next[static_cast<size_t>(u * 2)] =
              ws->g[static_cast<size_t>(u * 2)] + g_tilde_x;
          ws->g_next[static_cast<size_t>(u * 2 + 1)] =
              ws->g[static_cast<size_t>(u * 2 + 1)] + g_tilde_y;
        }
        std::swap(ws->comm_h, ws->comm_h_next);
        std::swap(ws->g, ws->g_next);
        break;
      }
      case ServingOpKind::kCommReadout: {
        // Eq. 30: z = (X W3) g, pooled to [mean, norm], then phi_u.
        const int64_t B = num_stops_;
        const float inv_b = 1.0f / static_cast<float>(B);
        for (int64_t u = 0; u < U; ++u) {
          const float gx = ws->g[static_cast<size_t>(u * 2)];
          const float gy = ws->g[static_cast<size_t>(u * 2 + 1)];
          float z_sum = 0.0f;
          float z_sq = 0.0f;
          for (int64_t b = 0; b < B; ++b) {
            const float z = xy_w3_[static_cast<size_t>(b * 2)] * gx +
                            xy_w3_[static_cast<size_t>(b * 2 + 1)] * gy;
            z_sum += z;
            z_sq += z * z;
          }
          std::memcpy(ws->head_in.data(), ws->comm_h.data() + u * e,
                      sizeof(float) * static_cast<size_t>(e));
          ws->head_in[static_cast<size_t>(e)] = z_sum * inv_b;
          ws->head_in[static_cast<size_t>(e + 1)] =
              std::sqrt(z_sq + 1e-8f);  // nn::Norm's epsilon
          float* out = ws->features.data() + u * e;
          DenseVec(phi_u_, ws->head_in.data(), out);
          TanhInPlace(out, e);
        }
        break;
      }
      default:
        GARL_CHECK_MSG(false, "comm section holds no spatial/head ops");
    }
  }
}

void ServingPlan::RunHeads(const env::UgvObservation& obs, int64_t slot,
                           ServingWorkspace* ws) const {
  const int64_t B = num_stops_;
  const int64_t e = e_hidden_;
  const std::vector<float>& pos = obs.ugv_positions.data();
  std::memcpy(ws->head_in.data(), ws->features.data() + slot * e,
              sizeof(float) * static_cast<size_t>(e));
  const float self_x = pos[static_cast<size_t>(obs.self * 2)];
  const float self_y = pos[static_cast<size_t>(obs.self * 2 + 1)];
  ws->head_in[static_cast<size_t>(e)] = self_x;
  ws->head_in[static_cast<size_t>(e + 1)] = self_y;

  DenseVec(trunk_, ws->head_in.data(), ws->trunk.data());
  TanhInPlace(ws->trunk.data(), policy_hidden_);
  float* release = ws->release_logits.data() + slot * 2;
  float* target = ws->target_logits.data() + slot * B;
  DenseVec(release_head_, ws->trunk.data(), release);
  DenseVec(target_head_, ws->trunk.data(), target);

  if (obs.self < num_ugvs_) {
    const float* dir = &direction_prior_[static_cast<size_t>(obs.self * B)];
    for (int64_t b = 0; b < B; ++b) target[b] += dir[b];
  }

  // GarlExtractor::Priors, folded straight into the logits.
  const std::vector<float>& sf = obs.stop_features.data();
  for (int64_t b = 0; b < B; ++b) {
    const float observed = sf[static_cast<size_t>(b * 3 + 2)];
    ws->data_est[static_cast<size_t>(b)] =
        observed < 0.0f ? 0.4f : std::max(observed, 0.0f);
  }
  const int64_t obs_ugvs = static_cast<int64_t>(obs.ugv_stops.size());
  const int64_t self_stop = obs.ugv_stops[static_cast<size_t>(obs.self)];
  std::memcpy(ws->relevance.data(),
              &relevance_[static_cast<size_t>(self_stop * B)],
              sizeof(float) * static_cast<size_t>(B));
  if (use_mc_ && obs_ugvs > 1) {
    const float inv_others =
        mc_separation_ / static_cast<float>(obs_ugvs - 1);
    for (int64_t other = 0; other < obs_ugvs; ++other) {
      if (other == obs.self) continue;
      const float* so = &relevance_[static_cast<size_t>(
          obs.ugv_stops[static_cast<size_t>(other)] * B)];
      for (int64_t b = 0; b < B; ++b) {
        ws->relevance[static_cast<size_t>(b)] -= inv_others * so[b];
      }
    }
  }
  // target_prior = relevance . data_est, reusing the relevance buffer.
  for (int64_t b = 0; b < B; ++b) {
    ws->relevance[static_cast<size_t>(b)] *=
        ws->data_est[static_cast<size_t>(b)];
  }
  if (use_e_ && obs.ugv_positions_raw.size() > 1) {
    // Radial dispersal prior (Eq. 28-29), double math like the tensor path.
    const env::Vec2& self_pos =
        obs.ugv_positions_raw[static_cast<size_t>(obs.self)];
    env::Vec2 resultant{0.0, 0.0};
    for (size_t other = 0; other < obs.ugv_positions_raw.size(); ++other) {
      if (static_cast<int64_t>(other) == obs.self) continue;
      env::Vec2 away = self_pos - obs.ugv_positions_raw[other];
      double norm = std::max(away.Norm(), 1.0);
      resultant = resultant + away * (1.0 / norm);
    }
    double res_norm = resultant.Norm();
    if (res_norm > 1e-6) {
      resultant = resultant * (1.0 / res_norm);
      for (int64_t b = 0; b < B; ++b) {
        const float dx = stop_xy_[static_cast<size_t>(b * 2)] - self_x;
        const float dy = stop_xy_[static_cast<size_t>(b * 2 + 1)] - self_y;
        const float norm = std::hypot(dx, dy);
        if (norm < 1e-6f) continue;
        const float alignment = (dx * static_cast<float>(resultant.x) +
                                 dy * static_cast<float>(resultant.y)) /
                                norm;
        ws->relevance[static_cast<size_t>(b)] +=
            e_radial_ * alignment * ws->data_est[static_cast<size_t>(b)];
      }
    }
  }
  for (int64_t b = 0; b < B; ++b) {
    target[b] += ws->relevance[static_cast<size_t>(b)] * prior_scale_;
  }

  if (use_mc_) {
    // Multi-center release bias: peers within one hop mean competition.
    float crowding = 0.0f;
    const auto& hop_row = hops_[static_cast<size_t>(self_stop)];
    for (int64_t other = 0; other < obs_ugvs; ++other) {
      if (other == obs.self) continue;
      const int64_t hops =
          hop_row[static_cast<size_t>(obs.ugv_stops[static_cast<size_t>(other)])];
      if (hops >= 0 && hops <= 1) crowding += 1.0f;
    }
    release[1] += -1.5f * crowding;
  }
  if (release_prior_scale_ > 0.0f) {
    const float here = std::max(
        0.0f, sf[static_cast<size_t>(obs.current_stop * 3 + 2)]);
    float best = 1e-6f;
    for (int64_t b = 0; b < B; ++b) {
      best = std::max(best, sf[static_cast<size_t>(b * 3 + 2)]);
    }
    release[1] += release_prior_scale_ * (3.0f * (here / best) - 1.0f);
  }

  float value = 0.0f;
  DenseVec(value_head_, ws->trunk.data(), &value);
  ws->values[static_cast<size_t>(slot)] = value;
}

Status ServingPlan::Execute(
    const std::vector<env::UgvObservation>& observations,
    ServingWorkspace* workspace, std::vector<env::UgvAction>* actions) const {
  GARL_CHECK(workspace != nullptr);
  GARL_CHECK(actions != nullptr);
  const int64_t U = static_cast<int64_t>(observations.size());
  if (U == 0) return InvalidArgumentError("serving: empty request");
  if (U > num_ugvs_) {
    return InvalidArgumentError(
        "serving: request has more UGVs than the plan was compiled for");
  }
  for (const env::UgvObservation& obs : observations) {
    GARL_RETURN_IF_ERROR(ValidateObservation(obs, num_stops_));
  }

  for (int64_t u = 0; u < U; ++u) {
    RunSpatial(observations[static_cast<size_t>(u)], u, workspace);
  }
  if (use_e_ && U > 1) {
    RunComm(observations, workspace);
  } else {
    std::memcpy(workspace->features.data(), workspace->spatial.data(),
                sizeof(float) * static_cast<size_t>(U * e_hidden_));
  }
  if (static_cast<int64_t>(actions->size()) != U) actions->resize(
      static_cast<size_t>(U));
  for (int64_t u = 0; u < U; ++u) {
    RunHeads(observations[static_cast<size_t>(u)], u, workspace);
    // Greedy decode, first-max like Categorical::Mode().
    const float* release = workspace->release_logits.data() + u * 2;
    env::UgvAction& action = (*actions)[static_cast<size_t>(u)];
    action.release = release[1] > release[0];
    action.target_stop = -1;
    if (!action.release) {
      action.target_stop = FirstMaxIndex(
          workspace->target_logits.data() + u * num_stops_, num_stops_);
    }
  }
  return Status::Ok();
}

}  // namespace garl::core
