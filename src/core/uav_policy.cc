#include "core/uav_policy.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::core {

UavCnnPolicy::UavCnnPolicy(UavPolicyConfig config, Rng& rng)
    : config_(config) {
  conv1_ = std::make_unique<nn::Conv2dLayer>(3, config_.channels, 3, 2, 1,
                                             rng);
  conv2_ = std::make_unique<nn::Conv2dLayer>(config_.channels,
                                             2 * config_.channels, 3, 2, 1,
                                             rng);
  int64_t s1 = conv1_->OutputSize(config_.grid);
  int64_t s2 = conv2_->OutputSize(s1);
  GARL_CHECK_GT(s2, 0);
  flat_dim_ = 2 * config_.channels * s2 * s2;
  trunk_ = std::make_unique<nn::Linear>(flat_dim_ + 1, config_.hidden, rng);
  mean_head_ = std::make_unique<nn::Linear>(config_.hidden, 2, rng);
  value_head_ = std::make_unique<nn::Linear>(config_.hidden, 1, rng);
  // Exploration std ~ 20 m on a +-100 m action range.
  log_std_ = nn::Tensor::Full({2}, std::log(20.0f), /*requires_grad=*/true);
}

rl::UavPolicyOutput UavCnnPolicy::Forward(const env::UavObservation& obs) {
  GARL_CHECK_EQ(obs.grid.dim(), 3);
  GARL_CHECK_EQ(obs.grid.size(1), config_.grid);
  nn::Tensor x = nn::Reshape(obs.grid,
                             {1, 3, config_.grid, config_.grid});
  x = nn::Relu(conv1_->Forward(x));
  x = nn::Relu(conv2_->Forward(x));
  nn::Tensor flat = nn::Reshape(x, {flat_dim_});
  nn::Tensor energy = nn::Tensor::FromVector(
      {1}, {static_cast<float>(obs.energy_fraction)});
  nn::Tensor trunk =
      nn::Tanh(trunk_->Forward(nn::Concat({flat, energy}, 0)));
  rl::UavPolicyOutput out;
  out.mean = nn::MulScalar(nn::Tanh(mean_head_->Forward(trunk)),
                           static_cast<float>(config_.max_displacement));
  out.log_std = log_std_;
  out.value = nn::Reshape(value_head_->Forward(trunk), {});
  return out;
}

std::vector<nn::Tensor> UavCnnPolicy::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto* module :
       {static_cast<const nn::Module*>(conv1_.get()),
        static_cast<const nn::Module*>(conv2_.get()),
        static_cast<const nn::Module*>(trunk_.get()),
        static_cast<const nn::Module*>(mean_head_.get()),
        static_cast<const nn::Module*>(value_head_.get())}) {
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  }
  params.push_back(log_std_);
  return params;
}

}  // namespace garl::core
