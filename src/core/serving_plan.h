#ifndef GARL_CORE_SERVING_PLAN_H_
#define GARL_CORE_SERVING_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "env/types.h"
#include "rl/feature_policy.h"
#include "rl/policy.h"

// Serving-time execution plan for a trained GARL UGV policy.
//
// Training forwards build an autograd graph, borrow arena buffers and walk
// the module tree (MC-GCN -> E-Comm -> trunk/heads) through virtual calls on
// every request. For serving none of that is needed: the module tree is
// static per model, so Compile() flattens it ONCE into a replayable op
// sequence plus plain float snapshots of every weight, and Execute() replays
// that sequence with scalar kernels over a caller-owned, pre-sized
// workspace. The replay
//   - allocates nothing in steady state (no tensors, no autograd nodes, no
//     arena traffic),
//   - is const and touches only the workspace, so any number of threads may
//     execute concurrently with per-thread workspaces, and
//   - processes each request independently and sequentially, which makes
//     results bit-identical regardless of batch packing, arrival order and
//     GARL_NUM_THREADS (the packing-invariance gate of serving_test).
//
// The scalar kernels mirror the training forward's accumulation orders, so
// greedy actions agree with FeatureUgvPolicy::Forward + Categorical::Mode
// (verified by serving_test's plan-vs-forward consistency check); bit-level
// identity is only promised between Execute() calls, not across the
// tensor/plan boundary.

namespace garl::core {

// Snapshot of one nn::Linear: row-major [out, in] weight + optional bias.
struct ServingDense {
  int64_t in = 0;
  int64_t out = 0;
  std::vector<float> w;
  std::vector<float> b;  // empty when the layer has no bias
};

// One step of the flattened forward. `layer` indexes the per-layer weight
// snapshots for the layered kinds and is 0 otherwise.
enum class ServingOpKind {
  kMcStructure,  // multi-center structure features S (Eq. 18)
  kMcLayer,      // attention-weighted graph convolution (Eq. 21-22)
  kMcReadout,    // mean/attention pooling + phi_H (Eq. 23)
  kGcnLayer,     // plain GCN layer (use_mc=false fallback)
  kGcnReadout,   // mean pooling + readout (use_mc=false fallback)
  kCommLayer,    // one E-Comm message-passing layer (Eq. 25-29)
  kCommReadout,  // E-Comm readout phi_u (Eq. 30)
  kHeads,        // trunk, priors, release/target/value heads
};

struct ServingOp {
  ServingOpKind kind;
  int64_t layer = 0;
};

// All scratch needed by one in-flight request. Every buffer is sized by
// ServingPlan::MakeWorkspace(); Execute() never grows any of them, so a
// reused workspace serves an unbounded request stream without allocating.
struct ServingWorkspace {
  // Stop-graph scratch ([B * max feature width], per agent).
  std::vector<float> h;
  std::vector<float> h_next;
  std::vector<float> hw;
  std::vector<float> lh;
  std::vector<float> structure;   // [B]
  std::vector<float> scores;      // [B]
  std::vector<float> scores_acc;  // [B]
  std::vector<float> attn;        // [B]
  std::vector<float> pooled;      // [3 * mc_hidden]
  // Communication scratch (sized for the plan's UGV count).
  std::vector<float> spatial;    // [U * e_hidden]
  std::vector<float> features;   // [U * e_hidden]
  std::vector<float> comm_h;     // [U * e_hidden]
  std::vector<float> comm_h_next;
  std::vector<float> sent;       // [U * e_hidden]
  std::vector<float> g;          // [U * 2]
  std::vector<float> g_next;     // [U * 2]
  std::vector<float> m;          // [e_hidden]
  std::vector<float> phi_h_in;   // [2 * e_hidden]
  std::vector<float> peer_logits;  // [U]
  std::vector<float> alpha;        // [U]
  std::vector<float> r_hat;        // [U * 2]
  std::vector<std::vector<int64_t>> neighbors;  // U lists, capacity U each
  // Head scratch.
  std::vector<float> head_in;       // [e_hidden + 2]
  std::vector<float> trunk;         // [policy hidden]
  std::vector<float> data_est;      // [B]
  std::vector<float> relevance;     // [B]
  // Per-agent outputs of the most recent Execute(); serving_test reads
  // these for the plan-vs-forward consistency check.
  std::vector<float> release_logits;  // [U * 2]
  std::vector<float> target_logits;   // [U * B]
  std::vector<float> values;          // [U]
};

class ServingPlan {
 public:
  // Flattens `policy` (which must wrap a GarlExtractor; other extractors
  // get kFailedPrecondition) into a replayable plan. The plan snapshots all
  // weights by value: later training steps on `policy` do not affect it.
  static StatusOr<ServingPlan> Compile(const rl::FeatureUgvPolicy& policy,
                                       const rl::EnvContext& context);

  // A workspace pre-sized for this plan. One per concurrent caller.
  ServingWorkspace MakeWorkspace() const;

  // Replays the plan for one request (the joint observation of one env
  // step). Greedy per-UGV actions land in `actions` (resized to U once);
  // logits and values stay readable in the workspace. InvalidArgument on
  // shape mismatches; never aborts on malformed requests.
  [[nodiscard]] Status Execute(
      const std::vector<env::UgvObservation>& observations,
      ServingWorkspace* workspace, std::vector<env::UgvAction>* actions) const;

  // Whether `other` serves the same request shape as this plan: same stop
  // count, UGV count, architecture switches, hidden widths and op program
  // lengths. A hot reload (serve::PolicyServer::Reload) only swaps in a
  // candidate plan that is shape-compatible with the serving one, so pooled
  // workspaces and caller-visible output shapes never change mid-stream.
  bool ShapeCompatible(const ServingPlan& other) const;

  // Flattened program, for introspection/tests: the per-agent spatial
  // section, the joint communication section and the per-agent head op.
  const std::vector<ServingOp>& spatial_ops() const { return spatial_ops_; }
  const std::vector<ServingOp>& comm_ops() const { return comm_ops_; }
  int64_t num_stops() const { return num_stops_; }
  int64_t num_ugvs() const { return num_ugvs_; }

 private:
  ServingPlan() = default;

  void RunSpatial(const env::UgvObservation& obs, int64_t slot,
                  ServingWorkspace* ws) const;
  void RunComm(const std::vector<env::UgvObservation>& observations,
               ServingWorkspace* ws) const;
  void RunHeads(const env::UgvObservation& obs, int64_t slot,
                ServingWorkspace* ws) const;

  // Dimensions and switches.
  int64_t num_stops_ = 0;  // B
  int64_t num_ugvs_ = 0;   // U the model was built for
  bool use_mc_ = true;
  bool use_e_ = true;
  int64_t mc_hidden_ = 0;
  int64_t e_hidden_ = 0;
  int64_t policy_hidden_ = 0;
  // Config scalars (GarlConfig / FeaturePolicyOptions snapshot).
  float mc_separation_ = 0.0f;
  float e_radial_ = 0.0f;
  float g_clip_ = 0.0f;
  float min_distance_ = 0.0f;
  float prior_scale_ = 0.0f;
  float release_prior_scale_ = 0.0f;
  double neighbor_radius_norm_ = 0.0;
  // Precomputed tables.
  std::vector<float> laplacian_;      // [B * B]
  std::vector<float> stop_xy_;        // [B * 2]
  std::vector<float> relevance_;      // [B * B]: HopRelevance for every stop
  std::vector<float> xy_w3_;          // [B * 2] = stop_xy * W3 (Eq. 30a)
  std::vector<float> direction_prior_;  // [U * B]
  std::vector<std::vector<int64_t>> hops_;  // [B][B], -1 unreachable
  // Weight snapshots.
  std::vector<ServingDense> mc_attention_;  // per layer (use_mc)
  std::vector<ServingDense> mc_weights_;
  ServingDense mc_readout_;
  std::vector<ServingDense> gcn_weights_;   // per layer (use_mc=false)
  ServingDense gcn_readout_;
  std::vector<ServingDense> phi_m_;         // per layer (use_e)
  std::vector<ServingDense> phi_h_;
  std::vector<ServingDense> phi_g_;
  ServingDense phi_u_;
  ServingDense trunk_;
  ServingDense release_head_;
  ServingDense target_head_;
  ServingDense value_head_;
  // Flattened program.
  std::vector<ServingOp> spatial_ops_;
  std::vector<ServingOp> comm_ops_;
};

}  // namespace garl::core

#endif  // GARL_CORE_SERVING_PLAN_H_
