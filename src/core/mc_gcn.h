#ifndef GARL_CORE_MC_GCN_H_
#define GARL_CORE_MC_GCN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "rl/policy.h"

// MC-GCN — multi-center attention-based graph convolution (Section IV-B).
//
// Feature Collection Phase (Eq. 18-20): from UGV u's viewpoint, each stop
// node b gets a structural relevance
//     s(b_t^u, b) = 1 / (d_sp^q(b_t^u, b) + 1)
// (reciprocal shortest-path distance, infinite beyond threshold q), then
// the other UGVs' relevance is subtracted (multi-center):
//     s_hat(b_t^u, b) = s(b_t^u, b) - mean_{u' != u} s(b_t^{u'}, b).
//
// Feature Extraction Phase (Eq. 21-23): per GCN layer an attention vector
//     F^{uu'} = H W1 (H[b_t^{u'}])^T,   N^u = F^{uu} - mean_{u'!=u} F^{uu'},
//     C^u = softmax(S^u . N^u)
// re-weights the node rows of the vanilla propagation
//     H^{l+1} = sigma(C . (L H W2)).
// The readout h~ combines mean pooling with C-weighted pooling.

namespace garl::core {

// Single-center structural relevance s(stop, .) (Eq. 19-20): [B] tensor of
// reciprocal hop distances, zero beyond `threshold`.
nn::Tensor HopRelevance(const rl::EnvContext& context, int64_t stop,
                        int64_t threshold);

struct McGcnConfig {
  int64_t layers = 3;      // L^MC (Table II sweeps 1..5)
  int64_t hidden = 16;
  int64_t out_dim = 32;
  int64_t hop_threshold = 8;  // q of Eq. 19, in hops
};

class McGcn : public nn::Module {
 public:
  McGcn(const rl::EnvContext& context, McGcnConfig config, Rng& rng);

  // Structure-related features S_t^u (Eq. 18): [B] plain tensor.
  // `ugv_stops` holds b_t^{u'} for every UGV; `self` selects u.
  nn::Tensor StructureFeatures(const std::vector<int64_t>& ugv_stops,
                               int64_t self) const;

  // Single-center relevance s(b, .) (Eq. 20): [B] plain tensor.
  nn::Tensor Relevance(int64_t stop) const;

  struct Output {
    nn::Tensor feature;    // [out_dim] UGV-specific feature h~ (Eq. 23)
    nn::Tensor attention;  // [B] final-layer attention weights C
  };

  // Runs the full MC-GCN for UGV `self` on its observed stop features
  // [B, 3] given everyone's current stops.
  Output Forward(const nn::Tensor& stop_features,
                 const std::vector<int64_t>& ugv_stops, int64_t self) const;

  std::vector<nn::Tensor> Parameters() const override;

  const McGcnConfig& config() const { return config_; }

  // Read-only layer access for the serving-plan compiler (core/serving_plan).
  const nn::Linear& attention(int64_t layer) const {
    return *attention_[static_cast<size_t>(layer)];
  }
  const nn::Linear& weight(int64_t layer) const {
    return *weights_[static_cast<size_t>(layer)];
  }
  const nn::Linear& readout() const { return *readout_; }

 private:
  const rl::EnvContext* context_;  // not owned
  McGcnConfig config_;
  std::vector<std::unique_ptr<nn::Linear>> attention_;  // W1 per layer
  std::vector<std::unique_ptr<nn::Linear>> weights_;    // W2 per layer
  std::unique_ptr<nn::Linear> readout_;                 // phi_H
};

}  // namespace garl::core

#endif  // GARL_CORE_MC_GCN_H_
