#ifndef GARL_CORE_GARL_EXTRACTOR_H_
#define GARL_CORE_GARL_EXTRACTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/e_comm.h"
#include "core/gcn.h"
#include "core/mc_gcn.h"
#include "rl/feature_policy.h"

// The complete GARL UGV pipeline (Eq. 14a/14b): MC-GCN extracts UGV
// specific stop-network features, E-Comm exchanges them equivariantly among
// UGVs. Both components can be disabled for the Table III ablations:
//   use_mc=false -> plain GCN spatial encoder ("GARL w/o MC")
//   use_e=false  -> no communication        ("GARL w/o E")

namespace garl::core {

struct GarlConfig {
  McGcnConfig mc_gcn;
  ECommConfig e_comm;
  bool use_mc = true;
  bool use_e = true;
  int64_t gcn_layers = 2;  // fallback encoder depth when use_mc = false
  // Prior coefficients: graph-side multi-center subtraction (Eq. 18) and
  // E-Comm's radial dispersal (Eq. 28), tuned to compose.
  float mc_separation = 0.6f;
  float e_radial = 0.25f;
};

class GarlExtractor : public rl::UgvFeatureExtractor {
 public:
  GarlExtractor(const rl::EnvContext& context, GarlConfig config, Rng& rng);

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override;

  // Structural target prior: multi-center relevance x observed data when
  // MC-GCN is enabled (its attention bias, Eq. 18/21), single-center
  // relevance x data otherwise. E-Comm adds its per-stop preference z
  // (Eq. 30a) when enabled.
  rl::UgvPriors Priors(
      const std::vector<env::UgvObservation>& observations) override;

  // Extract/Priors build everything from locals (GCN stack, attention,
  // E-Comm preferences); no member is written, so concurrent rollout
  // workers may share one extractor.
  bool ThreadSafeExtract() const override { return true; }

  int64_t feature_dim() const override;
  std::string name() const override;
  std::vector<nn::Tensor> Parameters() const override;

  const GarlConfig& config() const { return config_; }

  // Read-only submodule access for the serving-plan compiler; null when the
  // corresponding ablation switch disables the module.
  const McGcn* mc_gcn() const { return mc_gcn_.get(); }
  const GcnStack* gcn() const { return gcn_.get(); }
  const nn::Linear* gcn_readout() const { return gcn_readout_.get(); }
  const EComm* e_comm() const { return e_comm_.get(); }

 private:
  // Per-UGV spatial feature h~ (and attention, when MC-GCN is on).
  struct SpatialOut {
    nn::Tensor feature;
    nn::Tensor stop_preference;  // may be undefined
  };
  SpatialOut Spatial(const env::UgvObservation& obs) const;

  // Data term used by priors: max(observed, 0) + optimism for unseen stops.
  nn::Tensor DataEstimate(const env::UgvObservation& obs) const;

  const rl::EnvContext* context_;  // not owned
  GarlConfig config_;
  std::unique_ptr<McGcn> mc_gcn_;           // when use_mc
  std::unique_ptr<GcnStack> gcn_;           // when !use_mc
  std::unique_ptr<nn::Linear> gcn_readout_; // pools the plain GCN
  std::unique_ptr<EComm> e_comm_;           // when use_e
};

}  // namespace garl::core

#endif  // GARL_CORE_GARL_EXTRACTOR_H_
