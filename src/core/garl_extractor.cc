#include "core/garl_extractor.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::core {

GarlExtractor::GarlExtractor(const rl::EnvContext& context, GarlConfig config,
                             Rng& rng)
    : context_(&context), config_(config) {
  // The spatial stage must feed E-Comm's non-geometric width.
  config_.mc_gcn.out_dim = config_.e_comm.hidden;
  if (config_.use_mc) {
    mc_gcn_ = std::make_unique<McGcn>(context, config_.mc_gcn, rng);
  } else {
    gcn_ = std::make_unique<GcnStack>(context.laplacian, 3,
                                      config_.mc_gcn.hidden,
                                      config_.gcn_layers, rng);
    gcn_readout_ = std::make_unique<nn::Linear>(config_.mc_gcn.hidden,
                                                config_.e_comm.hidden, rng);
  }
  if (config_.use_e) {
    e_comm_ = std::make_unique<EComm>(context, config_.e_comm, rng);
  }
}

nn::Tensor GarlExtractor::DataEstimate(
    const env::UgvObservation& obs) const {
  int64_t num_stops = context_->num_stops;
  nn::Tensor est = nn::Tensor::Zeros({num_stops});
  auto& data = est.mutable_data();
  for (int64_t b = 0; b < num_stops; ++b) {
    float observed = obs.stop_features.at({b, 2});
    // Unseen stops (mask -1) get mild optimism, driving exploration.
    data[static_cast<size_t>(b)] =
        observed < 0.0f ? 0.4f : std::max(observed, 0.0f);
  }
  return est;
}

GarlExtractor::SpatialOut GarlExtractor::Spatial(
    const env::UgvObservation& obs) const {
  SpatialOut out;
  if (config_.use_mc) {
    McGcn::Output mc = mc_gcn_->Forward(obs.stop_features, obs.ugv_stops,
                                        obs.self);
    out.feature = mc.feature;
  } else {
    nn::Tensor h = gcn_->Forward(obs.stop_features);  // [B, hidden]
    float inv_b = 1.0f / static_cast<float>(context_->num_stops);
    nn::Tensor pooled = nn::MulScalar(nn::SumDim(h, 0), inv_b);
    out.feature = nn::Tanh(gcn_readout_->Forward(pooled));
  }
  return out;
}

std::vector<nn::Tensor> GarlExtractor::Extract(
    const std::vector<env::UgvObservation>& observations) {
  GARL_CHECK(!observations.empty());
  int64_t num_ugvs = static_cast<int64_t>(observations.size());
  std::vector<nn::Tensor> spatial;
  spatial.reserve(static_cast<size_t>(num_ugvs));
  for (const auto& obs : observations) {
    spatial.push_back(Spatial(obs).feature);
  }

  std::vector<nn::Tensor> features(static_cast<size_t>(num_ugvs));
  if (config_.use_e && num_ugvs > 1) {
    std::vector<nn::Tensor> g0;
    for (const auto& obs : observations) {
      g0.push_back(
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2}));
    }
    auto neighbors =
        EComm::BuildNeighborhoods(g0, context_->neighbor_radius_norm);
    // Comm blackouts (injected faults) cut links before message passing;
    // no observation carries a mask on the fault-free path.
    bool any_blocked = false;
    for (const auto& obs : observations) {
      any_blocked = any_blocked || !obs.comm_blocked.empty();
    }
    if (any_blocked) {
      std::vector<std::vector<uint8_t>> blocked;
      blocked.reserve(observations.size());
      for (const auto& obs : observations) blocked.push_back(obs.comm_blocked);
      EComm::MaskNeighborhoods(blocked, &neighbors);
    }
    EComm::State state = e_comm_->Communicate(spatial, g0, neighbors);
    for (int64_t u = 0; u < num_ugvs; ++u) {
      EComm::Readout readout = e_comm_->ReadOut(
          state.h[static_cast<size_t>(u)], state.g[static_cast<size_t>(u)],
          context_->stop_xy);
      features[static_cast<size_t>(u)] = readout.feature;
    }
  } else {
    features = spatial;
  }

  // Append the UGV's own normalized position so heads can localize.
  for (int64_t u = 0; u < num_ugvs; ++u) {
    const auto& obs = observations[static_cast<size_t>(u)];
    nn::Tensor self_xy =
        nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
    features[static_cast<size_t>(u)] =
        nn::Concat({features[static_cast<size_t>(u)], self_xy}, 0);
  }
  return features;
}

rl::UgvPriors GarlExtractor::Priors(
    const std::vector<env::UgvObservation>& observations) {
  rl::UgvPriors priors;
  for (const auto& obs : observations) {
    nn::Tensor data_est = DataEstimate(obs);
    nn::Tensor relevance = HopRelevance(*context_, obs.ugv_stops[obs.self],
                                        config_.mc_gcn.hop_threshold);
    if (config_.use_mc && obs.ugv_stops.size() > 1) {
      // Multi-center structure (Eq. 18): near own position, far from
      // other UGVs' positions. The subtraction is moderated so that the
      // graph-side separation composes with E-Comm's radial dispersal
      // instead of double-counting it.
      auto& data = relevance.mutable_data();
      float inv_others = config_.mc_separation /
                         static_cast<float>(obs.ugv_stops.size() - 1);
      for (size_t other = 0; other < obs.ugv_stops.size(); ++other) {
        if (static_cast<int64_t>(other) == obs.self) continue;
        nn::Tensor so = HopRelevance(*context_, obs.ugv_stops[other],
                                     config_.mc_gcn.hop_threshold);
        for (size_t b = 0; b < data.size(); ++b) {
          data[b] -= inv_others * so.data()[b];
        }
      }
    }
    nn::Tensor target_prior = nn::Mul(relevance, data_est);

    if (config_.use_e && obs.ugv_positions_raw.size() > 1) {
      // E-Comm's Target Updating (Eq. 28-29): the resultant of the unit
      // vectors away from the neighbours "tends to keep a UGV u from
      // gathering with other UGVs". Expressed as a prior, data-rich stops
      // aligned with that radial direction are preferred.
      const env::Vec2& self_pos =
          obs.ugv_positions_raw[static_cast<size_t>(obs.self)];
      env::Vec2 resultant{0.0, 0.0};
      for (size_t other = 0; other < obs.ugv_positions_raw.size();
           ++other) {
        if (static_cast<int64_t>(other) == obs.self) continue;
        env::Vec2 away = self_pos - obs.ugv_positions_raw[other];
        double norm = std::max(away.Norm(), 1.0);
        resultant = resultant + away * (1.0 / norm);
      }
      double res_norm = resultant.Norm();
      if (res_norm > 1e-6) {
        resultant = resultant * (1.0 / res_norm);
        auto& data = target_prior.mutable_data();
        float self_x = obs.ugv_positions.at({obs.self, 0});
        float self_y = obs.ugv_positions.at({obs.self, 1});
        for (int64_t b = 0; b < context_->num_stops; ++b) {
          float dx = context_->stop_xy.at({b, 0}) - self_x;
          float dy = context_->stop_xy.at({b, 1}) - self_y;
          float norm = std::hypot(dx, dy);
          if (norm < 1e-6f) continue;
          float alignment = (dx * static_cast<float>(resultant.x) +
                             dy * static_cast<float>(resultant.y)) /
                            norm;
          data[static_cast<size_t>(b)] +=
              config_.e_radial * alignment *
              data_est.data()[static_cast<size_t>(b)];
        }
      }
    }
    priors.target.push_back(target_prior);

    // Multi-center release bias: avoid releasing where other UGVs already
    // sit (their UAVs would compete for the same sensors).
    if (config_.use_mc) {
      float crowding = 0.0f;
      int64_t self_stop = obs.ugv_stops[obs.self];
      for (size_t other = 0; other < obs.ugv_stops.size(); ++other) {
        if (static_cast<int64_t>(other) == obs.self) continue;
        int64_t hops = context_->hops[static_cast<size_t>(self_stop)]
                                     [static_cast<size_t>(
                                         obs.ugv_stops[other])];
        if (hops >= 0 && hops <= 1) crowding += 1.0f;
      }
      priors.release.push_back(
          nn::Tensor::FromVector({2}, {0.0f, -1.5f * crowding}));
    }
  }
  return priors;
}

int64_t GarlExtractor::feature_dim() const {
  return config_.e_comm.hidden + 2;
}

std::string GarlExtractor::name() const {
  if (config_.use_mc && config_.use_e) return "GARL";
  if (config_.use_e) return "GARL w/o MC";
  if (config_.use_mc) return "GARL w/o E";
  return "GARL w/o MC, E";
}

std::vector<nn::Tensor> GarlExtractor::Parameters() const {
  std::vector<nn::Tensor> params;
  auto append = [&params](const nn::Module* module) {
    if (module == nullptr) return;
    for (const nn::Tensor& p : module->Parameters()) params.push_back(p);
  };
  append(mc_gcn_.get());
  append(gcn_.get());
  append(gcn_readout_.get());
  append(e_comm_.get());
  return params;
}

}  // namespace garl::core
