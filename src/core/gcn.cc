#include "core/gcn.h"

#include "common/check.h"
#include "nn/ops.h"

namespace garl::core {

GcnStack::GcnStack(nn::Tensor laplacian, int64_t in_dim, int64_t hidden,
                   int64_t layers, Rng& rng)
    : laplacian_(std::move(laplacian)), hidden_(hidden) {
  GARL_CHECK_GE(layers, 1);
  GARL_CHECK_EQ(laplacian_.dim(), 2);
  GARL_CHECK_EQ(laplacian_.size(0), laplacian_.size(1));
  for (int64_t l = 0; l < layers; ++l) {
    weights_.push_back(std::make_unique<nn::Linear>(
        l == 0 ? in_dim : hidden, hidden, rng, /*with_bias=*/false));
  }
}

nn::Tensor GcnStack::Forward(const nn::Tensor& node_features) const {
  GARL_CHECK_EQ(node_features.dim(), 2);
  GARL_CHECK_EQ(node_features.size(0), laplacian_.size(0));
  nn::Tensor h = node_features;
  for (const auto& w : weights_) {
    h = nn::Tanh(w->Forward(nn::MatMul(laplacian_, h)));
  }
  return h;
}

std::vector<nn::Tensor> GcnStack::Parameters() const {
  std::vector<nn::Tensor> params;
  for (const auto& w : weights_) {
    for (const nn::Tensor& p : w->Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace garl::core
