#ifndef GARL_CORE_UAV_POLICY_H_
#define GARL_CORE_UAV_POLICY_H_

#include <memory>

#include "common/rng.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "rl/policy.h"

// UAV actor-critic (Eq. 17): phi_v = two strided convolutions over the
// [3, G, G] local observation, then linear heads for a diagonal-Gaussian
// displacement policy and the value function. The policy is shared by all
// UAVs (standard parameter sharing).

namespace garl::core {

struct UavPolicyConfig {
  int64_t grid = 15;        // must match WorldParams::obs_grid
  int64_t channels = 8;     // first conv width (second uses 2x)
  int64_t hidden = 64;
  double max_displacement = 100.0;  // meters, scales the tanh mean
};

class UavCnnPolicy : public rl::UavPolicyNetwork {
 public:
  UavCnnPolicy(UavPolicyConfig config, Rng& rng);

  rl::UavPolicyOutput Forward(const env::UavObservation& obs) override;

  std::vector<nn::Tensor> Parameters() const override;

  // Pure feed-forward CNN; no member state is written during Forward.
  bool ThreadSafeInference() const override { return true; }

 private:
  UavPolicyConfig config_;
  std::unique_ptr<nn::Conv2dLayer> conv1_;
  std::unique_ptr<nn::Conv2dLayer> conv2_;
  int64_t flat_dim_ = 0;
  std::unique_ptr<nn::Linear> trunk_;
  std::unique_ptr<nn::Linear> mean_head_;
  std::unique_ptr<nn::Linear> value_head_;
  nn::Tensor log_std_;  // [2] state-independent
};

}  // namespace garl::core

#endif  // GARL_CORE_UAV_POLICY_H_
