#ifndef GARL_CORE_E_COMM_H_
#define GARL_CORE_E_COMM_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "rl/policy.h"

// E-Comm — equivariant GNN communication among UGVs (Section IV-C).
//
// Each UGV is a node of the communication graph carrying a non-geometric
// feature h (initialized from MC-GCN, Eq. 24a) and a geometric feature g
// (initialized from its coordinates, Eq. 24b). Per layer:
//
//  Message Aggregation (invariant, Eq. 25-27):
//    r^{uu'} = g^u - g^{u'},
//    alpha^{uu'} = softmax_{u'}(exp(||r||^{-1})),
//    m^{uu'} = phi_m(h^{u'}),  m^u = sum alpha m^{uu'},
//    h' = phi_h([h ; m]).
//
//  Target Updating (equivariant, Eq. 28-29):
//    g~ = sum alpha phi_g(m^{uu'}) r_hat^{uu'},
//    g' = g + clip(g~, g_max).
//
//  Readout (Eq. 30): z = X[:2] W3 g^T (per-stop preference), then
//    h_final = phi_u([h ; z-pooled]).
//
// The composition is E(2)-equivariant: translating/rotating every UGV
// translates/rotates g identically while h is untouched (verified by
// property tests).

namespace garl::core {

struct ECommConfig {
  int64_t layers = 3;   // L^E (Table II sweeps 1..5)
  int64_t hidden = 32;  // non-geometric feature width
  float g_clip = 0.05f; // g~ clip (normalized coordinates)
  float min_distance = 0.02f;  // ||r|| floor for the exp(1/||r||) weights
};

class EComm : public nn::Module {
 public:
  EComm(const rl::EnvContext& context, ECommConfig config, Rng& rng);

  struct State {
    std::vector<nn::Tensor> h;  // U x [hidden]
    std::vector<nn::Tensor> g;  // U x [2]
  };

  // Runs the message-passing layers. `h0[u]` must be [hidden]; `g0[u]` is
  // the UGV's normalized position [2]. `neighbors[u]` lists N(u).
  State Communicate(const std::vector<nn::Tensor>& h0,
                    const std::vector<nn::Tensor>& g0,
                    const std::vector<std::vector<int64_t>>& neighbors) const;

  // Readout for one UGV (Eq. 30): stop preference z from the final g and
  // the combined output feature.
  struct Readout {
    nn::Tensor feature;          // [out_dim]
    nn::Tensor stop_preference;  // [B] = X[:2] W3 g^T
  };
  Readout ReadOut(const nn::Tensor& h_final, const nn::Tensor& g_final,
                  const nn::Tensor& stop_xy) const;

  // Neighborhood N(u) by euclidean radius on normalized positions; every
  // UGV keeps at least its nearest peer so communication never cuts out.
  static std::vector<std::vector<int64_t>> BuildNeighborhoods(
      const std::vector<nn::Tensor>& g0, double radius);

  // Cuts blacked-out links out of `neighbors` in place: link u<->o is
  // removed when either endpoint's mask row flags the other (blocked[u] is
  // UGV u's [U] comm_blocked row; an empty row blocks nothing). A fully
  // isolated UGV simply ends up with no peers, which Communicate already
  // treats as a zero-message node — degraded, never NaN.
  static void MaskNeighborhoods(
      const std::vector<std::vector<uint8_t>>& blocked,
      std::vector<std::vector<int64_t>>* neighbors);

  std::vector<nn::Tensor> Parameters() const override;

  int64_t out_dim() const { return config_.hidden; }
  const ECommConfig& config() const { return config_; }

  // Read-only layer access for the serving-plan compiler (core/serving_plan).
  const nn::Linear& phi_m(int64_t layer) const {
    return *phi_m_[static_cast<size_t>(layer)];
  }
  const nn::Linear& phi_h(int64_t layer) const {
    return *phi_h_[static_cast<size_t>(layer)];
  }
  const nn::Linear& phi_g(int64_t layer) const {
    return *phi_g_[static_cast<size_t>(layer)];
  }
  const nn::Tensor& w3() const { return w3_; }
  const nn::Linear& phi_u() const { return *phi_u_; }

 private:
  const rl::EnvContext* context_;  // not owned
  ECommConfig config_;
  std::vector<std::unique_ptr<nn::Linear>> phi_m_;  // per layer
  std::vector<std::unique_ptr<nn::Linear>> phi_h_;
  std::vector<std::unique_ptr<nn::Linear>> phi_g_;
  nn::Tensor w3_;  // [2, 2] readout weight
  std::unique_ptr<nn::Linear> phi_u_;
};

}  // namespace garl::core

#endif  // GARL_CORE_E_COMM_H_
