// garl_tracecat: summarize or validate a training run log (JSONL, one record
// per iteration — see src/obs/run_log.h for the schema).
//
//   garl_tracecat <run_log.jsonl>             print a run summary and a
//                                             per-phase span timing table
//   garl_tracecat --validate <run_log.jsonl>  schema-check every line
//
// Exit codes: 0 = OK, 1 = invalid log or I/O error, 2 = usage error.

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "obs/run_log.h"

namespace {

int Usage() {
  std::cerr << "usage: garl_tracecat [--validate] <run_log.jsonl>\n";
  return 2;
}

std::string FormatMs(int64_t ns) {
  return garl::StrPrintf("%.3f", static_cast<double>(ns) / 1e6);
}

int Summarize(const std::string& path) {
  garl::StatusOr<garl::obs::RunLogSummary> summary =
      garl::obs::SummarizeRunLogFile(path);
  if (!summary.ok()) {
    std::cerr << "garl_tracecat: " << summary.status().ToString() << "\n";
    return 1;
  }
  const garl::obs::RunLogSummary& s = summary.value();
  std::cout << "run log: " << path << "\n";
  std::cout << "iterations: " << s.records << "\n";
  if (s.records == 0) return 0;
  std::cout << garl::StrPrintf(
      "episodes: %lld\n", static_cast<long long>(s.last.episode_counter));
  std::cout << garl::StrPrintf(
      "policy_loss: %.6g -> %.6g (mean %.6g)\n", s.first.policy_loss,
      s.last.policy_loss, s.mean_policy_loss);
  std::cout << garl::StrPrintf(
      "value_loss:  %.6g -> %.6g (mean %.6g)\n", s.first.value_loss,
      s.last.value_loss, s.mean_value_loss);
  std::cout << garl::StrPrintf(
      "entropy:     %.6g -> %.6g (mean %.6g)\n", s.first.entropy,
      s.last.entropy, s.mean_entropy);
  std::cout << garl::StrPrintf(
      "metrics (last): psi=%.4f xi=%.4f zeta=%.4f beta=%.4f "
      "efficiency=%.4f\n",
      s.last.psi, s.last.xi, s.last.zeta, s.last.beta, s.last.efficiency);
  std::cout << garl::StrPrintf(
      "diverged iterations: %lld\n",
      static_cast<long long>(s.diverged_iterations));
  if (s.fault_records > 0) {
    std::cout << garl::StrPrintf(
        "faults: %lld records, %lld env events; fs (last): %lld injected / "
        "%lld recovered\n",
        static_cast<long long>(s.fault_records),
        static_cast<long long>(s.fault_events),
        static_cast<long long>(s.last.fault_fs_injected),
        static_cast<long long>(s.last.fault_fs_recovered));
  }
  std::cout << garl::StrPrintf(
      "route cache (last): %lld hits / %lld misses\n",
      static_cast<long long>(s.last.route_cache_hits),
      static_cast<long long>(s.last.route_cache_misses));
  std::cout << garl::StrPrintf(
      "pool (last): %lld threads, %lld tasks, %lld parallel-fors "
      "(%lld inline)\n",
      static_cast<long long>(s.last.pool_threads),
      static_cast<long long>(s.last.pool_tasks),
      static_cast<long long>(s.last.pool_parallel_fors),
      static_cast<long long>(s.last.pool_inline_fors));
  std::cout << "total wall: " << FormatMs(s.total_wall_ns) << " ms\n";

  if (!s.spans.empty()) {
    std::cout << "\n";
    garl::TableWriter table({"phase", "count", "total_ms", "mean_ms",
                             "share_%"});
    double wall = static_cast<double>(s.total_wall_ns);
    for (const auto& entry : s.spans) {
      const garl::obs::SpanTiming& span = entry.second;
      double total_ns = static_cast<double>(span.total_ns);
      double mean_ms =
          span.count > 0 ? total_ns / static_cast<double>(span.count) / 1e6
                         : 0.0;
      double share = wall > 0.0 ? 100.0 * total_ns / wall : 0.0;
      table.AddRow({span.name,
                    garl::StrPrintf("%lld", static_cast<long long>(span.count)),
                    FormatMs(span.total_ns), garl::StrPrintf("%.3f", mean_ms),
                    garl::StrPrintf("%.1f", share)});
    }
    table.Print(std::cout);
  }
  return 0;
}

int Validate(const std::string& path) {
  garl::Status status = garl::obs::ValidateRunLogFile(path);
  if (!status.ok()) {
    std::cerr << "garl_tracecat: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << path << ": OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();
  return validate ? Validate(path) : Summarize(path);
}
