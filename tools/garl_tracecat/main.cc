// garl_tracecat: summarize or validate a training run log (JSONL, one record
// per iteration — see src/obs/run_log.h for the schema).
//
//   garl_tracecat <input ...>             print one merged run summary and a
//                                         per-phase span timing table
//   garl_tracecat --validate <input ...>  schema-check every line and the
//                                         cross-segment iteration continuity
//
// Each <input> is a run-log file, a rotated segment, or a directory (its
// *.jsonl* files are stitched in segment order — the zero-padded suffix of
// rotated segments makes name order == segment order). Multiple inputs are
// read as one concatenated record stream; every record's iteration must be
// exactly the previous one's + 1.
//
// Exit codes: 0 = OK, 1 = invalid log or I/O error, 2 = usage error.

#include <cinttypes>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/table_writer.h"
#include "obs/run_log.h"

namespace {

int Usage() {
  std::cerr << "usage: garl_tracecat [--validate] "
               "<run_log.jsonl | segment | directory> ...\n";
  return 2;
}

std::string FormatMs(int64_t ns) {
  return garl::StrPrintf("%.3f", static_cast<double>(ns) / 1e6);
}

int Summarize(const std::vector<std::string>& files) {
  garl::StatusOr<garl::obs::RunLogSummary> summary =
      files.size() == 1 ? garl::obs::SummarizeRunLogFile(files[0])
                        : garl::obs::SummarizeRunLogFiles(files);
  if (!summary.ok()) {
    std::cerr << "garl_tracecat: " << summary.status().ToString() << "\n";
    return 1;
  }
  const garl::obs::RunLogSummary& s = summary.value();
  if (files.size() == 1) {
    std::cout << "run log: " << files[0] << "\n";
  } else {
    std::cout << "run log: " << files.size() << " stitched segments ("
              << files.front() << " .. " << files.back() << ")\n";
  }
  std::cout << "iterations: " << s.records << "\n";
  if (s.records == 0) return 0;
  std::cout << garl::StrPrintf(
      "episodes: %lld\n", static_cast<long long>(s.last.episode_counter));
  std::cout << garl::StrPrintf(
      "policy_loss: %.6g -> %.6g (mean %.6g)\n", s.first.policy_loss,
      s.last.policy_loss, s.mean_policy_loss);
  std::cout << garl::StrPrintf(
      "value_loss:  %.6g -> %.6g (mean %.6g)\n", s.first.value_loss,
      s.last.value_loss, s.mean_value_loss);
  std::cout << garl::StrPrintf(
      "entropy:     %.6g -> %.6g (mean %.6g)\n", s.first.entropy,
      s.last.entropy, s.mean_entropy);
  std::cout << garl::StrPrintf(
      "metrics (last): psi=%.4f xi=%.4f zeta=%.4f beta=%.4f "
      "efficiency=%.4f\n",
      s.last.psi, s.last.xi, s.last.zeta, s.last.beta, s.last.efficiency);
  std::cout << garl::StrPrintf(
      "diverged iterations: %lld\n",
      static_cast<long long>(s.diverged_iterations));
  if (s.fault_records > 0) {
    std::cout << garl::StrPrintf(
        "faults: %lld records, %lld env events; fs (last): %lld injected / "
        "%lld recovered\n",
        static_cast<long long>(s.fault_records),
        static_cast<long long>(s.fault_events),
        static_cast<long long>(s.last.fault_fs_injected),
        static_cast<long long>(s.last.fault_fs_recovered));
  }
  if (s.serve_records > 0) {
    std::cout << garl::StrPrintf(
        "serving (last): plan v%lld, %lld queued; %lld shed / %lld rejected, "
        "%lld deadline misses, %lld execute failures, %lld breaker trips\n",
        static_cast<long long>(s.last.serve_plan_version),
        static_cast<long long>(s.last.serve_queue_depth),
        static_cast<long long>(s.last.serve_shed),
        static_cast<long long>(s.last.serve_rejected),
        static_cast<long long>(s.last.serve_deadline_misses),
        static_cast<long long>(s.last.serve_execute_failures),
        static_cast<long long>(s.last.serve_breaker_trips));
  }
  std::cout << garl::StrPrintf(
      "route cache (last): %lld hits / %lld misses\n",
      static_cast<long long>(s.last.route_cache_hits),
      static_cast<long long>(s.last.route_cache_misses));
  std::cout << garl::StrPrintf(
      "pool (last): %lld threads, %lld tasks, %lld parallel-fors "
      "(%lld inline)\n",
      static_cast<long long>(s.last.pool_threads),
      static_cast<long long>(s.last.pool_tasks),
      static_cast<long long>(s.last.pool_parallel_fors),
      static_cast<long long>(s.last.pool_inline_fors));
  std::cout << garl::StrPrintf(
      "arena (last): %lld heap allocs, %lld reuses, %lld B cached "
      "(%lld B high water)\n",
      static_cast<long long>(s.last.arena_heap_allocs),
      static_cast<long long>(s.last.arena_reuses),
      static_cast<long long>(s.last.arena_cached_bytes),
      static_cast<long long>(s.last.arena_high_water_bytes));
  std::cout << "total wall: " << FormatMs(s.total_wall_ns) << " ms\n";

  if (!s.spans.empty()) {
    std::cout << "\n";
    garl::TableWriter table({"phase", "count", "total_ms", "mean_ms",
                             "share_%"});
    double wall = static_cast<double>(s.total_wall_ns);
    for (const auto& entry : s.spans) {
      const garl::obs::SpanTiming& span = entry.second;
      double total_ns = static_cast<double>(span.total_ns);
      double mean_ms =
          span.count > 0 ? total_ns / static_cast<double>(span.count) / 1e6
                         : 0.0;
      double share = wall > 0.0 ? 100.0 * total_ns / wall : 0.0;
      table.AddRow({span.name,
                    garl::StrPrintf("%lld", static_cast<long long>(span.count)),
                    FormatMs(span.total_ns), garl::StrPrintf("%.3f", mean_ms),
                    garl::StrPrintf("%.1f", share)});
    }
    table.Print(std::cout);
  }

  if (!s.last.hists.empty()) {
    // Latency histograms are point-in-time quantile snapshots, not deltas:
    // the last record's values are the end-of-run view.
    std::cout << "\n";
    garl::TableWriter table({"histogram", "count", "p50", "p95", "p99",
                             "p99.9"});
    for (const garl::obs::HistogramTiming& hist : s.last.hists) {
      table.AddRow({hist.name,
                    garl::StrPrintf("%lld", static_cast<long long>(hist.count)),
                    garl::StrPrintf("%.3g", hist.p50),
                    garl::StrPrintf("%.3g", hist.p95),
                    garl::StrPrintf("%.3g", hist.p99),
                    garl::StrPrintf("%.3g", hist.p999)});
    }
    table.Print(std::cout);
  }
  return 0;
}

int Validate(const std::vector<std::string>& files) {
  // Multi-file validation adds the cross-segment iteration-continuity
  // contract on top of the per-line schema check.
  garl::Status status = files.size() == 1
                            ? garl::obs::ValidateRunLogFile(files[0])
                            : garl::obs::ValidateRunLogFiles(files);
  if (!status.ok()) {
    std::cerr << "garl_tracecat: " << status.ToString() << "\n";
    return 1;
  }
  if (files.size() == 1) {
    std::cout << files[0] << ": OK\n";
  } else {
    std::cout << files.size() << " stitched segments: OK\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage();
  garl::StatusOr<std::vector<std::string>> files =
      garl::obs::CollectRunLogInputs(inputs);
  if (!files.ok()) {
    std::cerr << "garl_tracecat: " << files.status().ToString() << "\n";
    return 1;
  }
  return validate ? Validate(files.value()) : Summarize(files.value());
}
