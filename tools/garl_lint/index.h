#ifndef GARL_TOOLS_GARL_LINT_INDEX_H_
#define GARL_TOOLS_GARL_LINT_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/garl_lint/token.h"

// Phase-1 symbol index. For every file, garl_lint records the function
// definitions, the call sites inside them, and compact per-function summaries
// (taint behaviour, unsafe operations, dropped-result sites) that phase 2
// links into a whole-program call graph. Everything in a FileIndex is a pure
// function of (file contents, analysis tables), which is what makes the
// content-hash incremental cache sound: phase 2 always re-runs from the
// indexes, so a cached file can never go stale through *other* files.

namespace garl::lint {

// ---------------------------------------------------------------------------
// Analysis tables: the checked-in source/sink/unsafe declarations that drive
// the cross-file rules (tools/garl_lint/garl_lint.tables in the real tree).
// ---------------------------------------------------------------------------

struct AnalysisTables {
  // det-taint: calls to these functions yield nondeterministic values.
  // Matched against the last component of the callee name.
  std::set<std::string> taint_sources;
  // det-taint: reading a member with one of these names taints (the run-log
  // record's rt-only fields).
  std::set<std::string> taint_source_fields;
  // det-taint: passing a tainted value to one of these functions is a
  // finding (serializers, CRC).
  std::set<std::string> taint_sinks;
  // det-taint: struct type names (last component) whose det fields are
  // write-protected...
  std::set<std::string> record_types;
  // ...and the det field names on those types.
  std::set<std::string> det_fields;
  // parallel-unsafe: functions that may not be called from code reachable
  // from a ParallelFor body (non-reentrant singleton paths, registry
  // snapshots, process control). Matched against the last component.
  std::set<std::string> parallel_unsafe;
  // status-propagation: entry-point function names in addition to the
  // built-in `main` and `Train`.
  std::set<std::string> entry_points;

  // Order-independent content digest, part of the cache salt.
  uint64_t Hash() const;
};

// Parses the table text. Lines: `source NAME`, `source-field NAME`,
// `sink NAME`, `record-type NAME`, `det-field NAME`, `parallel-unsafe NAME`,
// `entry NAME`; '#' comments and blank lines ignored. Unknown directives are
// reported in `error` (first one wins) and the table is unusable.
bool ParseAnalysisTables(const std::string& text, AnalysisTables* tables,
                         std::string* error);

// ---------------------------------------------------------------------------
// Suppressions (serializable so cached files keep honouring them).
// ---------------------------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_level;                // allow-file(rule)
  std::map<int, std::set<std::string>> by_line;    // allow(rule)
  std::map<int, std::set<std::string>> next_line;  // allow-next-line(rule)

  bool Covers(const std::string& rule, int line) const;
};

// ---------------------------------------------------------------------------
// Per-function summaries.
// ---------------------------------------------------------------------------

struct CallSite {
  std::string callee;  // last component ("MonotonicNowNs")
  std::string qual;    // as written ("obs::MonotonicNowNs", "pool.stats")
  int line = 0;
  bool in_parallel_body = false;  // lexically inside a ParallelFor(...) call
};

// A value that reached a det sink. `via_calls` non-empty means the hit is
// conditional: it fires iff one of those callees is found (in phase 2) to
// return a tainted value.
struct SinkHit {
  int line = 0;
  std::string sink;    // sink function name or "RecordType.field"
  std::string source;  // direct source name, "" when only via calls
  std::vector<std::string> via_calls;
};

// A statement that drops the result of a call (candidate status-discard;
// phase 2 filters by the whole-program fallible set).
struct DiscardSite {
  int line = 0;
  std::string callee;
  bool voided = false;  // (void)-laundered
};

// A directly-unsafe operation for the parallel-unsafe rule.
struct UnsafeOp {
  int line = 0;
  std::string what;  // e.g. "fork()", "std::ofstream", "MetricsRegistry::Snapshot"
  bool in_parallel_body = false;
};

struct FunctionInfo {
  std::string name;  // last component
  std::string qual;  // Namespace::Class::name as best known
  int line = 0;      // definition line
  bool returns_status = false;
  std::vector<CallSite> calls;
  std::vector<SinkHit> sink_hits;
  std::vector<DiscardSite> discards;
  std::vector<UnsafeOp> unsafe_ops;
  std::vector<int> parallel_for_lines;
  bool returns_taint_direct = false;
  std::vector<std::string> returns_taint_via;  // callee names
};

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;      // 1-based
  std::string rule;  // stable rule id
  std::string message;

  std::string ToString() const;  // "file:line: [rule] message"
};

struct FileIndex {
  std::string path;
  uint64_t content_hash = 0;
  std::vector<std::string> includes;          // quoted-include paths
  std::vector<std::string> fallible;          // Status-returning declarations
  std::vector<FunctionInfo> functions;
  Suppressions suppressions;
  std::vector<Finding> local_findings;        // phase-1 rules, unsuppressed
};

// Builds the index for one file: tokenizes, runs every local rule, extracts
// functions/calls/summaries. The result is cacheable (depends only on
// `contents` and `tables`).
FileIndex BuildFileIndex(const std::string& rel_path,
                         const std::string& contents,
                         const AnalysisTables& tables);

// FNV-1a 64 over bytes — the cache key and table digest primitive.
uint64_t HashBytes(const std::string& bytes);

// Cache (de)serialization. The format is line-oriented, versioned by the
// cache salt in cache.cc; Parse returns false on any malformed input.
std::string SerializeFileIndex(const FileIndex& index);
bool ParseFileIndex(const std::string& text, FileIndex* index);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_INDEX_H_
