#include "tools/garl_lint/token.h"

#include <cctype>
#include <set>

namespace garl::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so maximal munch works.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "==", "!=", "<=", ">=", "&&",
    "||", "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "++", "--",  ".*",
};

}  // namespace

bool IsCallKeyword(const std::string& ident) {
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",    "switch",        "return", "sizeof",
      "catch",  "assert", "static_assert",           "alignof", "decltype",
      "typeid", "new",    "delete", "throw",         "co_return", "co_await"};
  return kKeywords.count(ident) > 0;
}

TokenizedFile TokenizeFile(const std::string& contents) {
  TokenizedFile out;
  out.line_code.emplace_back();
  int line = 1;
  bool in_pp = false;        // inside a preprocessor directive
  bool line_has_code = false;  // saw a non-ws token on this physical line

  auto code = [&]() -> std::string& { return out.line_code.back(); };

  size_t i = 0;
  const size_t n = contents.size();
  while (i < n) {
    char c = contents[i];
    char next = i + 1 < n ? contents[i + 1] : '\0';

    if (c == '\n') {
      // A backslash immediately before the newline continues a directive.
      bool continued = in_pp && !code().empty() && code().back() == '\\';
      if (!continued) in_pp = false;
      ++line;
      out.line_code.emplace_back();
      line_has_code = false;
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && next == '/') {
      size_t end = contents.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments[line] += contents.substr(i + 2, end - i - 2);
      i = end;
      continue;
    }
    if (c == '/' && next == '*') {
      i += 2;
      while (i < n) {
        if (contents[i] == '*' && i + 1 < n && contents[i + 1] == '/') {
          i += 2;
          break;
        }
        if (contents[i] == '\n') {
          ++line;
          out.line_code.emplace_back();
          line_has_code = false;
        } else {
          out.comments[line] += contents[i];
        }
        ++i;
      }
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && next == '"' &&
        (i == 0 || !IsIdentChar(contents[i - 1]))) {
      size_t paren = contents.find('(', i + 2);
      if (paren != std::string::npos) {
        std::string close =
            ")" + contents.substr(i + 2, paren - i - 2) + "\"";
        size_t end = contents.find(close, paren + 1);
        if (end == std::string::npos) end = n;
        for (size_t j = i; j < std::min(end + close.size(), n); ++j) {
          if (contents[j] == '\n') {
            ++line;
            out.line_code.emplace_back();
            line_has_code = false;
          }
        }
        code() += "R\"\"";
        out.tokens.push_back({TokKind::kString, "", line, in_pp});
        i = std::min(end + close.size(), n);
        line_has_code = true;
        continue;
      }
    }

    // String / char literals (contents blanked; escaped chars skipped).
    if (c == '"' || c == '\'') {
      char quote = c;
      code() += quote;
      ++i;
      while (i < n && contents[i] != quote) {
        if (contents[i] == '\\') ++i;
        if (i < n && contents[i] == '\n') {
          ++line;
          out.line_code.emplace_back();
        }
        ++i;
      }
      if (i < n) ++i;  // closing quote
      code() += quote;
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "", line, in_pp});
      line_has_code = true;
      continue;
    }

    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      code() += c;
      ++i;
      continue;
    }

    // Preprocessor directive start: '#' as the first code on a line.
    if (c == '#' && !line_has_code) {
      in_pp = true;
    }

    line_has_code = true;

    // Identifier.
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(contents[i])) ++i;
      std::string text = contents.substr(start, i - start);
      code() += text;
      out.tokens.push_back({TokKind::kIdent, std::move(text), line, in_pp});
      continue;
    }

    // Number (pp-number: digits, idents, '.' and exponent signs).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(next)))) {
      size_t start = i;
      ++i;
      while (i < n) {
        char d = contents[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if ((d == '+' || d == '-') &&
                   (contents[i - 1] == 'e' || contents[i - 1] == 'E' ||
                    contents[i - 1] == 'p' || contents[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      std::string text = contents.substr(start, i - start);
      code() += text;
      out.tokens.push_back({TokKind::kNumber, std::move(text), line, in_pp});
      continue;
    }

    // Punctuator: try multi-char forms first.
    std::string text;
    for (const char* p : kPuncts) {
      size_t len = std::char_traits<char>::length(p);
      if (contents.compare(i, len, p) == 0) {
        text = p;
        break;
      }
    }
    if (text.empty()) text = std::string(1, c);
    i += text.size();
    code() += text;
    out.tokens.push_back({TokKind::kPunct, std::move(text), line, in_pp});
  }
  return out;
}

}  // namespace garl::lint
