#include "tools/garl_lint/cache.h"

#include <fstream>
#include <sstream>

namespace garl::lint {
namespace {

const char kMagic[] = "garl-lint-cache/2";
const char kEntrySep[] = "%%";

}  // namespace

void IndexCache::Load(const std::string& path, uint64_t salt) {
  entries_.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::string header;
  if (!std::getline(in, header)) return;
  std::istringstream head(header);
  std::string magic;
  uint64_t stored_salt = 0;
  if (!(head >> magic >> stored_salt) || magic != kMagic ||
      stored_salt != salt) {
    return;  // different tool version / tables: cold run
  }
  std::string line, block;
  while (std::getline(in, line)) {
    if (line == kEntrySep) {
      FileIndex index;
      if (ParseFileIndex(block, &index) && !index.path.empty()) {
        entries_[index.path] = std::move(index);
      }
      block.clear();
    } else {
      block += line;
      block += '\n';
    }
  }
}

const FileIndex* IndexCache::Lookup(const std::string& rel_path,
                                    uint64_t content_hash) const {
  auto it = entries_.find(rel_path);
  if (it == entries_.end() || it->second.content_hash != content_hash) {
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void IndexCache::Store(const FileIndex& index) { entries_[index.path] = index; }

bool IndexCache::Save(const std::string& path, uint64_t salt,
                      std::string* error) const {
  std::ostringstream os;
  os << kMagic << " " << salt << "\n";
  for (const auto& [rel, index] : entries_) {
    os << SerializeFileIndex(index) << kEntrySep << "\n";
  }
  // The cache is derived, local, throwaway state — a plain stream write is
  // fine (and fs_util would drag the whole library into this dependency-free
  // tool). A torn write just means a cold run next time.
  // garl-lint: allow-next-line(direct-io)
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open cache file '" + path + "' for writing";
    return false;
  }
  out << os.str();
  out.flush();
  if (!out) {
    *error = "short write to cache file '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace garl::lint
