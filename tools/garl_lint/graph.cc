#include "tools/garl_lint/graph.h"

#include <algorithm>
#include <deque>
#include <map>

namespace garl::lint {
namespace {

// One linked function: (owning file, function) plus a stable id.
struct FnNode {
  const FileIndex* file = nullptr;
  const FunctionInfo* fn = nullptr;
};

class Linker {
 public:
  Linker(const std::vector<FileIndex>& indexes, const AnalysisTables& tables,
         const std::set<std::string>& extra_fallible)
      : indexes_(indexes), tables_(tables) {
    fallible_ = extra_fallible;
    for (const auto& index : indexes_) {
      for (const auto& name : index.fallible) fallible_.insert(name);
      for (const auto& fn : index.functions) {
        nodes_.push_back({&index, &fn});
      }
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      by_name_[nodes_[i].fn->name].push_back(i);
    }
    BuildIncludeClosures();
  }

  std::vector<Finding> Run() {
    ComputeReturnsTaint();
    CheckStatusDiscardAndPropagation();
    CheckDetTaint();
    CheckParallelUnsafe();
    return std::move(findings_);
  }

 private:
  // --- include closure -----------------------------------------------------

  void BuildIncludeClosures() {
    std::map<std::string, const FileIndex*> by_path;
    for (const auto& index : indexes_) by_path[index.path] = &index;
    auto resolve_include = [&](const std::string& inc) -> const FileIndex* {
      auto it = by_path.find(inc);
      if (it != by_path.end()) return it->second;
      it = by_path.find("src/" + inc);
      if (it != by_path.end()) return it->second;
      return nullptr;
    };
    for (const auto& index : indexes_) {
      std::set<std::string>& closure = include_closure_[index.path];
      std::deque<const FileIndex*> queue = {&index};
      closure.insert(index.path);
      // A .cc sees its own header's includes too.
      if (index.path.size() > 3 &&
          index.path.compare(index.path.size() - 3, 3, ".cc") == 0) {
        std::string header = index.path.substr(0, index.path.size() - 3) + ".h";
        if (auto it = by_path.find(header); it != by_path.end()) {
          queue.push_back(it->second);
          closure.insert(header);
        }
      }
      while (!queue.empty()) {
        const FileIndex* cur = queue.front();
        queue.pop_front();
        for (const auto& inc : cur->includes) {
          const FileIndex* dep = resolve_include(inc);
          if (dep && closure.insert(dep->path).second) queue.push_back(dep);
        }
      }
    }
  }

  // Resolve a callee name from a calling file: all same-named definitions,
  // narrowed to the caller's include closure when that leaves any.
  std::vector<size_t> Resolve(const std::string& caller_file,
                              const std::string& callee) const {
    auto it = by_name_.find(callee);
    if (it == by_name_.end()) return {};
    const std::set<std::string>& closure = include_closure_.at(caller_file);
    std::vector<size_t> in_closure;
    for (size_t id : it->second) {
      if (closure.count(nodes_[id].file->path)) in_closure.push_back(id);
    }
    return in_closure.empty() ? it->second : in_closure;
  }

  // --- findings ------------------------------------------------------------

  void Emit(const FileIndex& file, int line, const std::string& rule,
            const std::string& message) {
    if (file.suppressions.Covers(rule, line)) return;
    if (!emitted_.insert(file.path + "\x1f" + std::to_string(line) + "\x1f" +
                         rule)
             .second) {
      return;
    }
    findings_.push_back({file.path, line, rule, message});
  }

  // --- interprocedural returns-taint fixpoint ------------------------------

  void ComputeReturnsTaint() {
    returns_taint_.assign(nodes_.size(), false);
    taint_source_of_.assign(nodes_.size(), "");
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].fn->returns_taint_direct) {
        returns_taint_[i] = true;
        taint_source_of_[i] = nodes_[i].fn->qual;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (returns_taint_[i]) continue;
        for (const auto& via : nodes_[i].fn->returns_taint_via) {
          for (size_t callee : Resolve(nodes_[i].file->path, via)) {
            if (returns_taint_[callee]) {
              returns_taint_[i] = true;
              taint_source_of_[i] = taint_source_of_[callee];
              changed = true;
              break;
            }
          }
          if (returns_taint_[i]) break;
        }
      }
    }
  }

  // The name of a function (by node id) whose return value carries taint, or
  // "" — used to pick which `via` callee to blame in a SinkHit.
  std::string TaintedVia(const std::string& caller_file,
                         const std::vector<std::string>& via_calls,
                         std::string* origin) const {
    for (const auto& via : via_calls) {  // via_calls is sorted: deterministic
      for (size_t callee : Resolve(caller_file, via)) {
        if (returns_taint_[callee]) {
          *origin = taint_source_of_[callee];
          return via;
        }
      }
    }
    return "";
  }

  // --- rule: status-discard + status-propagation ---------------------------

  void CheckStatusDiscardAndPropagation() {
    // Entry reachability with parent chains for the escalation rule.
    std::vector<int> parent(nodes_.size(), -2);  // -2 unvisited, -1 entry
    std::deque<size_t> queue;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      const std::string& name = nodes_[i].fn->name;
      if (name == "main" || name == "Train" ||
          tables_.entry_points.count(name)) {
        parent[i] = -1;
        queue.push_back(i);
      }
    }
    while (!queue.empty()) {
      size_t cur = queue.front();
      queue.pop_front();
      for (const auto& call : nodes_[cur].fn->calls) {
        for (size_t callee : Resolve(nodes_[cur].file->path, call.callee)) {
          if (parent[callee] == -2) {
            parent[callee] = static_cast<int>(cur);
            queue.push_back(callee);
          }
        }
      }
    }
    auto chain_of = [&](size_t id) {
      std::vector<std::string> parts;
      for (int cur = static_cast<int>(id); cur != -1;
           cur = parent[static_cast<size_t>(cur)]) {
        parts.push_back(nodes_[static_cast<size_t>(cur)].fn->qual);
      }
      std::reverse(parts.begin(), parts.end());
      std::string chain;
      for (const auto& part : parts) {
        if (!chain.empty()) chain += " -> ";
        chain += part;
      }
      return chain;
    };

    for (size_t i = 0; i < nodes_.size(); ++i) {
      const FnNode& node = nodes_[i];
      for (const auto& discard : node.fn->discards) {
        if (!fallible_.count(discard.callee)) continue;
        if (discard.voided) {
          Emit(*node.file, discard.line, "status-discard",
               "'(void)' discards the Status from '" + discard.callee +
                   "'; handle it (WarnIfError / GARL_CHECK) or suppress with "
                   "a reason");
        } else {
          Emit(*node.file, discard.line, "status-discard",
               "result of fallible function '" + discard.callee +
                   "' is ignored; assign it, GARL_RETURN_IF_ERROR it, or "
                   "handle the error");
        }
        if (parent[i] != -2) {
          Emit(*node.file, discard.line, "status-propagation",
               "Status of fallible '" + discard.callee + "' is dropped in '" +
                   node.fn->qual + "', which is on a live path from an entry "
                   "point (" + chain_of(i) +
                   "); the failure can never reach the caller");
        }
      }
    }
  }

  // --- rule: det-taint -----------------------------------------------------

  void CheckDetTaint() {
    for (const auto& node : nodes_) {
      for (const auto& hit : node.fn->sink_hits) {
        if (!hit.source.empty()) {
          Emit(*node.file, hit.line, "det-taint",
               "value derived from nondeterministic source '" + hit.source +
                   "' reaches det sink " + hit.sink +
                   "; det bytes must be a pure function of config + seed");
          continue;
        }
        std::string origin;
        std::string via = TaintedVia(node.file->path, hit.via_calls, &origin);
        if (!via.empty()) {
          Emit(*node.file, hit.line, "det-taint",
               "value returned by '" + via +
                   "' derives from a nondeterministic source (via " + origin +
                   ") and reaches det sink " + hit.sink +
                   "; det bytes must be a pure function of config + seed");
        }
      }
    }
  }

  // --- rule: parallel-unsafe -----------------------------------------------

  void CheckParallelUnsafe() {
    // Direct: unsafe ops lexically inside a ParallelFor argument list.
    for (const auto& node : nodes_) {
      for (const auto& op : node.fn->unsafe_ops) {
        if (op.in_parallel_body) {
          Emit(*node.file, op.line, "parallel-unsafe",
               op.what + " inside a ParallelFor body; worker lambdas must "
               "stay reentrant, I/O-free and lock-free");
        }
      }
    }
    // Transitive: functions reachable from any ParallelFor body call.
    std::vector<int> parent(nodes_.size(), -2);
    std::vector<std::string> seed_label(nodes_.size());
    std::deque<size_t> queue;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      for (const auto& call : nodes_[i].fn->calls) {
        if (!call.in_parallel_body) continue;
        for (size_t callee : Resolve(nodes_[i].file->path, call.callee)) {
          if (parent[callee] == -2) {
            parent[callee] = -1;
            seed_label[callee] =
                nodes_[i].fn->qual + "'s ParallelFor body";
            queue.push_back(callee);
          }
        }
      }
    }
    while (!queue.empty()) {
      size_t cur = queue.front();
      queue.pop_front();
      for (const auto& call : nodes_[cur].fn->calls) {
        for (size_t callee : Resolve(nodes_[cur].file->path, call.callee)) {
          if (parent[callee] == -2) {
            parent[callee] = static_cast<int>(cur);
            queue.push_back(callee);
          }
        }
      }
    }
    auto chain_of = [&](size_t id) {
      std::vector<std::string> parts;
      int cur = static_cast<int>(id);
      while (cur != -1) {
        parts.push_back(nodes_[static_cast<size_t>(cur)].fn->qual);
        int next = parent[static_cast<size_t>(cur)];
        if (next == -1) {
          parts.push_back(seed_label[static_cast<size_t>(cur)]);
        }
        cur = next;
      }
      std::reverse(parts.begin(), parts.end());
      std::string chain;
      for (const auto& part : parts) {
        if (!chain.empty()) chain += " -> ";
        chain += part;
      }
      return chain;
    };
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (parent[i] == -2) continue;
      for (const auto& op : nodes_[i].fn->unsafe_ops) {
        Emit(*nodes_[i].file, op.line, "parallel-unsafe",
             op.what + " in '" + nodes_[i].fn->qual +
                 "', which is reachable from a ParallelFor body (" +
                 chain_of(i) + "); worker code must stay reentrant, I/O-free "
                 "and lock-free");
      }
    }
  }

  const std::vector<FileIndex>& indexes_;
  const AnalysisTables& tables_;
  std::set<std::string> fallible_;
  std::vector<FnNode> nodes_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::map<std::string, std::set<std::string>> include_closure_;
  std::vector<bool> returns_taint_;
  std::vector<std::string> taint_source_of_;
  std::vector<Finding> findings_;
  std::set<std::string> emitted_;
};

}  // namespace

std::vector<Finding> RunGlobalRules(
    const std::vector<FileIndex>& indexes, const AnalysisTables& tables,
    const std::set<std::string>& extra_fallible) {
  return Linker(indexes, tables, extra_fallible).Run();
}

}  // namespace garl::lint
