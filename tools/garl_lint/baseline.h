#ifndef GARL_TOOLS_GARL_LINT_BASELINE_H_
#define GARL_TOOLS_GARL_LINT_BASELINE_H_

#include <string>
#include <vector>

#include "tools/garl_lint/index.h"

// Accepted-findings baseline. Every entry must carry a human justification
// and must still match a live finding — unknown rules, malformed lines and
// stale entries are hard errors (exit 2), so the baseline can only shrink
// honestly; it cannot rot into a list of dead excuses.
//
// Format, one entry per line ('#' comments and blank lines ignored):
//   <rule> <file>[:<line>] -- <justification text>
// The :<line> part is optional; without it the entry matches every finding
// of that rule in that file (for rules whose line drifts with edits).

namespace garl::lint {

struct BaselineEntry {
  std::string rule;
  std::string file;
  int line = 0;        // 0 = any line
  std::string justification;
  int source_line = 0;  // line in the baseline file, for error messages
};

// Parses baseline text. Returns false and sets `error` on malformed lines,
// missing justifications, or unknown rule names.
bool ParseBaseline(const std::string& text, std::vector<BaselineEntry>* entries,
                   std::string* error);

// Removes findings matched by `entries` from `findings`. Returns "" on
// success, else an error message naming every stale entry (entries that
// matched nothing — the underlying issue was fixed, so the excuse must go).
std::string ApplyBaseline(const std::vector<BaselineEntry>& entries,
                          std::vector<Finding>* findings);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_BASELINE_H_
