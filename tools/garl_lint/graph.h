#ifndef GARL_TOOLS_GARL_LINT_GRAPH_H_
#define GARL_TOOLS_GARL_LINT_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "tools/garl_lint/index.h"

// Phase 2: links per-file indexes into a whole-program call graph and runs
// the cross-file rules. Unlike phase 1 this is never cached — it is cheap
// (summaries only, no source text) and depends on the whole file set.
//
// Call resolution is heuristic (no types, no overload sets): a callee name
// resolves to every function definition with the same last component,
// narrowed to the caller's include closure (plus same-file) when that
// narrowing is non-empty. This overapproximates reachability — fine for the
// safety rules here, where a false edge at worst asks for a justified
// suppression, while a missed edge would silently void the guarantee.

namespace garl::lint {

// Runs status-discard (global fallible set), det-taint, parallel-unsafe and
// status-propagation over the linked indexes. Findings are suppression-
// filtered against each owning file's directives but NOT sorted.
std::vector<Finding> RunGlobalRules(const std::vector<FileIndex>& indexes,
                                    const AnalysisTables& tables,
                                    const std::set<std::string>& extra_fallible);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_GRAPH_H_
