#ifndef GARL_TOOLS_GARL_LINT_LINT_H_
#define GARL_TOOLS_GARL_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

#include "tools/garl_lint/index.h"

// garl_lint — dependency-free static analyzer that machine-checks the repo
// invariants behind the determinism and fault-tolerance guarantees
// (bit-identical losses for any thread count, crash-safe resume).
//
// v2 is a two-phase engine. Phase 1 tokenizes each file (token.h), runs the
// local rules, and emits a per-file symbol index (index.h): function
// definitions, call sites, and compact dataflow summaries. Phase 2 (graph.h)
// links the indexes into a whole-program call graph — callee names resolved
// by include closure + namespace heuristics — and runs the cross-file rules.
// Phase 1 is cacheable by content hash (cache.h); phase 2 always re-runs.
// It is still NOT a compiler: no preprocessing, no types, no overload
// resolution — every rule is a token/summary heuristic tuned to this
// codebase and kept honest by the fixture tests in tests/lint_fixtures/.
//
// Local rules (ids are stable, used in suppressions, baselines and tests):
//   nondet-rand        std::rand / srand / rand() / std::random_device outside
//                      src/common/rng.* — all randomness flows through
//                      garl::Rng so seeds fully determine behaviour.
//   nondet-time        time() / clock() / gettimeofday / std::chrono wall or
//                      monotonic clocks outside bench/ — wall-clock reads in
//                      library code are hidden nondeterminism. The single
//                      sanctioned exception is src/obs/clock.*, which wraps
//                      the monotonic clock behind obs::MonotonicNowNs(); the
//                      rest of src/obs/ is still checked.
//   include-guard      headers must open with the canonical
//                      `#ifndef GARL_<PATH>_H_` guard (path relative to src/,
//                      else to the repo root) or `#pragma once`.
//   float-double-drift `double` in kernel hot-path files (src/nn GEMM/conv/
//                      LSTM/tensor kernels) — mixed-precision accumulation
//                      changes results between builds and breaks bit-identical
//                      replay.
//   raw-new-delete     raw `new` / `delete` outside the tensor allocator
//                      (src/nn/tensor.*, src/nn/arena.*) — ownership flows
//                      through make_unique/shared or the arena.
//   unordered-serialize iteration over an unordered container inside a
//                      serialize/save/write/dump-like function — hash-order
//                      iteration feeding bytes makes checkpoints
//                      machine-dependent.
//   direct-io          std::ofstream, mkdir(), or a mutating std::filesystem
//                      call in src/ or tools/ outside src/common/fs_util.* —
//                      every write must flow through the one durable path
//                      (AtomicWriteFile / WriteFileDurable / AppendFile /
//                      EnsureDirectory). bench/ is exempt. In src/ (only),
//                      std::ifstream is banned too: reads must flow through
//                      ReadFileToString so the fs read-fault hook covers them.
//   process-spawn      fork / vfork / exec* / posix_spawn / system() / popen()
//                      in src/ or tools/ outside src/common/proc.* — every
//                      child process flows through the one supervised spawn
//                      path (proc::SpawnProcess / PollProcess / SendSignal).
//   bad-suppression    a garl-lint suppression naming an unknown rule (so
//                      typos cannot silently disable nothing).
//
// Cross-file rules (phase 2; sources/sinks declared in
// tools/garl_lint/garl_lint.tables):
//   status-discard     a statement (or `(void)` cast) that calls a function
//                      returning Status/StatusOr and drops the result. The
//                      fallible-function set is harvested from declarations
//                      across the whole scanned tree.
//   status-propagation escalation of status-discard: the discarding function
//                      is on a live call chain from an entry point
//                      (main/Train/table `entry` lines), so the dropped
//                      failure can never reach any caller. Reported with the
//                      chain.
//   det-taint          a value transitively derived from a declared nondet
//                      source (monotonic clock, pool/arena counters, env-flag
//                      reads, rt-only run-log fields) reaches a det sink — a
//                      det field of a protected record type, or an argument
//                      of a serialization/CRC function. Tracks local
//                      assignments flow-insensitively and function returns
//                      across files.
//   parallel-unsafe    an operation that must not run inside a ParallelFor
//                      body — process control, direct file I/O, or a call to
//                      a declared non-reentrant function (registry snapshot
//                      paths) — found lexically inside a body lambda or in
//                      any function reachable from one. Reported with the
//                      reachability chain.
//
// Suppression syntax (same forms clang-tidy users expect from NOLINT; the
// `<...>` placeholders below are ignored by the directive parser):
//   ... code ...  // garl-lint: allow(<rule-id>, <rule-id>)
//   // garl-lint: allow-next-line(<rule-id>)
//   // garl-lint: allow-file(<rule-id>)     (anywhere in the file)
//
// Baselines (--baseline FILE) accept known findings with a per-entry
// justification; stale or unknown entries fail the run (see baseline.h).

namespace garl::lint {

struct LintOptions {
  // Directory names skipped entirely during tree walks. Fixture sources are
  // deliberately rule-breaking; build trees are generated.
  std::vector<std::string> skip_dir_names = {"lint_fixtures"};
  // Directory name prefixes skipped during tree walks (build/, build-asan/...).
  std::vector<std::string> skip_dir_prefixes = {"build"};
  // Extra function names treated as fallible (returning Status/StatusOr) on
  // top of the ones harvested from declarations in the scanned files.
  std::vector<std::string> extra_fallible_functions;
  // Repo-relative path of the analysis tables (det-taint sources/sinks,
  // parallel-unsafe names, extra entry points). Missing file = empty tables;
  // a malformed file is an error.
  std::string tables_relpath = "tools/garl_lint/garl_lint.tables";
  // Path of the phase-1 index cache file; empty disables caching.
  std::string cache_path;
};

struct LintStats {
  int files = 0;
  int cache_hits = 0;
  int cache_misses = 0;
};

// Full result of a tree run. `error` non-empty means the run itself failed
// (malformed tables, unwritable cache) and `findings` must not be trusted —
// the CLI maps this to exit code 2.
struct LintRun {
  std::vector<Finding> findings;
  LintStats stats;
  std::string error;
};

// Returns every rule id the linter knows (sorted); suppressions or baseline
// entries naming anything else are themselves errors.
const std::set<std::string>& KnownRules();

// Harvests names of functions declared to return Status or StatusOr<...>
// from one file's contents. Exposed for tests.
std::vector<std::string> CollectFallibleFunctions(const std::string& contents);

// Lints a single file: all local rules plus the single-file projections of
// the cross-file rules (status-discard against `fallible`, det-taint /
// parallel-unsafe with empty tables). `rel_path` is the repo-relative path
// ("src/..."), used for per-rule file exemptions and include-guard
// derivation. Findings are sorted by (line, rule).
std::vector<Finding> LintFileContents(const std::string& rel_path,
                                      const std::string& contents,
                                      const std::set<std::string>& fallible);

// Walks `roots` (repo-relative directories under `repo_root`), builds or
// reuses per-file indexes, links them, and runs every rule. Findings are
// sorted by (file, line, rule).
LintRun LintTreeFull(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const LintOptions& options = {});

// Back-compat wrapper: findings only (empty on hard error).
std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots,
                              const LintOptions& options = {});

// The canonical include guard for a repo-relative header path:
// "src/common/rng.h" -> "GARL_COMMON_RNG_H_", "bench/bench_common.h" ->
// "GARL_BENCH_BENCH_COMMON_H_".
std::string CanonicalGuard(const std::string& rel_path);

// Strips // and /* */ comments and the contents of string/char literals
// (preserving line structure) so token rules don't fire on prose. Exposed
// for tests.
std::string StripCommentsAndStrings(const std::string& contents);

// Machine-readable findings: a JSON array of {file, line, rule, message}
// objects, one per line, stable under sorted input (golden-tested).
std::string FormatFindingsJson(const std::vector<Finding>& findings);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_LINT_H_
