#ifndef GARL_TOOLS_GARL_LINT_LINT_H_
#define GARL_TOOLS_GARL_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

// garl_lint — dependency-free, line/token-heuristic linter that machine-checks
// the repo invariants behind the determinism and fault-tolerance guarantees
// (bit-identical losses for any thread count, crash-safe resume). It is NOT a
// parser: every rule is a regex/token heuristic over comment- and
// string-stripped source, tuned to this codebase and kept honest by the
// fixture tests in tests/lint_fixtures/.
//
// Rules (ids are stable, used in suppressions and tests):
//   nondet-rand        std::rand / srand / rand() / std::random_device outside
//                      src/common/rng.* — all randomness flows through
//                      garl::Rng so seeds fully determine behaviour.
//   nondet-time        time() / clock() / gettimeofday / std::chrono wall or
//                      monotonic clocks outside bench/ — wall-clock reads in
//                      library code are hidden nondeterminism. The single
//                      sanctioned exception is src/obs/clock.*, which wraps
//                      the monotonic clock behind obs::MonotonicNowNs(); the
//                      rest of src/obs/ is still checked.
//   status-discard     a statement (or `(void)` cast) that calls a function
//                      returning Status/StatusOr and drops the result. The
//                      fallible-function set is harvested from declarations
//                      across the scanned tree. Complements [[nodiscard]]:
//                      the linter also rejects `(void)` laundering.
//   include-guard      headers must open with the canonical
//                      `#ifndef GARL_<PATH>_H_` guard (path relative to src/,
//                      else to the repo root) or `#pragma once`.
//   float-double-drift `double` in kernel hot-path files (src/nn GEMM/conv/
//                      LSTM/tensor kernels) — mixed-precision accumulation
//                      changes results between builds and breaks bit-identical
//                      replay.
//   raw-new-delete     raw `new` / `delete` outside the tensor allocator
//                      (src/nn/tensor.*) — ownership flows through
//                      make_unique/shared or the arena.
//   unordered-serialize iteration over an unordered container inside a
//                      serialize/save/write/dump-like function — hash-order
//                      iteration feeding bytes makes checkpoints
//                      machine-dependent.
//   direct-io          std::ofstream, mkdir(), or a mutating std::filesystem
//                      call in src/ or tools/ outside src/common/fs_util.* —
//                      every write must flow through the one durable path
//                      (AtomicWriteFile / WriteFileDurable / AppendFile /
//                      EnsureDirectory), which is crash-safe (fsync + atomic
//                      rename), retried on transient errors, and honours the
//                      fault-injection hook. bench/ is exempt: benchmark
//                      side-car output is not part of the durability story.
//   process-spawn      fork / vfork / exec* / posix_spawn / system() / popen()
//                      in src/ or tools/ outside src/common/proc.* — every
//                      child process must flow through the one supervised
//                      spawn path (proc::SpawnProcess / PollProcess /
//                      SendSignal), which retries EINTR, decodes exit status
//                      uniformly, and reports exec failure as exit code 127.
//   bad-suppression    a garl-lint suppression naming an unknown rule (so
//                      typos cannot silently disable nothing).
//
// Suppression syntax (same forms clang-tidy users expect from NOLINT; the
// `<...>` placeholders below are ignored by the directive parser):
//   ... code ...  // garl-lint: allow(<rule-id>, <rule-id>)
//   // garl-lint: allow-next-line(<rule-id>)
//   // garl-lint: allow-file(<rule-id>)     (anywhere in the file)

namespace garl::lint {

struct Finding {
  std::string file;   // path as given to the linter (repo-relative)
  int line = 0;       // 1-based
  std::string rule;   // stable rule id
  std::string message;

  std::string ToString() const;  // "file:line: [rule] message"
};

struct LintOptions {
  // Directory names skipped entirely during tree walks. Fixture sources are
  // deliberately rule-breaking; build trees are generated.
  std::vector<std::string> skip_dir_names = {"lint_fixtures"};
  // Directory name prefixes skipped during tree walks (build/, build-asan/...).
  std::vector<std::string> skip_dir_prefixes = {"build"};
  // Extra function names treated as fallible (returning Status/StatusOr) on
  // top of the ones harvested from declarations in the scanned files.
  std::vector<std::string> extra_fallible_functions;
};

// Returns every rule id the linter knows (sorted); suppressions naming
// anything else are themselves findings.
const std::set<std::string>& KnownRules();

// Harvests names of functions declared to return Status or StatusOr<...>
// from one file's contents. Exposed for tests.
std::vector<std::string> CollectFallibleFunctions(const std::string& contents);

// Lints a single file. `rel_path` is the repo-relative path ("src/..."), used
// for per-rule file exemptions and include-guard derivation. `fallible` is
// the set of known Status-returning function names.
std::vector<Finding> LintFileContents(const std::string& rel_path,
                                      const std::string& contents,
                                      const std::set<std::string>& fallible);

// Walks `roots` (repo-relative directories under `repo_root`), harvests
// fallible functions from every .h/.cc/.cpp, then lints each file.
// Findings are sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots,
                              const LintOptions& options = {});

// The canonical include guard for a repo-relative header path:
// "src/common/rng.h" -> "GARL_COMMON_RNG_H_", "bench/bench_common.h" ->
// "GARL_BENCH_BENCH_COMMON_H_".
std::string CanonicalGuard(const std::string& rel_path);

// Strips // and /* */ comments and the contents of string/char literals
// (preserving line structure) so token rules don't fire on prose. Exposed
// for tests.
std::string StripCommentsAndStrings(const std::string& contents);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_LINT_H_
