#ifndef GARL_TOOLS_GARL_LINT_RULES_LOCAL_H_
#define GARL_TOOLS_GARL_LINT_RULES_LOCAL_H_

#include <string>
#include <vector>

#include "tools/garl_lint/index.h"
#include "tools/garl_lint/token.h"

// Phase-1 local rules: everything that can be decided from one file alone.
// These produce the per-file findings stored in FileIndex::local_findings;
// the cross-file rules (det-taint, parallel-unsafe, status-propagation,
// status-discard filtering) live in graph.cc and always re-run in phase 2.

namespace garl::lint {

// Parses `// garl-lint: allow/allow-next-line/allow-file(rule,...)` from the
// tokenizer's per-line comment map. Unknown rule names become bad-suppression
// findings (appended to `findings`).
Suppressions ParseSuppressionDirectives(const TokenizedFile& file,
                                        const std::string& rel_path,
                                        std::vector<Finding>* findings);

// Harvests names of functions declared to return Status/StatusOr<...> from
// the per-line code view (comment/literal stripped). Sorted, deduped.
std::vector<std::string> HarvestFallibleFromLines(
    const std::vector<std::string>& line_code);

// Runs every local rule (nondet-rand, nondet-time, include-guard,
// float-double-drift, raw-new-delete, unordered-serialize, direct-io,
// process-spawn) with the per-path exemptions, appending to `findings`.
// Findings are NOT suppression-filtered here; BuildFileIndex does that.
void RunLocalRules(const std::string& rel_path, const TokenizedFile& file,
                   const std::vector<FunctionInfo>& functions,
                   std::vector<Finding>* findings);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_RULES_LOCAL_H_
