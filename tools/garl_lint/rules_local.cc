#include "tools/garl_lint/rules_local.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>

#include "tools/garl_lint/lint.h"

namespace garl::lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// ---------------------------------------------------------------------------
// Per-rule path exemptions (unchanged from v1; see lint.h for the rationale).
// ---------------------------------------------------------------------------

// Kernel hot-path files where every arithmetic temporary must stay float:
// a stray double accumulator changes rounding, which changes losses, which
// breaks the bit-identical-for-any-thread-count contract.
bool IsHotPathFile(const std::string& rel) {
  static const std::set<std::string> kHot = {
      "src/nn/ops.cc",       "src/nn/conv2d.cc", "src/nn/linear.cc",
      "src/nn/lstm_cell.cc", "src/nn/simd.h",    "src/nn/tensor.cc"};
  return kHot.count(rel) > 0;
}

bool IsRngFile(const std::string& rel) {
  return StartsWith(rel, "src/common/rng.");
}

bool IsBenchFile(const std::string& rel) { return StartsWith(rel, "bench/"); }

// The one sanctioned monotonic time source (src/obs/clock.*).
bool IsClockFile(const std::string& rel) {
  return StartsWith(rel, "src/obs/clock.");
}

// The sanctioned homes of raw allocation: tensor storage and the arena.
bool IsTensorAllocatorFile(const std::string& rel) {
  return StartsWith(rel, "src/nn/tensor.") || StartsWith(rel, "src/nn/arena.");
}

// The one sanctioned durable-write path (src/common/fs_util.*).
bool IsFsUtilFile(const std::string& rel) {
  return StartsWith(rel, "src/common/fs_util.");
}

bool IsDirectIoScope(const std::string& rel) {
  return StartsWith(rel, "src/") || StartsWith(rel, "tools/");
}

// The one sanctioned process-spawn path (src/common/proc.*).
bool IsProcFile(const std::string& rel) {
  return StartsWith(rel, "src/common/proc.");
}

// ---------------------------------------------------------------------------
// Token-stream rules. Each emitter dedupes per (line, message) to preserve
// the v1 behaviour of at most one finding per rule pattern per line.
// ---------------------------------------------------------------------------

class TokenRuleRunner {
 public:
  TokenRuleRunner(const std::string& rel_path,
                  const std::vector<Token>& tokens,
                  std::vector<Finding>* findings)
      : rel_path_(rel_path), tokens_(tokens), findings_(findings) {}

  void Emit(int line, const char* rule, const std::string& message) {
    if (!emitted_.insert(std::to_string(line) + "\x1f" + rule + "\x1f" +
                         message)
             .second) {
      return;
    }
    findings_->push_back({rel_path_, line, rule, message});
  }

  size_t Size() const { return tokens_.size(); }

  bool Ident(size_t i) const {
    return i < tokens_.size() && tokens_[i].kind == TokKind::kIdent;
  }

  bool Punct(size_t i, const char* text) const {
    return i < tokens_.size() && tokens_[i].kind == TokKind::kPunct &&
           tokens_[i].text == text;
  }

  const std::string& Text(size_t i) const { return tokens_[i].text; }
  int Line(size_t i) const { return tokens_[i].line; }

  // Previous-token filter shared by the "bare call" patterns: `x.name(` and
  // `x->name(` are member calls on an unrelated object, not the banned
  // global. `::name(` is still the global.
  bool MemberPrev(size_t i) const {
    return i > 0 && (Punct(i - 1, ".") || Punct(i - 1, "->"));
  }

  bool QualifiedOrMemberPrev(size_t i) const {
    return i > 0 &&
           (Punct(i - 1, "::") || Punct(i - 1, ".") || Punct(i - 1, "->"));
  }

 private:
  const std::string& rel_path_;
  const std::vector<Token>& tokens_;
  std::vector<Finding>* findings_;
  std::set<std::string> emitted_;
};

void CheckNondetRand(TokenRuleRunner& run) {
  static const char* kRandMsg =
      "C rand()/srand() is banned; draw from an explicit garl::Rng so seeds "
      "determine behaviour";
  for (size_t i = 0; i < run.Size(); ++i) {
    if (!run.Ident(i)) continue;
    const std::string& name = run.Text(i);
    if (name == "random_device") {
      run.Emit(run.Line(i), "nondet-rand",
               "std::random_device is a nondeterminism source; seed an "
               "explicit garl::Rng instead");
    } else if (name == "rand") {
      bool std_qualified = i >= 2 && run.Punct(i - 1, "::") && run.Ident(i - 2) &&
                           run.Text(i - 2) == "std";
      bool bare_call = run.Punct(i + 1, "(") && !run.QualifiedOrMemberPrev(i);
      if (std_qualified || bare_call) {
        run.Emit(run.Line(i), "nondet-rand", kRandMsg);
      }
    } else if (name == "srand" && run.Punct(i + 1, "(")) {
      run.Emit(run.Line(i), "nondet-rand", kRandMsg);
    }
  }
}

void CheckNondetTime(TokenRuleRunner& run) {
  static const char* kWallMsg =
      "wall-clock reads are banned in library code; pass timestamps in or "
      "move timing into bench/";
  for (size_t i = 0; i < run.Size(); ++i) {
    if (!run.Ident(i)) continue;
    const std::string& name = run.Text(i);
    if (name == "gettimeofday") {
      run.Emit(run.Line(i), "nondet-time", kWallMsg);
    } else if ((name == "time" || name == "clock") && run.Punct(i + 1, "(") &&
               !run.QualifiedOrMemberPrev(i)) {
      run.Emit(run.Line(i), "nondet-time", kWallMsg);
    } else if (name == "system_clock" || name == "steady_clock" ||
               name == "high_resolution_clock") {
      run.Emit(run.Line(i), "nondet-time",
               "std::chrono clocks are banned outside bench/; library "
               "behaviour must not depend on the clock");
    }
  }
}

void CheckDirectIo(TokenRuleRunner& run, bool ban_ifstream) {
  static const char* kFsMutators[] = {"create_director", "remove", "rename",
                                      "resize_file", "copy", "permissions"};
  for (size_t i = 0; i < run.Size(); ++i) {
    if (!run.Ident(i)) continue;
    const std::string& name = run.Text(i);
    if (name == "ofstream") {
      run.Emit(run.Line(i), "direct-io",
               "std::ofstream bypasses the durable-write path; use "
               "WriteFileDurable/AtomicWriteFile (whole files) or AppendFile "
               "(logs) from common/fs_util.h");
    } else if (ban_ifstream && name == "ifstream") {
      // Library code (src/) must read through ReadFileToString so injected
      // read faults (fs_util read-fault hook) cover every load path; tools/
      // may still stream large inputs directly.
      run.Emit(run.Line(i), "direct-io",
               "std::ifstream bypasses the fault-injectable read path; use "
               "ReadFileToString from common/fs_util.h");
    } else if (name == "mkdir" && run.Punct(i + 1, "(") &&
               !run.MemberPrev(i)) {
      run.Emit(run.Line(i), "direct-io",
               "raw mkdir() bypasses the durable-write path; use "
               "EnsureDirectory from common/fs_util.h");
    } else if (run.Punct(i + 1, "(") && i >= 2 && run.Punct(i - 1, "::") &&
               run.Ident(i - 2) &&
               (run.Text(i - 2) == "filesystem" || run.Text(i - 2) == "fs")) {
      for (const char* prefix : kFsMutators) {
        if (name.rfind(prefix, 0) == 0) {
          run.Emit(run.Line(i), "direct-io",
                   "mutating std::filesystem call bypasses the durable-write "
                   "path; use EnsureDirectory/RemoveAllBestEffort from "
                   "common/fs_util.h");
          break;
        }
      }
    }
  }
}

bool IsExecName(const std::string& name) {
  static const std::set<std::string> kExec = {
      "execl", "execle", "execlp", "execlpe", "execv",
      "execve", "execvp", "execvpe", "fexecve"};
  return kExec.count(name) > 0;
}

void CheckProcessSpawn(TokenRuleRunner& run) {
  for (size_t i = 0; i < run.Size(); ++i) {
    if (!run.Ident(i) || !run.Punct(i + 1, "(")) continue;
    const std::string& name = run.Text(i);
    if ((name == "fork" || name == "vfork") && !run.MemberPrev(i)) {
      run.Emit(run.Line(i), "process-spawn",
               "raw fork() bypasses the process funnel; use "
               "proc::SpawnProcess from common/proc.h");
    } else if (IsExecName(name) && !run.MemberPrev(i)) {
      run.Emit(run.Line(i), "process-spawn",
               "raw exec*() bypasses the process funnel; use "
               "proc::SpawnProcess from common/proc.h");
    } else if ((name == "system" || name == "popen") && !run.MemberPrev(i)) {
      run.Emit(run.Line(i), "process-spawn",
               "system()/popen() runs a shell outside the process funnel; "
               "use proc::SpawnProcess from common/proc.h");
    } else if (name.rfind("posix_spawn", 0) == 0) {
      run.Emit(run.Line(i), "process-spawn",
               "posix_spawn bypasses the process funnel; use "
               "proc::SpawnProcess from common/proc.h");
    }
  }
}

void CheckFloatDoubleDrift(TokenRuleRunner& run) {
  for (size_t i = 0; i < run.Size(); ++i) {
    if (run.Ident(i) && run.Text(i) == "double") {
      run.Emit(run.Line(i), "float-double-drift",
               "'double' in a kernel hot path; keep accumulation in float so "
               "results stay bit-identical across builds and thread counts");
    }
  }
}

void CheckRawNewDelete(TokenRuleRunner& run) {
  for (size_t i = 0; i < run.Size(); ++i) {
    if (!run.Ident(i)) continue;
    const std::string& name = run.Text(i);
    bool after_operator =
        i > 0 && run.Ident(i - 1) && run.Text(i - 1) == "operator";
    if (name == "new" && !after_operator) {
      run.Emit(run.Line(i), "raw-new-delete",
               "raw 'new' outside the tensor/arena allocator (src/nn/tensor.*, "
               "src/nn/arena.*); use make_unique/make_shared or the arena");
    } else if (name == "delete" && !after_operator && !run.Punct(i - 1, "=")) {
      run.Emit(run.Line(i), "raw-new-delete",
               "raw 'delete' outside the tensor/arena allocator; ownership "
               "must flow through smart pointers or the arena");
    }
  }
}

// ---------------------------------------------------------------------------
// Line-structured rules (run on the per-line code view).
// ---------------------------------------------------------------------------

void CheckIncludeGuard(const std::string& rel_path,
                       const std::vector<std::string>& lines,
                       std::vector<Finding>* findings) {
  std::string expected = CanonicalGuard(rel_path);
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
  static const std::regex kDefine(R"(^\s*#\s*define\s+([A-Za-z_]\w*))");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    if (std::regex_search(code, kPragmaOnce)) return;
    std::smatch m;
    if (std::regex_search(code, m, kIfndef)) {
      int line = static_cast<int>(i) + 1;
      if (m[1] != expected) {
        findings->push_back({rel_path, line, "include-guard",
                             "guard '" + m[1].str() +
                                 "' does not match the canonical '" +
                                 expected + "'"});
        return;
      }
      // The matching #define must follow on the next code line.
      for (size_t j = i + 1; j < lines.size(); ++j) {
        std::string trimmed = lines[j];
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed.empty()) continue;
        std::smatch d;
        if (!std::regex_search(lines[j], d, kDefine) || d[1] != expected) {
          findings->push_back({rel_path, static_cast<int>(j) + 1,
                               "include-guard",
                               "#ifndef " + expected +
                                   " is not followed by #define " + expected});
        }
        return;
      }
      return;
    }
    // Any real code before the guard means there is no guard.
    std::string trimmed = code;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (!trimmed.empty()) break;
  }
  findings->push_back(
      {rel_path, 1, "include-guard",
       "header has neither '#pragma once' nor the canonical '#ifndef " +
           expected + "' guard"});
}

bool IsSerializeishName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const char* marker :
       {"serial", "save", "write", "dump", "store", "checkpoint", "tobytes",
        "marshal"}) {
    if (lower.find(marker) != std::string::npos) return true;
  }
  return false;
}

void CheckHashOrderRule(const std::string& rel_path,
                        const std::vector<std::string>& lines,
                        std::vector<Finding>* findings) {
  // Variables (locals or members) declared with an unordered container type
  // anywhere in the file.
  static const std::regex kUnorderedDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]*\s*([A-Za-z_]\w*))");
  std::set<std::string> unordered_vars;
  for (const auto& code : lines) {
    auto begin =
        std::sregex_iterator(code.begin(), code.end(), kUnorderedDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_vars.insert((*it)[1]);
    }
  }

  // A definition-looking header: a name followed by '(' on a line that is
  // not a plain statement (no ';' before any '{').
  static const std::regex kFnHeader(
      R"(^[\w:&<>,*\s\[\]~]*?\b((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*))\s*\()");
  static const std::regex kRangeFor(R"(for\s*\([^:;)]*:\s*([^)]+)\))");

  struct FnCtx {
    std::string name;
    int depth_at_open;  // brace depth just inside the function body
  };
  std::vector<FnCtx> stack;
  int depth = 0;
  std::string pending;  // function name awaiting its opening '{'

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i];
    int line = static_cast<int>(i) + 1;

    // Rule check first, against the current innermost context.
    if (!stack.empty() && IsSerializeishName(stack.back().name)) {
      bool hit = false;
      if (code.find("unordered_") != std::string::npos &&
          code.find("for") != std::string::npos) {
        hit = true;
      } else {
        std::smatch m;
        if (std::regex_search(code, m, kRangeFor)) {
          const std::string expr = m[1];
          for (const auto& var : unordered_vars) {
            std::regex word("\\b" + var + "\\b");
            if (std::regex_search(expr, word)) {
              hit = true;
              break;
            }
          }
        }
      }
      if (hit) {
        findings->push_back(
            {rel_path, line, "unordered-serialize",
             "iteration over an unordered container inside '" +
                 stack.back().name +
                 "' feeds hash-order into serialized output; iterate a "
                 "sorted copy or an ordered container"});
      }
    }

    // Context tracking.
    std::smatch m;
    std::string trimmed = code;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (!StartsWith(trimmed, "#") && std::regex_search(code, m, kFnHeader)) {
      const std::string name = m[2];
      if (!IsCallKeyword(name)) pending = name;
    }
    for (char c : code) {
      if (c == '{') {
        ++depth;
        if (!pending.empty()) {
          stack.push_back({pending, depth});
          pending.clear();
        }
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && depth < stack.back().depth_at_open) {
          stack.pop_back();
        }
      } else if (c == ';' && pending.size()) {
        pending.clear();  // was a declaration, not a definition
      }
    }
  }
}

void SplitRuleList(const std::string& list, int line, const std::string& kind,
                   std::set<std::string>* out, std::vector<Finding>* findings,
                   const std::string& rel_path) {
  std::string token;
  std::stringstream ss(list);
  while (std::getline(ss, token, ',')) {
    token.erase(std::remove_if(token.begin(), token.end(), ::isspace),
                token.end());
    if (token.empty()) continue;
    // `<...>` tokens are documentation placeholders (e.g. the syntax examples
    // in lint.h), not suppressions.
    if (token.front() == '<' && token.back() == '>') continue;
    if (!KnownRules().count(token)) {
      findings->push_back({rel_path, line, "bad-suppression",
                           "suppression " + kind + "(" + token +
                               ") names an unknown rule; see --rules"});
      continue;
    }
    out->insert(token);
  }
}

}  // namespace

Suppressions ParseSuppressionDirectives(const TokenizedFile& file,
                                        const std::string& rel_path,
                                        std::vector<Finding>* findings) {
  static const std::regex kDirective(
      R"(garl-lint:\s*(allow|allow-next-line|allow-file)\s*\(([^)]*)\))");
  Suppressions supp;
  for (const auto& [line, comment] : file.comments) {
    if (comment.find("garl-lint") == std::string::npos) continue;
    auto begin =
        std::sregex_iterator(comment.begin(), comment.end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string kind = (*it)[1];
      const std::string list = (*it)[2];
      std::set<std::string>* out = nullptr;
      if (kind == "allow") {
        out = &supp.by_line[line];
      } else if (kind == "allow-next-line") {
        out = &supp.next_line[line];
      } else {
        out = &supp.file_level;
      }
      SplitRuleList(list, line, kind, out, findings, rel_path);
    }
  }
  return supp;
}

std::vector<std::string> HarvestFallibleFromLines(
    const std::vector<std::string>& line_code) {
  // A declaration whose return type is Status or StatusOr<...>. The name must
  // be directly followed by '(' so member variables (`Status status_;`) and
  // constructors don't match.
  static const std::regex kDecl(
      R"((?:^|[;{}]\s*|\n\s*)(?:template\s*<[^;{}]*>\s*)?(?:(?:static|virtual|inline|constexpr|friend|explicit|\[\[nodiscard\]\])\s+)*(?:::)?(?:garl::)?Status(?:Or\s*<[^;={}]*>)?\s+((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*))\s*\()");
  std::string code;
  for (size_t i = 0; i < line_code.size(); ++i) {
    if (i) code += '\n';
    code += line_code[i];
  }
  std::vector<std::string> names;
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[2];
    if (name == "Status" || name == "StatusOr" || name == "Ok") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void RunLocalRules(const std::string& rel_path, const TokenizedFile& file,
                   const std::vector<FunctionInfo>& functions,
                   std::vector<Finding>* findings) {
  (void)functions;
  TokenRuleRunner run(rel_path, file.tokens, findings);
  if (!IsRngFile(rel_path)) CheckNondetRand(run);
  if (!IsBenchFile(rel_path) && !IsClockFile(rel_path)) CheckNondetTime(run);
  if (IsHeader(rel_path)) {
    CheckIncludeGuard(rel_path, file.line_code, findings);
  }
  if (IsHotPathFile(rel_path)) CheckFloatDoubleDrift(run);
  if (!IsTensorAllocatorFile(rel_path)) CheckRawNewDelete(run);
  if (IsDirectIoScope(rel_path) && !IsFsUtilFile(rel_path)) {
    CheckDirectIo(run, /*ban_ifstream=*/StartsWith(rel_path, "src/"));
  }
  if (IsDirectIoScope(rel_path) && !IsProcFile(rel_path)) {
    CheckProcessSpawn(run);
  }
  CheckHashOrderRule(rel_path, file.line_code, findings);
}

}  // namespace garl::lint
