#include <iostream>
#include <string>
#include <vector>

#include "tools/garl_lint/cli.h"

// garl_lint CLI entry point; all behaviour lives in cli.cc so it can be
// unit-tested. Exit codes: 0 clean, 1 findings, 2 usage/IO/internal error.

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return garl::lint::RunCli(args, std::cout, std::cerr);
}
