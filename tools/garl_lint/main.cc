#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/garl_lint/lint.h"

// garl_lint CLI. Exit codes: 0 clean, 1 findings, 2 usage error.
//
//   garl_lint --root <repo-root> [dir ...]
//
// With no dirs, lints the default tree (src tests bench tools examples).

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: garl_lint [--root <repo-root>] [--rules] [dir ...]\n"
               "  --root   repository root (default: .)\n"
               "  --rules  list rule ids and exit\n"
               "  dir      repo-relative directories to lint\n"
               "           (default: src tests bench tools examples)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      for (const auto& rule : garl::lint::KnownRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (argv[i][0] == '-') {
      PrintUsage();
      return 2;
    } else {
      dirs.push_back(argv[i]);
    }
  }
  if (dirs.empty()) {
    dirs = {"src", "tests", "bench", "tools", "examples"};
  }

  const auto findings = garl::lint::LintTree(root, dirs);
  for (const auto& finding : findings) {
    std::printf("%s\n", finding.ToString().c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "garl_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
