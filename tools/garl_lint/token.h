#ifndef GARL_TOOLS_GARL_LINT_TOKEN_H_
#define GARL_TOOLS_GARL_LINT_TOKEN_H_

#include <map>
#include <string>
#include <vector>

// Phase-1 front end of garl_lint: a real C++ tokenizer. It is not a parser —
// no preprocessing, no type information — but unlike the previous
// comment-stripped-line regexes it produces a proper token stream (identifiers,
// numbers, punctuators, blanked literals) that the local rules, the symbol
// indexer, and the cross-file analyses all share. Comments are captured
// per-line on the side so suppression directives keep working, and a per-line
// "code view" (literal contents blanked) is kept for the few rules that are
// inherently line-structured (include guards, fallible-declaration harvest).

namespace garl::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-numbers: 0x1f, 1.0e-3f, ...)
  kString,  // string literal, contents blanked (text is "")
  kChar,    // char literal, contents blanked
  kPunct,   // operators/punctuation, maximal-munch (::, ->, ==, ...)
};

struct Token {
  TokKind kind;
  std::string text;  // empty for kString/kChar
  int line = 0;      // 1-based
  bool pp = false;   // inside a preprocessor directive
};

struct TokenizedFile {
  std::vector<Token> tokens;
  // Concatenated comment text per line (only lines that have comments).
  std::map<int, std::string> comments;
  // Per-line code with comments removed and literal contents blanked —
  // line-structured rules (include-guard, fallible harvest) run on this.
  std::vector<std::string> line_code;
};

TokenizedFile TokenizeFile(const std::string& contents);

// True for tokens that look like calls but are control flow / operators.
bool IsCallKeyword(const std::string& ident);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_TOKEN_H_
