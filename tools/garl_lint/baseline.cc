#include "tools/garl_lint/baseline.h"

#include <algorithm>
#include <sstream>

#include "tools/garl_lint/lint.h"

namespace garl::lint {

bool ParseBaseline(const std::string& text, std::vector<BaselineEntry>* entries,
                   std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string trimmed = line;
    size_t first = trimmed.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (trimmed[first] == '#') continue;

    size_t sep = trimmed.find(" -- ");
    if (sep == std::string::npos) {
      *error = "baseline line " + std::to_string(line_no) +
               ": missing ' -- <justification>'";
      return false;
    }
    std::string head = trimmed.substr(0, sep);
    std::string justification = trimmed.substr(sep + 4);
    size_t jfirst = justification.find_first_not_of(" \t");
    if (jfirst == std::string::npos) {
      *error = "baseline line " + std::to_string(line_no) +
               ": empty justification";
      return false;
    }

    std::istringstream fields(head);
    BaselineEntry entry;
    std::string target, extra;
    if (!(fields >> entry.rule >> target) || (fields >> extra)) {
      *error = "baseline line " + std::to_string(line_no) +
               ": expected '<rule> <file>[:<line>] -- <justification>'";
      return false;
    }
    if (!KnownRules().count(entry.rule)) {
      *error = "baseline line " + std::to_string(line_no) +
               ": unknown rule '" + entry.rule + "'; see --rules";
      return false;
    }
    size_t colon = target.rfind(':');
    if (colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) ==
            std::string::npos &&
        colon + 1 < target.size()) {
      entry.file = target.substr(0, colon);
      entry.line = std::stoi(target.substr(colon + 1));
    } else {
      entry.file = target;
      entry.line = 0;
    }
    entry.justification = justification.substr(jfirst);
    entry.source_line = line_no;
    entries->push_back(std::move(entry));
  }
  return true;
}

std::string ApplyBaseline(const std::vector<BaselineEntry>& entries,
                          std::vector<Finding>* findings) {
  std::vector<bool> matched_entry(entries.size(), false);
  std::vector<Finding> kept;
  for (auto& finding : *findings) {
    bool excused = false;
    for (size_t i = 0; i < entries.size(); ++i) {
      const BaselineEntry& entry = entries[i];
      if (entry.rule == finding.rule && entry.file == finding.file &&
          (entry.line == 0 || entry.line == finding.line)) {
        matched_entry[i] = true;
        excused = true;
      }
    }
    if (!excused) kept.push_back(std::move(finding));
  }
  std::string stale;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (matched_entry[i]) continue;
    if (!stale.empty()) stale += "\n";
    stale += "stale baseline entry (line " +
             std::to_string(entries[i].source_line) + "): " + entries[i].rule +
             " " + entries[i].file +
             (entries[i].line ? ":" + std::to_string(entries[i].line) : "") +
             " no longer matches any finding; delete it";
  }
  if (!stale.empty()) return stale;
  *findings = std::move(kept);
  return "";
}

}  // namespace garl::lint
