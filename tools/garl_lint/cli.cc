#include "tools/garl_lint/cli.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "tools/garl_lint/baseline.h"
#include "tools/garl_lint/lint.h"

namespace garl::lint {
namespace {

void PrintUsage(std::ostream& err) {
  err << "usage: garl_lint [--root <repo-root>] [--format=text|json]\n"
         "                 [--baseline <file>] [--cache <file>] [--rules]\n"
         "                 [dir ...]\n"
         "  --root      repository root (default: .)\n"
         "  --format    findings output: text (default) or json\n"
         "  --baseline  accepted-findings file; every entry needs a\n"
         "              justification and must still match (stale = error)\n"
         "  --cache     phase-1 index cache file (content-hash incremental)\n"
         "  --rules     list rule ids and exit\n"
         "  dir         repo-relative directories to lint\n"
         "              (default: src tests bench tools examples)\n"
         "exit codes: 0 clean, 1 findings, 2 usage/IO/internal error\n";
}

bool ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream os;
  os << in.rdbuf();
  *contents = os.str();
  return true;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  std::string root = ".";
  std::string format = "text";
  std::string baseline_path;
  LintOptions options;
  std::vector<std::string> dirs;

  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&](std::string* slot) {
      if (i + 1 >= args.size()) return false;
      *slot = args[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(&root)) {
        PrintUsage(err);
        return 2;
      }
    } else if (arg == "--baseline") {
      if (!value(&baseline_path)) {
        PrintUsage(err);
        return 2;
      }
    } else if (arg == "--cache") {
      if (!value(&options.cache_path)) {
        PrintUsage(err);
        return 2;
      }
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        err << "garl_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--rules") {
      for (const auto& rule : KnownRules()) out << rule << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(err);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "garl_lint: unknown option '" << arg << "'\n";
      PrintUsage(err);
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) {
    dirs = {"src", "tests", "bench", "tools", "examples"};
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::string text, error;
    if (!ReadFile(baseline_path, &text)) {
      err << "garl_lint: cannot read baseline '" << baseline_path << "'\n";
      return 2;
    }
    if (!ParseBaseline(text, &baseline, &error)) {
      err << "garl_lint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
  }

  LintRun run = LintTreeFull(root, dirs, options);
  if (!run.error.empty()) {
    err << "garl_lint: " << run.error << "\n";
    return 2;
  }
  if (!options.cache_path.empty()) {
    err << "garl_lint: cache " << run.stats.cache_hits << " hit(s), "
        << run.stats.cache_misses << " miss(es) over " << run.stats.files
        << " file(s)\n";
  }

  if (!baseline_path.empty()) {
    std::string stale = ApplyBaseline(baseline, &run.findings);
    if (!stale.empty()) {
      err << "garl_lint: " << baseline_path << ":\n" << stale << "\n";
      return 2;
    }
  }

  if (format == "json") {
    out << FormatFindingsJson(run.findings);
  } else {
    for (const auto& finding : run.findings) {
      out << finding.ToString() << "\n";
    }
  }
  if (!run.findings.empty()) {
    err << "garl_lint: " << run.findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}

}  // namespace garl::lint
