#ifndef GARL_TOOLS_GARL_LINT_CACHE_H_
#define GARL_TOOLS_GARL_LINT_CACHE_H_

#include <cstdint>
#include <map>
#include <string>

#include "tools/garl_lint/index.h"

// Content-hash incremental cache for phase-1 file indexes. Soundness rests on
// BuildFileIndex being a pure function of (contents, tables): the cache key is
// the FNV-1a hash of the file bytes, and the whole cache is salted with the
// tool version + analysis-table digest, so a rule change or table edit
// invalidates everything at once. Phase 2 always re-runs, so cross-file state
// can never go stale through cached entries. A missing, unreadable or
// mismatched cache file degrades to a cold run — never to an error.

namespace garl::lint {

class IndexCache {
 public:
  // Loads entries from `path` if it exists and its salt matches; otherwise
  // starts empty. Never fails.
  void Load(const std::string& path, uint64_t salt);

  // Returns the cached index for `rel_path` when the stored content hash
  // matches, else nullptr.
  const FileIndex* Lookup(const std::string& rel_path,
                          uint64_t content_hash) const;

  void Store(const FileIndex& index);

  // Writes all entries back (deterministic order: sorted by path). Returns
  // false with `error` set on I/O failure.
  bool Save(const std::string& path, uint64_t salt, std::string* error) const;

  int hits() const { return hits_; }
  int misses() const { return misses_; }
  void CountMiss() { ++misses_; }

 private:
  std::map<std::string, FileIndex> entries_;  // keyed by rel path
  mutable int hits_ = 0;
  int misses_ = 0;
};

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_CACHE_H_
