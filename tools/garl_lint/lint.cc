#include "tools/garl_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "tools/garl_lint/cache.h"
#include "tools/garl_lint/graph.h"
#include "tools/garl_lint/rules_local.h"
#include "tools/garl_lint/token.h"

namespace garl::lint {
namespace {

namespace fs = std::filesystem;

// Bumped whenever rule behaviour or the index format changes: part of the
// cache salt, so stale caches from older binaries degrade to cold runs.
const char kToolVersion[] = "garl_lint-2.0";

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "nondet-rand",         "nondet-time",        "status-discard",
      "status-propagation",  "include-guard",      "float-double-drift",
      "raw-new-delete",      "unordered-serialize", "direct-io",
      "process-spawn",       "bad-suppression",    "det-taint",
      "parallel-unsafe"};
  return kRules;
}

std::string CanonicalGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "GARL_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::string StripCommentsAndStrings(const std::string& contents) {
  TokenizedFile file = TokenizeFile(contents);
  std::string out;
  for (size_t i = 0; i < file.line_code.size(); ++i) {
    if (i) out += '\n';
    out += file.line_code[i];
  }
  return out;
}

std::vector<std::string> CollectFallibleFunctions(const std::string& contents) {
  return HarvestFallibleFromLines(TokenizeFile(contents).line_code);
}

std::vector<Finding> LintFileContents(const std::string& rel_path,
                                      const std::string& contents,
                                      const std::set<std::string>& fallible) {
  AnalysisTables tables;  // single-file mode: no cross-file tables
  std::vector<FileIndex> indexes;
  indexes.push_back(BuildFileIndex(rel_path, contents, tables));
  std::vector<Finding> findings = indexes[0].local_findings;
  std::vector<Finding> global = RunGlobalRules(indexes, tables, fallible);
  findings.insert(findings.end(), std::make_move_iterator(global.begin()),
                  std::make_move_iterator(global.end()));
  SortFindings(&findings);
  return findings;
}

// ---------------------------------------------------------------------------
// Tree driver.
// ---------------------------------------------------------------------------

namespace {

bool ShouldSkipDir(const std::string& name, const LintOptions& options) {
  for (const auto& skip : options.skip_dir_names) {
    if (name == skip) return true;
  }
  for (const auto& prefix : options.skip_dir_prefixes) {
    if (StartsWith(name, prefix)) return true;
  }
  return false;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

LintRun LintTreeFull(const std::string& repo_root,
                     const std::vector<std::string>& roots,
                     const LintOptions& options) {
  LintRun run;

  AnalysisTables tables;
  if (!options.tables_relpath.empty()) {
    fs::path tables_path = fs::path(repo_root) / options.tables_relpath;
    if (fs::exists(tables_path)) {
      std::string text = ReadFileOrEmpty(tables_path);
      std::string error;
      if (!ParseAnalysisTables(text, &tables, &error)) {
        run.error = options.tables_relpath + ": " + error;
        return run;
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> files;  // rel path, contents
  for (const auto& root : roots) {
    fs::path base = fs::path(repo_root) / root;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() &&
          ShouldSkipDir(it->path().filename().string(), options)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !IsSourceFile(it->path())) continue;
      std::string rel =
          fs::relative(it->path(), fs::path(repo_root)).generic_string();
      files.emplace_back(std::move(rel), ReadFileOrEmpty(it->path()));
    }
  }
  std::sort(files.begin(), files.end());

  const uint64_t salt =
      HashBytes(std::string(kToolVersion) + "|" +
                std::to_string(tables.Hash()));
  IndexCache cache;
  if (!options.cache_path.empty()) cache.Load(options.cache_path, salt);

  std::vector<FileIndex> indexes;
  indexes.reserve(files.size());
  for (const auto& [rel, contents] : files) {
    ++run.stats.files;
    const uint64_t hash = HashBytes(contents);
    if (const FileIndex* cached = cache.Lookup(rel, hash)) {
      indexes.push_back(*cached);
      continue;
    }
    cache.CountMiss();
    indexes.push_back(BuildFileIndex(rel, contents, tables));
    if (!options.cache_path.empty()) cache.Store(indexes.back());
  }
  run.stats.cache_hits = cache.hits();
  run.stats.cache_misses = cache.misses();

  for (const auto& index : indexes) {
    run.findings.insert(run.findings.end(), index.local_findings.begin(),
                        index.local_findings.end());
  }
  std::set<std::string> extra_fallible(options.extra_fallible_functions.begin(),
                                       options.extra_fallible_functions.end());
  std::vector<Finding> global = RunGlobalRules(indexes, tables, extra_fallible);
  run.findings.insert(run.findings.end(),
                      std::make_move_iterator(global.begin()),
                      std::make_move_iterator(global.end()));
  SortFindings(&run.findings);

  if (!options.cache_path.empty()) {
    std::string error;
    if (!cache.Save(options.cache_path, salt, &error)) {
      run.error = error;
      return run;
    }
  }
  return run;
}

std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots,
                              const LintOptions& options) {
  LintRun run = LintTreeFull(repo_root, roots, options);
  if (!run.error.empty()) return {};
  return std::move(run.findings);
}

// ---------------------------------------------------------------------------
// JSON output.
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    out += i ? ",\n " : "\n ";
    out += "{\"file\": ";
    AppendJsonString(findings[i].file, &out);
    out += ", \"line\": " + std::to_string(findings[i].line) + ", \"rule\": ";
    AppendJsonString(findings[i].rule, &out);
    out += ", \"message\": ";
    AppendJsonString(findings[i].message, &out);
    out += "}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

}  // namespace garl::lint
