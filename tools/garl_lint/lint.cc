#include "tools/garl_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <tuple>

namespace garl::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Tokenization: split each line into code text and comment text. Rules run on
// code (so prose and string literals can't trip token matches); suppression
// directives are honoured only in comments (so a directive inside a string
// literal — e.g. in the linter's own tests — has no effect).
// ---------------------------------------------------------------------------

struct LineView {
  std::string code;     // line with comments and literal contents blanked
  std::string comment;  // concatenated comment text on this line
};

std::vector<LineView> Tokenize(const std::string& contents) {
  std::vector<LineView> lines;
  LineView current;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  for (size_t i = 0; i < contents.size(); ++i) {
    char c = contents[i];
    char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      lines.push_back(std::move(current));
      current = LineView();
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   contents[i - 1])) &&
                               contents[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim".
          size_t paren = contents.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + contents.substr(i + 2, paren - i - 2) + "\"";
            current.code += "R\"\"";
            state = State::kRaw;
            i = paren;  // skip past the opening paren
          } else {
            current.code += c;
          }
        } else if (c == '"') {
          current.code += '"';
          state = State::kString;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kChar;
        } else {
          current.code += c;
        }
        break;
      case State::kLineComment:
        current.comment += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;  // skip escaped char (escaped newlines don't occur in practice)
        } else if (c == '"') {
          current.code += '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          current.code += '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (contents.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

struct Suppressions {
  std::set<std::string> file_level;               // allow-file(rule)
  std::map<int, std::set<std::string>> by_line;   // allow(rule) on that line
  std::map<int, std::set<std::string>> next_line; // allow-next-line(rule)
};

void SplitRuleList(const std::string& list, int line, const std::string& kind,
                   std::set<std::string>* out, std::vector<Finding>* findings,
                   const std::string& rel_path) {
  std::string token;
  std::stringstream ss(list);
  while (std::getline(ss, token, ',')) {
    token.erase(std::remove_if(token.begin(), token.end(), ::isspace),
                token.end());
    if (token.empty()) continue;
    // `<...>` tokens are documentation placeholders (e.g. the syntax examples
    // in lint.h), not suppressions.
    if (token.front() == '<' && token.back() == '>') continue;
    if (!KnownRules().count(token)) {
      findings->push_back({rel_path, line, "bad-suppression",
                           "suppression " + kind + "(" + token +
                               ") names an unknown rule; see --rules"});
      continue;
    }
    out->insert(token);
  }
}

Suppressions ParseSuppressions(const std::vector<LineView>& lines,
                               const std::string& rel_path,
                               std::vector<Finding>* findings) {
  static const std::regex kDirective(
      R"(garl-lint:\s*(allow|allow-next-line|allow-file)\s*\(([^)]*)\))");
  Suppressions supp;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& comment = lines[i].comment;
    if (comment.find("garl-lint") == std::string::npos) continue;
    int line = static_cast<int>(i) + 1;
    auto begin =
        std::sregex_iterator(comment.begin(), comment.end(), kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string kind = (*it)[1];
      const std::string list = (*it)[2];
      std::set<std::string>* out = nullptr;
      if (kind == "allow") {
        out = &supp.by_line[line];
      } else if (kind == "allow-next-line") {
        out = &supp.next_line[line];
      } else {
        out = &supp.file_level;
      }
      SplitRuleList(list, line, kind, out, findings, rel_path);
    }
  }
  return supp;
}

bool IsSuppressed(const Suppressions& supp, const std::string& rule,
                  int line) {
  if (supp.file_level.count(rule)) return true;
  auto at = supp.by_line.find(line);
  if (at != supp.by_line.end() && at->second.count(rule)) return true;
  auto prev = supp.next_line.find(line - 1);
  return prev != supp.next_line.end() && prev->second.count(rule);
}

// ---------------------------------------------------------------------------
// Path helpers.
// ---------------------------------------------------------------------------

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// Kernel hot-path files where every arithmetic temporary must stay float:
// a stray double accumulator changes rounding, which changes losses, which
// breaks the bit-identical-for-any-thread-count contract.
bool IsHotPathFile(const std::string& rel) {
  static const std::set<std::string> kHot = {
      "src/nn/ops.cc",       "src/nn/conv2d.cc", "src/nn/linear.cc",
      "src/nn/lstm_cell.cc", "src/nn/simd.h",    "src/nn/tensor.cc"};
  return kHot.count(rel) > 0;
}

bool IsRngFile(const std::string& rel) {
  return StartsWith(rel, "src/common/rng.");
}

bool IsBenchFile(const std::string& rel) { return StartsWith(rel, "bench/"); }

// The one sanctioned monotonic time source (src/obs/clock.*). Everything
// else in the library — including the rest of src/obs/ — must go through
// obs::MonotonicNowNs() instead of touching std::chrono directly, so the
// nondet-time ban stays enforceable by path.
bool IsClockFile(const std::string& rel) {
  return StartsWith(rel, "src/obs/clock.");
}

// The sanctioned homes of raw allocation: the tensor storage layer and the
// arena allocator it funnels through (src/nn/arena.* owns the slab
// operator-new calls and the recycled vector pool).
bool IsTensorAllocatorFile(const std::string& rel) {
  return StartsWith(rel, "src/nn/tensor.") || StartsWith(rel, "src/nn/arena.");
}

// The one sanctioned durable-write path (src/common/fs_util.*). Everything
// else under src/ and tools/ must write through it, so crash-safety, retry
// and the fault-injection hook cover every byte that reaches disk.
bool IsFsUtilFile(const std::string& rel) {
  return StartsWith(rel, "src/common/fs_util.");
}

bool IsDirectIoScope(const std::string& rel) {
  return StartsWith(rel, "src/") || StartsWith(rel, "tools/");
}

// The one sanctioned process-spawn path (src/common/proc.*). Everything else
// under src/ and tools/ must spawn, signal and reap through it, so the fleet
// supervisor's crash/hang semantics (EINTR retries, exit-status decoding,
// exec-failure exit code) hold for every child process the repo creates.
bool IsProcFile(const std::string& rel) {
  return StartsWith(rel, "src/common/proc.");
}

// ---------------------------------------------------------------------------
// Rule: include-guard.
// ---------------------------------------------------------------------------

void CheckIncludeGuard(const std::string& rel_path,
                       const std::vector<LineView>& lines,
                       std::vector<Finding>* findings) {
  std::string expected = CanonicalGuard(rel_path);
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+([A-Za-z_]\w*))");
  static const std::regex kDefine(R"(^\s*#\s*define\s+([A-Za-z_]\w*))");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (std::regex_search(code, kPragmaOnce)) return;
    std::smatch m;
    if (std::regex_search(code, m, kIfndef)) {
      int line = static_cast<int>(i) + 1;
      if (m[1] != expected) {
        findings->push_back({rel_path, line, "include-guard",
                             "guard '" + m[1].str() +
                                 "' does not match the canonical '" +
                                 expected + "'"});
        return;
      }
      // The matching #define must follow on the next code line.
      for (size_t j = i + 1; j < lines.size(); ++j) {
        std::string trimmed = lines[j].code;
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed.empty()) continue;
        std::smatch d;
        if (!std::regex_search(lines[j].code, d, kDefine) || d[1] != expected) {
          findings->push_back({rel_path, static_cast<int>(j) + 1,
                               "include-guard",
                               "#ifndef " + expected +
                                   " is not followed by #define " + expected});
        }
        return;
      }
      return;
    }
    // Any real code before the guard means there is no guard.
    std::string trimmed = code;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (!trimmed.empty()) break;
  }
  findings->push_back({rel_path, 1, "include-guard",
                       "header has neither '#pragma once' nor the canonical '#ifndef " +
                           expected + "' guard"});
}

// ---------------------------------------------------------------------------
// Rule: status-discard. Statements are accumulated across lines (splitting
// on ';' at paren depth 0, resetting at braces) and flagged when they start
// with a call — optionally behind a (void) cast — to a known fallible
// function.
// ---------------------------------------------------------------------------

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",    "switch", "return", "sizeof",
      "catch",  "assert", "static_assert",    "alignof", "decltype",
      "typeid", "new",    "delete", "throw"};
  return kKeywords;
}

void CheckStatusDiscard(const std::string& rel_path,
                        const std::vector<LineView>& lines,
                        const std::set<std::string>& fallible,
                        std::vector<Finding>* findings) {
  static const std::regex kCallChain(
      R"(^(\(\s*void\s*\)\s*)?((?:[A-Za-z_]\w*\s*(?:::|\.|->)\s*)*)([A-Za-z_]\w*)\s*\()");
  std::string stmt;
  int stmt_line = 0;
  int paren_depth = 0;

  auto analyze = [&]() {
    if (stmt.empty()) return;
    std::string trimmed = stmt;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    std::smatch m;
    if (!std::regex_search(trimmed, m, kCallChain)) return;
    bool voided = m[1].matched && m[1].length() > 0;
    std::string name = m[3];
    if (CallKeywords().count(name) || !fallible.count(name)) return;
    if (voided) {
      findings->push_back(
          {rel_path, stmt_line, "status-discard",
           "'(void)' discards the Status from '" + name +
               "'; handle it (WarnIfError / GARL_CHECK) or suppress with a "
               "reason"});
    } else {
      findings->push_back(
          {rel_path, stmt_line, "status-discard",
           "result of fallible function '" + name +
               "' is ignored; assign it, GARL_RETURN_IF_ERROR it, or handle "
               "the error"});
    }
  };

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::string check = code;
    check.erase(0, check.find_first_not_of(" \t"));
    if (StartsWith(check, "#")) continue;  // preprocessor line
    for (char c : code) {
      if (c == '(') {
        ++paren_depth;
      } else if (c == ')') {
        if (paren_depth > 0) --paren_depth;
      }
      if (paren_depth == 0 && (c == '{' || c == '}')) {
        stmt.clear();
        stmt_line = 0;
        continue;
      }
      if (c == ';' && paren_depth == 0) {
        analyze();
        stmt.clear();
        stmt_line = 0;
        continue;
      }
      if (stmt.empty() && std::isspace(static_cast<unsigned char>(c))) {
        continue;
      }
      if (stmt.empty()) stmt_line = static_cast<int>(i) + 1;
      stmt += c;
    }
    if (!stmt.empty()) {
      stmt += ' ';  // line break acts as whitespace inside a statement
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-serialize. Tracks the innermost function context with a
// small brace-depth state machine and flags unordered-container iteration
// inside serialize/save/write/dump-like functions.
// ---------------------------------------------------------------------------

bool IsSerializeishName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const char* marker :
       {"serial", "save", "write", "dump", "store", "checkpoint", "tobytes",
        "marshal"}) {
    if (lower.find(marker) != std::string::npos) return true;
  }
  return false;
}

void CheckHashOrderRule(const std::string& rel_path,
                        const std::vector<LineView>& lines,
                        std::vector<Finding>* findings) {
  // Variables (locals or members) declared with an unordered container type
  // anywhere in the file.
  static const std::regex kUnorderedDecl(
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]*\s*([A-Za-z_]\w*))");
  std::set<std::string> unordered_vars;
  for (const auto& lv : lines) {
    auto begin = std::sregex_iterator(lv.code.begin(), lv.code.end(),
                                      kUnorderedDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_vars.insert((*it)[1]);
    }
  }

  // A definition-looking header: a name followed by '(' on a line that is
  // not a plain statement (no ';' before any '{').
  static const std::regex kFnHeader(
      R"(^[\w:&<>,*\s\[\]~]*?\b((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*))\s*\()");
  static const std::regex kRangeFor(R"(for\s*\([^:;)]*:\s*([^)]+)\))");

  struct FnCtx {
    std::string name;
    int depth_at_open;  // brace depth just inside the function body
  };
  std::vector<FnCtx> stack;
  int depth = 0;
  std::string pending;  // function name awaiting its opening '{'

  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    int line = static_cast<int>(i) + 1;

    // Rule check first, against the current innermost context.
    if (!stack.empty() && IsSerializeishName(stack.back().name)) {
      bool hit = false;
      if (code.find("unordered_") != std::string::npos &&
          code.find("for") != std::string::npos) {
        hit = true;
      } else {
        std::smatch m;
        if (std::regex_search(code, m, kRangeFor)) {
          const std::string expr = m[1];
          for (const auto& var : unordered_vars) {
            std::regex word("\\b" + var + "\\b");
            if (std::regex_search(expr, word)) {
              hit = true;
              break;
            }
          }
        }
      }
      if (hit) {
        findings->push_back(
            {rel_path, line, "unordered-serialize",
             "iteration over an unordered container inside '" +
                 stack.back().name +
                 "' feeds hash-order into serialized output; iterate a "
                 "sorted copy or an ordered container"});
      }
    }

    // Context tracking.
    std::smatch m;
    std::string trimmed = code;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (!StartsWith(trimmed, "#") && std::regex_search(code, m, kFnHeader)) {
      const std::string name = m[2];
      if (!CallKeywords().count(name)) pending = name;
    }
    for (char c : code) {
      if (c == '{') {
        ++depth;
        if (!pending.empty()) {
          stack.push_back({pending, depth});
          pending.clear();
        }
      } else if (c == '}') {
        --depth;
        while (!stack.empty() && depth < stack.back().depth_at_open) {
          stack.pop_back();
        }
      } else if (c == ';' && pending.size()) {
        pending.clear();  // was a declaration, not a definition
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Simple token rules.
// ---------------------------------------------------------------------------

struct TokenRule {
  std::string rule;
  std::regex pattern;
  std::string message;
};

const std::vector<TokenRule>& NondetRandRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> rules;
    rules.push_back({"nondet-rand", std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\(|(^|[^:\w.>])rand\s*\()"),
                     "C rand()/srand() is banned; draw from an explicit "
                     "garl::Rng so seeds determine behaviour"});
    rules.push_back({"nondet-rand", std::regex(R"(\brandom_device\b)"),
                     "std::random_device is a nondeterminism source; seed an "
                     "explicit garl::Rng instead"});
    return rules;
  }();
  return kRules;
}

const std::vector<TokenRule>& NondetTimeRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> rules;
    rules.push_back({"nondet-time",
                     std::regex(R"((^|[^:\w.>])time\s*\(|\bgettimeofday\b|(^|[^:\w.>_])clock\s*\()"),
                     "wall-clock reads are banned in library code; pass "
                     "timestamps in or move timing into bench/"});
    rules.push_back({"nondet-time",
                     std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                     "std::chrono clocks are banned outside bench/; library "
                     "behaviour must not depend on the clock"});
    return rules;
  }();
  return kRules;
}

const std::vector<TokenRule>& DirectIoRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> rules;
    rules.push_back(
        {"direct-io", std::regex(R"(\bofstream\b)"),
         "std::ofstream bypasses the durable-write path; use "
         "WriteFileDurable/AtomicWriteFile (whole files) or AppendFile "
         "(logs) from common/fs_util.h"});
    rules.push_back(
        {"direct-io",
         std::regex(
             R"((?:filesystem|fs)\s*::\s*(?:create_director|remove|rename|resize_file|copy|permissions)\w*\s*\()"),
         "mutating std::filesystem call bypasses the durable-write path; "
         "use EnsureDirectory/RemoveAllBestEffort from common/fs_util.h"});
    rules.push_back(
        {"direct-io", std::regex(R"((^|[^\w.>])mkdir\s*\()"),
         "raw mkdir() bypasses the durable-write path; use EnsureDirectory "
         "from common/fs_util.h"});
    return rules;
  }();
  return kRules;
}

const std::vector<TokenRule>& ProcessSpawnRules() {
  static const std::vector<TokenRule> kRules = [] {
    std::vector<TokenRule> rules;
    rules.push_back(
        {"process-spawn", std::regex(R"((^|[^\w.>])v?fork\s*\()"),
         "raw fork() bypasses the process funnel; use proc::SpawnProcess "
         "from common/proc.h"});
    rules.push_back(
        {"process-spawn",
         std::regex(R"((^|[^\w.>])(?:exec[lv]p?e?|fexecve)\s*\()"),
         "raw exec*() bypasses the process funnel; use proc::SpawnProcess "
         "from common/proc.h"});
    rules.push_back(
        {"process-spawn", std::regex(R"((^|[^\w.>])(?:system|popen)\s*\()"),
         "system()/popen() runs a shell outside the process funnel; use "
         "proc::SpawnProcess from common/proc.h"});
    rules.push_back(
        {"process-spawn", std::regex(R"(\bposix_spawn\w*\s*\()"),
         "posix_spawn bypasses the process funnel; use proc::SpawnProcess "
         "from common/proc.h"});
    return rules;
  }();
  return kRules;
}

void ApplyTokenRules(const std::string& rel_path,
                     const std::vector<LineView>& lines,
                     const std::vector<TokenRule>& rules,
                     std::vector<Finding>* findings) {
  for (size_t i = 0; i < lines.size(); ++i) {
    for (const auto& rule : rules) {
      if (std::regex_search(lines[i].code, rule.pattern)) {
        findings->push_back({rel_path, static_cast<int>(i) + 1, rule.rule,
                             rule.message});
      }
    }
  }
}

void CheckFloatDoubleDrift(const std::string& rel_path,
                           const std::vector<LineView>& lines,
                           std::vector<Finding>* findings) {
  static const std::regex kDouble(R"(\bdouble\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kDouble)) {
      findings->push_back(
          {rel_path, static_cast<int>(i) + 1, "float-double-drift",
           "'double' in a kernel hot path; keep accumulation in float so "
           "results stay bit-identical across builds and thread counts"});
    }
  }
}

void CheckRawNewDelete(const std::string& rel_path,
                       const std::vector<LineView>& lines,
                       std::vector<Finding>* findings) {
  static const std::regex kNew(R"(\bnew\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  static const std::regex kDeletedFn(R"(=\s*delete\b)");
  static const std::regex kOperatorNewDelete(R"(operator\s+(new|delete)\b)");
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    int line = static_cast<int>(i) + 1;
    if (std::regex_search(code, kNew) &&
        !std::regex_search(code, kOperatorNewDelete)) {
      findings->push_back(
          {rel_path, line, "raw-new-delete",
           "raw 'new' outside the tensor/arena allocator (src/nn/tensor.*, "
           "src/nn/arena.*); use make_unique/make_shared or the arena"});
    }
    if (std::regex_search(code, kDelete) &&
        !std::regex_search(code, kDeletedFn) &&
        !std::regex_search(code, kOperatorNewDelete)) {
      findings->push_back(
          {rel_path, line, "raw-new-delete",
           "raw 'delete' outside the tensor/arena allocator; ownership must "
           "flow through smart pointers or the arena"});
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "nondet-rand",        "nondet-time",     "status-discard",
      "include-guard",      "float-double-drift", "raw-new-delete",
      "unordered-serialize", "direct-io",      "process-spawn",
      "bad-suppression"};
  return kRules;
}

std::string CanonicalGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (StartsWith(path, "src/")) path = path.substr(4);
  std::string guard = "GARL_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

std::string StripCommentsAndStrings(const std::string& contents) {
  std::string out;
  const std::vector<LineView> lines = Tokenize(contents);
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i) out += '\n';
    out += lines[i].code;
  }
  return out;
}

std::vector<std::string> CollectFallibleFunctions(const std::string& contents) {
  // A declaration whose return type is Status or StatusOr<...>. The name must
  // be directly followed by '(' so member variables (`Status status_;`) and
  // constructors don't match.
  static const std::regex kDecl(
      R"((?:^|[;{}]\s*|\n\s*)(?:template\s*<[^;{}]*>\s*)?(?:(?:static|virtual|inline|constexpr|friend|explicit|\[\[nodiscard\]\])\s+)*(?:::)?(?:garl::)?Status(?:Or\s*<[^;={}]*>)?\s+((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*))\s*\()");
  std::vector<std::string> names;
  const std::string code = StripCommentsAndStrings(contents);
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[2];
    if (name == "Status" || name == "StatusOr" || name == "Ok") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::vector<Finding> LintFileContents(const std::string& rel_path,
                                      const std::string& contents,
                                      const std::set<std::string>& fallible) {
  std::vector<Finding> raw_findings;
  const std::vector<LineView> lines = Tokenize(contents);
  Suppressions supp = ParseSuppressions(lines, rel_path, &raw_findings);

  if (!IsRngFile(rel_path)) {
    ApplyTokenRules(rel_path, lines, NondetRandRules(), &raw_findings);
  }
  if (!IsBenchFile(rel_path) && !IsClockFile(rel_path)) {
    ApplyTokenRules(rel_path, lines, NondetTimeRules(), &raw_findings);
  }
  if (IsHeader(rel_path)) {
    CheckIncludeGuard(rel_path, lines, &raw_findings);
  }
  if (IsHotPathFile(rel_path)) {
    CheckFloatDoubleDrift(rel_path, lines, &raw_findings);
  }
  if (!IsTensorAllocatorFile(rel_path)) {
    CheckRawNewDelete(rel_path, lines, &raw_findings);
  }
  if (IsDirectIoScope(rel_path) && !IsFsUtilFile(rel_path)) {
    ApplyTokenRules(rel_path, lines, DirectIoRules(), &raw_findings);
  }
  if (IsDirectIoScope(rel_path) && !IsProcFile(rel_path)) {
    ApplyTokenRules(rel_path, lines, ProcessSpawnRules(), &raw_findings);
  }
  CheckStatusDiscard(rel_path, lines, fallible, &raw_findings);
  CheckHashOrderRule(rel_path, lines, &raw_findings);

  std::vector<Finding> findings;
  for (auto& f : raw_findings) {
    // bad-suppression is never suppressible — that would defeat its point.
    if (f.rule != "bad-suppression" && IsSuppressed(supp, f.rule, f.line)) {
      continue;
    }
    findings.push_back(std::move(f));
  }
  return findings;
}

namespace {

bool ShouldSkipDir(const std::string& name, const LintOptions& options) {
  for (const auto& skip : options.skip_dir_names) {
    if (name == skip) return true;
  }
  for (const auto& prefix : options.skip_dir_prefixes) {
    if (StartsWith(name, prefix)) return true;
  }
  return false;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

std::vector<Finding> LintTree(const std::string& repo_root,
                              const std::vector<std::string>& roots,
                              const LintOptions& options) {
  std::vector<std::pair<std::string, std::string>> files;  // rel path, contents
  for (const auto& root : roots) {
    fs::path base = fs::path(repo_root) / root;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() &&
          ShouldSkipDir(it->path().filename().string(), options)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !IsSourceFile(it->path())) continue;
      std::string rel =
          fs::relative(it->path(), fs::path(repo_root)).generic_string();
      files.emplace_back(std::move(rel), ReadFileOrEmpty(it->path()));
    }
  }
  std::sort(files.begin(), files.end());

  std::set<std::string> fallible(options.extra_fallible_functions.begin(),
                                 options.extra_fallible_functions.end());
  for (const auto& [rel, contents] : files) {
    for (auto& name : CollectFallibleFunctions(contents)) {
      fallible.insert(std::move(name));
    }
  }

  std::vector<Finding> findings;
  for (const auto& [rel, contents] : files) {
    auto file_findings = LintFileContents(rel, contents, fallible);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace garl::lint
