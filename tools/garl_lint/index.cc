#include "tools/garl_lint/index.h"

#include <algorithm>
#include <sstream>

#include "tools/garl_lint/rules_local.h"

namespace garl::lint {

// ---------------------------------------------------------------------------
// Small shared helpers.
// ---------------------------------------------------------------------------

uint64_t HashBytes(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

bool Suppressions::Covers(const std::string& rule, int line) const {
  if (file_level.count(rule)) return true;
  auto at = by_line.find(line);
  if (at != by_line.end() && at->second.count(rule)) return true;
  auto prev = next_line.find(line - 1);
  return prev != next_line.end() && prev->second.count(rule);
}

// ---------------------------------------------------------------------------
// Analysis tables.
// ---------------------------------------------------------------------------

uint64_t AnalysisTables::Hash() const {
  std::string acc;
  auto add = [&acc](const char* kind, const std::set<std::string>& names) {
    for (const auto& name : names) {
      acc += kind;
      acc += ' ';
      acc += name;
      acc += '\n';
    }
  };
  add("source", taint_sources);
  add("source-field", taint_source_fields);
  add("sink", taint_sinks);
  add("record-type", record_types);
  add("det-field", det_fields);
  add("parallel-unsafe", parallel_unsafe);
  add("entry", entry_points);
  return HashBytes(acc);
}

bool ParseAnalysisTables(const std::string& text, AnalysisTables* tables,
                         std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream fields(line);
    std::string kind, name, extra;
    if (!(fields >> kind)) continue;  // blank
    if (!(fields >> name) || (fields >> extra)) {
      *error = "tables line " + std::to_string(line_no) +
               ": expected '<kind> <name>'";
      return false;
    }
    if (kind == "source") {
      tables->taint_sources.insert(name);
    } else if (kind == "source-field") {
      tables->taint_source_fields.insert(name);
    } else if (kind == "sink") {
      tables->taint_sinks.insert(name);
    } else if (kind == "record-type") {
      tables->record_types.insert(name);
    } else if (kind == "det-field") {
      tables->det_fields.insert(name);
    } else if (kind == "parallel-unsafe") {
      tables->parallel_unsafe.insert(name);
    } else if (kind == "entry") {
      tables->entry_points.insert(name);
    } else {
      *error = "tables line " + std::to_string(line_no) +
               ": unknown directive '" + kind + "'";
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Function / call / summary extraction.
// ---------------------------------------------------------------------------

namespace {

// Built-in banned operations for parallel-unsafe (on top of the table):
// raw process control and direct file I/O (even reads — worker threads must
// not touch the filesystem outside the fs_util funnel).
bool IsSpawnIdent(const std::string& s) {
  static const std::set<std::string> kExact = {
      "fork", "vfork", "system", "popen", "fexecve",
      "execl", "execlp", "execle", "execlpe",
      "execv", "execvp", "execve", "execvpe"};
  if (kExact.count(s)) return true;
  return s.rfind("posix_spawn", 0) == 0;
}

bool IsDirectIoIdent(const std::string& s) {
  static const std::set<std::string> kExact = {
      "ofstream", "ifstream", "fstream", "fopen", "freopen",
      "fwrite", "fread", "mkdir"};
  return kExact.count(s) > 0;
}

struct TaintInfo {
  bool direct = false;
  std::string src;                 // first direct source seen
  std::set<std::string> via;      // callee names that could carry taint
  bool empty() const { return !direct && via.empty(); }
  void Merge(const TaintInfo& other) {
    if (other.direct && !direct) {
      direct = true;
      src = other.src;
    }
    via.insert(other.via.begin(), other.via.end());
  }
};

class Extractor {
 public:
  Extractor(const std::vector<Token>& toks, const AnalysisTables& tables,
            FileIndex* index)
      : toks_(toks), tables_(tables), index_(index) {}

  void Run() {
    FindParallelRegions();
    ExtractFunctions();
    for (auto& fn : pending_) {
      AnalyzeBody(fn);
      index_->functions.push_back(std::move(fn.info));
    }
  }

 private:
  struct PendingFn {
    FunctionInfo info;
    size_t body_begin = 0;  // index of '{'
    size_t body_end = 0;    // index of matching '}'
  };

  const Token& T(size_t i) const { return toks_[i]; }
  size_t Size() const { return toks_.size(); }

  bool InParallel(size_t i) const {
    for (const auto& [begin, end] : parallel_regions_) {
      if (i > begin && i < end) return true;
    }
    return false;
  }

  size_t MatchForward(size_t open, const char* open_text,
                      const char* close_text) const {
    int depth = 0;
    for (size_t i = open; i < Size(); ++i) {
      if (T(i).kind != TokKind::kPunct) continue;
      if (T(i).text == open_text) {
        ++depth;
      } else if (T(i).text == close_text) {
        if (--depth == 0) return i;
      }
    }
    return Size() - 1;
  }

  // Records [open-paren, close-paren] token ranges of ParallelFor call
  // argument lists; the body lambda is lexically inside.
  void FindParallelRegions() {
    for (size_t i = 0; i + 1 < Size(); ++i) {
      if (T(i).kind == TokKind::kIdent && T(i).text == "ParallelFor" &&
          T(i + 1).kind == TokKind::kPunct && T(i + 1).text == "(") {
        parallel_regions_.emplace_back(i + 1, MatchForward(i + 1, "(", ")"));
      }
    }
  }

  // Scope/function discovery: a namespace/class stack plus a declarator
  // heuristic (qualified name + balanced parens + '{' before ';' or '=')
  // finds definitions; bodies are analyzed separately.
  void ExtractFunctions() {
    struct Scope {
      enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
      std::string name;
    };
    std::vector<Scope> scopes;
    // Declarator candidate: name parts of `a::b::c(` seen at non-block scope.
    std::vector<std::string> decl_name;
    int decl_line = 0;
    bool decl_closed = false;   // declarator parens have closed
    bool in_init_list = false;  // between ctor ')' ':' and body '{'
    bool decl_returns_status = false;
    size_t i = 0;
    while (i < Size()) {
      const Token& tok = T(i);
      if (tok.pp) {
        ++i;
        continue;
      }
      bool at_type_scope =
          std::none_of(scopes.begin(), scopes.end(), [](const Scope& s) {
            return s.kind == Scope::kFunction;
          });

      if (tok.kind == TokKind::kIdent && at_type_scope) {
        if (tok.text == "namespace") {
          // `namespace a`, `namespace a::b::c`, or anonymous.
          std::string name;
          size_t j = i + 1;
          while (j < Size() && T(j).kind == TokKind::kIdent) {
            if (!name.empty()) name += "::";
            name += T(j).text;
            ++j;
            if (j + 1 < Size() && T(j).kind == TokKind::kPunct &&
                T(j).text == "::" && T(j + 1).kind == TokKind::kIdent) {
              ++j;
              continue;
            }
            break;
          }
          if (j < Size() && T(j).kind == TokKind::kPunct &&
              T(j).text == "{") {
            scopes.push_back({Scope::kNamespace, name});
            i = j + 1;
            continue;
          }
          i = j;
          continue;
        }
        if ((tok.text == "class" || tok.text == "struct" ||
             tok.text == "union") &&
            i + 1 < Size() && T(i + 1).kind == TokKind::kIdent) {
          // Peek for '{' before ';' at depth 0 (definition vs declaration).
          std::string name = T(i + 1).text;
          size_t j = i + 2;
          int angle = 0;
          bool is_def = false;
          while (j < Size()) {
            if (T(j).kind == TokKind::kPunct) {
              if (T(j).text == "<") ++angle;
              if (T(j).text == ">") --angle;
              if (angle == 0 && T(j).text == "{") {
                is_def = true;
                break;
              }
              if (angle == 0 &&
                  (T(j).text == ";" || T(j).text == "(" || T(j).text == "=")) {
                break;
              }
            }
            ++j;
          }
          if (is_def) {
            scopes.push_back({Scope::kClass, name});
            i = j + 1;
            decl_name.clear();
            continue;
          }
        }
        // Track a possible declarator name: idents joined by '::'.
        if (!IsCallKeyword(tok.text) && !decl_closed) {
          if (i + 1 < Size() && T(i + 1).kind == TokKind::kPunct &&
              T(i + 1).text == "(") {
            decl_name.clear();
            decl_name.push_back(tok.text);
            decl_line = tok.line;
            // Walk back through `ident::` prefixes.
            size_t k = i;
            while (k >= 2 && T(k - 1).kind == TokKind::kPunct &&
                   T(k - 1).text == "::" && T(k - 2).kind == TokKind::kIdent) {
              decl_name.insert(decl_name.begin(), T(k - 2).text);
              k -= 2;
            }
            // Return type: does a Status/StatusOr ident precede the name?
            decl_returns_status = false;
            for (size_t b = (k >= 6 ? k - 6 : 0); b < k; ++b) {
              if (T(b).kind == TokKind::kIdent &&
                  (T(b).text == "Status" || T(b).text == "StatusOr")) {
                decl_returns_status = true;
              }
            }
            size_t close = MatchForward(i + 1, "(", ")");
            i = close + 1;
            decl_closed = true;
            in_init_list = false;
            continue;
          }
        }
      }

      if (tok.kind == TokKind::kPunct) {
        const std::string& p = tok.text;
        if (decl_closed) {
          if (p == ";" || p == "=") {
            decl_closed = false;
            decl_name.clear();
          } else if (p == ":") {
            in_init_list = true;
            ++i;
            continue;
          } else if (p == "(") {
            // noexcept(...) or an init-list member's parens: skip balanced.
            i = MatchForward(i, "(", ")") + 1;
            continue;
          } else if (p == "{") {
            if (in_init_list && i > 0 && T(i - 1).kind == TokKind::kIdent) {
              // Member brace-init inside a ctor init list: a_{1}.
              i = MatchForward(i, "{", "}") + 1;
              continue;
            }
            // Function body.
            PendingFn fn;
            fn.info.name = decl_name.back();
            std::string qual;
            for (const auto& scope : scopes) {
              if (!scope.name.empty()) qual += scope.name + "::";
            }
            for (size_t k = 0; k + 1 < decl_name.size(); ++k) {
              qual += decl_name[k] + "::";
            }
            qual += decl_name.back();
            fn.info.qual = qual;
            fn.info.line = decl_line;
            fn.info.returns_status = decl_returns_status;
            fn.body_begin = i;
            fn.body_end = MatchForward(i, "{", "}");
            pending_.push_back(std::move(fn));
            scopes.push_back({Scope::kFunction, decl_name.back()});
            decl_closed = false;
            in_init_list = false;
            decl_name.clear();
            ++i;
            continue;
          }
        } else if (p == "{") {
          scopes.push_back({Scope::kBlock, ""});
        } else if (p == "}") {
          if (!scopes.empty()) scopes.pop_back();
        } else if (p == ";") {
          decl_name.clear();
        }
      }
      ++i;
    }
  }

  // --- per-body analysis ----------------------------------------------------

  bool IdentAt(size_t i, size_t begin, size_t end) const {
    return i >= begin && i < end && T(i).kind == TokKind::kIdent && !T(i).pp;
  }

  bool PunctIs(size_t i, const char* text) const {
    return i < Size() && T(i).kind == TokKind::kPunct && T(i).text == text &&
           !T(i).pp;
  }

  // Taint of the token range [begin, end): direct sources, rt-field reads,
  // tainted locals, and callee names whose return taint is resolved later.
  TaintInfo TaintOf(size_t begin, size_t end,
                    const std::map<std::string, TaintInfo>& vars) const {
    TaintInfo taint;
    for (size_t i = begin; i < end; ++i) {
      if (T(i).kind != TokKind::kIdent || T(i).pp) continue;
      const std::string& name = T(i).text;
      bool is_call = PunctIs(i + 1, "(");
      bool is_member = i > begin && (PunctIs(i - 1, ".") || PunctIs(i - 1, "->"));
      if (is_call) {
        if (tables_.taint_sources.count(name)) {
          if (!taint.direct) {
            taint.direct = true;
            taint.src = name;
          }
        } else if (!IsCallKeyword(name)) {
          taint.via.insert(name);
        }
        continue;
      }
      if (is_member) {
        // A member access: only the declared rt-field names taint. The ident
        // must NOT fall through to the local-variable lookup — `x.metrics`
        // is a field, not the local that happens to share its name.
        if (tables_.taint_source_fields.count(name) && !taint.direct) {
          taint.direct = true;
          taint.src = name;
        }
        continue;
      }
      auto it = vars.find(name);
      if (it != vars.end()) taint.Merge(it->second);
    }
    return taint;
  }

  void AnalyzeBody(PendingFn& fn) {
    const size_t begin = fn.body_begin;
    const size_t end = fn.body_end;
    FunctionInfo& info = fn.info;

    // Pass A: calls, unsafe ops, parallel markers.
    for (size_t i = begin; i < end; ++i) {
      if (T(i).kind != TokKind::kIdent || T(i).pp) continue;
      const std::string& name = T(i).text;
      bool called = PunctIs(i + 1, "(");
      bool member = PunctIs(i - 1, ".") || PunctIs(i - 1, "->");
      bool in_par = InParallel(i);
      if (name == "ParallelFor" && called) {
        info.parallel_for_lines.push_back(T(i).line);
      }
      if (called && !IsCallKeyword(name)) {
        CallSite call;
        call.callee = name;
        call.line = T(i).line;
        call.in_parallel_body = in_par;
        // Qualified text as written: walk back over `x::`/`x.`/`x->`.
        std::string qual = name;
        size_t k = i;
        while (k >= 2 && T(k - 2).kind == TokKind::kIdent &&
               (PunctIs(k - 1, "::") || PunctIs(k - 1, ".") ||
                PunctIs(k - 1, "->"))) {
          qual = T(k - 2).text + T(k - 1).text + qual;
          k -= 2;
        }
        call.qual = std::move(qual);
        info.calls.push_back(std::move(call));
      }
      if (called && !member && IsSpawnIdent(name)) {
        info.unsafe_ops.push_back(
            {T(i).line, "raw process control '" + name + "'", in_par});
      } else if (IsDirectIoIdent(name) &&
                 (name.find("stream") != std::string::npos ||
                  (called && !member))) {
        info.unsafe_ops.push_back(
            {T(i).line, "direct file I/O '" + name + "'", in_par});
      } else if (called && tables_.parallel_unsafe.count(name)) {
        info.unsafe_ops.push_back(
            {T(i).line, "call to parallel-unsafe '" + name + "'", in_par});
      }
    }

    // Pass B: statement-level dataflow. Statements split at depth-0
    // ';'/'{'/'}'; locals gain taint from their initializers/assignments,
    // iterated to a fixpoint, then sinks and returns are evaluated.
    struct Stmt {
      size_t begin, end;  // token range
      bool terminated;    // ended with ';' (not a brace reset)
    };
    std::vector<Stmt> stmts;
    {
      size_t stmt_begin = begin + 1;
      int paren = 0;
      for (size_t i = begin + 1; i < end; ++i) {
        if (T(i).pp) continue;
        if (T(i).kind != TokKind::kPunct) continue;
        const std::string& p = T(i).text;
        if (p == "(") ++paren;
        if (p == ")" && paren > 0) --paren;
        if (paren != 0) continue;
        if (p == ";" || p == "{" || p == "}") {
          if (i > stmt_begin) stmts.push_back({stmt_begin, i, p == ";"});
          stmt_begin = i + 1;
        }
      }
    }

    // Record-typed locals: `Type var ;|=|{` where Type's last component is a
    // protected record type from the tables.
    std::set<std::string> record_vars;
    for (const auto& stmt : stmts) {
      std::string prev_ident, last_ident;
      for (size_t i = stmt.begin; i < stmt.end; ++i) {
        if (T(i).kind == TokKind::kIdent && !T(i).pp) {
          bool qualified = PunctIs(i - 1, "::");
          if (!qualified) prev_ident = last_ident;
          last_ident = T(i).text;
        } else if (T(i).kind == TokKind::kPunct &&
                   (T(i).text == "=" || T(i).text == ";")) {
          break;
        }
      }
      if (!prev_ident.empty() && tables_.record_types.count(prev_ident)) {
        record_vars.insert(last_ident);
      }
    }

    // Record-typed reference/pointer parameters count too: a helper filling
    // `IterationRecord& rec` is as much a det writer as one with a local.
    if (fn.body_begin > 0) {
      int depth = 0;
      size_t lo = fn.body_begin;
      size_t hi = 0;
      for (size_t i = fn.body_begin; i-- > 0;) {
        if (T(i).kind != TokKind::kPunct || T(i).pp) continue;
        if (T(i).text == ")") {
          if (depth == 0) hi = i;
          ++depth;
        } else if (T(i).text == "(") {
          --depth;
          if (depth == 0) {
            lo = i;
            break;
          }
        }
      }
      if (hi > lo) {
        std::string prev_ident, last_ident;
        auto flush_param = [&] {
          if (!prev_ident.empty() && tables_.record_types.count(prev_ident)) {
            record_vars.insert(last_ident);
          }
          prev_ident.clear();
          last_ident.clear();
        };
        for (size_t i = lo + 1; i < hi; ++i) {
          if (T(i).kind == TokKind::kIdent && !T(i).pp) {
            if (!PunctIs(i - 1, "::")) prev_ident = last_ident;
            last_ident = T(i).text;
          } else if (PunctIs(i, ",")) {
            flush_param();
          }
        }
        flush_param();
      }
    }

    static const std::set<std::string> kAssignOps = {"=",  "+=", "-=", "*=",
                                                     "/=", "%=", "&=", "|=",
                                                     "^=", "<<=", ">>="};
    auto find_assign = [&](const Stmt& stmt) -> size_t {
      int paren = 0;
      for (size_t i = stmt.begin; i < stmt.end; ++i) {
        if (T(i).kind != TokKind::kPunct || T(i).pp) continue;
        if (T(i).text == "(") ++paren;
        if (T(i).text == ")") --paren;
        if (paren == 0 && kAssignOps.count(T(i).text)) return i;
      }
      return stmt.end;
    };

    std::map<std::string, TaintInfo> vars;
    for (int pass = 0; pass < 5; ++pass) {
      bool changed = false;
      for (const auto& stmt : stmts) {
        size_t eq = find_assign(stmt);
        if (eq == stmt.end) continue;
        // LHS: last ident is the target; a '.'/'->' before it means a
        // member write (handled in the sink pass).
        size_t last = eq;
        while (last > stmt.begin && T(last - 1).kind != TokKind::kIdent) --last;
        if (last == stmt.begin) continue;
        size_t target = last - 1;
        if (PunctIs(target - 1, ".") || PunctIs(target - 1, "->")) continue;
        TaintInfo rhs = TaintOf(eq + 1, stmt.end, vars);
        if (rhs.empty()) continue;
        TaintInfo& cur = vars[T(target).text];
        size_t before = cur.via.size() + (cur.direct ? 1 : 0);
        cur.Merge(rhs);
        if (cur.via.size() + (cur.direct ? 1 : 0) != before) changed = true;
      }
      if (!changed) break;
    }

    // Final pass: returns, det-field writes, sink-call arguments, discards.
    for (const auto& stmt : stmts) {
      if (stmt.end <= stmt.begin) continue;
      // return <expr>;
      if (IdentAt(stmt.begin, begin, end) && T(stmt.begin).text == "return") {
        TaintInfo taint = TaintOf(stmt.begin + 1, stmt.end, vars);
        if (taint.direct) info.returns_taint_direct = true;
        for (const auto& callee : taint.via) {
          info.returns_taint_via.push_back(callee);
        }
      }
      // Member write to a det field of a record-typed local.
      size_t eq = find_assign(stmt);
      if (eq != stmt.end && eq > stmt.begin + 2) {
        size_t field = eq;
        while (field > stmt.begin && T(field - 1).kind != TokKind::kIdent) {
          --field;
        }
        if (field > stmt.begin) {
          --field;
          if ((PunctIs(field - 1, ".") || PunctIs(field - 1, "->")) &&
              field >= stmt.begin + 2 && IdentAt(field - 2, begin, end) &&
              record_vars.count(T(field - 2).text) &&
              tables_.det_fields.count(T(field).text)) {
            TaintInfo taint = TaintOf(eq + 1, stmt.end, vars);
            if (!taint.empty()) {
              SinkHit hit;
              hit.line = T(field).line;
              hit.sink = "det field '" + T(field).text + "'";
              hit.source = taint.src;
              hit.via_calls.assign(taint.via.begin(), taint.via.end());
              info.sink_hits.push_back(std::move(hit));
            }
          }
        }
      }
      // Tainted arguments to sink calls.
      for (size_t i = stmt.begin; i < stmt.end; ++i) {
        if (T(i).kind != TokKind::kIdent || T(i).pp) continue;
        if (!tables_.taint_sinks.count(T(i).text) || !PunctIs(i + 1, "(")) {
          continue;
        }
        size_t close = MatchForward(i + 1, "(", ")");
        TaintInfo taint = TaintOf(i + 2, std::min(close, stmt.end), vars);
        if (!taint.empty()) {
          SinkHit hit;
          hit.line = T(i).line;
          hit.sink = T(i).text;
          hit.source = taint.src;
          hit.via_calls.assign(taint.via.begin(), taint.via.end());
          info.sink_hits.push_back(std::move(hit));
        }
      }
      // Discard candidate: statement is `[(void)] name-chain ( ... ) ;`.
      if (stmt.terminated) {
        size_t i = stmt.begin;
        bool voided = false;
        if (PunctIs(i, "(") && IdentAt(i + 1, begin, end) &&
            T(i + 1).text == "void" && PunctIs(i + 2, ")")) {
          voided = true;
          i += 3;
        }
        // name ((::|.|->) name)* (
        if (IdentAt(i, begin, end) && !IsCallKeyword(T(i).text)) {
          size_t j = i;
          while (j + 2 < stmt.end &&
                 (PunctIs(j + 1, "::") || PunctIs(j + 1, ".") ||
                  PunctIs(j + 1, "->")) &&
                 IdentAt(j + 2, begin, end)) {
            j += 2;
          }
          if (PunctIs(j + 1, "(") && !IsCallKeyword(T(j).text)) {
            info.discards.push_back({T(i).line, T(j).text, voided});
          }
        }
      }
    }
    std::sort(info.returns_taint_via.begin(), info.returns_taint_via.end());
    info.returns_taint_via.erase(
        std::unique(info.returns_taint_via.begin(),
                    info.returns_taint_via.end()),
        info.returns_taint_via.end());
  }

  const std::vector<Token>& toks_;
  const AnalysisTables& tables_;
  FileIndex* index_;
  std::vector<std::pair<size_t, size_t>> parallel_regions_;
  std::vector<PendingFn> pending_;
};

void ExtractIncludes(const std::string& contents, FileIndex* index) {
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] != '#') continue;
    size_t inc = line.find("include", pos);
    if (inc == std::string::npos) continue;
    size_t open = line.find('"', inc);
    if (open == std::string::npos) continue;
    size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    index->includes.push_back(line.substr(open + 1, close - open - 1));
  }
}

}  // namespace

FileIndex BuildFileIndex(const std::string& rel_path,
                         const std::string& contents,
                         const AnalysisTables& tables) {
  FileIndex index;
  index.path = rel_path;
  index.content_hash = HashBytes(contents);
  ExtractIncludes(contents, &index);

  TokenizedFile file = TokenizeFile(contents);
  std::vector<Finding> raw;
  index.suppressions = ParseSuppressionDirectives(file, rel_path, &raw);

  Extractor extractor(file.tokens, tables, &index);
  extractor.Run();

  index.fallible = HarvestFallibleFromLines(file.line_code);
  RunLocalRules(rel_path, file, index.functions, &raw);

  for (auto& finding : raw) {
    // bad-suppression is never suppressible — that would defeat its point.
    if (finding.rule != "bad-suppression" &&
        index.suppressions.Covers(finding.rule, finding.line)) {
      continue;
    }
    index.local_findings.push_back(std::move(finding));
  }
  return index;
}

// ---------------------------------------------------------------------------
// Cache (de)serialization: tab-separated lines, strings escaped.
// ---------------------------------------------------------------------------

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      if (s[i] == 't') {
        out += '\t';
      } else if (s[i] == 'n') {
        out += '\n';
      } else {
        out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

}  // namespace

std::string SerializeFileIndex(const FileIndex& index) {
  std::ostringstream os;
  os << "path\t" << Escape(index.path) << "\n";
  os << "hash\t" << index.content_hash << "\n";
  for (const auto& inc : index.includes) os << "inc\t" << Escape(inc) << "\n";
  for (const auto& name : index.fallible) os << "fal\t" << name << "\n";
  for (const auto& rule : index.suppressions.file_level) {
    os << "supf\t" << rule << "\n";
  }
  for (const auto& [line, rules] : index.suppressions.by_line) {
    for (const auto& rule : rules) os << "supl\t" << line << "\t" << rule << "\n";
  }
  for (const auto& [line, rules] : index.suppressions.next_line) {
    for (const auto& rule : rules) os << "supn\t" << line << "\t" << rule << "\n";
  }
  for (const auto& finding : index.local_findings) {
    os << "find\t" << finding.line << "\t" << finding.rule << "\t"
       << Escape(finding.message) << "\n";
  }
  for (const auto& fn : index.functions) {
    os << "fn\t" << fn.line << "\t" << (fn.returns_status ? 1 : 0) << "\t"
       << (fn.returns_taint_direct ? 1 : 0) << "\t" << Escape(fn.name) << "\t"
       << Escape(fn.qual) << "\n";
    for (const auto& call : fn.calls) {
      os << "call\t" << call.line << "\t" << (call.in_parallel_body ? 1 : 0)
         << "\t" << Escape(call.callee) << "\t" << Escape(call.qual) << "\n";
    }
    for (const auto& hit : fn.sink_hits) {
      os << "sink\t" << hit.line << "\t" << Escape(hit.sink) << "\t"
         << Escape(hit.source);
      for (const auto& via : hit.via_calls) os << "\t" << Escape(via);
      os << "\n";
    }
    for (const auto& discard : fn.discards) {
      os << "disc\t" << discard.line << "\t" << (discard.voided ? 1 : 0)
         << "\t" << Escape(discard.callee) << "\n";
    }
    for (const auto& op : fn.unsafe_ops) {
      os << "unsf\t" << op.line << "\t" << (op.in_parallel_body ? 1 : 0)
         << "\t" << Escape(op.what) << "\n";
    }
    for (int line : fn.parallel_for_lines) os << "pfor\t" << line << "\n";
    for (const auto& via : fn.returns_taint_via) {
      os << "rtv\t" << Escape(via) << "\n";
    }
    os << "endfn\n";
  }
  return os.str();
}

bool ParseFileIndex(const std::string& text, FileIndex* index) {
  std::istringstream in(text);
  std::string line;
  FunctionInfo* fn = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> f = SplitTabs(line);
    const std::string& kind = f[0];
    auto want = [&](size_t n) { return f.size() >= n; };
    if (kind == "path" && want(2)) {
      index->path = Unescape(f[1]);
    } else if (kind == "hash" && want(2)) {
      index->content_hash = std::stoull(f[1]);
    } else if (kind == "inc" && want(2)) {
      index->includes.push_back(Unescape(f[1]));
    } else if (kind == "fal" && want(2)) {
      index->fallible.push_back(f[1]);
    } else if (kind == "supf" && want(2)) {
      index->suppressions.file_level.insert(f[1]);
    } else if (kind == "supl" && want(3)) {
      index->suppressions.by_line[std::stoi(f[1])].insert(f[2]);
    } else if (kind == "supn" && want(3)) {
      index->suppressions.next_line[std::stoi(f[1])].insert(f[2]);
    } else if (kind == "find" && want(4)) {
      index->local_findings.push_back(
          {index->path, std::stoi(f[1]), f[2], Unescape(f[3])});
    } else if (kind == "fn" && want(6)) {
      index->functions.emplace_back();
      fn = &index->functions.back();
      fn->line = std::stoi(f[1]);
      fn->returns_status = f[2] == "1";
      fn->returns_taint_direct = f[3] == "1";
      fn->name = Unescape(f[4]);
      fn->qual = Unescape(f[5]);
    } else if (kind == "call" && want(5) && fn) {
      fn->calls.push_back(
          {Unescape(f[3]), Unescape(f[4]), std::stoi(f[1]), f[2] == "1"});
    } else if (kind == "sink" && want(4) && fn) {
      SinkHit hit;
      hit.line = std::stoi(f[1]);
      hit.sink = Unescape(f[2]);
      hit.source = Unescape(f[3]);
      for (size_t i = 4; i < f.size(); ++i) {
        hit.via_calls.push_back(Unescape(f[i]));
      }
      fn->sink_hits.push_back(std::move(hit));
    } else if (kind == "disc" && want(4) && fn) {
      fn->discards.push_back({std::stoi(f[1]), Unescape(f[3]), f[2] == "1"});
    } else if (kind == "unsf" && want(4) && fn) {
      fn->unsafe_ops.push_back(
          {std::stoi(f[1]), Unescape(f[3]), f[2] == "1"});
    } else if (kind == "pfor" && want(2) && fn) {
      fn->parallel_for_lines.push_back(std::stoi(f[1]));
    } else if (kind == "rtv" && want(2) && fn) {
      fn->returns_taint_via.push_back(Unescape(f[1]));
    } else if (kind == "endfn") {
      fn = nullptr;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace garl::lint
