#ifndef GARL_TOOLS_GARL_LINT_CLI_H_
#define GARL_TOOLS_GARL_LINT_CLI_H_

#include <iosfwd>
#include <string>
#include <vector>

// The garl_lint command line, exposed as a library function so exit-code and
// output behaviour are unit-testable without spawning the binary.
//
// Exit codes (load-bearing for run_all_gates.cmake):
//   0  clean — no findings after baseline filtering
//   1  findings — the tree violates at least one rule
//   2  error — bad usage, unreadable baseline, malformed tables, stale
//      baseline entries, cache write failure: the run itself is invalid and
//      MUST NOT be mistaken for clean or for findings.

namespace garl::lint {

// Runs the CLI on `args` (argv[1..]); findings/JSON go to `out`, usage and
// diagnostics to `err`. Returns the process exit code.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace garl::lint

#endif  // GARL_TOOLS_GARL_LINT_CLI_H_
