#ifndef GARL_TOOLS_GARL_FLEET_FLEET_H_
#define GARL_TOOLS_GARL_FLEET_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

// garl_fleet — self-healing multi-process experiment supervisor.
//
// The supervisor spawns one child trainer process per run (N seeds × M
// configs), then keeps the fleet alive for week-long sweeps:
//
//  * crash detection   — non-blocking waitpid; a child that exits non-zero
//                        or dies on a signal is restarted.
//  * hang detection    — each child appends a heartbeat line per training
//                        iteration (through the fs_util durable-append
//                        funnel); a heartbeat file that stops growing past
//                        the deadline gets the child SIGKILLed and
//                        restarted.
//  * bounded restarts  — exponential backoff between restarts; once a run
//                        exhausts its retry budget it is marked failed with
//                        a clean Status (the rest of the fleet keeps going).
//  * exact resume      — children checkpoint every iteration and restart
//                        from the last CRC-valid checkpoint with the run
//                        log trimmed to the resume point, so a supervised
//                        run's final `det` log bytes match an uninterrupted
//                        run (PR 1's bit-identical resume, exercised for
//                        real).
//  * graceful shutdown — SIGTERM/SIGINT to the supervisor forwards SIGTERM
//                        to every child; children checkpoint and exit with
//                        a distinct code, and their runs finish CANCELLED.
//
// On completion the per-run logs are deterministically merged into an
// EXPERIMENTS.md-ready markdown table at <root_dir>/RESULTS.md.

namespace garl::fleet {

// Child process exit-code contract (see RunChildTrainer in child.h).
inline constexpr int kChildExitOk = 0;
inline constexpr int kChildExitFailure = 1;
inline constexpr int kChildExitUsage = 2;
inline constexpr int kChildExitCancelled = 3;  // graceful-shutdown checkpoint
inline constexpr int kChildExitExecFailed = 127;

// One supervised run (one seed × config cell of the sweep).
struct RunSpec {
  std::string name;  // unique; doubles as the run's directory name
  uint64_t seed = 1;
  int64_t iterations = 10;
  int64_t episodes_per_iteration = 1;
  int64_t run_log_max_segment_bytes = 0;  // 0: no rotation
  // Extra argv appended to the child command line (test hooks).
  std::vector<std::string> extra_child_args;
};

struct SupervisorConfig {
  std::string child_binary;  // absolute path to the garl_fleet binary
  std::string root_dir;      // per-run dirs + RESULTS.md live here
  int64_t max_restarts = 3;  // per run; exceeding it fails the run
  int64_t initial_backoff_ms = 100;
  int64_t max_backoff_ms = 5000;
  // A heartbeat file that has not grown for this long marks the child hung.
  int64_t heartbeat_deadline_ms = 30000;
  int64_t poll_interval_ms = 50;
  // Test seam: replaces the real inter-poll sleep (backoff waits are
  // realized as deadlines checked by the poll loop, so this also
  // accelerates them).
  std::function<void(int64_t ms)> sleep_fn;
  // Test hook: observes every (re)spawn with the child's pid.
  std::function<void(const std::string& run_name, int64_t pid,
                     int64_t restarts)>
      on_spawn;
};

// Outcome of one supervised run.
struct RunResult {
  std::string name;
  Status status = Status::Ok();
  int64_t restarts = 0;    // crash + hang restarts actually performed
  int64_t hang_kills = 0;  // ...of which were stalled-heartbeat SIGKILLs
  bool cancelled = false;  // graceful shutdown, not a failure
};

// Directory layout helpers (shared with the child runner).
std::string RunDir(const std::string& root_dir, const std::string& run_name);
std::string RunLogBase(const std::string& run_dir);     // run_log.jsonl
std::string HeartbeatPath(const std::string& run_dir);  // heartbeat
std::string CheckpointDir(const std::string& run_dir);  // checkpoints/

// Supervises every run to completion (or budget exhaustion / shutdown).
// Never hangs: every child is either reaped, killed after a stalled
// heartbeat, or SIGTERMed on supervisor shutdown. Returns one result per
// spec, in spec order. Only fails outright on invalid configuration.
[[nodiscard]] StatusOr<std::vector<RunResult>> SuperviseFleet(
    const SupervisorConfig& config, const std::vector<RunSpec>& specs);

// OK when every run completed (cancelled counts as not-OK); otherwise an
// error naming each failed run. Never hangs or aborts — budget exhaustion
// surfaces here as a Status.
[[nodiscard]] Status AggregateStatus(const std::vector<RunResult>& results);

// Deterministically merges per-run log summaries (runs sorted by name) into
// a markdown table written durably to <root_dir>/RESULTS.md.
[[nodiscard]] Status WriteResultsTable(const SupervisorConfig& config,
                                       const std::vector<RunResult>& results);

}  // namespace garl::fleet

#endif  // GARL_TOOLS_GARL_FLEET_FLEET_H_
