#ifndef GARL_TOOLS_GARL_FLEET_CHILD_H_
#define GARL_TOOLS_GARL_FLEET_CHILD_H_

#include <cstdint>
#include <string>

// The fleet child: one supervised trainer process (`garl_fleet --child`).
//
// Protocol with the supervisor (see fleet.h):
//  * emits one heartbeat line to <run_dir>/heartbeat at startup and one per
//    completed training iteration, via the durable-append funnel in
//    AppendMode::kContinue (a restarted child keeps appending to the same
//    file, so the supervisor's size-growth liveness check spans restarts);
//  * checkpoints every iteration into <run_dir>/checkpoints and, on
//    restart, resumes from the latest CRC-valid checkpoint with
//    start_iteration = episode_counter / episodes_per_iteration — the run
//    log is trimmed to the resume point so the final `det` bytes match an
//    uninterrupted run;
//  * SIGTERM/SIGINT → checkpoint-and-exit with kChildExitCancelled;
//    completion → kChildExitOk; any error → kChildExitFailure.

namespace garl::fleet {

struct ChildOptions {
  std::string run_dir;
  uint64_t seed = 1;
  int64_t iterations = 10;
  int64_t episodes_per_iteration = 1;
  int64_t run_log_max_segment_bytes = 0;
  // Test hook: exit with this code right after the startup heartbeat
  // (models a child that always crashes, for retry-budget tests). -1: off.
  int fail_with = -1;
};

// Runs the child trainer to completion; returns the process exit code per
// the contract above.
int RunChildTrainer(const ChildOptions& options);

}  // namespace garl::fleet

#endif  // GARL_TOOLS_GARL_FLEET_CHILD_H_
