#include "tools/garl_fleet/fleet.h"

#include <csignal>

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/fs_util.h"
#include "common/proc.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "obs/clock.h"
#include "obs/run_log.h"

namespace garl::fleet {

namespace {

// Per-run supervision state machine: a run is either waiting out a backoff
// window, running, or done.
struct RunState {
  const RunSpec* spec = nullptr;
  RunResult result;
  int64_t pid = -1;
  bool running = false;
  bool done = false;
  int64_t backoff_ms = 0;          // next restart's backoff
  int64_t restart_at_ns = 0;       // monotonic deadline for the next spawn
  int64_t heartbeat_bytes = -1;    // last observed heartbeat size
  int64_t heartbeat_fresh_ns = 0;  // when it last grew
};

std::vector<std::string> ChildArgv(const SupervisorConfig& config,
                                   const RunSpec& spec) {
  std::vector<std::string> argv = {
      config.child_binary,
      "--child",
      "--run-dir",
      RunDir(config.root_dir, spec.name),
      "--seed",
      StrPrintf("%llu", static_cast<unsigned long long>(spec.seed)),
      "--iterations",
      StrPrintf("%lld", static_cast<long long>(spec.iterations)),
      "--episodes",
      StrPrintf("%lld", static_cast<long long>(spec.episodes_per_iteration)),
      "--segment-bytes",
      StrPrintf("%lld",
                static_cast<long long>(spec.run_log_max_segment_bytes)),
  };
  argv.insert(argv.end(), spec.extra_child_args.begin(),
              spec.extra_child_args.end());
  return argv;
}

void SleepFor(const SupervisorConfig& config, int64_t ms) {
  if (config.sleep_fn) {
    config.sleep_fn(ms);
    return;
  }
  proc::SleepMs(ms);
}

// Spawns (or respawns) `state`'s child and re-anchors its heartbeat clock.
Status SpawnRun(const SupervisorConfig& config, RunState* state, int64_t now_ns) {
  GARL_RETURN_IF_ERROR(EnsureDirectory(RunDir(config.root_dir, state->spec->name)));
  StatusOr<int64_t> pid = proc::SpawnProcess(ChildArgv(config, *state->spec));
  if (!pid.ok()) return pid.status();
  state->pid = pid.value();
  state->running = true;
  // The liveness clock starts at spawn: a child that never writes its first
  // heartbeat is itself a hang.
  StatusOr<int64_t> size = FileSizeBytes(HeartbeatPath(
      RunDir(config.root_dir, state->spec->name)));
  state->heartbeat_bytes = size.ok() ? size.value() : 0;
  state->heartbeat_fresh_ns = now_ns;
  if (config.on_spawn) {
    config.on_spawn(state->spec->name, state->pid, state->result.restarts);
  }
  return Status::Ok();
}

// A child stopped running (crash, hang kill, or failure exit): either
// schedule a backoff restart or fail the run for good.
void ScheduleRestartOrFail(const SupervisorConfig& config, RunState* state,
                           int64_t now_ns, const std::string& reason) {
  state->running = false;
  state->pid = -1;
  if (state->result.restarts >= config.max_restarts) {
    state->done = true;
    state->result.status = InternalError(StrPrintf(
        "run '%s' exhausted its restart budget (%lld restarts): last "
        "failure: %s",
        state->spec->name.c_str(), static_cast<long long>(config.max_restarts),
        reason.c_str()));
    return;
  }
  ++state->result.restarts;
  state->backoff_ms =
      state->backoff_ms <= 0
          ? config.initial_backoff_ms
          : std::min(state->backoff_ms * 2, config.max_backoff_ms);
  state->restart_at_ns = now_ns + state->backoff_ms * 1000000;
}

// Reaped `exit` classifies the child's end.
void HandleExit(const SupervisorConfig& config, RunState* state,
                const proc::ExitStatus& exit, int64_t now_ns) {
  if (exit.exited && exit.exit_code == kChildExitOk) {
    state->running = false;
    state->done = true;
    return;
  }
  if (exit.exited && exit.exit_code == kChildExitCancelled) {
    state->running = false;
    state->done = true;
    state->result.cancelled = true;
    state->result.status = CancelledError(StrPrintf(
        "run '%s' stopped on a shutdown request (checkpointed)",
        state->spec->name.c_str()));
    return;
  }
  std::string reason =
      exit.exited
          ? StrPrintf("exit code %d", exit.exit_code)
          : StrPrintf("killed by signal %d", exit.term_signal);
  ScheduleRestartOrFail(config, state, now_ns, reason);
}

// SIGTERMs every running child and reaps it (graceful fleet shutdown).
void ShutDownFleet(std::vector<RunState>* states) {
  for (RunState& state : *states) {
    if (!state.running) continue;
    WarnIfError(proc::SendSignal(state.pid, SIGTERM),
                "forwarding SIGTERM to child");
  }
  for (RunState& state : *states) {
    if (!state.running) continue;
    StatusOr<proc::ExitStatus> exit = proc::WaitProcess(state.pid);
    state.running = false;
    state.done = true;
    state.result.cancelled = true;
    if (exit.ok() && exit.value().exited &&
        exit.value().exit_code == kChildExitCancelled) {
      state.result.status = CancelledError(StrPrintf(
          "run '%s' stopped on supervisor shutdown (checkpointed)",
          state.result.name.c_str()));
    } else {
      state.result.status = CancelledError(StrPrintf(
          "run '%s' stopped on supervisor shutdown", state.result.name.c_str()));
    }
  }
}

}  // namespace

std::string RunDir(const std::string& root_dir, const std::string& run_name) {
  return root_dir + "/" + run_name;
}

std::string RunLogBase(const std::string& run_dir) {
  return run_dir + "/run_log.jsonl";
}

std::string HeartbeatPath(const std::string& run_dir) {
  return run_dir + "/heartbeat";
}

std::string CheckpointDir(const std::string& run_dir) {
  return run_dir + "/checkpoints";
}

StatusOr<std::vector<RunResult>> SuperviseFleet(
    const SupervisorConfig& config, const std::vector<RunSpec>& specs) {
  if (config.child_binary.empty()) {
    return InvalidArgumentError("SupervisorConfig.child_binary is empty");
  }
  if (config.root_dir.empty()) {
    return InvalidArgumentError("SupervisorConfig.root_dir is empty");
  }
  if (specs.empty()) {
    return InvalidArgumentError("no runs to supervise");
  }
  {
    std::map<std::string, int> names;
    for (const RunSpec& spec : specs) {
      if (spec.name.empty()) return InvalidArgumentError("RunSpec.name is empty");
      if (++names[spec.name] > 1) {
        return InvalidArgumentError("duplicate run name: " + spec.name);
      }
    }
  }
  GARL_RETURN_IF_ERROR(EnsureDirectory(config.root_dir));

  std::vector<RunState> states(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    states[i].spec = &specs[i];
    states[i].result.name = specs[i].name;
    // First spawn happens immediately (restart_at_ns == 0 is in the past).
  }

  for (;;) {
    const int64_t now_ns = obs::MonotonicNowNs();
    if (proc::ShutdownRequested()) {
      ShutDownFleet(&states);
      break;
    }
    bool all_done = true;
    for (RunState& state : states) {
      if (state.done) continue;
      all_done = false;
      if (!state.running) {
        if (now_ns < state.restart_at_ns) continue;
        Status spawned = SpawnRun(config, &state, now_ns);
        if (!spawned.ok()) {
          // Could not even fork/exec: burn a restart attempt so a
          // persistently unspawnable child still exhausts the budget
          // instead of spinning forever.
          ScheduleRestartOrFail(config, &state, now_ns, spawned.ToString());
        }
        continue;
      }
      StatusOr<proc::ExitStatus> polled = proc::PollProcess(state.pid);
      if (!polled.ok()) {
        ScheduleRestartOrFail(config, &state, now_ns, polled.status().ToString());
        continue;
      }
      if (!polled.value().running) {
        HandleExit(config, &state, polled.value(), now_ns);
        continue;
      }
      // Liveness: the heartbeat file must keep growing. A stalled child is
      // SIGKILLed (works even on a SIGSTOPped process) and restarted.
      StatusOr<int64_t> size = FileSizeBytes(
          HeartbeatPath(RunDir(config.root_dir, state.spec->name)));
      int64_t bytes = size.ok() ? size.value() : 0;
      if (bytes > state.heartbeat_bytes) {
        state.heartbeat_bytes = bytes;
        state.heartbeat_fresh_ns = now_ns;
      } else if (now_ns - state.heartbeat_fresh_ns >
                 config.heartbeat_deadline_ms * 1000000) {
        WarnIfError(proc::SendSignal(state.pid, SIGKILL),
                    "killing hung child");
        StatusOr<proc::ExitStatus> reaped = proc::WaitProcess(state.pid);
        if (!reaped.ok()) WarnIfError(reaped.status(), "reaping hung child");
        ++state.result.hang_kills;
        ScheduleRestartOrFail(
            config, &state, now_ns,
            StrPrintf("heartbeat stalled for %lld ms",
                      static_cast<long long>(config.heartbeat_deadline_ms)));
        continue;
      }
    }
    if (all_done) break;
    SleepFor(config, config.poll_interval_ms);
  }

  std::vector<RunResult> results;
  results.reserve(states.size());
  for (RunState& state : states) {
    results.push_back(std::move(state.result));
  }
  return results;
}

Status AggregateStatus(const std::vector<RunResult>& results) {
  std::string failures;
  for (const RunResult& result : results) {
    if (result.status.ok()) continue;
    if (!failures.empty()) failures += "; ";
    failures += result.name + ": " + result.status.ToString();
  }
  if (failures.empty()) return Status::Ok();
  return InternalError("fleet finished with failed runs: " + failures);
}

Status WriteResultsTable(const SupervisorConfig& config,
                         const std::vector<RunResult>& results) {
  // Deterministic merge: rows sorted by run name, values taken from the
  // stitched (rotation-aware) run logs.
  std::vector<const RunResult*> ordered;
  ordered.reserve(results.size());
  for (const RunResult& result : results) ordered.push_back(&result);
  std::sort(ordered.begin(), ordered.end(),
            [](const RunResult* a, const RunResult* b) {
              return a->name < b->name;
            });

  TableWriter table({"run", "status", "restarts", "iterations", "episodes",
                     "policy_loss", "value_loss", "efficiency"});
  for (const RunResult* result : ordered) {
    std::string iterations = "-", episodes = "-", policy = "-", value = "-",
                efficiency = "-";
    StatusOr<std::vector<std::string>> inputs = obs::CollectRunLogInputs(
        {RunDir(config.root_dir, result->name)});
    if (inputs.ok()) {
      StatusOr<obs::RunLogSummary> summary =
          obs::SummarizeRunLogFiles(inputs.value());
      if (summary.ok() && summary.value().records > 0) {
        const obs::RunLogSummary& s = summary.value();
        iterations = StrPrintf("%lld", static_cast<long long>(s.records));
        episodes = StrPrintf("%lld",
                             static_cast<long long>(s.last.episode_counter));
        policy = StrPrintf("%.6g", s.last.policy_loss);
        value = StrPrintf("%.6g", s.last.value_loss);
        efficiency = StrPrintf("%.4f", s.last.efficiency);
      }
    }
    table.AddRow({result->name, StatusCodeName(result->status.code()),
                  StrPrintf("%lld", static_cast<long long>(result->restarts)),
                  iterations, episodes, policy, value, efficiency});
  }

  std::ostringstream out;
  out << "# Fleet results\n\n";
  table.Print(out);
  return WriteFileDurable(config.root_dir + "/RESULTS.md", out.str());
}

}  // namespace garl::fleet
