#include "tools/garl_fleet/child.h"

#include <cstdio>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/fs_util.h"
#include "common/proc.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "env/world.h"
#include "nn/linear.h"
#include "nn/ops.h"
#include "rl/checkpoint.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "tools/garl_fleet/fleet.h"

namespace garl::fleet {

namespace {

// The fleet's builtin benchmark scenario: the same tiny campus the golden
// and chaos tests train on, so supervised-run byte-identity is anchored to
// the exact workload those tests pin.
env::CampusSpec FleetCampus() {
  env::CampusSpec campus;
  campus.name = "fleet_tiny";
  campus.width = 400;
  campus.height = 400;
  campus.roads.push_back({{0, 200}, {400, 200}});
  campus.roads.push_back({{200, 0}, {200, 400}});
  campus.sensors.push_back({{150, 210}, 1000.0});
  campus.sensors.push_back({{260, 190}, 1200.0});
  campus.sensors.push_back({{200, 320}, 900.0});
  return campus;
}

env::WorldParams FleetParams() {
  env::WorldParams params;
  params.num_ugvs = 2;
  params.uavs_per_ugv = 1;
  params.horizon = 20;
  params.release_slots = 2;
  return params;
}

// Stateless mean-pool extractor with thread-safe inference (mirrors the
// golden-run test policy).
class MeanPoolExtractor : public rl::UgvFeatureExtractor {
 public:
  explicit MeanPoolExtractor(Rng& rng)
      : proj_(std::make_unique<nn::Linear>(5, 16, rng)) {}

  std::vector<nn::Tensor> Extract(
      const std::vector<env::UgvObservation>& observations) override {
    std::vector<nn::Tensor> features;
    for (const auto& obs : observations) {
      nn::Tensor pooled = nn::MulScalar(
          nn::SumDim(obs.stop_features, 0),
          1.0f / static_cast<float>(obs.stop_features.size(0)));
      nn::Tensor self =
          nn::Reshape(nn::Rows(obs.ugv_positions, obs.self, 1), {2});
      features.push_back(
          nn::Tanh(proj_->Forward(nn::Concat({pooled, self}, 0))));
    }
    return features;
  }

  int64_t feature_dim() const override { return 16; }
  std::string name() const override { return "fleet_mean_pool"; }
  bool ThreadSafeExtract() const override { return true; }
  std::vector<nn::Tensor> Parameters() const override {
    return proj_->Parameters();
  }

 private:
  std::unique_ptr<nn::Linear> proj_;
};

int FailChild(const Status& status, const char* what) {
  std::fprintf(stderr, "garl_fleet child: %s: %s\n", what,
               status.ToString().c_str());
  return kChildExitFailure;
}

}  // namespace

int RunChildTrainer(const ChildOptions& options) {
  if (options.run_dir.empty() || options.iterations <= 0 ||
      options.episodes_per_iteration <= 0) {
    std::fprintf(stderr, "garl_fleet child: bad options\n");
    return kChildExitUsage;
  }
  // Graceful shutdown: SIGTERM/SIGINT set the flag the training loop polls
  // at iteration boundaries.
  Status signals = proc::InstallShutdownSignalHandlers();
  if (!signals.ok()) return FailChild(signals, "installing signal handlers");

  Status dirs = EnsureDirectory(CheckpointDir(options.run_dir));
  if (!dirs.ok()) return FailChild(dirs, "creating run directory");

  // Heartbeat: opened in kContinue so the liveness record spans restarts;
  // one line at startup (proof of life before the first, possibly slow,
  // iteration) and one per completed iteration.
  StatusOr<AppendFile> heartbeat =
      AppendFile::Open(HeartbeatPath(options.run_dir), RetryPolicy{},
                       AppendMode::kContinue);
  if (!heartbeat.ok()) {
    return FailChild(heartbeat.status(), "opening heartbeat");
  }
  Status first_beat = heartbeat.value().Append("hb start\n");
  if (!first_beat.ok()) return FailChild(first_beat, "writing heartbeat");

  if (options.fail_with >= 0) return options.fail_with;

  // Resume point: the newest manifest entry's episode counter determines
  // which Train() iteration to continue from (each iteration consumes
  // exactly episodes_per_iteration episodes; the child checkpoints every
  // iteration).
  int64_t start_iteration = 0;
  bool resume = false;
  StatusOr<rl::CheckpointInfo> latest =
      rl::LatestCheckpoint(CheckpointDir(options.run_dir));
  if (latest.ok()) {
    resume = true;
    start_iteration = latest.value().episode / options.episodes_per_iteration;
  } else if (latest.status().code() != StatusCode::kNotFound) {
    return FailChild(latest.status(), "reading checkpoint manifest");
  }

  env::World world(FleetCampus(), FleetParams());
  Rng rng(7);
  rl::EnvContext context = rl::MakeEnvContext(world);
  rl::FeatureUgvPolicy policy(std::make_unique<MeanPoolExtractor>(rng),
                              context, rl::FeaturePolicyOptions{}, rng);

  rl::TrainConfig config;
  config.iterations = options.iterations;
  config.episodes_per_iteration = options.episodes_per_iteration;
  config.seed = options.seed;
  config.checkpoint_dir = CheckpointDir(options.run_dir);
  config.checkpoint_interval = 1;
  config.run_log_path = RunLogBase(options.run_dir);
  config.run_log_max_segment_bytes = options.run_log_max_segment_bytes;
  config.start_iteration = start_iteration;
  AppendFile& beat = heartbeat.value();
  config.iteration_callback = [&beat](int64_t iteration) {
    // Heartbeats are liveness, not ground truth: a failed beat must not
    // kill an otherwise healthy trainer.
    WarnIfError(beat.Append(StrPrintf("hb %lld\n",
                                      static_cast<long long>(iteration))),
                "fleet heartbeat");
  };

  rl::IppoTrainer trainer(&world, &policy, nullptr, config);
  if (resume) {
    Status restored = trainer.RestoreCheckpoint(config.checkpoint_dir);
    if (!restored.ok()) return FailChild(restored, "restoring checkpoint");
  }

  StatusOr<std::vector<rl::IterationStats>> result = trainer.Train();
  if (result.ok()) return kChildExitOk;
  if (IsCancelled(result.status())) {
    std::fprintf(stderr, "garl_fleet child: %s\n",
                 result.status().ToString().c_str());
    return kChildExitCancelled;
  }
  return FailChild(result.status(), "training");
}

}  // namespace garl::fleet
