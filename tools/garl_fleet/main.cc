// garl_fleet: self-healing multi-process experiment supervisor (see
// fleet.h for the supervision model).
//
//   garl_fleet --root <dir> [--seeds N] [--iterations N] [--episodes N]
//              [--segment-bytes B] [--max-restarts R]
//              [--heartbeat-deadline-ms MS]
//       Supervise N runs (seeds 1..N) of the builtin benchmark scenario;
//       merge results into <dir>/RESULTS.md.
//
//   garl_fleet --child --run-dir <dir> --seed S --iterations N
//              --episodes E --segment-bytes B [--fail-with C]
//       Internal: one supervised trainer process (spawned by the
//       supervisor; runnable by hand for debugging).
//
//   garl_fleet --migrate-v1 <src> <dst>
//       One-shot legacy checkpoint conversion: reads a v1 parameter file
//       and writes it back as v2 with a CRC-32 footer.
//
// Exit codes: 0 = OK, 1 = failure, 2 = usage error; child processes
// additionally use 3 = graceful-shutdown checkpoint (see fleet.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "common/proc.h"
#include "common/status.h"
#include "common/string_util.h"
#include "nn/serialization.h"
#include "tools/garl_fleet/child.h"
#include "tools/garl_fleet/fleet.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: garl_fleet --root <dir> [--seeds N] [--iterations N]\n"
      "                  [--episodes N] [--segment-bytes B]\n"
      "                  [--max-restarts R] [--heartbeat-deadline-ms MS]\n"
      "       garl_fleet --child --run-dir <dir> --seed S --iterations N\n"
      "                  --episodes E --segment-bytes B [--fail-with C]\n"
      "       garl_fleet --migrate-v1 <src> <dst>\n");
  return 2;
}

bool ParseInt64(const char* text, int64_t* out) {
  char* end = nullptr;
  long long value = std::strtoll(text, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<int64_t>(value);
  return true;
}

// The supervisor respawns itself as `--child`; /proc/self/exe is the only
// reliable path to the running binary (argv[0] may be relative to a
// directory we have since left).
std::string SelfBinaryPath(const char* argv0) {
  std::error_code ec;
  std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return self.string();
  return argv0;
}

int RunChild(int argc, char** argv) {
  garl::fleet::ChildOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      return i + 1 < argc && ParseInt64(argv[++i], out);
    };
    int64_t value = 0;
    if (arg == "--run-dir" && i + 1 < argc) {
      options.run_dir = argv[++i];
    } else if (arg == "--seed" && next_int(&value)) {
      options.seed = static_cast<uint64_t>(value);
    } else if (arg == "--iterations" && next_int(&value)) {
      options.iterations = value;
    } else if (arg == "--episodes" && next_int(&value)) {
      options.episodes_per_iteration = value;
    } else if (arg == "--segment-bytes" && next_int(&value)) {
      options.run_log_max_segment_bytes = value;
    } else if (arg == "--fail-with" && next_int(&value)) {
      options.fail_with = static_cast<int>(value);
    } else {
      return Usage();
    }
  }
  return garl::fleet::RunChildTrainer(options);
}

int RunMigrateV1(int argc, char** argv) {
  if (argc != 4) return Usage();
  garl::Status status = garl::nn::MigrateV1ParameterFile(argv[2], argv[3]);
  if (!status.ok()) {
    std::fprintf(stderr, "garl_fleet: migrate-v1: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("migrated %s -> %s (v2, CRC-32 footer)\n", argv[2], argv[3]);
  return 0;
}

int RunSupervisor(int argc, char** argv) {
  garl::fleet::SupervisorConfig config;
  config.child_binary = SelfBinaryPath(argv[0]);
  int64_t seeds = 2;
  int64_t iterations = 10;
  int64_t episodes = 1;
  int64_t segment_bytes = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      return i + 1 < argc && ParseInt64(argv[++i], out);
    };
    if (arg == "--root" && i + 1 < argc) {
      config.root_dir = argv[++i];
    } else if (arg == "--seeds" && next_int(&seeds)) {
    } else if (arg == "--iterations" && next_int(&iterations)) {
    } else if (arg == "--episodes" && next_int(&episodes)) {
    } else if (arg == "--segment-bytes" && next_int(&segment_bytes)) {
    } else if (arg == "--max-restarts" && next_int(&config.max_restarts)) {
    } else if (arg == "--heartbeat-deadline-ms" &&
               next_int(&config.heartbeat_deadline_ms)) {
    } else {
      return Usage();
    }
  }
  if (config.root_dir.empty() || seeds <= 0) return Usage();

  // The supervisor itself shuts down gracefully: SIGTERM/SIGINT forwards
  // SIGTERM to every child, which checkpoints and exits.
  garl::Status signals = garl::proc::InstallShutdownSignalHandlers();
  if (!signals.ok()) {
    std::fprintf(stderr, "garl_fleet: %s\n", signals.ToString().c_str());
    return 1;
  }

  std::vector<garl::fleet::RunSpec> specs;
  for (int64_t s = 1; s <= seeds; ++s) {
    garl::fleet::RunSpec spec;
    spec.name = garl::StrPrintf("seed_%03lld", static_cast<long long>(s));
    spec.seed = static_cast<uint64_t>(s);
    spec.iterations = iterations;
    spec.episodes_per_iteration = episodes;
    spec.run_log_max_segment_bytes = segment_bytes;
    specs.push_back(std::move(spec));
  }

  garl::StatusOr<std::vector<garl::fleet::RunResult>> results =
      garl::fleet::SuperviseFleet(config, specs);
  if (!results.ok()) {
    std::fprintf(stderr, "garl_fleet: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  garl::WarnIfError(garl::fleet::WriteResultsTable(config, results.value()),
                    "writing RESULTS.md");
  for (const garl::fleet::RunResult& result : results.value()) {
    std::printf("%s: %s (restarts=%lld, hang_kills=%lld)\n",
                result.name.c_str(), result.status.ToString().c_str(),
                static_cast<long long>(result.restarts),
                static_cast<long long>(result.hang_kills));
  }
  garl::Status aggregate = garl::fleet::AggregateStatus(results.value());
  if (!aggregate.ok()) {
    std::fprintf(stderr, "garl_fleet: %s\n", aggregate.ToString().c_str());
    return 1;
  }
  std::printf("fleet complete: %zu run(s), results in %s/RESULTS.md\n",
              results.value().size(), config.root_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--child") == 0) {
    return RunChild(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--migrate-v1") == 0) {
    return RunMigrateV1(argc, argv);
  }
  return RunSupervisor(argc, argv);
}
