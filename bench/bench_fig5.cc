// Reproduces Fig. 5: geographic fairness xi (Jain index over per-sensor
// collected fractions) across the same U / V' sweeps as Fig. 3.
//
// Paper shape: fairness rises with U (wider coverage) and degrades when
// too many UAVs share one carrier.

#include "bench_common.h"

int main() {
  garl::bench::BenchOptions options = garl::bench::LoadBenchOptions();
  garl::bench::RunFigureSweep("fig5", "xi", options);
  return 0;
}
