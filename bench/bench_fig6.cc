// Reproduces Fig. 6: cooperation factor zeta (effective releases /
// releases) across the same U / V' sweeps as Fig. 3.
//
// Paper shape: zeta declines as U grows (fiercer competition between
// coalitions) and as V' grows (UAVs from one carrier chase the same
// sensors).

#include "bench_common.h"

int main() {
  garl::bench::BenchOptions options = garl::bench::LoadBenchOptions();
  garl::bench::RunFigureSweep("fig6", "zeta", options);
  return 0;
}
