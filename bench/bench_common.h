#ifndef GARL_BENCH_BENCH_COMMON_H_
#define GARL_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/runner.h"
#include "env/world.h"

// Shared harness for the table/figure reproduction binaries.
//
// Every bench honours these environment variables so the full paper-scale
// sweep can be reproduced without recompiling (defaults keep a complete
// run of all benches within minutes on one core):
//   GARL_TRAIN_ITERS    PPO/MADDPG training iterations per config (def 3)
//   GARL_EVAL_EPISODES  evaluation episodes per seed            (def 1)
//   GARL_EPISODE_SLOTS  task horizon T in 30 s slots            (def 100)
//   GARL_SEEDS          independent seeds averaged              (def 2)
//   GARL_SWEEP          "small" (default) or "full" figure grids
//   GARL_OUT_DIR        CSV output directory (default bench_out)

namespace garl::bench {

struct BenchOptions {
  int64_t train_iterations = 3;
  int64_t eval_episodes = 1;
  int64_t horizon = 100;
  int64_t seeds = 2;
  bool full_sweep = false;
  std::string out_dir = "bench_out";
};

BenchOptions LoadBenchOptions();

// Builds a world for the named campus ("KAIST" or "UCLA").
std::unique_ptr<env::World> MakeWorld(const std::string& campus, int64_t u,
                                      int64_t v_prime, int64_t horizon);

// Trains + evaluates `method`, averaging metrics over `options.seeds`
// seeds. Results are cached on disk (out_dir/sweep_cache.csv) keyed by the
// full configuration, so figure benches sharing a sweep do not recompute
// each other's points.
env::EpisodeMetrics AveragedRun(const std::string& campus, int64_t u,
                                int64_t v_prime, const std::string& method,
                                const BenchOptions& options,
                                const baselines::MethodOptions& method_options =
                                    baselines::MethodOptions());

// Sweep grids for Figs. 3-6 (method x U with V'=2, method x V' with U=4).
std::vector<int64_t> UgvGrid(const BenchOptions& options);
std::vector<int64_t> UavGrid(const BenchOptions& options);

// Emits one figure's four panels: metric vs U for KAIST/UCLA (V'=2) and
// metric vs V' for KAIST/UCLA (U=4), for all paper methods.
// `metric` selects the field of EpisodeMetrics; also writes CSVs named
// <figure>_<panel>.csv under options.out_dir.
void RunFigureSweep(const std::string& figure, const std::string& metric,
                    const BenchOptions& options);

// Named accessor into EpisodeMetrics ("lambda", "psi", "xi", "zeta",
// "beta").
double MetricValue(const env::EpisodeMetrics& metrics,
                   const std::string& metric);

}  // namespace garl::bench

#endif  // GARL_BENCH_BENCH_COMMON_H_
