// Threading benchmark for the training hot path. Measures (a) MatMul
// forward+backward on GEMM shapes taken from the GARL model on KAIST and
// (b) end-to-end IPPO seconds/iteration with parallel episode collection,
// each at 1 thread vs GARL_NUM_THREADS (default 4), and writes
// BENCH_kernels.json into the working directory.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "bench_common.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "rl/ippo_trainer.h"
#include "rl/policy.h"

namespace garl::bench {
namespace {

int64_t BenchThreads() {
  const char* env = std::getenv("GARL_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    return std::max<int64_t>(1, std::atoll(env));
  }
  return 4;
}

double SecondsFor(const std::function<void()>& fn, int64_t reps) {
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < reps; ++i) fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(reps);
}

nn::Tensor RandomMatrix(int64_t rows, int64_t cols, Rng& rng) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (float& v : values) v = rng.UniformF(-1.0f, 1.0f);
  return nn::Tensor::FromVector({rows, cols}, std::move(values),
                                /*requires_grad=*/true);
}

struct GemmCase {
  std::string label;
  int64_t n, k, m;
  double sec_one = 0.0;
  double sec_many = 0.0;
};

// One training-step-shaped unit of work: forward GEMM, scalar loss,
// backward (which itself runs two GEMMs against the packed transposes).
double TimeGemm(const GemmCase& gemm, int64_t reps) {
  Rng rng(17);
  nn::Tensor a = RandomMatrix(gemm.n, gemm.k, rng);
  nn::Tensor b = RandomMatrix(gemm.k, gemm.m, rng);
  return SecondsFor(
      [&] {
        nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
        loss.Backward();
      },
      reps);
}

struct EndToEnd {
  int64_t episodes_per_iteration = 0;
  double sec_one = 0.0;
  double sec_many = 0.0;
};

double TimeIterations(env::World& world, int64_t episodes, int64_t reps) {
  Rng rng(5);
  rl::EnvContext context = rl::MakeEnvContext(world);
  auto policy = baselines::MakeUgvPolicy("GARL", context,
                                         baselines::MethodOptions(), rng);
  GARL_CHECK(policy.ok());
  rl::TrainConfig config;
  config.episodes_per_iteration = episodes;
  config.epochs = 1;
  config.seed = 1;
  rl::IppoTrainer trainer(&world, policy.value().get(), nullptr, config);
  return SecondsFor([&] { trainer.RunIteration(); }, reps);
}

void WriteJson(const std::string& path, int64_t threads,
               const std::vector<GemmCase>& gemms, const EndToEnd& e2e) {
  std::ofstream out(path);
  GARL_CHECK(out.good());
  // hardware_concurrency bounds the achievable speedup; on a 1-core box
  // every ratio is ~1 regardless of thread count.
  out << "{\n  \"threads\": " << threads << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"gemm\": [\n";
  for (size_t i = 0; i < gemms.size(); ++i) {
    const GemmCase& g = gemms[i];
    out << "    {\"label\": \"" << g.label << "\", \"n\": " << g.n
        << ", \"k\": " << g.k << ", \"m\": " << g.m
        << ", \"seconds_1_thread\": " << g.sec_one
        << ", \"seconds_n_threads\": " << g.sec_many
        << ", \"speedup\": " << (g.sec_many > 0 ? g.sec_one / g.sec_many : 0.0)
        << "}" << (i + 1 < gemms.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"end_to_end\": {\"campus\": \"KAIST\", "
      << "\"episodes_per_iteration\": " << e2e.episodes_per_iteration
      << ", \"seconds_per_iteration_1_thread\": " << e2e.sec_one
      << ", \"seconds_per_iteration_n_threads\": " << e2e.sec_many
      << ", \"speedup\": "
      << (e2e.sec_many > 0 ? e2e.sec_one / e2e.sec_many : 0.0) << "}\n}\n";
}

int Main() {
  const int64_t threads = BenchThreads();
  BenchOptions options = LoadBenchOptions();

  // GEMM shapes as they occur in the GARL forward pass on KAIST: Laplacian
  // propagation L[B,B] x H[B,d], hidden projections H[B,d] x W[d,d], and the
  // stacked-slot policy/value heads.
  std::unique_ptr<env::World> world = MakeWorld("KAIST", 4, 2, options.horizon);
  const int64_t stops = world->stops().num_stops();
  std::vector<GemmCase> gemms = {
      {"laplacian_propagation", stops, stops, 64},
      {"hidden_projection", stops, 64, 64},
      {"policy_head_batch", 256, 64, 64},
  };

  const int64_t gemm_reps = 20;
  for (GemmCase& g : gemms) {
    ThreadPool::SetGlobalThreads(1);
    g.sec_one = TimeGemm(g, gemm_reps);
    ThreadPool::SetGlobalThreads(threads);
    g.sec_many = TimeGemm(g, gemm_reps);
    std::cout << "gemm " << g.label << " [" << g.n << "x" << g.k << "x" << g.m
              << "]  1t=" << g.sec_one << "s  " << threads
              << "t=" << g.sec_many << "s  speedup="
              << (g.sec_many > 0 ? g.sec_one / g.sec_many : 0.0) << "\n";
  }

  EndToEnd e2e;
  e2e.episodes_per_iteration = threads;
  const int64_t iter_reps = 2;
  ThreadPool::SetGlobalThreads(1);
  e2e.sec_one = TimeIterations(*world, e2e.episodes_per_iteration, iter_reps);
  ThreadPool::SetGlobalThreads(threads);
  e2e.sec_many = TimeIterations(*world, e2e.episodes_per_iteration, iter_reps);
  ThreadPool::SetGlobalThreads(1);
  std::cout << "end-to-end KAIST E=" << e2e.episodes_per_iteration
            << "  1t=" << e2e.sec_one << "s/iter  " << threads
            << "t=" << e2e.sec_many << "s/iter  speedup="
            << (e2e.sec_many > 0 ? e2e.sec_one / e2e.sec_many : 0.0) << "\n";

  WriteJson("BENCH_kernels.json", threads, gemms, e2e);
  std::cout << "wrote BENCH_kernels.json\n";
  return 0;
}

}  // namespace
}  // namespace garl::bench

int main() { return garl::bench::Main(); }
