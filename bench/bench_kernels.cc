// Kernel benchmark for the training hot path. Measures (a) MatMul
// forward+backward on GEMM shapes taken from the GARL model on KAIST, each
// scalar vs SIMD (simd::SetEnabledForTest A/B in one process) and 1 thread
// vs GARL_NUM_THREADS (default 4), (b) the arena allocator's steady-state
// heap traffic per iteration after warmup (must be zero), and (c) end-to-end
// IPPO seconds/iteration with parallel episode collection. Writes a JSON
// report (default BENCH_kernels.json in the working directory).
//
// Flags:
//   --json <path>      output path for the report
//   --baseline <path>  compare mode: read a previous report and exit 1 if
//                      any GEMM case or the end-to-end time regressed >10%
//   --reps <n>         GEMM repetitions per timing (default 20; the CI smoke
//                      run uses 1)

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "bench_common.h"
#include "bench_compare.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "nn/arena.h"
#include "nn/ops.h"
#include "nn/simd.h"
#include "nn/tensor.h"
#include "rl/ippo_trainer.h"
#include "rl/policy.h"

namespace garl::bench {
namespace {

int64_t BenchThreads() {
  const char* env = std::getenv("GARL_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    return std::max<int64_t>(1, std::atoll(env));
  }
  return 4;
}

double SecondsFor(const std::function<void()>& fn, int64_t reps) {
  auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < reps; ++i) fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(reps);
}

nn::Tensor RandomMatrix(int64_t rows, int64_t cols, Rng& rng) {
  std::vector<float> values(static_cast<size_t>(rows * cols));
  for (float& v : values) v = rng.UniformF(-1.0f, 1.0f);
  return nn::Tensor::FromVector({rows, cols}, std::move(values),
                                /*requires_grad=*/true);
}

struct GemmCase {
  std::string label;
  int64_t n, k, m;
  double sec_scalar = 0.0;  // SIMD off, 1 thread
  double sec_simd = 0.0;    // SIMD on, 1 thread
  double sec_many = 0.0;    // SIMD on, N threads
};

// One training-step-shaped unit of work: forward GEMM, scalar loss,
// backward (which itself runs two GEMMs against the packed transposes).
double TimeGemm(const GemmCase& gemm, int64_t reps) {
  Rng rng(17);
  nn::Tensor a = RandomMatrix(gemm.n, gemm.k, rng);
  nn::Tensor b = RandomMatrix(gemm.k, gemm.m, rng);
  return SecondsFor(
      [&] {
        nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
        loss.Backward();
      },
      reps);
}

// Steady-state allocator traffic: after a warmup pass has populated the
// recycling pool, a GEMM iteration must run entirely on reused buffers.
// Returns heap allocations per iteration (arena counter delta / iterations).
double SteadyStateAllocsPerIter(const GemmCase& gemm) {
  Rng rng(23);
  nn::Tensor a = RandomMatrix(gemm.n, gemm.k, rng);
  nn::Tensor b = RandomMatrix(gemm.k, gemm.m, rng);
  auto step = [&] {
    nn::Tensor loss = nn::Sum(nn::MatMul(a, b));
    loss.Backward();
  };
  for (int i = 0; i < 3; ++i) step();  // warmup: fill the pool
  constexpr int64_t kIters = 10;
  int64_t before = nn::arena::GlobalStats().heap_allocs;
  for (int64_t i = 0; i < kIters; ++i) step();
  int64_t after = nn::arena::GlobalStats().heap_allocs;
  return static_cast<double>(after - before) / static_cast<double>(kIters);
}

struct EndToEnd {
  int64_t episodes_per_iteration = 0;
  double sec_one = 0.0;
  double sec_many = 0.0;
};

double TimeIterations(env::World& world, int64_t episodes, int64_t reps) {
  Rng rng(5);
  rl::EnvContext context = rl::MakeEnvContext(world);
  auto policy = baselines::MakeUgvPolicy("GARL", context,
                                         baselines::MethodOptions(), rng);
  GARL_CHECK(policy.ok());
  rl::TrainConfig config;
  config.episodes_per_iteration = episodes;
  config.epochs = 1;
  config.seed = 1;
  rl::IppoTrainer trainer(&world, policy.value().get(), nullptr, config);
  return SecondsFor([&] { trainer.RunIteration(); }, reps);
}

void WriteJson(const std::string& path, int64_t threads,
               const std::vector<GemmCase>& gemms, double allocs_per_iter,
               const EndToEnd& e2e) {
  std::ofstream out(path);
  GARL_CHECK(out.good());
  nn::arena::ArenaStats arena = nn::arena::GlobalStats();
  // hardware_concurrency bounds the achievable thread speedup; on a 1-core
  // box those ratios are ~1 and the SIMD ratio carries the signal.
  out << "{\n  \"threads\": " << threads << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"simd_compiled\": " << (GARL_SIMD_COMPILED ? "true" : "false")
      << ",\n  \"gemm\": [\n";
  for (size_t i = 0; i < gemms.size(); ++i) {
    const GemmCase& g = gemms[i];
    out << "    {\"label\": \"" << g.label << "\", \"n\": " << g.n
        << ", \"k\": " << g.k << ", \"m\": " << g.m
        << ", \"seconds_scalar\": " << g.sec_scalar
        << ", \"seconds_simd\": " << g.sec_simd << ", \"simd_speedup\": "
        << (g.sec_simd > 0 ? g.sec_scalar / g.sec_simd : 0.0)
        << ", \"seconds_n_threads\": " << g.sec_many
        << ", \"thread_speedup\": "
        << (g.sec_many > 0 ? g.sec_simd / g.sec_many : 0.0) << "}"
        << (i + 1 < gemms.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"arena\": {\"steady_state_heap_allocs_per_iter\": "
      << allocs_per_iter << ", \"heap_allocs\": " << arena.heap_allocs
      << ", \"reuses\": " << arena.reuses
      << ", \"cached_bytes\": " << arena.cached_bytes
      << ", \"high_water_bytes\": " << arena.high_water_bytes << "},\n";
  out << "  \"end_to_end\": {\"campus\": \"KAIST\", "
      << "\"episodes_per_iteration\": " << e2e.episodes_per_iteration
      << ", \"seconds_per_iteration_1_thread\": " << e2e.sec_one
      << ", \"seconds_per_iteration_n_threads\": " << e2e.sec_many
      << ", \"speedup\": "
      << (e2e.sec_many > 0 ? e2e.sec_one / e2e.sec_many : 0.0) << "}\n}\n";
}

// --- baseline comparison ---------------------------------------------------
//
// The reports are flat enough that a string scan beats pulling in a JSON
// parser here: find the anchor key, read the number after the next ':'.
// Returns false when the key is missing (older schema, new case).
bool ScanNumberAfter(const std::string& text, size_t from,
                     const std::string& key, double* value) {
  size_t at = text.find(key, from);
  if (at == std::string::npos) return false;
  size_t colon = text.find(':', at + key.size());
  if (colon == std::string::npos) return false;
  *value = std::atof(text.c_str() + colon + 1);
  return true;
}

// Baseline seconds for a labelled GEMM case. Prefers the current schema's
// seconds_simd; falls back to the pre-SIMD report's seconds_1_thread so a
// seed baseline still anchors the comparison.
bool BaselineGemmSeconds(const std::string& text, const std::string& label,
                         double* value) {
  size_t at = text.find("\"" + label + "\"");
  if (at == std::string::npos) return false;
  if (ScanNumberAfter(text, at, "\"seconds_simd\"", value)) return true;
  return ScanNumberAfter(text, at, "\"seconds_1_thread\"", value);
}

int CompareAgainstBaseline(const std::string& baseline_path,
                           const std::vector<GemmCase>& gemms,
                           const EndToEnd& e2e) {
  std::ifstream in(baseline_path);
  if (!in.good()) {
    std::cerr << "bench_kernels: cannot read baseline " << baseline_path
              << "\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  constexpr double kTolerance = 1.10;  // fail on >10% regression
  int failures = 0;
  for (const GemmCase& g : gemms) {
    double base = 0.0;
    if (!BaselineGemmSeconds(text, g.label, &base)) {
      std::cout << "baseline " << g.label << ": not present, skipped\n";
      continue;
    }
    BaselineComparison cmp = CompareToBaseline(base, g.sec_simd, kTolerance);
    if (!cmp.comparable) {
      std::cout << "baseline " << g.label << ": " << base
                << "s is below the comparability floor, skipped\n";
      continue;
    }
    std::cout << "baseline " << g.label << ": " << base << "s -> "
              << g.sec_simd << "s " << (cmp.regressed ? "REGRESSED" : "OK")
              << "\n";
    if (cmp.regressed) ++failures;
  }
  double base_e2e = 0.0;
  if (ScanNumberAfter(text, 0, "\"seconds_per_iteration_1_thread\"",
                      &base_e2e)) {
    BaselineComparison cmp =
        CompareToBaseline(base_e2e, e2e.sec_one, kTolerance);
    if (!cmp.comparable) {
      std::cout << "baseline end_to_end: " << base_e2e
                << "s/iter is below the comparability floor, skipped\n";
    } else {
      std::cout << "baseline end_to_end: " << base_e2e << "s/iter -> "
                << e2e.sec_one << "s/iter "
                << (cmp.regressed ? "REGRESSED" : "OK") << "\n";
      if (cmp.regressed) ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << "bench_kernels: " << failures
              << " case(s) regressed >10% vs " << baseline_path << "\n";
    return 1;
  }
  return 0;
}

int Main(int argc, char** argv) {
  std::string json_path = "BENCH_kernels.json";
  std::string baseline_path;
  int64_t gemm_reps = 20;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      gemm_reps = std::max<int64_t>(1, std::atoll(argv[++i]));
    } else {
      std::cerr << "usage: bench_kernels [--json <path>] [--baseline <path>]"
                << " [--reps <n>]\n";
      return 2;
    }
  }

  const int64_t threads = BenchThreads();
  BenchOptions options = LoadBenchOptions();

  // GEMM shapes as they occur in the GARL forward pass on KAIST: Laplacian
  // propagation L[B,B] x H[B,d], hidden projections H[B,d] x W[d,d], and the
  // stacked-slot policy/value heads.
  std::unique_ptr<env::World> world = MakeWorld("KAIST", 4, 2, options.horizon);
  const int64_t stops = world->stops().num_stops();
  std::vector<GemmCase> gemms = {
      {"laplacian_propagation", stops, stops, 64},
      {"hidden_projection", stops, 64, 64},
      {"policy_head_batch", 256, 64, 64},
  };

  for (GemmCase& g : gemms) {
    ThreadPool::SetGlobalThreads(1);
    nn::simd::SetEnabledForTest(false);
    g.sec_scalar = TimeGemm(g, gemm_reps);
    nn::simd::SetEnabledForTest(true);
    g.sec_simd = TimeGemm(g, gemm_reps);
    ThreadPool::SetGlobalThreads(threads);
    g.sec_many = TimeGemm(g, gemm_reps);
    std::cout << "gemm " << g.label << " [" << g.n << "x" << g.k << "x" << g.m
              << "]  scalar=" << g.sec_scalar << "s  simd=" << g.sec_simd
              << "s (x"
              << (g.sec_simd > 0 ? g.sec_scalar / g.sec_simd : 0.0) << ")  "
              << threads << "t=" << g.sec_many << "s\n";
  }
  ThreadPool::SetGlobalThreads(1);

  double allocs_per_iter = SteadyStateAllocsPerIter(gemms[0]);
  std::cout << "arena steady-state heap allocs/iter (after warmup): "
            << allocs_per_iter << "\n";

  EndToEnd e2e;
  e2e.episodes_per_iteration = threads;
  const int64_t iter_reps =
      std::max<int64_t>(1, std::min<int64_t>(2, gemm_reps));
  ThreadPool::SetGlobalThreads(1);
  e2e.sec_one = TimeIterations(*world, e2e.episodes_per_iteration, iter_reps);
  ThreadPool::SetGlobalThreads(threads);
  e2e.sec_many = TimeIterations(*world, e2e.episodes_per_iteration, iter_reps);
  ThreadPool::SetGlobalThreads(1);
  std::cout << "end-to-end KAIST E=" << e2e.episodes_per_iteration
            << "  1t=" << e2e.sec_one << "s/iter  " << threads
            << "t=" << e2e.sec_many << "s/iter  speedup="
            << (e2e.sec_many > 0 ? e2e.sec_one / e2e.sec_many : 0.0) << "\n";

  WriteJson(json_path, threads, gemms, allocs_per_iter, e2e);
  std::cout << "wrote " << json_path << "\n";

  if (!baseline_path.empty()) {
    return CompareAgainstBaseline(baseline_path, gemms, e2e);
  }
  return 0;
}

}  // namespace
}  // namespace garl::bench

int main(int argc, char** argv) { return garl::bench::Main(argc, argv); }
