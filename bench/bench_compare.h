#ifndef GARL_BENCH_BENCH_COMPARE_H_
#define GARL_BENCH_BENCH_COMPARE_H_

#include <cmath>

// Baseline-vs-measurement regression arithmetic shared by the bench
// binaries. Kept as a pure header so the comparison rules are unit-testable
// without running a benchmark.
//
// The hazard this guards: a baseline entry of 0 (or denormal-small — a
// truncated file, a `--reps 0` smoke artifact, a field atof'd from garbage)
// makes `measured <= base * tolerance` fail for every real measurement, so
// one bad baseline line would brick the regression gate. Entries below the
// comparability floor are skipped with an explicit verdict instead of
// failing.

namespace garl::bench {

// Baselines faster than 1us/op are below timer resolution and below anything
// the kernels in this repo can legitimately produce; treat them (and zeros,
// negatives, NaN/Inf from a corrupt file) as not comparable.
inline constexpr double kMinComparableBaselineSeconds = 1e-6;

struct BaselineComparison {
  bool comparable = false;  // false: baseline unusable, skip (never fail)
  bool regressed = false;   // measured exceeded baseline * tolerance
};

inline BaselineComparison CompareToBaseline(double baseline_seconds,
                                            double measured_seconds,
                                            double tolerance) {
  BaselineComparison result;
  if (!std::isfinite(baseline_seconds) ||
      baseline_seconds < kMinComparableBaselineSeconds) {
    return result;  // not comparable
  }
  result.comparable = true;
  // A non-finite measurement is a broken run, not a fast one.
  result.regressed = !std::isfinite(measured_seconds) ||
                     measured_seconds > baseline_seconds * tolerance;
  return result;
}

}  // namespace garl::bench

#endif  // GARL_BENCH_BENCH_COMPARE_H_
