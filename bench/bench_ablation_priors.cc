// Ablation of this reproduction's own design choices (see DESIGN.md,
// "Architecture-informed priors"): how much of GARL's short-budget
// behaviour comes from each prior mechanism —
//   * the moderated multi-center subtraction (Eq. 18 prior),
//   * E-Comm's radial resultant-force dispersal (Eq. 28 prior),
//   * the shared symmetry-breaking bearing,
//   * the shared data-at-stop release bias.
// This is not a paper table; it documents and guards the reproduction's
// calibration.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "common/rng.h"
#include "common/table_writer.h"
#include "env/metrics.h"
#include "core/garl_extractor.h"
#include "rl/evaluator.h"
#include "rl/feature_policy.h"
#include "rl/ippo_trainer.h"
#include "rl/uav_controller.h"

namespace garl::bench {
namespace {

struct Variant {
  const char* name;
  float mc_separation;
  float e_radial;
  float direction_prior;
  float release_prior;
};

env::EpisodeMetrics RunVariant(const Variant& variant,
                               const BenchOptions& options) {
  std::unique_ptr<env::World> world = MakeWorld("KAIST", 4, 2,
                                                options.horizon);
  rl::EnvContext context = rl::MakeEnvContext(*world);
  double psi = 0, xi = 0, zeta = 0, beta = 0;
  for (int64_t seed = 1; seed <= options.seeds; ++seed) {
    Rng rng(static_cast<uint64_t>(seed));
    core::GarlConfig config;
    config.mc_separation = variant.mc_separation;
    config.e_radial = variant.e_radial;
    rl::FeaturePolicyOptions heads;
    heads.direction_prior_scale = variant.direction_prior;
    heads.release_prior_scale = variant.release_prior;
    rl::FeatureUgvPolicy policy(
        std::make_unique<core::GarlExtractor>(context, config, rng),
        context, heads, rng);
    rl::TrainConfig train;
    train.iterations = options.train_iterations;
    train.seed = static_cast<uint64_t>(seed);
    rl::IppoTrainer trainer(world.get(), &policy, nullptr, train);
    auto train_result = trainer.Train();
    GARL_CHECK_MSG(train_result.ok(), train_result.status().ToString());
    rl::GreedyUavController uav;
    rl::EvalOptions eval;
    eval.episodes = options.eval_episodes;
    eval.greedy = false;
    eval.seed = static_cast<uint64_t>(seed) + 7777;
    env::EpisodeMetrics m = rl::EvaluatePolicy(*world, policy, uav, eval);
    psi += m.data_collection_ratio;
    xi += m.fairness;
    zeta += m.cooperation_factor;
    beta += m.energy_ratio;
  }
  double n = static_cast<double>(options.seeds);
  return env::MakeMetrics(psi / n, xi / n, zeta / n, beta / n);
}

void Run() {
  BenchOptions options = LoadBenchOptions();
  const Variant variants[] = {
      {"full priors", 0.6f, 0.25f, 0.15f, 2.0f},
      {"no multi-center", 0.0f, 0.25f, 0.15f, 2.0f},
      {"no radial dispersal", 0.6f, 0.0f, 0.15f, 2.0f},
      {"no symmetry breaking", 0.6f, 0.25f, 0.0f, 2.0f},
      {"no release bias", 0.6f, 0.25f, 0.15f, 0.0f},
      {"no priors at all", 0.0f, 0.0f, 0.0f, 0.0f},
  };
  TableWriter table({"variant", "lambda", "psi", "xi", "zeta", "beta"});
  for (const Variant& variant : variants) {
    env::EpisodeMetrics m = RunVariant(variant, options);
    table.AddRow(variant.name,
                 {m.efficiency, m.data_collection_ratio, m.fairness,
                  m.cooperation_factor, m.energy_ratio});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\nPrior-mechanism ablation, GARL on KAIST (U=4, V'=2)\n");
  table.Print(std::cout);
  WarnIfError(table.WriteCsv(options.out_dir + "/ablation_priors.csv"),
              "bench_ablation_priors: write csv");
}

}  // namespace
}  // namespace garl::bench

int main() {
  garl::bench::Run();
  return 0;
}
